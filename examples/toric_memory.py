"""Topological memory: the Kitaev lattice model as a quantum hard drive.

Builds toric codes of growing size, checks the §7.1 structural facts
(commuting 4-body terms, 4-fold ground-space degeneracy, the −1 braiding
phase of Fig. 16), then sweeps the error rate through the decoder
threshold: below it, a bigger lattice stores the qubit better.
"""

import numpy as np

from repro.topo import ToricCode, toric_memory_experiment


def main() -> None:
    print("=== Kitaev lattice model structure (Fig. 17) ===")
    code = ToricCode(5)
    print(f"d=5 torus: {code.n} edge spins, "
          f"{code.vertex_checks.shape[0]} site terms, "
          f"{code.plaquette_checks.shape[0]} plaquette terms")
    print(f"all terms commute: {code.check_commutation()}")
    print(f"ground-space dimension: {code.ground_space_dimension()} (two encoded qubits)\n")

    print("=== Aharonov-Bohm braiding (Fig. 16) ===")
    x_string = np.zeros(code.n, dtype=np.uint8)
    x_string[code.v_edge(1, 2)] = 1  # fluxon pair at plaquettes (1,1), (1,2)
    enclosing = code.charge_loop_operator(1, 1)
    distant = code.charge_loop_operator(3, 3)
    print(f"charge loop around a fluxon: phase {code.braiding_phase(enclosing, x_string):+d}")
    print(f"charge loop far away:        phase {code.braiding_phase(distant, x_string):+d}\n")

    print("=== Memory threshold sweep (MWPM decoder) ===")
    shots = 1500
    print(f"{'p':>6} | " + " | ".join(f"d={d:>2}" for d in (3, 5, 7)))
    print("-" * 36)
    for i, p in enumerate([0.02, 0.06, 0.10, 0.14]):
        rates = [
            toric_memory_experiment(d, p, shots, seed=100 * i + d).failure_rate
            for d in (3, 5, 7)
        ]
        print(f"{p:6.2f} | " + " | ".join(f"{r:.3f}" for r in rates))
    print("\nBelow ~0.10 the columns fall with d (coding helps); above, they rise.")


if __name__ == "__main__":
    main()
