"""Threshold sweep: locate the pseudo-threshold of Steane-method EC.

Sweeps the physical error rate, runs one noisy EC round per point, and
prints the encoded-vs-physical crossing — the operational meaning of §5's
"once our hardware meets a specified standard of accuracy ... arbitrarily
long quantum computations".  Takes a minute or two at the default shots.
"""

import argparse

import numpy as np

from repro.codes import SteaneCode
from repro.ft import SteaneECProtocol
from repro.noise import circuit_level
from repro.threshold import pseudo_threshold


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers", type=int, default=1,
        help="shard each grid point's shots across this many processes",
    )
    args = parser.parse_args()
    grid = np.array([5e-5, 1e-4, 2e-4, 4e-4, 8e-4, 1.6e-3])
    crossing, curve = pseudo_threshold(
        lambda eps: SteaneECProtocol(circuit_level(eps)),
        SteaneCode(),
        grid,
        shots=60_000,
        seed=42,
        workers=args.workers,
    )
    print(f"{'eps':>10} | {'p_logical':>11} | encoding")
    print("-" * 38)
    for eps, p in curve:
        verdict = "helps" if p < eps else "hurts"
        print(f"{eps:10.1e} | {p:11.2e} | {verdict}")
    print("-" * 38)
    print(f"pseudo-threshold crossing ~ {crossing:.1e}")
    print("(paper's crude circuit-counting estimate: 6e-4; conservative floor: 1e-4)")


if __name__ == "__main__":
    main()
