"""Memory lifetime study: how long can a logical qubit survive?

Compares four storage strategies over many EC rounds at fixed hardware
quality: bare qubit, ideal-recovery Steane (§2), circuit-level Steane-
method EC (Fig. 9), and circuit-level Shor-method EC — then shows the §7.1
topological alternative where lifetime is bought with quasiparticle
separation instead of active recovery.
"""

from repro import LogicalMemory, UnencodedMemory
from repro.topo import TopologicalErrorModel


def main() -> None:
    eps = 1e-4
    rounds = 5
    shots = 30_000
    print(f"=== Active error correction at eps = {eps}, {rounds} rounds ===")
    bare = UnencodedMemory(eps).run(rounds, 200_000, seed=0)
    rows = [("bare qubit", bare)]
    for label, kwargs in [
        ("Steane / ideal recovery", dict(code="steane", method="ideal")),
        ("Steane / Steane-method EC", dict(code="steane", method="steane")),
        ("Steane / Shor-method EC", dict(code="steane", method="shor")),
    ]:
        mem = LogicalMemory(eps=eps, **kwargs)
        rows.append((label, mem.run(rounds, shots, seed=1)))
    print(f"{'strategy':<28} | {'fail prob':>10} | {'per round':>10}")
    print("-" * 56)
    for label, res in rows:
        print(f"{label:<28} | {res.failure_rate:10.2e} | {res.per_round_rate:10.2e}")

    print("\n=== Passive (topological) storage: lifetime vs separation ===")
    model = TopologicalErrorModel(mass=1.0, gap=1.0)
    print(f"{'separation L':>12} | {'error rate/step':>16} | {'mean lifetime':>14}")
    print("-" * 50)
    for L in (2.0, 4.0, 6.0, 8.0):
        rate = model.tunneling_error_rate(L)
        life = model.memory_lifetime(L, temperature=0.0, trials=256, seed=int(L))
        print(f"{L:12.1f} | {rate:16.2e} | {life:14.3e}")
    print("\nEach extra unit of separation multiplies the lifetime by e^{2m} ~ 7.4:")
    print("fault tolerance built into the hardware, no recovery circuit at all (§7).")


if __name__ == "__main__":
    main()
