"""Fault-injection audit: certify a circuit fault-tolerant by enumeration.

The strongest statement in the library: enumerate EVERY possible single
fault (every location × every Pauli) in the complete Fig. 9 error-
correction round — ancilla encoding, two-block verification, transversal
extraction, repeated syndromes, classical post-processing — and verify
that none causes a logical error.  Then derive the threshold the way §5
does, by adding up the surviving fault paths.
"""

from repro.ft.cat import CatStatePrep
from repro.noise import NoiseModel
from repro.pauliframe import FrameSimulator
from repro.threshold import count_fault_paths, threshold_from_counting
from repro.threshold.counting import FullSteaneRound


def main() -> None:
    rnd = FullSteaneRound()
    print("=== The complete Fig. 9 round ===")
    print(f"qubits: {rnd.num_qubits} (7 data + 4 ancilla blocks x 21)")
    print(f"operations: {len(rnd.circuit.operations)}")

    report = count_fault_paths(rnd)
    print("\n=== Exhaustive single-fault audit ===")
    print(f"fault cases enumerated:  {report.total_fault_cases}")
    print(f"benign (no residual):    {report.benign}")
    print(f"one residual error:      {report.residual_one}")
    print(f"multi-qubit residual:    {report.residual_multi} (X-and-Z splits; none logical)")
    print(f"LOGICAL FAILURES:        {report.logical_failures}   <- must be 0")
    assert report.logical_failures == 0, "fault tolerance violated!"

    print("\n=== Threshold by fault-path counting (the §5 method) ===")
    print(f"fault paths per data qubit: {report.per_qubit_paths:.1f}")
    eps0 = threshold_from_counting(report)
    print(f"estimated threshold eps0 = 3/(21 x paths) = {eps0:.2e}")
    print("paper's crude estimate: 6e-4; conservative floor: 1e-4")

    print("\n=== Contrast: a single fault CAN break an unverified cat ===")
    prep = CatStatePrep((0, 1, 2, 3))  # no verification
    circuit = prep.circuit(4, 0)
    sim = FrameSimulator(circuit, NoiseModel())
    chain_link = [i for i, op in enumerate(circuit) if op.gate == "CNOT"][1]
    res = sim.run(1, seed=0, fault_injections=[(chain_link, 2, "X")])
    print(f"X fault mid-chain leaves {int(res.fx[0].sum())} correlated bit flips "
          f"in the cat -> two phase errors in the Shor state (the Fig. 8 danger).")


if __name__ == "__main__":
    main()
