"""Factoring resource planner: reproduce the paper's §6 worked example.

"To perform this task with Shor's algorithm, we would need to be able to
store about 5·432 = 2160 qubits and to perform about 38·(432)³ ≈ 3·10⁹
Toffoli gates ... if 3 levels of concatenation are used ... the total
number of qubits required in the machine would be of order 10⁶."
"""

from repro.threshold import FACTORING_432_BIT, FactoringProblem, plan_factoring
from repro.threshold.resources import block55_alternative


def show_plan(title: str, plan) -> None:
    print(f"--- {title} ---")
    print(f"  logical qubits:      {plan.problem.logical_qubits}")
    print(f"  Toffoli gates:       {plan.problem.toffoli_gates:.2e}")
    print(f"  physical error rate: {plan.physical_error:.0e}")
    print(f"  concatenation:       L = {plan.levels} (block size {plan.block_size})")
    print(f"  achieved error:      {plan.achieved_logical_error:.1e}")
    print(f"  physical qubits:     {plan.total_qubits:.2e}")
    print(f"  meets target:        {plan.meets_target()}")
    print()


def main() -> None:
    # The paper's configuration: Shor-method flow constants (effective
    # threshold ~3e-5, footnote n) against the storage budget 1e-12.
    paper = plan_factoring(
        FACTORING_432_BIT,
        physical_error=1e-6,
        threshold=3e-5,
        target_error=1e-12,
        ancilla_overhead=1.35,
    )
    show_plan("Paper configuration (432-bit number, eps = 1e-6)", paper)

    # What better hardware buys (Eq. 36's doubly exponential gain).
    better = plan_factoring(
        FACTORING_432_BIT,
        physical_error=1e-7,
        threshold=3e-5,
        target_error=1e-12,
        ancilla_overhead=1.35,
    )
    show_plan("Improved hardware (eps = 1e-7)", better)

    # A bigger number with the same machine class.
    big = plan_factoring(
        FactoringProblem(bits=1024),
        physical_error=1e-6,
        threshold=3e-5,
        target_error=1e-13,
        ancilla_overhead=1.35,
    )
    show_plan("RSA-1024-scale problem", big)

    alt = block55_alternative()
    print("--- Steane's block-55 alternative (ref. 48) ---")
    print(f"  block size {alt['block_size']:.0f} correcting {alt['corrects']:.0f} errors,")
    print(f"  gate error {alt['gate_error']:.0e}, total qubits {alt['total_qubits']:.0e}")


if __name__ == "__main__":
    main()
