"""Quickstart: protect one qubit with the Steane code and measure the gain.

Runs in a few seconds.  Demonstrates the three public entry points:
`LogicalMemory` (encoded storage under circuit noise), `UnencodedMemory`
(the bare-qubit baseline of Eq. 14), and `FaultTolerancePlanner` (the §5
concatenation mathematics).
"""

from repro import FaultTolerancePlanner, LogicalMemory, UnencodedMemory


def main() -> None:
    eps = 1e-4  # physical error rate per gate/measurement/step

    print("=== Encoded vs bare memory at eps =", eps, "===")
    bare = UnencodedMemory(eps).run(rounds=1, shots=200_000, seed=0)
    encoded = LogicalMemory(code="steane", method="steane", eps=eps).run(
        rounds=1, shots=50_000, seed=0
    )
    print(f"bare qubit failure / round:    {bare.failure_rate:.2e}")
    print(f"encoded qubit failure / round: {encoded.failure_rate:.2e}  "
          f"(95% CI [{encoded.low:.2e}, {encoded.high:.2e}])")
    if encoded.failure_rate < bare.failure_rate:
        print("-> encoding wins: below the pseudo-threshold.\n")
    else:
        print("-> encoding loses: above the pseudo-threshold.\n")

    print("=== Ideal (code-capacity) storage, the Eq. 14 setting ===")
    ideal = LogicalMemory(code="steane", method="ideal", eps=1e-3).run(
        rounds=10, shots=100_000, seed=1
    )
    print(f"ten rounds at eps=1e-3 with flawless recovery: {ideal.failure_rate:.2e}")
    print("(the bare qubit would fail ~1e-2 of the time)\n")

    print("=== Planning for a long computation (§5, Eq. 36) ===")
    planner = FaultTolerancePlanner()
    for target in (1e-9, 1e-15):
        summary = planner.summary(physical_error=1e-3, target_error=target)
        print(
            f"target {target:.0e}: {int(summary['levels'])} levels of "
            f"concatenation, block size {int(summary['block_size'])}, "
            f"achieved {summary['achieved_error']:.1e}"
        )


if __name__ == "__main__":
    main()
