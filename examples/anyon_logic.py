"""Anyonic logic: compute with nonabelian fluxons (paper §7.3–7.4).

Walks through the whole §7.4 toolkit on A₅: calibrating flux pairs from
charge-zero vacuum pairs, the Fig. 21 NOT gate by pull-through, charge
interferometry distinguishing |±>, fault-tolerant readout by probe
majority, and the group-theoretic universality table.
"""

import numpy as np

from repro.topo import (
    ChargeInterferometer,
    FluxInterferometer,
    FluxPairRegister,
    PermutationGroup,
    PullThroughCompiler,
    toffoli_feasibility_report,
)
from repro.topo.gates import A5_COMPUTATIONAL_BASIS, A5_NOT_FLUX
from repro.topo.groups import cycles


def main() -> None:
    a5 = PermutationGroup.alternating(5)
    u0, u1 = A5_COMPUTATIONAL_BASIS
    print("=== Computational encoding (Eq. 45) ===")
    print(f"|0> = flux {cycles(u0)},  |1> = flux {cycles(u1)},  NOT flux v = {cycles(A5_NOT_FLUX)}\n")

    print("=== Calibrating a flux pair from the vacuum (Eq. 44) ===")
    reg = FluxPairRegister(a5, [u0])
    reg.state = {(u0,): 1.0 + 0j}
    vac = FluxPairRegister(a5, [])
    vac.num_pairs, vac.state = 0, {(): 1.0 + 0j}
    idx = vac.append_charge_zero_pair(u0)
    flux = vac.measure_flux(idx, rng=7)
    print(f"charge-zero pair over the 3-cycle class (20 fluxes); measured: {cycles(flux)}\n")

    print("=== NOT gate by pull-through (Fig. 21) ===")
    reg = FluxPairRegister(a5, [u0, A5_NOT_FLUX])
    reg.pull_through(0, 1)
    print(f"|0> pulled through v -> flux {cycles(reg.measure_flux(0, rng=0))} (expected {cycles(u1)})")
    compiler = PullThroughCompiler(a5, max_depth=2)
    gate = compiler.compile([(u0,), (u1,)], [(u1,), (u0,)], ancilla_fluxes=(A5_NOT_FLUX,))
    print(f"compiler rediscovers it: {gate.depth} step(s), catalytic = {gate.catalytic}\n")

    print("=== Charge interferometry (Fig. 22) ===")
    plus = FluxPairRegister.from_superposition(
        a5, {(u0,): 1 / np.sqrt(2), (u1,): 1 / np.sqrt(2)}
    )
    meter = ChargeInterferometer()
    print(f"|+> measures outcome {meter.measure(plus, 0, A5_NOT_FLUX, rng=0)} (0 = +1 eigenvalue)")
    minus = FluxPairRegister.from_superposition(
        a5, {(u0,): 1 / np.sqrt(2), (u1,): -1 / np.sqrt(2)}
    )
    print(f"|-> measures outcome {meter.measure(minus, 0, A5_NOT_FLUX, rng=0)} (1 = -1 eigenvalue)\n")

    print("=== Fault-tolerant flux readout by repetition (§7.3) ===")
    noisy = FluxInterferometer(p_err=0.25, probes=51)
    wrong = 0
    for seed in range(50):
        probe_reg = FluxPairRegister(a5, [u0])
        if noisy.measure(probe_reg, 0, (u0, u1), rng=seed) != u0:
            wrong += 1
    print(f"25% per-probe error, 51 probes, 50 trials: {wrong} wrong readings\n")

    print("=== Universality criterion (§7.4) ===")
    report = toffoli_feasibility_report()
    print(f"{'group':>6} | {'order':>5} | solvable | perfect")
    for name, row in report.items():
        print(f"{name:>6} | {row['order']:>5} | {str(row['solvable']):>8} | {row['perfect']}")
    print("\nA5 is the smallest nonsolvable (indeed perfect) group — the unique")
    print("candidate at order <= 60 for universal conjugation computation.")


if __name__ == "__main__":
    main()
