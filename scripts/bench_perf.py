"""Perf-trajectory harness: compiled bit-packed frame engine vs legacy.

Runs an E01-style encoded-memory experiment (Steane code, circuit-level
noise, repeated EC rounds) on both engines, records wall time and
throughput, and writes the repo's first perf datapoint to
``BENCH_pauliframe.json``.  See PERF.md for the protocol and schema.

Usage::

    PYTHONPATH=src python scripts/bench_perf.py            # full (10k shots)
    PYTHONPATH=src python scripts/bench_perf.py --quick    # CI-sized
    PYTHONPATH=src python scripts/bench_perf.py --check    # guard only

The JSON is refused (exit 2) when the new compiled throughput regresses
more than ``REGRESSION_TOLERANCE`` against the recorded baseline, so the
file can only ratchet forward (or be updated deliberately with --force).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.codes import SteaneCode  # noqa: E402
from repro.ft import SteaneECProtocol  # noqa: E402
from repro.noise import circuit_level  # noqa: E402
from repro.threshold import memory_experiment  # noqa: E402

BENCH_PATH = REPO_ROOT / "BENCH_pauliframe.json"
SCHEMA_VERSION = 1
REGRESSION_TOLERANCE = 0.20  # refuse overwrite when >20% slower


def _time_engine(engine: str, shots: int, rounds: int, eps: float, seed: int) -> dict:
    code = SteaneCode()
    protocol = SteaneECProtocol(circuit_level(eps), engine=engine)
    # Warm-up run compiles programs and allocates packed buffers so the
    # measured pass times steady-state throughput.
    memory_experiment(protocol, code, rounds=1, shots=min(shots, 256), seed=seed)
    t0 = time.perf_counter()
    result = memory_experiment(protocol, code, rounds=rounds, shots=shots, seed=seed)
    elapsed = time.perf_counter() - t0
    shot_rounds = shots * rounds
    return {
        "engine": engine,
        "seconds": round(elapsed, 4),
        "shots_per_sec": round(shots / elapsed, 1),
        "shot_rounds_per_sec": round(shot_rounds / elapsed, 1),
        "failure_rate": result.failure_rate,
        "failures": result.failures,
    }


def run_benchmark(shots: int = 10_000, rounds: int = 10, eps: float = 1e-3, seed: int = 2026) -> dict:
    """Measure both engines on the same experiment; returns the record."""
    legacy = _time_engine("legacy", shots, rounds, eps, seed)
    compiled = _time_engine("compiled", shots, rounds, eps, seed)
    return {
        "bench": "p01_frame_engine",
        "schema_version": SCHEMA_VERSION,
        "recorded_unix": int(time.time()),
        "config": {
            "experiment": "E01-style Steane encoded memory",
            "code": "steane_7_1_3",
            "noise": f"circuit_level({eps})",
            "shots": shots,
            "rounds": rounds,
            "seed": seed,
        },
        "legacy": legacy,
        "compiled": compiled,
        "speedup": round(legacy["seconds"] / compiled["seconds"], 2),
    }


def check_regression(new: dict, old: dict) -> str | None:
    """Error string when ``new`` regresses >tolerance against ``old``."""
    old_rate = old.get("compiled", {}).get("shot_rounds_per_sec")
    new_rate = new.get("compiled", {}).get("shot_rounds_per_sec")
    if not old_rate or not new_rate:
        return None
    if new_rate < (1.0 - REGRESSION_TOLERANCE) * old_rate:
        return (
            f"compiled throughput regressed {100 * (1 - new_rate / old_rate):.1f}% "
            f"({new_rate:.0f} vs baseline {old_rate:.0f} shot-rounds/sec); "
            f"refusing to overwrite {BENCH_PATH.name} (use --force to accept)"
        )
    return None


def write_guarded(record: dict, path: Path = BENCH_PATH, force: bool = False) -> int:
    """Write the record unless it regresses against the stored baseline."""
    if path.exists() and not force:
        old = json.loads(path.read_text())
        err = check_regression(record, old)
        if err:
            print(f"REGRESSION: {err}", file=sys.stderr)
            return 2
    path.write_text(json.dumps(record, indent=1) + "\n")
    print(f"wrote {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shots", type=int, default=10_000)
    parser.add_argument("--rounds", type=int, default=10)
    parser.add_argument("--eps", type=float, default=1e-3)
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--quick", action="store_true", help="CI-sized run (2k shots, 3 rounds)")
    parser.add_argument("--force", action="store_true", help="overwrite even on regression")
    parser.add_argument(
        "--check", action="store_true",
        help="measure and compare against the stored baseline without writing",
    )
    parser.add_argument("--out", type=Path, default=BENCH_PATH)
    args = parser.parse_args(argv)
    if args.quick:
        args.shots, args.rounds = 2_000, 3
    if args.shots < 1 or args.rounds < 1:
        parser.error("--shots and --rounds must be positive")

    record = run_benchmark(args.shots, args.rounds, args.eps, args.seed)
    print(
        f"legacy:   {record['legacy']['seconds']:8.3f}s "
        f"({record['legacy']['shot_rounds_per_sec']:>12,.0f} shot-rounds/sec)"
    )
    print(
        f"compiled: {record['compiled']['seconds']:8.3f}s "
        f"({record['compiled']['shot_rounds_per_sec']:>12,.0f} shot-rounds/sec)"
    )
    print(f"speedup:  {record['speedup']:.1f}x")

    if args.check:
        if args.out.exists():
            err = check_regression(record, json.loads(args.out.read_text()))
            if err:
                print(f"REGRESSION: {err}", file=sys.stderr)
                return 2
            print("no regression against stored baseline")
        return 0
    return write_guarded(record, args.out, force=args.force)


if __name__ == "__main__":
    raise SystemExit(main())
