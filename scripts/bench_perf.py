"""Perf-trajectory harness: compiled bit-packed frame engine vs legacy.

Runs an E01-style encoded-memory experiment (Steane code, circuit-level
noise, repeated EC rounds) on both engines, records wall time and
throughput, and writes the perf datapoint to ``BENCH_pauliframe.json``.
With ``--workers N`` (N > 1) it additionally times the multiprocess
shot-sharded driver and records the parallel-scaling datapoint.  See
PERF.md for the protocol and schema.

Usage::

    PYTHONPATH=src python scripts/bench_perf.py            # full (10k shots)
    PYTHONPATH=src python scripts/bench_perf.py --quick    # CI-sized
    PYTHONPATH=src python scripts/bench_perf.py --check    # guard only
    PYTHONPATH=src python scripts/bench_perf.py --workers 4  # + sharded run

The JSON is refused (exit 2) when the new compiled throughput regresses
more than ``REGRESSION_TOLERANCE`` against the recorded baseline, so the
file can only ratchet forward (or be updated deliberately with --force).
The guard compares like-for-like: the single-process ``compiled`` entry is
always checked against the stored single-process entry, and the sharded
entry only against a stored sharded entry with the *same* worker count —
a multi-core datapoint can never mask a single-core regression.

Since schema v5 the file keys one baseline record per
``(hostname, cpu_count)`` host — ``"vm|1cpu"`` — so a run on unlike
hardware starts its own ratchet instead of silently skipping the guard
(the v4 behavior, which left multi-core runs permanently unguarded
against the committed single-core record).  Records from v4 files are
migrated under their own host key on first load.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.codes import SteaneCode  # noqa: E402
from repro.ft import SteaneECProtocol  # noqa: E402
from repro.noise import circuit_level  # noqa: E402
from repro.threshold import memory_experiment  # noqa: E402
from repro.threshold.sharded import DEFAULT_NUM_SHARDS  # noqa: E402

BENCH_PATH = REPO_ROOT / "BENCH_pauliframe.json"
# v3 adds the optional cache_hit entry; v4 adds queue; v5 keys one record
# per (hostname, cpu_count) host under "host_baselines".
SCHEMA_VERSION = 5
REGRESSION_TOLERANCE = 0.20  # refuse overwrite when >20% slower


# The sharded datapoint runs a 400x-shots workload: the single-process pass
# finishes the default 10k x 10 experiment in ~25 ms and pool startup costs
# ~0.6 s, so parallel scaling is only measurable on a workload sized in
# seconds (~9 s single-core at the default).  The factor keeps --quick runs
# proportionally small.
SHARDED_SHOT_FACTOR = 400


def _time_engine(
    engine: str, shots: int, rounds: int, eps: float, seed: int, workers: int = 1
) -> dict:
    code = SteaneCode()
    protocol = SteaneECProtocol(circuit_level(eps), engine=engine)
    # Warm-up run compiles programs and allocates packed buffers so the
    # measured pass times steady-state throughput.
    memory_experiment(protocol, code, rounds=1, shots=min(shots, 256), seed=seed)
    # The default shard plan would cap parallelism at 16 shards; size it to
    # the worker count so the recorded datapoint really used N workers.
    num_shards = None if workers == 1 else max(DEFAULT_NUM_SHARDS, workers)
    t0 = time.perf_counter()
    result = memory_experiment(
        protocol, code, rounds=rounds, shots=shots, seed=seed, workers=workers,
        num_shards=num_shards,
    )
    elapsed = time.perf_counter() - t0
    shot_rounds = shots * rounds
    record = {
        "engine": engine,
        "seconds": round(elapsed, 4),
        "shots_per_sec": round(shots / elapsed, 1),
        "shot_rounds_per_sec": round(shot_rounds / elapsed, 1),
        "failure_rate": result.failure_rate,
        "failures": result.failures,
    }
    if workers != 1:
        record["workers"] = workers
        record["shots"] = shots
        record["num_shards"] = num_shards
    return record


def _time_cache(shots: int, rounds: int, eps: float, seed: int) -> dict:
    """Time the result cache: one cold run (compute + journal every shard)
    against one warm run (full hit replayed from sqlite, no pool, no
    shards executed) of the identical experiment in a scratch store."""
    code = SteaneCode()
    protocol = SteaneECProtocol(circuit_level(eps), engine="compiled")
    memory_experiment(protocol, code, rounds=1, shots=min(shots, 256), seed=seed)
    with tempfile.TemporaryDirectory() as tmp:
        cache = Path(tmp) / "bench_cache.sqlite"
        t0 = time.perf_counter()
        cold = memory_experiment(
            protocol, code, rounds=rounds, shots=shots, seed=seed,
            checkpoint=cache,
        )
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = memory_experiment(
            protocol, code, rounds=rounds, shots=shots, seed=seed,
            checkpoint=cache,
        )
        warm_s = time.perf_counter() - t0
    assert warm == cold, "cache replay diverged from the computed result"
    return {
        "miss_seconds": round(cold_s, 4),
        "hit_seconds": round(warm_s, 4),
        "hit_speedup": round(cold_s / warm_s, 1),
        "hit_shot_rounds_per_sec": round(shots * rounds / warm_s, 1),
    }


def _time_queue(jobs: int, shots: int, eps: float, seed: int) -> dict:
    """Time the durable scan queue: submit ``jobs`` small capacity scans
    to a scratch queue and serve them to completion with one in-process
    worker, against direct execution of the identical shard plans.  The
    difference is pure scheduler machinery — sqlite transactions, lease
    bookkeeping, journaled results — so ``overhead_ms_per_job`` is the
    price of durability per job, not a statement about the physics."""
    from repro.threshold import scheduler, sharded  # noqa: E402
    from repro.threshold.runtime import (  # noqa: E402
        ResilienceOptions,
        execute_shards,
    )

    code = SteaneCode()
    requests = [
        ("capacity", (code, eps, 1), shots, seed + i) for i in range(jobs)
    ]
    t0 = time.perf_counter()
    for kind, args, n, s in requests:
        specs, _ = sharded._build_specs(kind, args, n, s, None)
        execute_shards(specs, 1, options=ResilienceOptions())
    direct_s = time.perf_counter() - t0
    with tempfile.TemporaryDirectory() as tmp:
        queue_path = Path(tmp) / "bench_queue.sqlite"
        t0 = time.perf_counter()
        results = scheduler.scan_via_queue(queue_path, requests)
        queued_s = time.perf_counter() - t0
    assert all(r.shots == shots for r in results), "queue dropped shots"
    return {
        "jobs": jobs,
        "shots_per_job": shots,
        "direct_seconds": round(direct_s, 4),
        "queued_seconds": round(queued_s, 4),
        "jobs_per_sec": round(jobs / queued_s, 1),
        "overhead_ms_per_job": round(1000 * (queued_s - direct_s) / jobs, 2),
    }


def run_benchmark(
    shots: int = 10_000,
    rounds: int = 10,
    eps: float = 1e-3,
    seed: int = 2026,
    workers: int = 1,
    cache_bench: bool = False,
    queue_bench: bool = False,
) -> dict:
    """Measure both engines on the same experiment; returns the record.

    ``workers > 1`` adds a ``sharded`` entry: the same compiled experiment
    run through the multiprocess shot-sharded driver, with its scaling
    against the single-process compiled pass.  Process spawn and pickling
    overhead is included in the measured time — it is part of the protocol.
    """
    legacy = _time_engine("legacy", shots, rounds, eps, seed)
    compiled = _time_engine("compiled", shots, rounds, eps, seed)
    record = {
        "bench": "p01_frame_engine",
        "schema_version": SCHEMA_VERSION,
        "recorded_unix": int(time.time()),
        "config": {
            "experiment": "E01-style Steane encoded memory",
            "code": "steane_7_1_3",
            "noise": f"circuit_level({eps})",
            "shots": shots,
            "rounds": rounds,
            "seed": seed,
            "workers": workers,
            "cpu_count": os.cpu_count(),
            "hostname": socket.gethostname(),
        },
        "legacy": legacy,
        "compiled": compiled,
        "speedup": round(legacy["seconds"] / compiled["seconds"], 2),
    }
    if workers > 1:
        sharded = _time_engine(
            "compiled", shots * SHARDED_SHOT_FACTOR, rounds, eps, seed, workers=workers
        )
        sharded["scaling_vs_compiled"] = round(
            sharded["shot_rounds_per_sec"] / compiled["shot_rounds_per_sec"], 2
        )
        record["sharded"] = sharded
    if cache_bench:
        record["cache_hit"] = _time_cache(shots, rounds, eps, seed)
    if queue_bench:
        # Small fixed-size jobs: the datapoint is scheduler overhead per
        # job, which a big physics workload would only bury.
        record["queue"] = _time_queue(8, max(200, shots // 50), eps, seed)
    return record


def _rate_regression(new: dict, old: dict, label: str) -> str | None:
    old_rate = old.get("shot_rounds_per_sec")
    new_rate = new.get("shot_rounds_per_sec")
    if not old_rate or not new_rate:
        return None
    if new_rate < (1.0 - REGRESSION_TOLERANCE) * old_rate:
        return (
            f"{label} throughput regressed {100 * (1 - new_rate / old_rate):.1f}% "
            f"({new_rate:.0f} vs baseline {old_rate:.0f} shot-rounds/sec); "
            f"refusing to overwrite {BENCH_PATH.name} (use --force to accept)"
        )
    return None


def _protocol_key(record: dict) -> tuple:
    config = record.get("config", {})
    return (config.get("shots"), config.get("rounds"), config.get("noise"))


def _host_key(record: dict) -> str:
    """Baseline key: one ratchet per (hostname, cpu_count) host.

    Throughput across unlike hardware says nothing about the code, so each
    host carries its own record — the fix for the v4 behavior where a core
    -count mismatch *skipped* the guard entirely, leaving every run on new
    hardware permanently unguarded against the committed record.
    """
    config = record.get("config", {})
    return f"{config.get('hostname', 'unknown')}|{config.get('cpu_count', 0)}cpu"


def load_baselines(path: Path) -> dict[str, dict]:
    """Stored baselines as a ``host key -> record`` map.

    A v<=4 file (one bare record at the top level) is migrated under its
    own host key, so pre-existing baselines keep guarding the host that
    recorded them.
    """
    if not Path(path).exists():
        return {}
    data = json.loads(Path(path).read_text())
    if "host_baselines" in data:
        return dict(data["host_baselines"])
    return {_host_key(data): data}


def check_regression(new: dict, old: dict) -> str | None:
    """Error string when ``new`` regresses >tolerance against ``old``.

    Comparisons are strictly like-for-like: records measured under a
    different protocol (shots/rounds/noise — e.g. a --quick run against the
    full-size baseline) compare nothing, the single-process ``compiled``
    entries are always compared for same-protocol records, and ``sharded``
    entries only when both records carry one with the same ``workers`` — a
    multi-core datapoint can never mask a single-core regression.  Unlike
    *hardware* never meets here at all: baselines are keyed per
    (hostname, cpu_count) host, so a run on a new host starts a fresh
    ratchet instead of being compared against (or excused by) a record
    from different silicon.
    """
    if _protocol_key(new) != _protocol_key(old):
        return None
    err = _rate_regression(new.get("compiled", {}), old.get("compiled", {}), "compiled")
    if err:
        return err
    new_sh, old_sh = new.get("sharded", {}), old.get("sharded", {})
    if new_sh and old_sh and new_sh.get("workers") == old_sh.get("workers"):
        return _rate_regression(
            new_sh, old_sh, f"sharded (workers={new_sh.get('workers')})"
        )
    return None


def _dump_baselines(baselines: dict[str, dict], path: Path) -> None:
    payload = {
        "bench": "p01_frame_engine",
        "schema_version": SCHEMA_VERSION,
        "comment": (
            "One baseline record per (hostname, cpu_count) host; the "
            "regression guard only ever compares a run against its own "
            "host's record.  See PERF.md."
        ),
        "host_baselines": {key: baselines[key] for key in sorted(baselines)},
    }
    Path(path).write_text(json.dumps(payload, indent=1) + "\n")


def write_guarded(record: dict, path: Path = BENCH_PATH, force: bool = False) -> int:
    """Write the record unless it regresses against this host's baseline.

    Baselines are keyed per (hostname, cpu_count); only the record under
    this host's key is compared or replaced — other hosts' records always
    survive the write untouched.  A host with no stored record writes
    fresh (a new ratchet starts), never skips.  Against the same host's
    record: a different protocol (e.g. --quick vs the full-size baseline)
    is refused rather than silently replacing it, a stored sharded /
    cache_hit / queue datapoint missing from this run is carried forward
    rather than silently dropped, a sharded run at a *different* worker
    count is refused (nothing to compare it against), and a >tolerance
    throughput regression is refused.  --force bypasses the refusals for
    this host's record only.
    """
    baselines = load_baselines(path)
    key = _host_key(record)
    old = baselines.get(key)
    if old is not None and not force:
        if _protocol_key(record) != _protocol_key(old):
            print(
                f"NOT COMPARABLE: stored baseline for host {key} was "
                f"measured at shots/rounds/noise = {_protocol_key(old)}, "
                f"this run at {_protocol_key(record)}; refusing to "
                f"overwrite {path.name} (use --force to replace the "
                f"protocol)",
                file=sys.stderr,
            )
            return 2
        old_sh = old.get("sharded")
        new_sh = record.get("sharded")
        if old_sh and new_sh and new_sh.get("workers") != old_sh.get("workers"):
            print(
                f"NOT COMPARABLE: stored sharded baseline for host {key} "
                f"used workers={old_sh.get('workers')}, this run "
                f"workers={new_sh.get('workers')}; re-run with the stored "
                f"worker count or --force to replace it",
                file=sys.stderr,
            )
            return 2
        if old_sh and not new_sh:
            # Keep the multi-worker baseline alive, flagged as coming from
            # an earlier run: its scaling_vs_compiled refers to *that*
            # run's compiled rate, not the one written alongside it here.
            # Copy rather than mutate — the caller's record must keep
            # matching what was actually measured.
            record = {**record, "sharded": {**old_sh, "carried_forward": True}}
        if old.get("cache_hit") and not record.get("cache_hit"):
            # Same courtesy for the cache-hit datapoint: a run without
            # --cache-bench must not silently drop it.
            record = {
                **record,
                "cache_hit": {**old["cache_hit"], "carried_forward": True},
            }
        if old.get("queue") and not record.get("queue"):
            # ... and for the queue-throughput datapoint.
            record = {
                **record,
                "queue": {**old["queue"], "carried_forward": True},
            }
        err = check_regression(record, old)
        if err:
            print(f"REGRESSION: {err}", file=sys.stderr)
            return 2
    baselines[key] = record
    _dump_baselines(baselines, path)
    print(f"wrote {path} ({key})")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shots", type=int, default=10_000)
    parser.add_argument("--rounds", type=int, default=10)
    parser.add_argument("--eps", type=float, default=1e-3)
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="also time the multiprocess shot-sharded driver with this many "
        "worker processes and record the parallel-scaling datapoint",
    )
    parser.add_argument(
        "--cache-bench", action="store_true",
        help="also time the result cache: a cold journaled run vs a full "
        "cache hit (replayed from sqlite without executing a shard)",
    )
    parser.add_argument(
        "--queue-bench", action="store_true",
        help="also time the durable scan queue: submit+serve small jobs "
        "against direct execution, recording scheduler overhead per job",
    )
    parser.add_argument("--quick", action="store_true", help="CI-sized run (2k shots, 3 rounds)")
    parser.add_argument("--force", action="store_true", help="overwrite even on regression")
    parser.add_argument(
        "--check", action="store_true",
        help="measure and compare against the stored baseline without writing",
    )
    parser.add_argument("--out", type=Path, default=BENCH_PATH)
    args = parser.parse_args(argv)
    if args.quick:
        args.shots, args.rounds = 2_000, 3
    if args.shots < 1 or args.rounds < 1:
        parser.error("--shots and --rounds must be positive")
    if args.workers < 1:
        parser.error("--workers must be positive")

    record = run_benchmark(
        args.shots, args.rounds, args.eps, args.seed, args.workers,
        cache_bench=args.cache_bench, queue_bench=args.queue_bench,
    )
    print(
        f"legacy:   {record['legacy']['seconds']:8.3f}s "
        f"({record['legacy']['shot_rounds_per_sec']:>12,.0f} shot-rounds/sec)"
    )
    print(
        f"compiled: {record['compiled']['seconds']:8.3f}s "
        f"({record['compiled']['shot_rounds_per_sec']:>12,.0f} shot-rounds/sec)"
    )
    print(f"speedup:  {record['speedup']:.1f}x")
    if "sharded" in record:
        sh = record["sharded"]
        print(
            f"sharded:  {sh['seconds']:8.3f}s "
            f"({sh['shot_rounds_per_sec']:>12,.0f} shot-rounds/sec, "
            f"workers={sh['workers']}, {sh['scaling_vs_compiled']:.2f}x vs compiled "
            f"on {record['config']['cpu_count']} cpu(s))"
        )
    if "cache_hit" in record:
        ch = record["cache_hit"]
        print(
            f"cache:    miss {ch['miss_seconds']:.3f}s -> hit "
            f"{ch['hit_seconds']:.3f}s ({ch['hit_speedup']:.0f}x)"
        )
    if "queue" in record:
        q = record["queue"]
        print(
            f"queue:    {q['jobs']} jobs in {q['queued_seconds']:.3f}s "
            f"({q['jobs_per_sec']:.1f} jobs/sec, "
            f"+{q['overhead_ms_per_job']:.1f} ms/job vs direct)"
        )

    if args.check:
        old = load_baselines(args.out).get(_host_key(record))
        if old is None:
            print(
                f"no stored baseline for host {_host_key(record)}; "
                f"nothing to compare (a guarded write would start a "
                f"fresh ratchet for this host)"
            )
        elif _protocol_key(record) != _protocol_key(old):
            print("stored baseline uses a different protocol; nothing to compare")
        else:
            err = check_regression(record, old)
            if err:
                print(f"REGRESSION: {err}", file=sys.stderr)
                return 2
            print("no regression against stored baseline")
        return 0
    return write_guarded(record, args.out, force=args.force)


if __name__ == "__main__":
    raise SystemExit(main())
