"""Tests for the Pauli-frame Monte Carlo engine.

The frame rules are validated in two ways: algebraically (known conjugation
tables) and statistically (injected error rates reappear in measurement
flip rates).
"""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.noise import NoiseModel
from repro.pauliframe import FrameSimulator


def run_with_initial(circuit, fx=None, fz=None, shots=1):
    sim = FrameSimulator(circuit)
    n = circuit.num_qubits
    init_x = np.zeros((shots, n), dtype=np.uint8)
    init_z = np.zeros((shots, n), dtype=np.uint8)
    if fx:
        for q in fx:
            init_x[:, q] = 1
    if fz:
        for q in fz:
            init_z[:, q] = 1
    return sim.run(shots, seed=0, initial_fx=init_x, initial_fz=init_z)


class TestFramePropagation:
    def test_h_swaps_xz(self):
        c = Circuit(1).h(0)
        res = run_with_initial(c, fx=[0])
        assert res.fx[0, 0] == 0 and res.fz[0, 0] == 1

    def test_s_maps_x_to_y(self):
        c = Circuit(1).s(0)
        res = run_with_initial(c, fx=[0])
        assert res.fx[0, 0] == 1 and res.fz[0, 0] == 1

    def test_cnot_forward_bitflip(self):
        # §3.1: "if a bit flip occurs ... source qubit of an XOR ... the bit
        # flip will propagate forward to the target".
        c = Circuit(2).cnot(0, 1)
        res = run_with_initial(c, fx=[0])
        assert res.fx[0, 1] == 1

    def test_cnot_backward_phase(self):
        # §3.1: "if a phase error occurs ... target qubit of an XOR ...
        # the error will propagate backward to the source".
        c = Circuit(2).cnot(0, 1)
        res = run_with_initial(c, fz=[1])
        assert res.fz[0, 0] == 1

    def test_cnot_x_on_target_stays(self):
        c = Circuit(2).cnot(0, 1)
        res = run_with_initial(c, fx=[1])
        assert res.fx[0, 0] == 0 and res.fx[0, 1] == 1

    def test_cz_x_picks_up_z(self):
        c = Circuit(2).cz(0, 1)
        res = run_with_initial(c, fx=[0])
        assert res.fz[0, 1] == 1 and res.fx[0, 0] == 1

    def test_swap_exchanges(self):
        c = Circuit(2).append("SWAP", 0, 1)
        res = run_with_initial(c, fx=[0], fz=[0])
        assert res.fx[0, 1] == 1 and res.fz[0, 1] == 1
        assert res.fx[0, 0] == 0 and res.fz[0, 0] == 0

    def test_cy_conjugation_table(self):
        # X_c -> X_c Y_t.
        c = Circuit(2).append("CY", 0, 1)
        res = run_with_initial(c, fx=[0])
        assert res.fx[0, 1] == 1 and res.fz[0, 1] == 1
        # X_t -> Z_c X_t.
        res = run_with_initial(c, fx=[1])
        assert res.fz[0, 0] == 1 and res.fx[0, 1] == 1
        # Z_t -> Z_c Z_t.
        res = run_with_initial(c, fz=[1])
        assert res.fz[0, 0] == 1 and res.fz[0, 1] == 1

    def test_pauli_gates_transparent(self):
        c = Circuit(1).x(0).z(0).y(0)
        res = run_with_initial(c, fx=[0])
        assert res.fx[0, 0] == 1 and res.fz[0, 0] == 0


class TestMeasurementSemantics:
    def test_x_frame_flips_z_measurement(self):
        c = Circuit(1, 1).measure(0, 0)
        res = run_with_initial(c, fx=[0])
        assert res.meas_flips[0, 0] == 1

    def test_z_frame_invisible_to_z_measurement(self):
        c = Circuit(1, 1).measure(0, 0)
        res = run_with_initial(c, fz=[0])
        assert res.meas_flips[0, 0] == 0
        assert res.fz[0, 0] == 0  # absorbed by the collapse

    def test_z_frame_flips_x_measurement(self):
        c = Circuit(1, 1).measure_x(0, 0)
        res = run_with_initial(c, fz=[0])
        assert res.meas_flips[0, 0] == 1

    def test_reset_clears_frames(self):
        c = Circuit(1).reset(0)
        res = run_with_initial(c, fx=[0], fz=[0])
        assert res.fx[0, 0] == 0 and res.fz[0, 0] == 0

    def test_conditional_correction_closes_loop(self):
        # Measure, then X conditioned on the outcome: an injected X error
        # is detected and cancelled.
        c = Circuit(1, 1).measure(0, 0).x(0, condition=(0,))
        res = run_with_initial(c, fx=[0])
        assert res.fx[0, 0] == 0

    def test_non_pauli_conditional_rejected(self):
        c = Circuit(1, 1).measure(0, 0)
        c.h(0, condition=(0,))
        with pytest.raises(ValueError):
            FrameSimulator(c)

    def test_ccx_rejected(self):
        c = Circuit(3).ccx(0, 1, 2)
        with pytest.raises(ValueError):
            FrameSimulator(c)


class TestNoiseInjection:
    def test_gate_noise_rate(self):
        c = Circuit(1, 1).h(0).measure(0, 0)
        eps = 0.3
        sim = FrameSimulator(c, NoiseModel(eps_gate1=eps))
        res = sim.run(60_000, seed=1)
        # After H, a depolarizing error hits with prob eps; 2/3 of the time
        # it includes an X component that flips the measurement.
        rate = res.meas_flips[:, 0].mean()
        assert rate == pytest.approx(eps * 2 / 3, abs=0.01)

    def test_measurement_noise_rate(self):
        c = Circuit(1, 1).measure(0, 0)
        sim = FrameSimulator(c, NoiseModel(eps_meas=0.2))
        res = sim.run(60_000, seed=2)
        assert res.meas_flips[:, 0].mean() == pytest.approx(0.2, abs=0.01)

    def test_prep_noise_rate(self):
        c = Circuit(1, 1).reset(0).measure(0, 0)
        sim = FrameSimulator(c, NoiseModel(eps_prep=0.15))
        res = sim.run(60_000, seed=3)
        assert res.meas_flips[:, 0].mean() == pytest.approx(0.15, abs=0.01)

    def test_storage_noise_on_tick(self):
        c = Circuit(2, 0)
        c.tick()
        sim = FrameSimulator(c, NoiseModel(eps_store=0.3))
        res = sim.run(40_000, seed=4)
        any_error = (res.fx | res.fz).any(axis=1).mean()
        expected = 1 - (1 - 0.3) ** 2
        assert any_error == pytest.approx(expected, abs=0.01)

    def test_two_qubit_both_damaged(self):
        c = Circuit(2).cnot(0, 1)
        sim = FrameSimulator(c, NoiseModel(eps_gate2=0.5, two_qubit_mode="both_damaged"))
        res = sim.run(40_000, seed=5)
        hit0 = (res.fx[:, 0] | res.fz[:, 0]).astype(bool)
        hit1 = (res.fx[:, 1] | res.fz[:, 1]).astype(bool)
        # Under the pessimistic model, errors arrive on both qubits together.
        assert (hit0 & hit1).mean() == pytest.approx(0.5, abs=0.02)

    def test_two_qubit_depolarizing15(self):
        c = Circuit(2).cnot(0, 1)
        sim = FrameSimulator(c, NoiseModel(eps_gate2=0.5, two_qubit_mode="depolarizing15"))
        res = sim.run(60_000, seed=6)
        hit_any = (res.fx | res.fz).any(axis=1).mean()
        assert hit_any == pytest.approx(0.5, abs=0.02)
        # One-sided errors must occur in this mode (weight-1 of the 15).
        hit0_only = ((res.fx[:, 0] | res.fz[:, 0]) & ~(res.fx[:, 1] | res.fz[:, 1])).mean()
        assert hit0_only > 0.05

    def test_noiseless_is_deterministic(self):
        c = Circuit(3, 3)
        c.h(0).cnot(0, 1).cnot(1, 2)
        for q in range(3):
            c.measure(q, q)
        res = FrameSimulator(c).run(100, seed=7)
        assert not res.meas_flips.any()
        assert not res.fx.any() and not res.fz.any()

    def test_invalid_noise_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(eps_gate1=1.5)
        with pytest.raises(ValueError):
            NoiseModel(two_qubit_mode="nope")
