"""Tests for the symplectic Pauli algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paulis import Pauli, pauli_from_string, symplectic_product

pauli_string = st.text(alphabet="IXYZ", min_size=1, max_size=6)


class TestConstruction:
    def test_from_string_roundtrip(self):
        p = pauli_from_string("XIZZY")
        assert p.letters() == "XIZZY"

    def test_phases_parsed(self):
        assert pauli_from_string("-X").phase == 2
        assert pauli_from_string("+iZ").phase == 1
        assert pauli_from_string("-iY").phase == (3 + 1) % 4  # -i times the Y's own i

    def test_invalid_string(self):
        with pytest.raises(ValueError):
            pauli_from_string("XQ")
        with pytest.raises(ValueError):
            pauli_from_string("")

    def test_single_embeds(self):
        p = Pauli.single(4, 2, "Y")
        assert p.letters() == "IIYI"
        assert p.weight() == 1

    def test_immutable(self):
        p = pauli_from_string("X")
        with pytest.raises(AttributeError):
            p.phase = 3

    def test_mismatched_xz_lengths(self):
        with pytest.raises(ValueError):
            Pauli(np.array([1, 0]), np.array([1]))


class TestAlgebra:
    def test_xz_equals_minus_iy(self):
        x = pauli_from_string("X")
        z = pauli_from_string("Z")
        y = pauli_from_string("Y")
        xz = x * z
        # XZ = -iY: same letters, phase differing by -i.
        assert xz.equal_up_to_phase(y)
        assert (xz.phase - y.phase) % 4 == 3

    def test_squares_to_identity(self):
        for s in ("X", "Y", "Z"):
            p = pauli_from_string(s)
            sq = p * p
            assert sq.is_identity()

    @given(pauli_string)
    @settings(max_examples=50)
    def test_self_product_identity(self, s):
        p = pauli_from_string(s)
        assert (p * p).is_identity()

    @given(pauli_string, st.data())
    @settings(max_examples=50)
    def test_commutation_symmetric(self, s, data):
        t = data.draw(st.text(alphabet="IXYZ", min_size=len(s), max_size=len(s)))
        p, q = pauli_from_string(s), pauli_from_string(t)
        assert p.commutes_with(q) == q.commutes_with(p)

    def test_anticommutation_xz(self):
        assert not pauli_from_string("X").commutes_with(pauli_from_string("Z"))
        assert pauli_from_string("XX").commutes_with(pauli_from_string("ZZ"))

    def test_weight(self):
        assert pauli_from_string("IXIYZ").weight() == 3

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            pauli_from_string("XX").commutes_with(pauli_from_string("X"))

    def test_symplectic_product_matches_commutation(self):
        p, q = pauli_from_string("XYZI"), pauli_from_string("ZZXY")
        sp = symplectic_product(p.x, p.z, q.x, q.z)
        assert (sp == 0) == p.commutes_with(q)


class TestDenseMatrices:
    @pytest.mark.parametrize(
        "s,mat",
        [
            ("X", np.array([[0, 1], [1, 0]])),
            ("Z", np.array([[1, 0], [0, -1]])),
            ("Y", np.array([[0, -1j], [1j, 0]])),
        ],
    )
    def test_single_qubit_matrices(self, s, mat):
        assert np.allclose(pauli_from_string(s).to_matrix(), mat)

    @given(pauli_string, st.data())
    @settings(max_examples=25)
    def test_product_matches_matrix_product(self, s, data):
        t = data.draw(st.text(alphabet="IXYZ", min_size=len(s), max_size=len(s)))
        p, q = pauli_from_string(s), pauli_from_string(t)
        lhs = (p * q).to_matrix()
        rhs = p.to_matrix() @ q.to_matrix()
        assert np.allclose(lhs, rhs)

    @given(pauli_string)
    @settings(max_examples=25)
    def test_matrices_unitary_hermitian(self, s):
        m = pauli_from_string(s).to_matrix()
        eye = np.eye(m.shape[0])
        assert np.allclose(m @ m.conj().T, eye)
        assert np.allclose(m, m.conj().T)  # phase-0 strings are Hermitian

    def test_refuses_large_matrix(self):
        with pytest.raises(ValueError):
            Pauli.identity(13).to_matrix()


class TestHashingEquality:
    def test_equal_and_hash(self):
        a, b = pauli_from_string("XZ"), pauli_from_string("XZ")
        assert a == b
        assert hash(a) == hash(b)

    def test_phase_distinguishes(self):
        assert pauli_from_string("X") != pauli_from_string("-X")
        assert pauli_from_string("X").equal_up_to_phase(pauli_from_string("-X"))
