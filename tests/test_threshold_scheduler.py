"""Durable scan queue: submit/claim/lease/complete life cycle.

Everything here is single-process and deterministic: the lease protocol
methods accept ``now=`` so expiry is driven by argument, not by
sleeping.  Multi-process liveness, chaos faults, and the bit-for-bit
guarantees live in ``test_threshold_chaos_scheduler.py``.
"""

from __future__ import annotations

import pickle
import sqlite3

import numpy as np
import pytest

from repro.codes import SteaneCode
from repro.threshold import (
    JobDegraded,
    JobFailed,
    QueueCorrupt,
    QueueSaturated,
    ScanQueue,
    scan_via_queue,
    serve,
)
from repro.threshold.journal import CheckpointJournal, JournalSchemaError
from repro.threshold.runtime import ResilienceOptions, execute_shards
from repro.threshold.sharded import _build_specs


SHOTS, SHARDS, SEED = 200, 4, 11


@pytest.fixture
def code():
    return SteaneCode()


@pytest.fixture
def queue_path(tmp_path):
    return tmp_path / "queue.sqlite"


@pytest.fixture
def cache_path(tmp_path):
    return tmp_path / "cache.sqlite"


@pytest.fixture
def queue(queue_path, cache_path):
    q = ScanQueue(queue_path, cache_path=cache_path)
    yield q
    q.close()


def capacity_args(code, eps=0.05):
    return (code, eps, 1)


def direct_counts(code, eps=0.05, shots=SHOTS, seed=SEED, shards=SHARDS):
    """Ground truth: the same shard plan executed straight through the
    resilient runtime (shards are pure, so this is THE answer)."""
    specs, _ = _build_specs("capacity", capacity_args(code, eps), shots, seed, shards)
    counts = execute_shards(specs, 1, options=ResilienceOptions())
    return sum(s for s, _ in counts), sum(f for _, f in counts)


class TestSubmit:
    def test_submit_creates_pending_job(self, queue, code):
        handle = queue.submit_scan(
            "capacity", capacity_args(code), SHOTS, SEED, num_shards=SHARDS
        )
        assert not handle.coalesced and handle.source is None
        row = queue.job_row(handle.job_id)
        assert row["state"] == "pending"
        assert row["shots"] == SHOTS and row["num_shards"] == SHARDS
        assert [e[1] for e in queue.events(handle.job_id)] == ["submitted"]

    def test_validation(self, queue, code):
        with pytest.raises(ValueError, match="unknown scan kind"):
            queue.submit_scan("bogus", capacity_args(code), SHOTS)
        with pytest.raises(ValueError, match="shots"):
            queue.submit_scan("capacity", capacity_args(code), 0)
        with pytest.raises(TypeError, match="SeedSequence"):
            queue.submit_scan(
                "capacity", capacity_args(code), SHOTS, np.random.default_rng(1)
            )

    def test_duplicate_submission_dedups_and_absorbs_priority(self, queue, code):
        first = queue.submit_scan(
            "capacity", capacity_args(code), SHOTS, SEED, priority=1,
            num_shards=SHARDS,
        )
        dup = queue.submit_scan(
            "capacity", capacity_args(code), SHOTS, SEED, priority=7,
            num_shards=SHARDS,
        )
        assert dup.coalesced and dup.job_id == first.job_id
        assert queue.job_row(first.job_id)["priority"] == 7
        # A *lower*-priority duplicate must not demote the job.
        queue.submit_scan(
            "capacity", capacity_args(code), SHOTS, SEED, priority=0,
            num_shards=SHARDS,
        )
        assert queue.job_row(first.job_id)["priority"] == 7

    def test_distinct_seeds_are_distinct_jobs(self, queue, code):
        a = queue.submit_scan("capacity", capacity_args(code), SHOTS, 1)
        b = queue.submit_scan("capacity", capacity_args(code), SHOTS, 2)
        assert a.job_id != b.job_id and a.run_key != b.run_key

    def test_admission_control(self, tmp_path, code):
        with ScanQueue(tmp_path / "small.sqlite", max_depth=2) as queue:
            queue.submit_scan("capacity", capacity_args(code), SHOTS, 1)
            queue.submit_scan("capacity", capacity_args(code), SHOTS, 2)
            with pytest.raises(QueueSaturated):
                queue.submit_scan("capacity", capacity_args(code), SHOTS, 3)
            # Deduplication is not admission: resubmitting a queued scan
            # coalesces instead of raising.
            dup = queue.submit_scan("capacity", capacity_args(code), SHOTS, 1)
            assert dup.coalesced

    def test_failed_job_resubmission_resets_it(self, queue, code):
        handle = queue.submit_scan(
            "capacity", capacity_args(code), SHOTS, SEED, max_retries=0
        )
        job = queue.claim("w1", now=1000.0)
        assert queue.release(job.job_id, "w1", error="boom", now=1001.0) == "failed"
        assert handle.status() == "failed"
        again = queue.submit_scan("capacity", capacity_args(code), SHOTS, SEED)
        assert not again.coalesced and again.job_id == handle.job_id
        row = queue.job_row(handle.job_id)
        assert row["state"] == "pending" and row["attempts"] == 0


class TestLeaseProtocol:
    def submit(self, queue, code, **kw):
        return queue.submit_scan(
            "capacity", capacity_args(code), SHOTS, SEED, num_shards=SHARDS, **kw
        )

    def test_claim_leases_the_job(self, queue, code):
        self.submit(queue, code)
        job = queue.claim("w1", now=1000.0)
        assert job is not None and job.owner == "w1" and job.attempt == 1
        row = queue.job_row(job.job_id)
        assert row["state"] == "leased"
        assert row["lease_expires_unix"] == pytest.approx(1000.0 + queue.lease_seconds)
        # Rebuilt payload round-trips: same kind/args identity.
        assert job.kind == "capacity" and job.shots == SHOTS

    def test_live_lease_blocks_second_claimant(self, queue, code):
        self.submit(queue, code)
        assert queue.claim("w1", now=1000.0) is not None
        assert queue.claim("w2", now=1000.0 + queue.lease_seconds / 2) is None

    def test_expired_lease_is_taken_over(self, queue, code):
        self.submit(queue, code)
        job = queue.claim("w1", now=1000.0)
        takeover = queue.claim("w2", now=1000.0 + queue.lease_seconds + 1)
        assert takeover is not None and takeover.owner == "w2"
        assert takeover.job_id == job.job_id and takeover.attempt == 2
        events = [e[1] for e in queue.events(job.job_id)]
        assert "lease_takeover" in events

    def test_heartbeat_extends_only_for_the_owner(self, queue, code):
        self.submit(queue, code)
        job = queue.claim("w1", now=1000.0)
        assert queue.heartbeat(job.job_id, "w1", now=1050.0)
        row = queue.job_row(job.job_id)
        assert row["lease_expires_unix"] == pytest.approx(1050.0 + queue.lease_seconds)
        assert not queue.heartbeat(job.job_id, "intruder", now=1051.0)

    def test_stale_completion_rejected_after_takeover(self, queue, code):
        handle = self.submit(queue, code)
        job = queue.claim("w1", now=1000.0)
        queue.claim("w2", now=1000.0 + queue.lease_seconds + 1)
        # w1 wakes up late and tries to complete: owner guard rejects it.
        assert not queue.complete(job.job_id, "w1", SHOTS, 3, now=2000.0)
        assert handle.status() == "leased"
        # The rightful owner's completion lands.
        assert queue.complete(job.job_id, "w2", SHOTS, 3, now=2001.0)
        events = [e[1] for e in queue.events(job.job_id)]
        assert "stale_complete_rejected" in events and events[-1] == "completed"

    def test_release_requeues_behind_backoff_then_fails(self, queue, code):
        handle = self.submit(queue, code, max_retries=1)
        job = queue.claim("w1", now=1000.0)
        assert queue.release(job.job_id, "w1", error="boom", now=1001.0) == "retry"
        row = queue.job_row(job.job_id)
        assert row["state"] == "pending" and row["not_before_unix"] > 1001.0
        # Backoff gate: not claimable until not_before passes.
        assert queue.claim("w2", now=1001.0) is None
        job2 = queue.claim("w2", now=row["not_before_unix"] + 0.01)
        assert job2 is not None and job2.attempt == 2
        assert queue.release(job2.job_id, "w2", error="boom2", now=1100.0) == "failed"
        with pytest.raises(JobFailed, match="boom2"):
            handle.result(timeout=0.01)

    def test_release_by_stale_owner_is_a_noop(self, queue, code):
        self.submit(queue, code)
        job = queue.claim("w1", now=1000.0)
        queue.claim("w2", now=1000.0 + queue.lease_seconds + 1)
        assert queue.release(job.job_id, "w1", error="late", now=2000.0) == "stale"

    def test_requeue_refunds_the_attempt(self, queue, code):
        self.submit(queue, code)
        job = queue.claim("w1", now=1000.0)
        assert queue.requeue(job.job_id, "w1", now=1001.0)
        row = queue.job_row(job.job_id)
        assert row["state"] == "pending" and row["attempts"] == 0
        # No backoff gate (drain is the host's fault, not the job's):
        # claimable immediately.
        assert queue.claim("w2", now=1001.0) is not None


class TestIntegrity:
    def test_tampered_row_is_quarantined_at_claim(self, queue, code):
        handle = queue.submit_scan("capacity", capacity_args(code), SHOTS, SEED)
        queue._conn.execute(
            "UPDATE jobs SET shots = shots + 1 WHERE job_id = ?", (handle.job_id,)
        )
        with pytest.warns(QueueCorrupt):
            assert queue.claim("w1", now=1000.0) is None
        assert handle.status() == "corrupt"
        with pytest.raises(JobFailed):
            handle.result(timeout=0.01)

    def test_tampered_result_fails_verification(self, queue, code):
        handle = queue.submit_scan("capacity", capacity_args(code), SHOTS, SEED)
        job = queue.claim("w1", now=1000.0)
        queue.complete(job.job_id, "w1", SHOTS, 3, now=1001.0)
        queue._conn.execute(
            "UPDATE jobs SET result_failures = 30 WHERE job_id = ?",
            (handle.job_id,),
        )
        with pytest.warns(QueueCorrupt):
            with pytest.raises(JobFailed, match="checksum"):
                handle.result(timeout=0.01)
        assert handle.status() == "corrupt"

    def test_queue_refuses_journal_files(self, cache_path, queue_path, code):
        with CheckpointJournal(cache_path):
            pass
        with pytest.raises(JournalSchemaError):
            ScanQueue(cache_path)
        # And vice versa: a journal API pointed at a queue file refuses.
        with ScanQueue(queue_path):
            pass
        with pytest.raises(JournalSchemaError):
            CheckpointJournal(queue_path)

    def test_queue_refuses_future_schema(self, tmp_path):
        path = tmp_path / "future.sqlite"
        conn = sqlite3.connect(str(path))
        conn.execute("PRAGMA user_version = 99")
        conn.commit()
        conn.close()
        with pytest.raises(JournalSchemaError, match="version"):
            ScanQueue(path)

    def test_queue_handle_refuses_to_pickle(self, queue):
        with pytest.raises(TypeError, match="cannot be pickled"):
            pickle.dumps(queue)

    def test_stats_counts_states(self, queue, code):
        queue.submit_scan("capacity", capacity_args(code), SHOTS, 1)
        queue.submit_scan("capacity", capacity_args(code), SHOTS, 2)
        queue.claim("w1", now=1000.0)
        stats = queue.stats()
        assert stats["pending"] == 1 and stats["leased"] == 1
        assert stats["depth"] == 2


class TestServeAndCoalescing:
    def test_serve_drains_and_results_match_direct_execution(
        self, queue_path, cache_path, code
    ):
        with ScanQueue(queue_path, cache_path=cache_path) as queue:
            handle = queue.submit_scan(
                "capacity", capacity_args(code), SHOTS, SEED, num_shards=SHARDS
            )
            report = serve(queue_path, cache_path, drain_on_empty=True)
            assert report.claimed == report.completed == 1
            result = handle.result(timeout=5.0)
        assert result.source == "computed"
        assert (result.shots, result.failures) == direct_counts(code)

    def test_cache_answerable_submission_never_builds_a_pool(
        self, queue_path, cache_path, code, monkeypatch
    ):
        """The acceptance criterion's booby trap: prime the cache, then
        make pool construction explode and spy on shard execution — a
        coalesced submission must touch neither."""
        from repro.threshold import runtime, sharded

        with ScanQueue(queue_path, cache_path=cache_path) as queue:
            queue.submit_scan(
                "capacity", capacity_args(code), SHOTS, SEED, num_shards=SHARDS
            )
            serve(queue_path, cache_path, drain_on_empty=True)
        expected = direct_counts(code)  # before the spy: this executes shards

        executed = []
        real_run_shard = sharded._run_shard
        monkeypatch.setattr(
            sharded, "_run_shard",
            lambda spec: executed.append(spec) or real_run_shard(spec),
        )

        def _trapped_pool(*a, **k):  # pragma: no cover - must never run
            raise AssertionError("coalesced submission constructed a pool")

        monkeypatch.setattr(runtime, "_get_pool", _trapped_pool)

        # A *fresh* queue sharing the same result cache: coalescing must
        # come from the cache, not from dedup onto the old done row.
        fresh_queue = queue_path.with_name("fresh.sqlite")
        with ScanQueue(fresh_queue, cache_path=cache_path) as queue:
            # Same run key: full cache hit.
            hit = queue.submit_scan(
                "capacity", capacity_args(code), SHOTS, SEED, num_shards=SHARDS
            )
            assert hit.coalesced and hit.source == "cache"
            result = hit.result(timeout=0.5)
            assert (result.shots, result.failures) == expected
            # Different seed, smaller budget: cross-run pooling answers it.
            pooled = queue.submit_scan(
                "capacity", capacity_args(code), SHOTS // 2, SEED + 1
            )
            assert pooled.coalesced and pooled.source == "pooled"
            assert pooled.result(timeout=0.5).shots >= SHOTS // 2
        assert executed == []

    def test_scan_via_queue_returns_results_in_request_order(
        self, queue_path, cache_path, code
    ):
        requests = [
            ("capacity", capacity_args(code, 0.05), SHOTS, 21),
            ("capacity", capacity_args(code, 0.08), SHOTS, 22),
        ]
        results = scan_via_queue(queue_path, requests, cache_path=cache_path)
        assert [r.source for r in results] == ["computed", "computed"]
        for (kind, args, shots, seed), res in zip(requests, results):
            specs, _ = _build_specs(kind, args, shots, seed, None)
            counts = execute_shards(specs, 1, options=ResilienceOptions())
            assert (res.shots, res.failures) == (
                sum(s for s, _ in counts),
                sum(f for _, f in counts),
            )

    def test_degraded_execution_is_flagged_on_the_job(
        self, queue_path, tmp_path, code
    ):
        """A job whose checkpoint path is unusable still completes (the
        runtime degrades to uncheckpointed execution) but carries the
        degraded flag, and the handle warns JobDegraded."""
        bad_cache = tmp_path / "not-a-dir" / "cache.sqlite"
        with ScanQueue(queue_path) as queue:
            handle = queue.submit_scan(
                "capacity", capacity_args(code), SHOTS, SEED, num_shards=SHARDS
            )
            with pytest.warns(UserWarning):
                report = serve(queue_path, bad_cache, drain_on_empty=True)
            assert report.completed == 1
            with pytest.warns(JobDegraded):
                result = handle.result(timeout=5.0)
        assert result.degraded
        assert (result.shots, result.failures) == direct_counts(code)

    def test_active_run_keys_reflects_live_jobs(self, queue, code):
        handle = queue.submit_scan("capacity", capacity_args(code), SHOTS, SEED)
        assert handle.run_key in queue.active_run_keys()
        job = queue.claim("w1", now=1000.0)
        assert handle.run_key in queue.active_run_keys()
        queue.complete(job.job_id, "w1", SHOTS, 3, now=1001.0)
        assert handle.run_key not in queue.active_run_keys()
