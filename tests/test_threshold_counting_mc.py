"""Tests for fault-path counting and Monte-Carlo threshold machinery."""

import numpy as np
import pytest

from repro.codes import SteaneCode
from repro.ft import SteaneECProtocol
from repro.noise import circuit_level
from repro.threshold import (
    code_capacity_memory,
    count_fault_paths,
    fit_level1_coefficient,
    memory_experiment,
    pseudo_threshold,
    threshold_from_counting,
)
from repro.threshold.counting import FullSteaneRound


@pytest.fixture(scope="module")
def report():
    return count_fault_paths(FullSteaneRound())


class TestFaultPathCounting:
    def test_round_is_fault_tolerant(self, report):
        """THE fault-tolerance certificate: no single fault anywhere in
        the full Fig. 9 round may cause a logical error."""
        assert report.logical_failures == 0

    def test_fault_cases_enumerated(self, report):
        assert report.total_fault_cases > 1500
        assert (
            report.benign + report.residual_one + report.residual_multi
            == report.total_fault_cases
        )

    def test_most_faults_benign(self, report):
        assert report.benign > report.total_fault_cases / 2

    def test_threshold_estimate_in_paper_band(self, report):
        """Our mechanical version of the §5 counting gives ε₀ between
        1e-4 and 3e-3 — bracketing the paper's crude 6e-4."""
        eps0 = threshold_from_counting(report)
        assert 1e-4 < eps0 < 3e-3

    def test_first_policy_is_not_fault_tolerant(self):
        """Acting on a single unrepeated syndrome lets one fault cause a
        miscorrection — §3.4's motivation.  The report shows strictly more
        multi-error residuals than the paper policy."""
        paper = count_fault_paths(FullSteaneRound(), policy="paper")
        first = count_fault_paths(FullSteaneRound(), policy="first")
        assert first.residual_multi >= paper.residual_multi


class TestCodeCapacityMemory:
    def test_quadratic_suppression(self):
        code = SteaneCode()
        r1 = code_capacity_memory(code, 1e-3, rounds=1, shots=200_000, seed=0)
        r2 = code_capacity_memory(code, 4e-3, rounds=1, shots=200_000, seed=1)
        ratio = r2.failure_rate / max(r1.failure_rate, 1e-9)
        assert 8 < ratio < 32  # ~16 expected for a quadratic law

    def test_encoded_beats_bare_below_breakeven(self):
        code = SteaneCode()
        eps = 1e-3
        enc = code_capacity_memory(code, eps, rounds=1, shots=200_000, seed=2)
        assert enc.failure_rate < eps

    def test_multi_round_accumulates(self):
        code = SteaneCode()
        r1 = code_capacity_memory(code, 5e-3, rounds=1, shots=50_000, seed=3)
        r5 = code_capacity_memory(code, 5e-3, rounds=5, shots=50_000, seed=3)
        assert r5.failure_rate > r1.failure_rate
        # Per-round rates should roughly agree.
        assert r5.per_round_rate == pytest.approx(r1.per_round_rate, rel=0.5)


class TestCircuitLevelMC:
    def test_memory_experiment_runs(self):
        proto = SteaneECProtocol(circuit_level(1e-3))
        result = memory_experiment(proto, SteaneCode(), rounds=2, shots=2000, seed=0)
        assert 0 <= result.failure_rate <= 1
        assert result.rounds == 2

    def test_level1_fit_quadratic(self):
        # 120k shots keeps the lowest grid point (expected failures ~100)
        # out of the small-count regime; the packed engine makes it cheap.
        grid = np.array([4e-4, 8e-4, 1.6e-3])
        A, k = fit_level1_coefficient(
            lambda eps: SteaneECProtocol(circuit_level(eps)),
            SteaneCode(),
            grid,
            shots=120_000,
            seed=1,
        )
        assert 1.6 < k < 2.4  # quadratic law
        assert A > 21  # circuit-level coefficient far exceeds the bare 21

    def test_pseudo_threshold_found(self):
        grid = np.array([5e-5, 2e-4, 8e-4, 3e-3])
        crossing, curve = pseudo_threshold(
            lambda eps: SteaneECProtocol(circuit_level(eps)),
            SteaneCode(),
            grid,
            shots=30_000,
            seed=2,
        )
        assert len(curve) == 4
        assert 5e-5 < crossing < 3e-3
