"""Chaos suite for the resilient shard runtime.

The contract under test (see ``repro/threshold/runtime.py``): every shard
is a pure function of its spec, so *no matter what faults the execution
environment throws* — worker crashes, hangs, exceptions, unpicklable
returns, pool breakage — a sharded run must finish with pooled counts
bit-for-bit equal to the fault-free run, warning (never failing) when it
has to degrade, and raising the structured taxonomy (``ShardTimeout``
inside ``ShardRetryExhausted``) only when explicitly told not to degrade.

All fault injection is deterministic (:class:`ChaosPlan` by shard index
and attempt), so every test here is exactly reproducible.
"""

import warnings

import pytest

from repro.codes import SteaneCode
from repro.ft import SteaneECProtocol
from repro.noise import circuit_level
from repro.threshold import (
    ChaosError,
    ChaosPlan,
    ResilienceOptions,
    RunDegraded,
    ShardRetryExhausted,
    ShardTimeout,
    memory_experiment,
    sharded_code_capacity_memory,
    sharded_memory_experiment,
)
from repro.threshold import runtime


@pytest.fixture(scope="module")
def code():
    return SteaneCode()


@pytest.fixture(scope="module")
def protocol():
    return SteaneECProtocol(circuit_level(2e-3))


@pytest.fixture(scope="module")
def baseline(protocol, code):
    """Fault-free workers=1 run of the shard plan every chaos test reuses."""
    return sharded_memory_experiment(
        protocol, code, rounds=1, shots=800, seed=7, workers=1, num_shards=8
    )


def run_with_chaos(protocol, code, chaos, workers=2, **kwargs):
    kwargs.setdefault("backoff", 0.001)
    return sharded_memory_experiment(
        protocol, code, rounds=1, shots=800, seed=7, workers=workers,
        num_shards=8, chaos=chaos, **kwargs,
    )


class TestChaosPlan:
    def test_rejects_unknown_fault(self):
        with pytest.raises(ValueError, match="unknown fault"):
            ChaosPlan({0: "meteor"})

    def test_rejects_zero_times(self):
        with pytest.raises(ValueError, match="times"):
            ChaosPlan({0: "crash"}, times=0)

    def test_every_quarter_density(self):
        plan = ChaosPlan.every(4, "crash", num_shards=16)
        assert sorted(plan.faults) == [0, 4, 8, 12]
        assert all(kind == "crash" for kind in plan.faults.values())

    def test_faults_vanish_after_times(self):
        plan = ChaosPlan({3: "exception"}, times=2)
        assert plan.fault_for(3, 1) == "exception"
        assert plan.fault_for(3, 2) == "exception"
        assert plan.fault_for(3, 3) is None
        assert plan.fault_for(4, 1) is None


class TestResilienceOptions:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceOptions(max_retries=-1)
        with pytest.raises(ValueError):
            ResilienceOptions(shard_timeout=0.0)
        with pytest.raises(ValueError):
            ResilienceOptions(backoff=-0.1)

    def test_taxonomy_carries_structure(self):
        timeout = ShardTimeout(3, 2, 1.5)
        assert (timeout.shard_index, timeout.attempt, timeout.timeout) == (3, 2, 1.5)
        exhausted = ShardRetryExhausted(3, 4, timeout)
        assert exhausted.shard_index == 3
        assert exhausted.attempts == 4
        assert exhausted.last_error is timeout
        assert "shard 3" in str(exhausted)


class TestSerialChaos:
    """workers=1: same retry bookkeeping, faults injected as exceptions."""

    def test_exception_retry_bit_for_bit(self, protocol, code, baseline):
        chaos = ChaosPlan({0: "exception", 3: "exception"}, times=1)
        result = run_with_chaos(protocol, code, chaos, workers=1, backoff=0.0)
        assert result == baseline

    def test_all_fault_kinds_map_to_exceptions(self, protocol, code, baseline):
        chaos = ChaosPlan(
            {0: "crash", 2: "hang", 4: "exception", 6: "unpicklable"}, times=1
        )
        result = run_with_chaos(protocol, code, chaos, workers=1, backoff=0.0)
        assert result == baseline

    def test_exhaustion_degrades_with_warning(self, protocol, code, baseline):
        chaos = ChaosPlan({5: "exception"}, times=10)
        with pytest.warns(RunDegraded, match="shard 5"):
            result = run_with_chaos(
                protocol, code, chaos, workers=1, max_retries=1, backoff=0.0
            )
        assert result == baseline

    def test_exhaustion_raises_when_degradation_disabled(self, protocol, code):
        chaos = ChaosPlan({5: "exception"}, times=10)
        with pytest.raises(ShardRetryExhausted) as excinfo:
            run_with_chaos(
                protocol, code, chaos, workers=1, max_retries=1,
                degrade=False, backoff=0.0,
            )
        assert excinfo.value.shard_index == 5
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.last_error, ChaosError)


@pytest.mark.slow_mp
class TestMultiprocessChaos:
    def test_exception_injection_bit_for_bit(self, protocol, code, baseline):
        chaos = ChaosPlan({0: "exception", 4: "exception"}, times=1)
        assert run_with_chaos(protocol, code, chaos) == baseline

    def test_crash_recovers_and_replaces_pool(self, protocol, code, baseline):
        # Warm the cache so the eviction is observable.
        run_with_chaos(protocol, code, None)
        before = runtime._pool_cache.get(2)
        chaos = ChaosPlan({2: "crash"}, times=1)
        assert run_with_chaos(protocol, code, chaos) == baseline
        after = runtime._pool_cache.get(2)
        # BrokenProcessPool evicted the poisoned executor; the cache now
        # holds a fresh, working one (proven by the completed run).
        assert after is not None and after is not before

    def test_hang_times_out_and_recovers(self, protocol, code, baseline):
        chaos = ChaosPlan({1: "hang"}, times=1, hang_seconds=60)
        result = run_with_chaos(protocol, code, chaos, shard_timeout=1.0)
        assert result == baseline

    def test_unpicklable_return_is_rerun(self, protocol, code, baseline):
        chaos = ChaosPlan({5: "unpicklable"}, times=1)
        assert run_with_chaos(protocol, code, chaos) == baseline

    def test_mixed_faults_on_half_the_shards(self, protocol, code, baseline):
        """The acceptance criterion: crash + hang + exception + unpicklable
        on 4 of 8 shards (50% >= the required 25%), pooled counts
        bit-for-bit equal to the fault-free workers=1 run."""
        chaos = ChaosPlan(
            {0: "crash", 2: "hang", 4: "exception", 6: "unpicklable"},
            times=1, hang_seconds=60,
        )
        result = run_with_chaos(protocol, code, chaos, shard_timeout=1.5)
        assert result == baseline

    def test_capacity_entry_point_under_chaos(self, code):
        base = sharded_code_capacity_memory(
            code, 5e-3, rounds=2, shots=400, seed=9, workers=1, num_shards=4
        )
        chaos = ChaosPlan({1: "exception"}, times=1)
        faulted = sharded_code_capacity_memory(
            code, 5e-3, rounds=2, shots=400, seed=9, workers=2, num_shards=4,
            chaos=chaos, backoff=0.001,
        )
        assert faulted == base

    def test_memory_experiment_forwards_chaos(self, protocol, code, baseline):
        """The montecarlo entry point routes chaos/resilience kwargs through
        the sharded driver."""
        chaos = ChaosPlan({3: "exception"}, times=1)
        result = memory_experiment(
            protocol, code, rounds=1, shots=800, seed=7, workers=2,
            num_shards=8, chaos=chaos, backoff=0.001,
        )
        assert result == baseline

    def test_exhaustion_degrades_in_process(self, protocol, code, baseline):
        chaos = ChaosPlan({6: "exception"}, times=10)
        with pytest.warns(RunDegraded, match="shard 6"):
            result = run_with_chaos(protocol, code, chaos, max_retries=1)
        assert result == baseline

    def test_hang_every_attempt_exhausts_with_timeout_cause(self, protocol, code):
        chaos = ChaosPlan({1: "hang"}, times=10, hang_seconds=60)
        with pytest.raises(ShardRetryExhausted) as excinfo:
            run_with_chaos(
                protocol, code, chaos, shard_timeout=0.75, max_retries=0,
                degrade=False,
            )
        assert isinstance(excinfo.value.last_error, ShardTimeout)
        assert excinfo.value.last_error.shard_index == excinfo.value.shard_index == 1

    def test_keyboard_interrupt_evicts_cached_pool(
        self, protocol, code, monkeypatch
    ):
        """Satellite regression: a Ctrl-C mid-run must not leave a cached
        executor holding orphaned in-flight futures for the next call."""
        run_with_chaos(protocol, code, None)  # warm the workers=2 pool
        assert 2 in runtime._pool_cache

        def interrupted_wait(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(runtime, "_fut_wait", interrupted_wait)
        with pytest.raises(KeyboardInterrupt):
            run_with_chaos(protocol, code, None)
        assert 2 not in runtime._pool_cache
        monkeypatch.undo()
        # And the next call simply builds a fresh pool and works.
        result = run_with_chaos(protocol, code, None)
        assert result.shots == 800
