"""Tests for the circuit IR and resource analysis."""

import pytest

from repro.circuits import Circuit, Operation, circuit_depth, gate_counts, resource_summary
from repro.circuits.analysis import count_error_locations
from repro.circuits.gates import GATES, gate_matrix, is_clifford


class TestGateRegistry:
    def test_expected_gates_present(self):
        for name in ("X", "Z", "H", "S", "CNOT", "CCX", "M", "R", "TICK"):
            assert name in GATES

    def test_clifford_flags(self):
        assert is_clifford("CNOT")
        assert is_clifford("H")
        assert not is_clifford("CCX")
        assert not is_clifford("T")

    def test_unknown_gate(self):
        with pytest.raises(KeyError):
            is_clifford("FOO")
        with pytest.raises(KeyError):
            gate_matrix("FOO")

    def test_measure_has_no_matrix(self):
        with pytest.raises(ValueError):
            gate_matrix("M")

    def test_unitaries_are_unitary(self):
        import numpy as np

        for spec in GATES.values():
            if spec.unitary is not None:
                u = spec.unitary
                assert np.allclose(u @ u.conj().T, np.eye(u.shape[0])), spec.name


class TestOperationValidation:
    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            Operation("CNOT", (0,))

    def test_duplicate_qubits(self):
        with pytest.raises(ValueError):
            Operation("CNOT", (1, 1))

    def test_measure_needs_cbit(self):
        with pytest.raises(ValueError):
            Operation("M", (0,))

    def test_unknown_gate(self):
        with pytest.raises(ValueError):
            Operation("NOPE", (0,))


class TestCircuitBuilder:
    def test_chaining(self):
        c = Circuit(3, 1).h(0).cnot(0, 1).measure(1, 0)
        assert len(c) == 3

    def test_out_of_range_qubit(self):
        with pytest.raises(IndexError):
            Circuit(2).h(5)

    def test_out_of_range_cbit(self):
        with pytest.raises(IndexError):
            Circuit(2, 1).measure(0, 3)

    def test_condition_validated(self):
        c = Circuit(2, 2)
        with pytest.raises(IndexError):
            c.x(0, condition=(5,))

    def test_remapped(self):
        c = Circuit(2, 1).cnot(0, 1).measure(1, 0)
        big = c.remapped({0: 4, 1: 6}, num_qubits=8)
        assert big.operations[0].qubits == (4, 6)
        assert big.num_qubits == 8

    def test_compose_register_check(self):
        big = Circuit(3)
        small = Circuit(5)
        with pytest.raises(ValueError):
            big.compose(small)

    def test_copy_is_shallow_independent(self):
        c = Circuit(1).x(0)
        c2 = c.copy()
        c2.x(0)
        assert len(c) == 1 and len(c2) == 2

    def test_measured_cbits(self):
        c = Circuit(2, 2).measure(0, 1).measure_x(1, 0)
        assert c.measured_cbits() == [1, 0]


class TestAnalysis:
    def make_ec_like(self):
        c = Circuit(4, 2)
        c.h(0).cnot(0, 1).cnot(0, 2).tick()
        c.cnot(1, 3).measure(3, 0).reset(3)
        c.cnot(2, 3).measure(3, 1)
        return c

    def test_gate_counts(self):
        counts = gate_counts(self.make_ec_like())
        assert counts["CNOT"] == 4
        assert counts["M"] == 2
        assert "TICK" not in counts

    def test_depth_serial_chain(self):
        c = Circuit(2).h(0).h(0).h(0)
        assert circuit_depth(c) == 3

    def test_depth_parallel(self):
        c = Circuit(4).h(0).h(1).h(2).h(3)
        assert circuit_depth(c) == 1

    def test_tick_forces_layer(self):
        c = Circuit(2).h(0).tick().h(1)
        assert circuit_depth(c) == 2

    def test_error_locations(self):
        locs = count_error_locations(self.make_ec_like())
        assert locs["two_qubit"] == 4
        assert locs["measure"] == 2
        assert locs["prepare"] == 1
        assert locs["storage"] == 4  # one TICK x four qubits

    def test_resource_summary_keys(self):
        summary = resource_summary(self.make_ec_like())
        assert summary["cnot_count"] == 4
        assert summary["qubits_touched"] == 4
        assert summary["measurement_count"] == 2
