"""Tests for cat/Shor-state preparation and verification (Fig. 8)."""

import numpy as np
import pytest

from repro.circuits import gate_counts
from repro.ft.cat import CatStatePrep, shor_state_prep
from repro.noise import NoiseModel
from repro.pauliframe import FrameSimulator
from repro.statevector import run_circuit


class TestCatCircuitStructure:
    def test_chain_structure(self):
        prep = CatStatePrep((0, 1, 2, 3), 4, 0)
        c = prep.circuit(5, 1)
        counts = gate_counts(c)
        assert counts["H"] == 1
        assert counts["CNOT"] == 3 + 2  # chain + two verification XORs
        assert counts["M"] == 1

    def test_no_verification_variant(self):
        prep = CatStatePrep((0, 1, 2))
        c = prep.circuit(3, 0)
        assert gate_counts(c).get("M", 0) == 0

    def test_verification_without_cbit_rejected(self):
        prep = CatStatePrep((0, 1), 3, None)
        with pytest.raises(ValueError):
            prep.circuit(4, 0)

    def test_too_small(self):
        with pytest.raises(ValueError):
            CatStatePrep((0,)).circuit(1, 0)


class TestCatStateVector:
    def test_produces_cat_state(self):
        prep = CatStatePrep((0, 1, 2, 3), 4, 0)
        sv, record = run_circuit(prep.circuit(5, 1), rng=0)
        assert record[0] == 0  # clean run always passes verification
        amps = sv.amplitudes().reshape(2, 2, 2, 2, 2)
        # Verify scratch qubit is |0>; cat amplitudes on 0000 and 1111.
        assert abs(amps[0, 0, 0, 0, 0]) == pytest.approx(1 / np.sqrt(2))
        assert abs(amps[1, 1, 1, 1, 0]) == pytest.approx(1 / np.sqrt(2))

    def test_shor_state_even_weight_support(self):
        # Eq. (16): equal superposition of even-weight strings.
        c = shor_state_prep((0, 1, 2, 3), None, None, 4, 0)
        sv, _ = run_circuit(c, rng=0)
        amps = sv.amplitudes()
        for idx in range(16):
            weight = bin(idx).count("1")
            if weight % 2 == 0:
                assert abs(amps[idx]) == pytest.approx(1 / np.sqrt(8))
            else:
                assert abs(amps[idx]) == pytest.approx(0.0)


class TestVerificationCatchesCorrelatedErrors:
    def test_correlated_pattern_fails_verification(self):
        """An X fault after the middle chain link makes |0011>+|1100>;
        the first/last-bit comparison must flag it."""
        prep = CatStatePrep((0, 1, 2, 3), 4, 0)
        circuit = prep.circuit(5, 1)
        # Locate the second chain CNOT (cat qubits 1 -> 2).
        idx = [
            i
            for i, op in enumerate(circuit)
            if op.gate == "CNOT" and op.qubits == (1, 2)
        ][0]
        sim = FrameSimulator(circuit, NoiseModel())
        res = sim.run(1, seed=0, fault_injections=[(idx, 2, "X")])
        assert res.meas_flips[0, 0] == 1  # verification fires

    def test_single_end_error_passes_but_is_benign(self):
        """An X on the last qubit after the chain leaves one bit-flip —
        verification fires (bits differ), discarding a repairable state:
        conservative but safe."""
        prep = CatStatePrep((0, 1, 2, 3), 4, 0)
        circuit = prep.circuit(5, 1)
        last_chain = [
            i
            for i, op in enumerate(circuit)
            if op.gate == "CNOT" and op.qubits == (2, 3)
        ][0]
        sim = FrameSimulator(circuit, NoiseModel())
        res = sim.run(1, seed=0, fault_injections=[(last_chain, 3, "X")])
        assert res.meas_flips[0, 0] == 1

    def test_phase_error_invisible_to_verification(self):
        """Z errors on the cat do not trip the (bit-comparison) check —
        they become benign Shor-state bit errors handled by syndrome
        repetition (§3.3's closing remark)."""
        prep = CatStatePrep((0, 1, 2, 3), 4, 0)
        circuit = prep.circuit(5, 1)
        idx = [
            i
            for i, op in enumerate(circuit)
            if op.gate == "CNOT" and op.qubits == (1, 2)
        ][0]
        sim = FrameSimulator(circuit, NoiseModel())
        res = sim.run(1, seed=0, fault_injections=[(idx, 2, "Z")])
        assert res.meas_flips[0, 0] == 0

    def test_acceptance_rate_under_noise(self):
        prep = CatStatePrep((0, 1, 2, 3), 4, 0)
        circuit = prep.circuit(5, 1)
        sim = FrameSimulator(circuit, NoiseModel(eps_gate2=0.01))
        res = sim.run(20_000, seed=1)
        reject = res.meas_flips[:, 0].mean()
        # A few percent of preparations get discarded at 1% gate noise.
        assert 0.005 < reject < 0.06
