"""Tests for the CHP stabilizer tableau, cross-checked against the dense
simulator on random Clifford circuits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit
from repro.paulis import pauli_from_string
from repro.stabilizer import StabilizerSimulator
from repro.statevector import StateVector, run_circuit


def random_clifford_circuit(n: int, depth: int, seed: int, measure: bool = False) -> Circuit:
    rng = np.random.default_rng(seed)
    c = Circuit(n, n if measure else 0)
    one_q = ["H", "S", "X", "Z", "SDG", "Y", "RPRIME"]
    for _ in range(depth):
        if n >= 2 and rng.random() < 0.4:
            a, b = rng.choice(n, size=2, replace=False)
            c.append(rng.choice(["CNOT", "CZ", "SWAP"]), int(a), int(b))
        else:
            c.append(str(rng.choice(one_q)), int(rng.integers(n)))
    return c


class TestSingleQubit:
    def test_plus_state_stabilizer(self):
        sim = StabilizerSimulator(1)
        sim.h(0)
        gens = sim.stabilizer_generators()
        assert gens[0] == pauli_from_string("X")

    def test_x_flips_sign(self):
        sim = StabilizerSimulator(1)
        sim.x_gate(0)
        assert sim.pauli_expectation(pauli_from_string("Z")) == -1

    def test_s_gate_maps_x_to_y(self):
        sim = StabilizerSimulator(1)
        sim.h(0)  # stabilizer X
        sim.s(0)  # stabilizer Y
        assert sim.pauli_expectation(pauli_from_string("Y")) == 1

    def test_sdg_inverse_of_s(self):
        sim = StabilizerSimulator(1)
        sim.h(0)
        sim.s(0)
        sim.sdg(0)
        assert sim.pauli_expectation(pauli_from_string("X")) == 1

    def test_expectation_indeterminate(self):
        sim = StabilizerSimulator(1)
        assert sim.pauli_expectation(pauli_from_string("X")) is None


class TestMeasurement:
    def test_deterministic_zero(self):
        sim = StabilizerSimulator(2)
        assert sim.measure(0, np.random.default_rng(0)) == 0

    def test_forced_conflict_raises(self):
        sim = StabilizerSimulator(1)
        with pytest.raises(ValueError):
            sim.measure(0, force=1)

    def test_random_outcome_collapses(self):
        sim = StabilizerSimulator(1)
        sim.h(0)
        out = sim.measure(0, np.random.default_rng(1))
        # Second measurement must repeat the result.
        assert sim.measure(0, np.random.default_rng(2)) == out

    def test_bell_correlation(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            sim = StabilizerSimulator(2)
            sim.h(0)
            sim.cnot(0, 1)
            assert sim.measure(0, rng) == sim.measure(1, rng)

    def test_ghz_parity_in_x_basis(self):
        # X⊗X⊗X stabilizes GHZ: X-basis outcomes have even parity.
        rng = np.random.default_rng(9)
        for _ in range(10):
            sim = StabilizerSimulator(3)
            sim.h(0)
            sim.cnot(0, 1)
            sim.cnot(0, 2)
            outs = []
            for q in range(3):
                sim.h(q)
                outs.append(sim.measure(q, rng))
            assert sum(outs) % 2 == 0

    def test_reset(self):
        sim = StabilizerSimulator(1)
        sim.h(0)
        sim.reset(0, np.random.default_rng(3))
        assert sim.measure(0, np.random.default_rng(4)) == 0


class TestAgainstDense:
    @given(st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_deterministic_measurements_agree(self, seed):
        """Run a random Clifford circuit on both simulators; every Pauli
        expectation that the tableau calls deterministic must match the
        dense expectation value."""
        n = 3
        circuit = random_clifford_circuit(n, 12, seed)
        tab = StabilizerSimulator(n)
        tab.run(circuit)
        sv, _ = run_circuit(circuit)
        for s in ("ZII", "IZI", "IIZ", "XXX", "ZZI", "XIX", "YYI"):
            p = pauli_from_string(s)
            expect = tab.pauli_expectation(p)
            dense = sv.expectation_pauli(p)
            if expect is None:
                assert abs(dense) < 1e-9
            else:
                assert dense == pytest.approx(float(expect), abs=1e-9)

    @given(st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_measurement_distribution_matches(self, seed):
        n = 2
        circuit = random_clifford_circuit(n, 8, seed)
        # Deterministic comparison: measure qubit 0 on the dense simulator
        # and check its probability is 0, 1/2, or 1 consistent with tableau.
        tab = StabilizerSimulator(n)
        tab.run(circuit)
        sv, _ = run_circuit(circuit)
        p0 = sv.probability_of_zero(0)
        z0 = tab.pauli_expectation(pauli_from_string("ZI"))
        if z0 is None:
            assert p0 == pytest.approx(0.5, abs=1e-9)
        else:
            assert p0 == pytest.approx((1 + z0) / 2, abs=1e-9)


class TestCircuitInterface:
    def test_run_records_measurements(self):
        c = Circuit(2, 2).h(0).cnot(0, 1).measure(0, 0).measure(1, 1)
        sim = StabilizerSimulator(2)
        record = sim.run(c, rng=17)
        assert record[0] == record[1]

    def test_conditional_execution(self):
        c = Circuit(2, 1).x(0).measure(0, 0).x(1, condition=(0,))
        sim = StabilizerSimulator(2)
        sim.run(c)
        assert sim.measure(1, np.random.default_rng(0)) == 1

    def test_non_clifford_rejected(self):
        c = Circuit(3).ccx(0, 1, 2)
        sim = StabilizerSimulator(3)
        with pytest.raises(ValueError):
            sim.run(c)

    def test_forced_outcomes(self):
        c = Circuit(1, 1).h(0).measure(0, 0)
        sim = StabilizerSimulator(1)
        record = sim.run(c, forced_outcomes={0: 1})
        assert record[0] == 1
