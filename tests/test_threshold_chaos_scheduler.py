"""Scheduler-level chaos: the ISSUE's fault menagerie, each proven
harmless to the *answer*.

Shards are pure functions of their specs, so whatever the scheduler
survives — a claimant SIGKILLed mid-lease, a stale lease takeover, a
stalled heartbeat, a tampered queue row, lock-contention bursts — the
pooled counts a job finally reports must be bit-for-bit identical to a
direct ``execute_shards`` run of the same plan.  Faults cost time,
never correctness.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

import pytest

from repro.codes import SteaneCode
from repro.threshold import (
    IOChaosPlan,
    QueueCorrupt,
    ScanQueue,
    SchedulerChaosPlan,
    ServeReport,
    scan_via_queue,
    serve,
)
from repro.threshold import sharded
from repro.threshold.cache import ResultCache
from repro.threshold.runtime import ResilienceOptions, execute_shards
from repro.threshold.sharded import _build_specs

SHOTS, SHARDS, SEED = 200, 4, 11


@pytest.fixture
def code():
    return SteaneCode()


@pytest.fixture
def queue_path(tmp_path):
    return tmp_path / "queue.sqlite"


@pytest.fixture
def cache_path(tmp_path):
    return tmp_path / "cache.sqlite"


def capacity_args(code, eps=0.05):
    return (code, eps, 1)


def direct_counts(code, eps=0.05, shots=SHOTS, seed=SEED, shards=SHARDS):
    specs, _ = _build_specs("capacity", capacity_args(code, eps), shots, seed, shards)
    counts = execute_shards(specs, 1, options=ResilienceOptions())
    return sum(s for s, _ in counts), sum(f for _, f in counts)


def submit_standard(queue, code, **kw):
    return queue.submit_scan(
        "capacity", capacity_args(code), SHOTS, SEED, num_shards=SHARDS, **kw
    )


# Claims one job then dies without cleanup — the SIGKILLed-claimant
# half of the reclaim test.  The chaos plan makes serve() os._exit(13)
# at its first successful claim, leaving the lease held and unheartbeaten.
_KILLED_CLAIMANT_SCRIPT = """\
import sys
from repro.threshold import SchedulerChaosPlan, serve

queue_path, cache_path, lease = sys.argv[1], sys.argv[2], float(sys.argv[3])
serve(
    queue_path, cache_path, drain_on_empty=True, lease_seconds=lease,
    owner="doomed", chaos=SchedulerChaosPlan({1: "kill_claimant"}),
)
print("unreachable")
"""

# One claimant among several draining a shared queue; prints its
# completion count so the parent can account for every job exactly once.
_CLAIMANT_SCRIPT = """\
import sys
from repro.threshold import serve

queue_path, cache_path, owner = sys.argv[1], sys.argv[2], sys.argv[3]
report = serve(queue_path, cache_path, drain_on_empty=True, owner=owner)
print(report.claimed, report.completed)
"""


def _spawn(script: str, *argv: str) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(sharded.__file__).rsplit("/repro/", 1)[0]
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-c", script, *argv],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )


class TestKilledClaimant:
    @pytest.mark.slow_mp
    def test_killed_mid_lease_job_is_reclaimed_bit_for_bit(
        self, queue_path, cache_path, code
    ):
        """The acceptance criterion: SIGKILL-equivalent claimant death →
        lease expiry → takeover by a healthy claimant → pooled counts
        bit-for-bit equal to a direct execute_shards run."""
        lease = 0.5
        with ScanQueue(queue_path, cache_path=cache_path) as queue:
            handle = submit_standard(queue, code)

            proc = _spawn(
                _KILLED_CLAIMANT_SCRIPT, str(queue_path), str(cache_path), str(lease)
            )
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 13, f"claimant survived:\n{out}\n{err}"
            assert "unreachable" not in out

            # The dead claimant's lease is still on the books.
            row = queue.job_row(handle.job_id)
            assert row["state"] == "leased" and row["lease_owner"] == "doomed"

            # After expiry a healthy claimant takes over and completes.
            deadline = float(row["lease_expires_unix"])
            time.sleep(max(0.0, deadline - time.time()) + 0.1)
            report = serve(
                queue_path, cache_path, drain_on_empty=True,
                lease_seconds=lease, owner="healthy",
            )
            assert report.claimed == report.completed == 1
            result = handle.result(timeout=5.0)
            events = [e[1] for e in queue.events(handle.job_id)]

        assert (result.shots, result.failures) == direct_counts(code)
        assert "lease_takeover" in events
        assert events.count("completed") == 1


class TestStaleLeaseTakeover:
    def test_ancient_lease_is_taken_over_and_stale_complete_rejected(
        self, queue_path, cache_path, code
    ):
        """A claimant that stopped heartbeating (here: a lease stamped in
        1970-adjacent test time, i.e. long expired in wall-clock terms)
        loses the job; its eventual completion attempt is rejected by the
        owner guard and the successor's result stands."""
        with ScanQueue(queue_path, cache_path=cache_path) as queue:
            handle = submit_standard(queue, code)
            stalled = queue.claim("stalled", now=1000.0)
            assert stalled is not None

            report = serve(queue_path, cache_path, drain_on_empty=True)
            assert report.claimed == report.completed == 1
            result = handle.result(timeout=5.0)

            # The stalled claimant finally "finishes": rejected, and the
            # recorded result is untouched.
            assert not queue.complete(stalled.job_id, "stalled", SHOTS, 999)
            events = [e[1] for e in queue.events(handle.job_id)]
            after = handle.result(timeout=5.0)

        assert (result.shots, result.failures) == direct_counts(code)
        assert (after.shots, after.failures) == (result.shots, result.failures)
        assert "lease_takeover" in events
        assert "stale_complete_rejected" in events
        assert events.count("completed") == 1


class TestHeartbeatStall:
    def test_stalled_heartbeats_do_not_corrupt_the_result(
        self, queue_path, cache_path, code
    ):
        """``heartbeat_stall`` suppresses every heartbeat the claimant
        would send; a short job still completes correctly — the fault
        only matters by making the lease contestable (covered above)."""
        with ScanQueue(queue_path, cache_path=cache_path) as queue:
            handle = submit_standard(queue, code)
            report = serve(
                queue_path, cache_path, drain_on_empty=True,
                chaos=SchedulerChaosPlan({1: "heartbeat_stall"}),
            )
            assert report.claimed == report.completed == 1
            result = handle.result(timeout=5.0)
            row = queue.job_row(handle.job_id)
            claimed_at = [e for e in queue.events(handle.job_id) if e[1] == "claimed"]
        assert (result.shots, result.failures) == direct_counts(code)
        # The stall really stalled: the heartbeat stamp never advanced
        # past the one the claim itself wrote.
        assert row["heartbeat_unix"] == pytest.approx(claimed_at[0][-1])


class TestInterruptMidJob:
    def test_interrupt_requeues_and_resume_completes_bit_for_bit(
        self, queue_path, cache_path, code
    ):
        """The KeyboardInterrupt-during-drain path: the operator's
        interrupt lands after the first shard; the job is requeued
        without charging the attempt, the finished shard stays durable,
        and the next claimant resumes the remainder — pooled counts
        bit-for-bit identical to an uninterrupted run."""
        with ScanQueue(queue_path, cache_path=cache_path) as queue:
            handle = submit_standard(queue, code)
            report = serve(
                queue_path, cache_path, drain_on_empty=True,
                chaos=SchedulerChaosPlan({1: "interrupt_mid_job"}),
            )
            assert report.drained and report.requeued == 1
            assert report.completed == 0
            row = queue.job_row(handle.job_id)
            assert row["state"] == "pending" and row["attempts"] == 0

            # The shard that finished before the interrupt is durable.
            with ResultCache(cache_path) as cache:
                look = cache.lookup(
                    handle.run_key, sharded.shard_sizes(SHOTS, SHARDS)
                )
            assert look.status == "partial" and len(look.counts) >= 1

            # Resume executes only the remainder...
            executed = []
            real = sharded._run_shard
            try:
                sharded._run_shard = (
                    lambda spec: executed.append(spec) or real(spec)
                )
                report2 = serve(queue_path, cache_path, drain_on_empty=True)
            finally:
                sharded._run_shard = real
            assert report2.completed == 1
            assert len(executed) == SHARDS - len(look.counts)
            result = handle.result(timeout=5.0)
        assert (result.shots, result.failures) == direct_counts(code)

    def test_scan_via_queue_reraises_keyboard_interrupt_on_drain(
        self, queue_path, cache_path, code, monkeypatch
    ):
        """The experiment runners' queue mode keeps Ctrl-C meaningful:
        a drained serve surfaces as KeyboardInterrupt to the caller."""
        from repro.threshold import scheduler

        monkeypatch.setattr(
            scheduler, "serve",
            lambda *a, **k: ServeReport(owner="x", drained=True),
        )
        with pytest.raises(KeyboardInterrupt, match="requeued"):
            scheduler.scan_via_queue(
                queue_path,
                [("capacity", capacity_args(code), SHOTS, SEED)],
                cache_path=cache_path,
            )
        # The job is still queued for the rerun.
        with ScanQueue(queue_path) as queue:
            assert len(queue.jobs("pending")) == 1


class TestRowTamper:
    def test_tampered_pending_row_is_quarantined_not_executed(
        self, queue_path, cache_path, code
    ):
        with ScanQueue(queue_path, cache_path=cache_path) as queue:
            handle = submit_standard(queue, code)
            queue._conn.execute(
                "UPDATE jobs SET shots = shots * 2 WHERE job_id = ?",
                (handle.job_id,),
            )
            with pytest.warns(QueueCorrupt):
                report = serve(queue_path, cache_path, drain_on_empty=True)
            assert report.claimed == 0 and report.completed == 0
            assert handle.status() == "corrupt"
            # Resubmission recomputes cleanly from scratch.
            again = submit_standard(queue, code)
            assert again.job_id == handle.job_id and not again.coalesced
            report = serve(queue_path, cache_path, drain_on_empty=True)
            assert report.completed == 1
            result = again.result(timeout=5.0)
        assert (result.shots, result.failures) == direct_counts(code)


class TestLockContention:
    def test_lock_burst_is_absorbed_by_the_bounded_retry(
        self, queue_path, cache_path, code
    ):
        """Injected 'database is locked' bursts on the queue connection:
        the bounded in-transaction retry rides them out and the submit/
        claim/complete cycle still lands exactly once."""
        plan = IOChaosPlan({1: "lock_contention", 3: "lock_contention"})
        with ScanQueue(queue_path, cache_path=cache_path, io_chaos=plan) as queue:
            handle = submit_standard(queue, code)
            job = queue.claim("w1", now=1000.0)
            assert job is not None
            assert queue.complete(job.job_id, "w1", *direct_counts(code), now=1001.0)
            result = handle.result(timeout=5.0)
            events = [e[1] for e in queue.events(handle.job_id)]
        assert plan.writes_seen >= 3  # the bursts actually fired
        assert (result.shots, result.failures) == direct_counts(code)
        assert events.count("claimed") == 1 and events.count("completed") == 1


class TestTwoClaimants:
    @pytest.mark.slow_mp
    def test_two_claimants_drain_one_queue_without_double_claims(
        self, queue_path, cache_path, code
    ):
        """Liveness + mutual exclusion with two real claimant processes:
        every job completes exactly once, nothing is lost, and each
        job's counts equal its direct execution."""
        seeds = [21, 22, 23, 24]
        with ScanQueue(queue_path, cache_path=cache_path) as queue:
            handles = [
                queue.submit_scan(
                    "capacity", capacity_args(code), SHOTS, s, num_shards=SHARDS
                )
                for s in seeds
            ]

            procs = [
                _spawn(_CLAIMANT_SCRIPT, str(queue_path), str(cache_path), owner)
                for owner in ("claimant-a", "claimant-b")
            ]
            outs = [p.communicate(timeout=150) for p in procs]
            for proc, (out, err) in zip(procs, outs):
                assert proc.returncode == 0, f"claimant failed:\n{err}"

            # Both claimants are live and their completions cover the
            # queue exactly (no lost job, no double completion).
            completed = [int(out.split()[1]) for out, _ in outs]
            assert sum(completed) == len(seeds)

            for seed, handle in zip(seeds, handles):
                events = [e[1] for e in queue.events(handle.job_id)]
                assert events.count("claimed") == 1, f"double claim on seed {seed}"
                assert events.count("completed") == 1
                result = handle.result(timeout=5.0)
                assert (result.shots, result.failures) == direct_counts(
                    code, seed=seed
                )


class TestQueueModeEquivalence:
    @pytest.mark.slow_mp
    def test_e01_queue_mode_matches_sharded_direct_run(self, tmp_path):
        """The experiment runners' queue mode returns the same physics:
        E01's encoded grid via the queue == the checkpointed direct
        path, point for point."""
        from repro.experiments.e01_encoded_memory import run as e01

        direct = e01(quick=True, checkpoint=str(tmp_path / "direct.sqlite"))
        viaq = e01(
            quick=True,
            checkpoint=str(tmp_path / "qcache.sqlite"),
            queue=str(tmp_path / "queue.sqlite"),
        )
        assert [r["encoded_failure"] for r in viaq["rows"]] == [
            r["encoded_failure"] for r in direct["rows"]
        ]
