"""Tests for the generic symplectic logical construction (§4.2) and
preparation-by-measurement (§3.5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import (
    FiveQubitCode,
    ShorNineCode,
    StabilizerCode,
    SteaneCode,
    find_logical_pairs,
    prepare_logical_state,
)
from repro.codes.preparation import fixup_pauli
from repro.paulis import Pauli, pauli_from_string
from repro.stabilizer import StabilizerSimulator


class TestFindLogicalPairs:
    @pytest.mark.parametrize("code_cls", [SteaneCode, FiveQubitCode, ShorNineCode])
    def test_reconstructed_code_validates(self, code_cls):
        """from_generators must produce a valid code for every library
        code — the §4.2 claim that logicals always exist."""
        original = code_cls()
        rebuilt = StabilizerCode.from_generators(original.generators)
        assert rebuilt.k == original.k
        for lx in rebuilt.logical_x:
            assert original.is_logical_operator(lx)
        for lz in rebuilt.logical_z:
            assert original.is_logical_operator(lz)

    def test_eq29_relations(self):
        gens = FiveQubitCode().generators
        lx, lz = find_logical_pairs(gens)
        assert len(lx) == len(lz) == 1
        assert not lx[0].commutes_with(lz[0])
        for g in gens:
            assert lx[0].commutes_with(g)
            assert lz[0].commutes_with(g)

    def test_multi_qubit_code(self):
        from repro.codes import QuantumHammingCode

        code = QuantumHammingCode(4)  # k = 7
        lx, lz = find_logical_pairs(code.generators)
        assert len(lx) == 7
        for i, a in enumerate(lx):
            for j, b in enumerate(lz):
                assert a.commutes_with(b) == (i != j)
            for j, b in enumerate(lx):
                if i != j:
                    assert a.commutes_with(b)

    def test_zero_k_code(self):
        # A stabilizer *state* (k = 0) has no logicals.
        gens = [pauli_from_string("ZI"), pauli_from_string("IZ")]
        lx, lz = find_logical_pairs(gens)
        assert lx == [] and lz == []

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            find_logical_pairs([])

    @given(st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_random_css_codes(self, seed):
        """Random dual-containing classical codes -> CSS -> generic
        logicals must satisfy Eq. 29 (property test over code space)."""
        from repro.classical import LinearCode
        from repro.codes.css import CSSCode
        from repro.gf2 import gf2_matmul

        rng = np.random.default_rng(seed)
        n = 6
        # Build a random self-orthogonal H (rows pairwise orthogonal incl.
        # self): start from a random row basis and keep orthogonal rows.
        rows = []
        for _ in range(20):
            v = rng.integers(0, 2, size=n, dtype=np.uint8)
            if not v.any() or int(v.sum()) % 2:
                continue
            if all(int(np.dot(v.astype(int), r.astype(int))) % 2 == 0 for r in rows):
                if rows and not np.any(
                    np.vstack(rows + [v]).sum(axis=0) % 2
                ) and False:
                    continue
                rows.append(v)
            if len(rows) == 2:
                break
        if len(rows) < 1:
            return  # nothing orthogonal found for this seed; vacuous
        h = np.vstack(rows)
        if gf2_matmul(h, h.T).any():
            return
        try:
            code = CSSCode(h, h)
        except ValueError:
            return
        lx, lz = find_logical_pairs(code.generators)
        assert len(lx) == code.k
        for i, a in enumerate(lx):
            for j, b in enumerate(lz):
                assert a.commutes_with(b) == (i != j)


class TestFixupPauli:
    def test_single_target(self):
        z = pauli_from_string("ZII")
        fix = fixup_pauli([z], 0)
        assert not fix.commutes_with(z)

    def test_respects_earlier_targets(self):
        targets = [pauli_from_string("ZII"), pauli_from_string("IZI"), pauli_from_string("IIZ")]
        fix = fixup_pauli(targets, 1)
        assert fix.commutes_with(targets[0])
        assert not fix.commutes_with(targets[1])
        assert fix.commutes_with(targets[2])

    def test_empty_targets(self):
        with pytest.raises(ValueError):
            fixup_pauli([], 0)


class TestPrepareByMeasurement:
    @pytest.mark.parametrize("code_cls", [SteaneCode, FiveQubitCode, ShorNineCode])
    @pytest.mark.parametrize("value", [0, 1])
    def test_prepares_logical_basis_states(self, code_cls, value):
        code = code_cls()
        sim = prepare_logical_state(code, [value], rng=7)
        for g in code.generators:
            assert sim.pauli_expectation(g) == 1
        expected = 1 if value == 0 else -1
        assert sim.pauli_expectation(code.logical_z[0]) == expected

    def test_randomness_independent(self):
        # Different RNG streams must land on the same stabilizer state.
        code = FiveQubitCode()
        for seed in range(5):
            sim = prepare_logical_state(code, [0], rng=seed)
            assert sim.pauli_expectation(code.logical_z[0]) == 1

    def test_matches_circuit_encoder(self):
        """§3.5's equivalence: measurement-prepared |0̄> has the same
        stabilizer description as the Fig. 3 encoder's output."""
        code = SteaneCode()
        by_meas = prepare_logical_state(code, [0], rng=3)
        by_circ = StabilizerSimulator(7)
        by_circ.run(code.encoding_circuit())
        for g in code.generators + [code.logical_z[0]]:
            assert by_meas.pauli_expectation(g) == by_circ.pauli_expectation(g)

    def test_value_count_checked(self):
        with pytest.raises(ValueError):
            prepare_logical_state(SteaneCode(), [0, 1])


class TestMeasurePauli:
    def test_deterministic_on_stabilized(self):
        sim = StabilizerSimulator(2)
        sim.h(0)
        sim.cnot(0, 1)  # Bell: stabilized by XX, ZZ
        assert sim.measure_pauli(pauli_from_string("XX")) == 0
        assert sim.measure_pauli(pauli_from_string("ZZ")) == 0
        assert sim.measure_pauli(pauli_from_string("YY")) == 1  # -YY stabilizer

    def test_random_then_repeatable(self):
        sim = StabilizerSimulator(2)
        out = sim.measure_pauli(pauli_from_string("XX"), np.random.default_rng(0))
        assert sim.measure_pauli(pauli_from_string("XX")) == out

    def test_forced_outcome(self):
        sim = StabilizerSimulator(3)
        assert sim.measure_pauli(pauli_from_string("XXX"), force=1) == 1
        assert sim.measure_pauli(pauli_from_string("XXX")) == 1

    def test_anticommuting_sequence(self):
        # Measuring X then Z then X rerandomizes: physics sanity.
        sim = StabilizerSimulator(1)
        sim.measure_pauli(pauli_from_string("X"), force=0)
        assert sim.pauli_expectation(pauli_from_string("X")) == 1
        sim.measure_pauli(pauli_from_string("Z"), force=1)
        assert sim.pauli_expectation(pauli_from_string("Z")) == -1
        assert sim.pauli_expectation(pauli_from_string("X")) is None

    def test_non_hermitian_rejected(self):
        sim = StabilizerSimulator(1)
        with pytest.raises(ValueError):
            sim.measure_pauli(Pauli(np.array([1]), np.array([1]), 0))  # XZ, anti-Hermitian

    def test_size_mismatch(self):
        sim = StabilizerSimulator(2)
        with pytest.raises(ValueError):
            sim.measure_pauli(pauli_from_string("X"))
