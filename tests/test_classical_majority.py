"""Tests for majority voting and von Neumann multiplexing (paper §1)."""

import numpy as np
import pytest

from repro.classical import (
    NoisyGateModel,
    majority_vote,
    recursive_majority_failure,
    simulate_multiplexed_nand,
)
from repro.classical.majority import majority_failure, simulate_majority
from repro.classical.vonneumann import nand_fixed_points


class TestMajorityVote:
    def test_simple_majorities(self):
        assert majority_vote(np.array([1, 1, 0])) == 1
        assert majority_vote(np.array([0, 0, 1])) == 0

    def test_axis_semantics(self):
        arr = np.array([[1, 1, 0], [0, 0, 1]], dtype=np.uint8)
        out = majority_vote(arr, axis=1)
        assert out.tolist() == [1, 0]

    def test_exact_failure_probability(self):
        # p' = 3p^2 - 2p^3 for n = 3.
        for p in (0.01, 0.1, 0.3):
            expected = 3 * p**2 - 2 * p**3
            assert majority_failure(p, 3) == pytest.approx(expected)

    def test_even_n_rejected(self):
        with pytest.raises(ValueError):
            majority_failure(0.1, 4)


class TestRecursiveMajority:
    def test_below_threshold_improves(self):
        # p < 1/2 is the noiseless-voter threshold.
        assert recursive_majority_failure(0.1, 3) < 0.1

    def test_above_threshold_degrades(self):
        assert recursive_majority_failure(0.6, 3) > 0.6

    def test_fixed_point_half(self):
        assert recursive_majority_failure(0.5, 10) == pytest.approx(0.5)

    def test_noisy_voter_floors_error(self):
        # With a noisy voter the error can never drop below ~voter_error.
        out = recursive_majority_failure(0.05, 8, voter_error=0.001)
        assert out >= 0.001

    def test_monte_carlo_matches_recursion(self):
        p, levels = 0.08, 2
        analytic = recursive_majority_failure(p, levels)
        simulated = simulate_majority(p, levels, trials=40_000, seed=11)
        assert simulated == pytest.approx(analytic, abs=0.01)


class TestVonNeumannMultiplexing:
    def test_low_noise_survives_depth(self):
        model = NoisyGateModel(eps=0.002, bundle_size=200, threshold=0.1)
        out = simulate_multiplexed_nand(model, depth=8, trials=64, seed=5)
        assert out["success_rate"] > 0.9

    def test_high_noise_fails(self):
        model = NoisyGateModel(eps=0.25, bundle_size=200, threshold=0.1)
        out = simulate_multiplexed_nand(model, depth=8, trials=64, seed=5)
        assert out["success_rate"] < 0.5

    def test_expected_output_alternates(self):
        model = NoisyGateModel(eps=0.0, bundle_size=16)
        out1 = simulate_multiplexed_nand(model, depth=1, trials=4, seed=0)
        out2 = simulate_multiplexed_nand(model, depth=2, trials=4, seed=0)
        assert out1["expected_output"] == 0.0
        assert out2["expected_output"] == 1.0

    def test_invalid_model_rejected(self):
        with pytest.raises(ValueError):
            NoisyGateModel(eps=1.5)
        with pytest.raises(ValueError):
            NoisyGateModel(eps=0.1, bundle_size=0)
        with pytest.raises(ValueError):
            NoisyGateModel(eps=0.1, threshold=0.7)

    def test_fixed_points_separate_below_threshold(self):
        lo, hi = nand_fixed_points(0.005)
        assert lo < 0.05
        assert hi > 0.95

    def test_fixed_points_merge_at_high_noise(self):
        lo, hi = nand_fixed_points(0.45)
        assert abs(hi - lo) < 0.2
