"""Tests for the flow equations (Eq. 33/36) and code-family scaling
(Eqs. 30–32, 37)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.threshold import (
    CONCATENATION_COEFFICIENT,
    block_error_probability,
    block_size_required,
    flow_map,
    iterate_flow,
    levels_needed,
    logical_rate_closed_form,
    minimum_block_error,
    optimal_t,
    required_accuracy,
    threshold_from_coefficient,
    toffoli_flow,
)
from repro.threshold.flow import ToffoliFlowParams, tolerated_toffoli_rate


class TestFlowEquation:
    def test_coefficient_is_21(self):
        # Eq. (33): C(7,2) = 21.
        assert CONCATENATION_COEFFICIENT == 21.0

    def test_threshold_is_one_twentyfirst(self):
        assert threshold_from_coefficient() == pytest.approx(1 / 21)

    def test_flow_map(self):
        assert flow_map(0.01) == pytest.approx(21 * 1e-4)

    def test_below_threshold_converges(self):
        seq = iterate_flow(0.04, 8)
        assert seq[-1] < 1e-20

    def test_above_threshold_diverges(self):
        seq = iterate_flow(0.06, 12)
        assert seq[-1] > 0.06

    def test_fixed_point(self):
        p_star = 1 / 21
        seq = iterate_flow(p_star, 5)
        for p in seq:
            assert p == pytest.approx(p_star)

    @given(st.floats(1e-6, 0.04), st.integers(0, 6))
    @settings(max_examples=40)
    def test_closed_form_matches_iteration(self, p0, levels):
        iterated = iterate_flow(p0, levels)[-1]
        closed = logical_rate_closed_form(p0, levels)
        assert math.isclose(iterated, closed, rel_tol=1e-9)

    def test_levels_needed_monotone(self):
        l1 = levels_needed(1e-3, 1e-6)
        l2 = levels_needed(1e-3, 1e-15)
        assert l2 >= l1

    def test_levels_needed_paper_example(self):
        # ε = 1e-6 is far below 1/21: a couple of levels give astronomical
        # suppression (the paper's L = 3 block-343 example is driven by
        # the much larger *effective* level-0 error; see EXPERIMENTS.md).
        assert levels_needed(1e-6, 1e-12) <= 2

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            levels_needed(0.1, 1e-6)  # above threshold
        with pytest.raises(ValueError):
            flow_map(-0.1)
        with pytest.raises(ValueError):
            threshold_from_coefficient(0.0)


class TestToffoliFlow:
    def test_converges_small_rates(self):
        seq = toffoli_flow(1e-4, 1e-3, 8)
        p, t = seq[-1]
        assert p < 1e-20 and t < 1e-20

    def test_diverges_large_toffoli(self):
        seq = toffoli_flow(1e-4, 0.2, 10)
        _, t = seq[-1]
        assert t > 0.1

    def test_footnote_j_band(self):
        # Footnote j: "a Toffoli gate error rate of order 1e-3 is
        # acceptable, if the other error rates are sufficiently small."
        tol = tolerated_toffoli_rate(1e-5)
        assert tol > 1e-3

    def test_toffoli_threshold_shrinks_with_clifford_noise(self):
        assert tolerated_toffoli_rate(3e-3) < tolerated_toffoli_rate(1e-5)

    def test_zero_clifford_never_converging(self):
        # Even with perfect Cliffords, t0 above 1/pair_coeff fails.
        pars = ToffoliFlowParams(pair_coeff=21.0, clifford_ratio=0.0)
        tol = tolerated_toffoli_rate(0.0, pars)
        # Finite iteration depth stops slightly short of the supremum 1/21.
        assert tol == pytest.approx(1 / 21, rel=0.01)
        assert tol < 1 / 21


class TestFamilyScaling:
    def test_eq30_literal(self):
        assert block_error_probability(2, 1e-4, b=4) == pytest.approx((16 * 1e-4) ** 3)

    def test_block_error_nonmonotone_in_t(self):
        # For fixed ε the block error first falls then rises — the §5
        # trade-off that motivates concatenation.
        eps = 1e-5
        errors = [block_error_probability(t, eps) for t in range(1, 30)]
        best = min(range(len(errors)), key=errors.__getitem__)
        assert 0 < best < len(errors) - 1

    def test_optimal_t_tracks_minimum(self):
        eps = 1e-5
        t_star = optimal_t(eps)
        errors = {t: block_error_probability(t, eps) for t in range(1, 40)}
        best = min(errors, key=errors.get)
        assert abs(best - t_star) <= max(2.0, 0.5 * t_star)

    def test_minimum_block_error_improves_with_accuracy(self):
        assert minimum_block_error(1e-6) < minimum_block_error(1e-4)

    def test_required_accuracy_polylog(self):
        # Eq. (32): ε ~ (log T)^-b; doubling log T costs 2^b in accuracy.
        e1 = required_accuracy(1e6)
        e2 = required_accuracy(1e12)
        assert e2 / e1 == pytest.approx(2.0**-4, rel=0.05)

    def test_block_size_eq37_exponent(self):
        # Steane: exponent log2(7) ≈ 2.8.
        size1 = block_size_required(1e-4, 1 / 21, 1e6)
        size2 = block_size_required(1e-4, 1 / 21, 1e12)
        ratio_log = math.log(size2 / size1)
        base_log = math.log(
            math.log(1e12 / 21 * 21) / math.log(1e6)
        )
        assert size2 > size1

    def test_validation(self):
        with pytest.raises(ValueError):
            block_error_probability(0, 1e-4)
        with pytest.raises(ValueError):
            optimal_t(2.0)
        with pytest.raises(ValueError):
            required_accuracy(0.5)
        with pytest.raises(ValueError):
            block_size_required(0.1, 1 / 21, 1e6)
