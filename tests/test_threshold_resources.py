"""Tests for the factoring resource planner (paper §6)."""

import pytest

from repro.core import FaultTolerancePlanner
from repro.threshold import FACTORING_432_BIT, FactoringProblem, plan_factoring
from repro.threshold.resources import block55_alternative, classical_factoring_months


class TestFactoringProblem:
    def test_paper_logical_qubits(self):
        # §6: "about 5·432 = 2160 qubits".
        assert FACTORING_432_BIT.logical_qubits == 2160

    def test_paper_toffoli_count(self):
        # §6: "about 38·(432)³ ≈ 3·10⁹ Toffoli gates".
        assert FACTORING_432_BIT.toffoli_gates == pytest.approx(38 * 432**3)
        assert 2.9e9 < FACTORING_432_BIT.toffoli_gates < 3.2e9

    def test_target_error(self):
        # "probability of error per Toffoli gate ... less than about 1e-9".
        target = FACTORING_432_BIT.target_gate_error()
        assert 1e-10 < target < 1e-9


class TestPlan:
    def test_plan_meets_target(self):
        plan = plan_factoring(physical_error=1e-6)
        assert plan.meets_target()
        assert plan.block_size == 7**plan.levels

    def test_effective_threshold_reproduces_paper_levels(self):
        """The paper's §6 analysis (footnote n: carried out for the *Shor*
        extraction method, with correspondingly tighter effective
        threshold ~3e-5) against its storage budget of 1e-12 per gate
        time gives three levels and block 343 — the §6 table."""
        plan = plan_factoring(
            physical_error=1e-6, threshold=3e-5, target_error=1e-12
        )
        assert plan.levels == 3
        assert plan.block_size == 343

    def test_paper_qubit_scale(self):
        plan = plan_factoring(
            physical_error=1e-6,
            threshold=3e-5,
            target_error=1e-12,
            ancilla_overhead=1.35,
        )
        # "the total number of qubits required ... of order 1e6".
        assert 5e5 < plan.total_qubits < 2e6

    def test_out_of_range_error(self):
        with pytest.raises(ValueError):
            plan_factoring(physical_error=0.5)

    def test_block55_comparison(self):
        alt = block55_alternative()
        assert alt["block_size"] == 55
        assert alt["total_qubits"] == pytest.approx(4e5)
        assert alt["gate_error"] == pytest.approx(1e-5)

    def test_classical_scaling_reference(self):
        # Anchored at "a few months" for 432 bits; grows with size.
        assert classical_factoring_months(432) == pytest.approx(3.0)
        assert classical_factoring_months(512) > 3.0


class TestPlanner:
    def test_summary_consistency(self):
        planner = FaultTolerancePlanner()
        summary = planner.summary(1e-3, 1e-9)
        assert summary["achieved_error"] <= 1e-9
        assert summary["block_size"] == 7 ** summary["levels"]

    def test_block_size_for_computation(self):
        planner = FaultTolerancePlanner()
        small = planner.block_size_for_computation(1e-3, 1e6)
        large = planner.block_size_for_computation(1e-3, 1e12)
        assert large > small

    def test_custom_threshold(self):
        tight = FaultTolerancePlanner(threshold=1e-4)
        loose = FaultTolerancePlanner(threshold=1 / 21)
        assert tight.levels_for(5e-5, 1e-12) >= loose.levels_for(5e-5, 1e-12)
