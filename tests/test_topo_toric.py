"""Tests for the toric code lattice model and MWPM decoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topo import MWPMDecoder, ToricCode, toric_memory_experiment


class TestLatticeModel:
    @pytest.mark.parametrize("d", [2, 3, 4, 5])
    def test_commuting_hamiltonian(self, d):
        assert ToricCode(d).check_commutation()

    @pytest.mark.parametrize("d", [2, 3, 4, 5])
    def test_ground_space_dimension_four(self, d):
        # The torus stores exactly two qubits (Fig. 17 model on T²).
        assert ToricCode(d).ground_space_dimension() == 4

    def test_qubit_count(self):
        assert ToricCode(5).n == 50

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            ToricCode(1)

    def test_logical_operators_commute_with_checks(self):
        code = ToricCode(4)
        from repro.gf2 import gf2_matmul

        # Z-logicals vs X-checks and X-logicals vs Z-checks.
        assert not gf2_matmul(code.logical_z, code.vertex_checks.T).any()
        assert not gf2_matmul(code.logical_x, code.plaquette_checks.T).any()

    def test_logical_pairs_anticommute(self):
        code = ToricCode(4)
        from repro.gf2 import gf2_matmul

        overlap = gf2_matmul(code.logical_x, code.logical_z.T)
        assert np.array_equal(overlap, np.eye(2, dtype=np.uint8))


class TestQuasiparticles:
    def test_z_string_creates_vertex_defect_pair(self):
        code = ToricCode(4)
        defects = code.z_string_endpoints([code.h_edge(1, 1), code.h_edge(1, 2)])
        assert defects.sum() == 2

    def test_x_string_creates_plaquette_defect_pair(self):
        code = ToricCode(4)
        defects = code.x_string_endpoints([code.v_edge(2, 2)])
        assert defects.sum() == 2

    def test_closed_loop_creates_nothing(self):
        code = ToricCode(4)
        loop = [code.h_edge(0, c) for c in range(4)]
        assert code.z_string_endpoints(loop).sum() == 0

    def test_braiding_phase_minus_one(self):
        # Fig. 16: charge around an enclosed fluxon picks up −1.
        code = ToricCode(5)
        z_string = np.zeros(code.n, dtype=np.uint8)
        z_string[code.h_edge(2, 2)] = 1  # fluxon pair at plaquettes (1,2),(2,2)?
        loop = code.charge_loop_operator(2, 2)
        phase_in = code.braiding_phase(loop, z_string)
        loop_out = code.charge_loop_operator(0, 0)
        phase_out = code.braiding_phase(loop_out, z_string)
        assert {phase_in, phase_out} == {-1, 1}

    def test_braiding_topological_invariance(self):
        """Deforming the loop without crossing the fluxon keeps the phase
        (the Fig. 16 caption's statement)."""
        code = ToricCode(5)
        # An X on v(1,2) creates m-fluxons at plaquettes (1,1) and (1,2).
        x_string = np.zeros(code.n, dtype=np.uint8)
        x_string[code.v_edge(1, 2)] = 1
        defects = code.x_string_endpoints([code.v_edge(1, 2)])
        assert defects.sum() == 2
        # A small Z-loop around plaquette (1,1) and a deformed loop
        # covering plaquettes {(1,1),(0,1),(1,0),(0,0)} both enclose the
        # fluxon at (1,1) and neither encloses (1,2).
        small = code.charge_loop_operator(1, 1)
        big = (
            code.charge_loop_operator(1, 1)
            ^ code.charge_loop_operator(0, 1)
            ^ code.charge_loop_operator(1, 0)
            ^ code.charge_loop_operator(0, 0)
        )
        assert code.braiding_phase(small, x_string) == -1
        assert code.braiding_phase(big, x_string) == -1
        # A loop elsewhere encloses no fluxon: trivial phase.
        far = code.charge_loop_operator(3, 3)
        assert code.braiding_phase(far, x_string) == 1


class TestDecoder:
    def test_no_defects_no_correction(self):
        code = ToricCode(3)
        decoder = MWPMDecoder(code)
        assert not decoder.decode(np.zeros(9, dtype=np.uint8)).any()

    def test_single_error_corrected_exactly(self):
        code = ToricCode(5)
        decoder = MWPMDecoder(code)
        for edge in [code.h_edge(2, 3), code.v_edge(1, 4), code.h_edge(0, 0)]:
            err = np.zeros(code.n, dtype=np.uint8)
            err[edge] = 1
            corr = decoder.decode(code.plaquette_syndrome(err)[0])
            residual = err ^ corr
            assert not code.plaquette_syndrome(residual).any()
            assert not code.logical_x_action(residual).any()

    def test_correction_closes_all_syndromes(self):
        code = ToricCode(5)
        decoder = MWPMDecoder(code)
        rng = np.random.default_rng(7)
        for _ in range(25):
            err = (rng.random(code.n) < 0.08).astype(np.uint8)
            corr = decoder.decode(code.plaquette_syndrome(err)[0])
            residual = err ^ corr
            assert not code.plaquette_syndrome(residual).any()

    def test_odd_defects_rejected(self):
        code = ToricCode(3)
        decoder = MWPMDecoder(code)
        bad = np.zeros(9, dtype=np.uint8)
        bad[0] = 1
        with pytest.raises(ValueError):
            decoder.match_defects(bad)

    def test_toric_distance_wraps(self):
        code = ToricCode(5)
        decoder = MWPMDecoder(code)
        # Plaquettes (0,0) and (0,4): distance 1 through the wrap.
        assert decoder._distance(0, 4) == 1
        assert decoder._distance(0, 2) == 2

    def test_vertex_sector_single_errors(self):
        """The dual decoder: single Z errors on any edge are corrected
        without logical damage."""
        code = ToricCode(5)
        decoder = MWPMDecoder(code)
        for edge in [code.h_edge(1, 2), code.v_edge(3, 0), code.h_edge(4, 4)]:
            err = np.zeros(code.n, dtype=np.uint8)
            err[edge] = 1
            corr = decoder.decode_vertex(code.vertex_syndrome(err)[0])
            residual = err ^ corr
            assert not code.vertex_syndrome(residual).any()
            assert not code.logical_z_action(residual).any()

    def test_vertex_sector_random_errors_close_syndrome(self):
        code = ToricCode(5)
        decoder = MWPMDecoder(code)
        rng = np.random.default_rng(11)
        for _ in range(20):
            err = (rng.random(code.n) < 0.08).astype(np.uint8)
            corr = decoder.decode_vertex(code.vertex_syndrome(err)[0])
            residual = err ^ corr
            assert not code.vertex_syndrome(residual).any()

    def test_both_sectors_independent(self):
        """Simultaneous X and Z errors decode independently (the CSS
        property at lattice scale)."""
        code = ToricCode(4)
        decoder = MWPMDecoder(code)
        rng = np.random.default_rng(5)
        x_err = (rng.random(code.n) < 0.06).astype(np.uint8)
        z_err = (rng.random(code.n) < 0.06).astype(np.uint8)
        x_corr = decoder.decode(code.plaquette_syndrome(x_err)[0])
        z_corr = decoder.decode_vertex(code.vertex_syndrome(z_err)[0])
        assert not code.plaquette_syndrome(x_err ^ x_corr).any()
        assert not code.vertex_syndrome(z_err ^ z_corr).any()


class TestMemoryExperiment:
    def test_low_noise_rarely_fails(self):
        res = toric_memory_experiment(5, 0.01, shots=400, seed=0)
        assert res.failure_rate < 0.02

    def test_below_threshold_bigger_is_better(self):
        p = 0.05
        small = toric_memory_experiment(3, p, shots=800, seed=1)
        large = toric_memory_experiment(7, p, shots=800, seed=2)
        assert large.failure_rate < small.failure_rate

    def test_above_threshold_bigger_is_worse(self):
        p = 0.25
        small = toric_memory_experiment(3, p, shots=400, seed=3)
        large = toric_memory_experiment(5, p, shots=400, seed=4)
        assert large.failure_rate >= small.failure_rate * 0.8
