"""Tests for the non-Steane codes: five-qubit, Shor-9, repetition, and the
quantum Hamming family."""

import numpy as np
import pytest

from repro.codes import (
    BitFlipCode,
    FiveQubitCode,
    PhaseFlipCode,
    QuantumHammingCode,
    ShorNineCode,
)
from repro.codes.families import STEANE_BLOCK55, hamming_parity_check, shor_family_parameters
from repro.paulis import Pauli, pauli_from_string
from repro.stabilizer import StabilizerSimulator
from repro.statevector import StateVector, run_circuit


class TestFiveQubit:
    @pytest.fixture(scope="class")
    def code(self):
        return FiveQubitCode()

    def test_parameters(self, code):
        assert (code.n, code.k) == (5, 1)
        assert code.distance() == 3

    def test_all_single_errors_distinct_syndromes(self, code):
        # [[5,1,3]] is perfect: the 15 single-qubit errors plus identity
        # exactly fill the 16 syndromes.
        syndromes = {tuple(np.zeros(4, dtype=np.uint8))}
        for q in range(5):
            for letter in "XYZ":
                syndromes.add(tuple(code.syndrome_of(Pauli.single(5, q, letter))))
        assert len(syndromes) == 16

    def test_not_css(self, code):
        # Generators mix X and Z on the same qubit support.
        gen = code.generators[0]
        assert gen.x.any() and gen.z.any()

    def test_correct_frame_all_singles(self, code):
        fx = np.zeros((15, 5), dtype=np.uint8)
        fz = np.zeros((15, 5), dtype=np.uint8)
        i = 0
        for q in range(5):
            for kind in range(3):
                if kind in (0, 1):
                    fx[i, q] = 1
                if kind in (1, 2):
                    fz[i, q] = 1
                i += 1
        cfx, cfz = code.correct_frame(fx, fz)
        assert not code.logical_action_of_frame(cfx, cfz).any()


class TestShorNine:
    @pytest.fixture(scope="class")
    def code(self):
        return ShorNineCode()

    def test_parameters(self, code):
        assert (code.n, code.k) == (9, 1)

    def test_encoder_stabilizes(self, code):
        sim = StabilizerSimulator(9)
        sim.run(code.encoding_circuit())
        for g in code.generators:
            assert sim.pauli_expectation(g) == 1
        assert sim.pauli_expectation(code.logical_z[0]) == 1

    def test_encoded_one(self, code):
        sim = StabilizerSimulator(9)
        sim.x_gate(0)
        sim.run(code.encoding_circuit())
        assert sim.pauli_expectation(code.logical_z[0]) == -1

    def test_corrects_any_single_error(self, code):
        fx = np.zeros((27, 9), dtype=np.uint8)
        fz = np.zeros((27, 9), dtype=np.uint8)
        i = 0
        for q in range(9):
            for kind in range(3):
                if kind in (0, 1):
                    fx[i, q] = 1
                if kind in (1, 2):
                    fz[i, q] = 1
                i += 1
        cfx, cfz = code.correct_frame(fx, fz)
        assert not code.logical_action_of_frame(cfx, cfz).any()

    def test_degenerate_phase_errors(self, code):
        # Z1 and Z2 share a syndrome (degenerate code) yet both are
        # corrected by the same action — footnote e of §3.6.
        z1 = Pauli.single(9, 0, "Z")
        z2 = Pauli.single(9, 1, "Z")
        assert np.array_equal(code.syndrome_of(z1), code.syndrome_of(z2))
        prod = z1 * z2
        assert code.in_stabilizer_group(prod)


class TestRepetitionCodes:
    def test_bitflip_params(self):
        code = BitFlipCode(3)
        assert (code.n, code.k) == (3, 1)
        assert code.distance() == 1  # single Z is already logical

    def test_bitflip_corrects_x_not_z(self):
        code = BitFlipCode(3)
        x_err = Pauli.single(3, 1, "X")
        assert code.syndrome_of(x_err).any()
        z_err = Pauli.single(3, 1, "Z")
        assert not code.syndrome_of(z_err).any()
        assert code.is_logical_operator(z_err)

    def test_bitflip_majority_decode(self):
        code = BitFlipCode(5)
        fx = np.array([[1, 1, 0, 0, 0], [1, 1, 1, 0, 0]], dtype=np.uint8)
        assert code.majority_decode_frame(fx).tolist() == [0, 1]

    def test_phaseflip_is_hadamard_dual(self):
        code = PhaseFlipCode(3)
        z_err = Pauli.single(3, 1, "Z")
        assert code.syndrome_of(z_err).any()
        x_err = Pauli.single(3, 1, "X")
        assert not code.syndrome_of(x_err).any()

    def test_encoders_stabilize(self):
        for code in (BitFlipCode(3), PhaseFlipCode(3)):
            sim = StabilizerSimulator(3)
            sim.run(code.encoding_circuit())
            for g in code.generators:
                assert sim.pauli_expectation(g) == 1

    def test_even_n_rejected(self):
        with pytest.raises(ValueError):
            BitFlipCode(4)
        with pytest.raises(ValueError):
            PhaseFlipCode(2)


class TestQuantumHammingFamily:
    @pytest.mark.parametrize("r,k", [(3, 1), (4, 7), (5, 21)])
    def test_parameters(self, r, k):
        code = QuantumHammingCode(r)
        assert code.n == 2**r - 1
        assert code.k == k

    def test_r3_matches_steane_group(self):
        from repro.codes import SteaneCode

        q = QuantumHammingCode(3)
        s = SteaneCode()
        for g in q.generators:
            assert s.in_stabilizer_group(g)

    def test_logical_pairs_symplectic(self):
        code = QuantumHammingCode(4)
        for i, lx in enumerate(code.logical_x):
            for j, lz in enumerate(code.logical_z):
                assert lx.commutes_with(lz) == (i != j)

    def test_r2_rejected(self):
        with pytest.raises(ValueError):
            QuantumHammingCode(2)

    def test_parity_check_columns(self):
        h = hamming_parity_check(3)
        # Columns are 1..7 in binary.
        vals = [int("".join(map(str, h[:, j])), 2) for j in range(7)]
        assert vals == list(range(1, 8))


class TestFamilyParameters:
    def test_block_size_scaling(self):
        p = shor_family_parameters(4)
        assert p.block_size == 16
        assert p.syndrome_steps == 256.0

    def test_custom_b(self):
        p = shor_family_parameters(3, b=2.0)
        assert p.syndrome_steps == 9.0

    def test_steane_block55(self):
        assert STEANE_BLOCK55.t == 5
        assert STEANE_BLOCK55.block_size == 55

    def test_invalid_t(self):
        with pytest.raises(ValueError):
            shor_family_parameters(0)
