"""Checkpoint journal: content-addressed run keys, crash-safe shard
recording, and resume-from-kill semantics.

The resume contract: because run keys hash every input that determines
the pooled counts (kind, pickled protocol/code/noise/rounds payload,
shots, seed entropy + spawn key, resolved shard count) and every shard is
a pure function of its spec, replaying journal rows is bit-for-bit
equivalent to re-executing them — and a key mismatch (any input changed)
simply starts a fresh run rather than corrupting one.
"""

import pytest

from repro.codes import SteaneCode
from repro.ft import SteaneECProtocol
from repro.noise import circuit_level
from repro.threshold import (
    CheckpointJournal,
    JournalMismatch,
    compute_run_key,
    fit_level1_coefficient,
    sharded_memory_experiment,
)
from repro.threshold import sharded


@pytest.fixture(scope="module")
def code():
    return SteaneCode()


@pytest.fixture(scope="module")
def protocol():
    return SteaneECProtocol(circuit_level(2e-3))


@pytest.fixture()
def journal_path(tmp_path):
    return tmp_path / "checkpoint.sqlite"


def run_key_for(protocol, code, shots, seed, num_shards):
    specs, fingerprint = sharded._build_specs(
        "memory", (protocol, code, 1), shots, seed, num_shards
    )
    return compute_run_key(
        "memory", (protocol, code, 1), shots, fingerprint, len(specs)
    )


@pytest.fixture()
def spy_run_shard(monkeypatch):
    """Counts real shard executions so replays are observable."""
    calls = []
    original = sharded._run_shard

    def counting(spec):
        calls.append(spec)
        return original(spec)

    monkeypatch.setattr(sharded, "_run_shard", counting)
    return calls


class TestRunKey:
    def test_deterministic(self, protocol, code):
        a = run_key_for(protocol, code, 600, 5, 6)
        b = run_key_for(protocol, code, 600, 5, 6)
        assert a == b

    def test_sensitive_to_every_input(self, protocol, code):
        base = run_key_for(protocol, code, 600, 5, 6)
        assert run_key_for(protocol, code, 601, 5, 6) != base      # shots
        assert run_key_for(protocol, code, 600, 6, 6) != base      # seed
        assert run_key_for(protocol, code, 600, 5, 4) != base      # shard plan
        other = SteaneECProtocol(circuit_level(3e-3))              # physics
        assert run_key_for(other, code, 600, 5, 6) != base

    def test_kind_disambiguates(self, protocol, code):
        specs, fp = sharded._build_specs(
            "memory", (protocol, code, 1), 600, 5, 6
        )
        a = compute_run_key("memory", (protocol, code, 1), 600, fp, 6)
        b = compute_run_key("capacity", (protocol, code, 1), 600, fp, 6)
        assert a != b

    def test_seed_none_is_never_resumable(self, protocol, code):
        """OS-entropy runs are irreproducible, so their keys never match."""
        assert run_key_for(protocol, code, 600, None, 6) != run_key_for(
            protocol, code, 600, None, 6
        )

    def test_int_and_seedsequence_fingerprints_differ(self, protocol, code):
        """spawn_shard_seeds derives different streams for an int seed vs
        the equivalent SeedSequence (reserved-domain branch), so their run
        keys must differ too."""
        import numpy as np

        assert run_key_for(protocol, code, 600, 5, 6) != run_key_for(
            protocol, code, 600, np.random.SeedSequence(5), 6
        )


class TestJournalStore:
    def test_record_and_replay_roundtrip(self, journal_path):
        with CheckpointJournal(journal_path) as journal:
            journal.register_run("k1", kind="memory", shots=100, num_shards=2)
            journal.record_shard("k1", 0, 50, 3)
            journal.record_shard("k1", 1, 50, 1)
            assert journal.completed_shards("k1") == {0: (50, 3), 1: (50, 1)}
            assert journal.merged_counts("k1") == (100, 4)
            assert journal.runs() == [("k1", "memory", 100, 2)]

    def test_rerecord_is_idempotent(self, journal_path):
        with CheckpointJournal(journal_path) as journal:
            journal.record_shard("k1", 0, 50, 3)
            journal.record_shard("k1", 0, 50, 3)
            assert journal.completed_shards("k1") == {0: (50, 3)}

    def test_runs_are_isolated_by_key(self, journal_path):
        with CheckpointJournal(journal_path) as journal:
            journal.record_shard("k1", 0, 50, 3)
            journal.record_shard("k2", 0, 70, 9)
            assert journal.completed_shards("k1") == {0: (50, 3)}
            assert journal.completed_shards("k2") == {0: (70, 9)}
            journal.clear_run("k1")
            assert journal.completed_shards("k1") == {}
            assert journal.completed_shards("k2") == {0: (70, 9)}

    def test_survives_reopen(self, journal_path):
        with CheckpointJournal(journal_path) as journal:
            journal.record_shard("k1", 0, 50, 3)
        with CheckpointJournal(journal_path) as journal:
            assert journal.completed_shards("k1") == {0: (50, 3)}

    def test_wal_mode_active(self, journal_path):
        with CheckpointJournal(journal_path) as journal:
            mode = journal._conn.execute("PRAGMA journal_mode").fetchone()[0]
            assert mode == "wal"


class TestCheckpointedRuns:
    def test_checkpointed_run_matches_plain_run(
        self, protocol, code, journal_path
    ):
        base = sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1, num_shards=6
        )
        checkpointed = sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1,
            num_shards=6, checkpoint=journal_path,
        )
        assert checkpointed == base
        key = run_key_for(protocol, code, 600, 5, 6)
        with CheckpointJournal(journal_path) as journal:
            assert sorted(journal.completed_shards(key)) == [0, 1, 2, 3, 4, 5]
            assert journal.merged_counts(key) == (base.shots, base.failures)

    def test_completed_run_replays_without_executing(
        self, protocol, code, journal_path, spy_run_shard
    ):
        first = sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1,
            num_shards=6, checkpoint=journal_path,
        )
        executed_first = len(spy_run_shard)
        replayed = sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1,
            num_shards=6, checkpoint=journal_path,
        )
        assert executed_first == 6
        assert len(spy_run_shard) == executed_first  # zero new executions
        assert replayed == first

    def test_killed_run_resumes_only_unfinished_shards(
        self, protocol, code, journal_path, spy_run_shard
    ):
        """The acceptance criterion: a run killed mid-scan resumes from the
        journal and re-executes only the shards that never finished."""
        base = sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1, num_shards=6
        )
        sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1,
            num_shards=6, checkpoint=journal_path,
        )
        key = run_key_for(protocol, code, 600, 5, 6)
        # Simulate the kill: shards 3..5 never made it into the journal.
        with CheckpointJournal(journal_path) as journal:
            for idx in (3, 4, 5):
                journal._conn.execute(
                    "DELETE FROM shard_results WHERE run_key=? AND shard_index=?",
                    (key, idx),
                )
            journal._conn.commit()
        spy_run_shard.clear()
        resumed = sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1,
            num_shards=6, checkpoint=journal_path,
        )
        assert len(spy_run_shard) == 3  # only the unfinished shards re-ran
        assert {spec[2] for spec in spy_run_shard} == {100}
        assert resumed == base  # bit-for-bit, not merely statistically equal

    def test_resume_false_reexecutes_everything(
        self, protocol, code, journal_path, spy_run_shard
    ):
        sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1,
            num_shards=6, checkpoint=journal_path,
        )
        spy_run_shard.clear()
        sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1,
            num_shards=6, checkpoint=journal_path, resume=False,
        )
        assert len(spy_run_shard) == 6

    def test_changed_inputs_never_replay_stale_rows(
        self, protocol, code, journal_path, spy_run_shard
    ):
        sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1,
            num_shards=6, checkpoint=journal_path,
        )
        spy_run_shard.clear()
        # Different seed → different run key → full re-execution.
        sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=6, workers=1,
            num_shards=6, checkpoint=journal_path,
        )
        assert len(spy_run_shard) == 6

    def test_corrupt_journal_row_refuses_to_resume(
        self, protocol, code, journal_path
    ):
        sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1,
            num_shards=6, checkpoint=journal_path,
        )
        key = run_key_for(protocol, code, 600, 5, 6)
        with CheckpointJournal(journal_path) as journal:
            journal.record_shard(key, 0, 999, 0)  # wrong shard size
        with pytest.raises(JournalMismatch):
            sharded_memory_experiment(
                protocol, code, rounds=1, shots=600, seed=5, workers=1,
                num_shards=6, checkpoint=journal_path,
            )

    @pytest.mark.slow_mp
    def test_multiprocess_checkpoint_resume(self, protocol, code, journal_path):
        base = sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1, num_shards=6
        )
        mp_run = sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=2,
            num_shards=6, checkpoint=journal_path,
        )
        assert mp_run == base
        key = run_key_for(protocol, code, 600, 5, 6)
        with CheckpointJournal(journal_path) as journal:
            for idx in (1, 4):
                journal._conn.execute(
                    "DELETE FROM shard_results WHERE run_key=? AND shard_index=?",
                    (key, idx),
                )
            journal._conn.commit()
        resumed = sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=2,
            num_shards=6, checkpoint=journal_path,
        )
        assert resumed == base

    def test_grid_scan_checkpoints_per_point(
        self, protocol, code, journal_path, spy_run_shard
    ):
        """fit_level1_coefficient threads checkpoint= through: each grid
        point journals under its own run key, so a killed scan resumes
        mid-grid."""
        import numpy as np

        grid = np.array([1e-3, 2e-3])
        factory = lambda eps: SteaneECProtocol(circuit_level(eps))  # noqa: E731
        fit_a = fit_level1_coefficient(
            factory, code, grid, shots=200, seed=3,
            num_shards=2, checkpoint=journal_path,
        )
        executed = len(spy_run_shard)
        assert executed == 4  # 2 points x 2 shards
        fit_b = fit_level1_coefficient(
            factory, code, grid, shots=200, seed=3,
            num_shards=2, checkpoint=journal_path,
        )
        assert len(spy_run_shard) == executed  # fully replayed from disk
        assert fit_a == fit_b