"""Checkpoint journal: content-addressed run keys, crash-safe shard
recording, and resume-from-kill semantics.

The resume contract: because run keys hash every input that determines
the pooled counts (kind, pickled protocol/code/noise/rounds payload,
shots, seed entropy + spawn key, resolved shard count) and every shard is
a pure function of its spec, replaying journal rows is bit-for-bit
equivalent to re-executing them — and a key mismatch (any input changed)
simply starts a fresh run rather than corrupting one.
"""

import pytest

from repro.codes import SteaneCode
from repro.ft import SteaneECProtocol
from repro.noise import circuit_level
from repro.threshold import (
    CacheCorrupt,
    CheckpointJournal,
    JournalMismatch,
    compute_run_key,
    fit_level1_coefficient,
    sharded_memory_experiment,
)
from repro.threshold import sharded


@pytest.fixture(scope="module")
def code():
    return SteaneCode()


@pytest.fixture(scope="module")
def protocol():
    return SteaneECProtocol(circuit_level(2e-3))


@pytest.fixture()
def journal_path(tmp_path):
    return tmp_path / "checkpoint.sqlite"


def run_key_for(protocol, code, shots, seed, num_shards):
    specs, fingerprint = sharded._build_specs(
        "memory", (protocol, code, 1), shots, seed, num_shards
    )
    return compute_run_key(
        "memory", (protocol, code, 1), shots, fingerprint, len(specs)
    )


@pytest.fixture()
def spy_run_shard(monkeypatch):
    """Counts real shard executions so replays are observable."""
    calls = []
    original = sharded._run_shard

    def counting(spec):
        calls.append(spec)
        return original(spec)

    monkeypatch.setattr(sharded, "_run_shard", counting)
    return calls


class TestRunKey:
    def test_deterministic(self, protocol, code):
        a = run_key_for(protocol, code, 600, 5, 6)
        b = run_key_for(protocol, code, 600, 5, 6)
        assert a == b

    def test_sensitive_to_every_input(self, protocol, code):
        base = run_key_for(protocol, code, 600, 5, 6)
        assert run_key_for(protocol, code, 601, 5, 6) != base      # shots
        assert run_key_for(protocol, code, 600, 6, 6) != base      # seed
        assert run_key_for(protocol, code, 600, 5, 4) != base      # shard plan
        other = SteaneECProtocol(circuit_level(3e-3))              # physics
        assert run_key_for(other, code, 600, 5, 6) != base

    def test_kind_disambiguates(self, protocol, code):
        specs, fp = sharded._build_specs(
            "memory", (protocol, code, 1), 600, 5, 6
        )
        a = compute_run_key("memory", (protocol, code, 1), 600, fp, 6)
        b = compute_run_key("capacity", (protocol, code, 1), 600, fp, 6)
        assert a != b

    def test_seed_none_is_never_resumable(self, protocol, code):
        """OS-entropy runs are irreproducible, so their keys never match."""
        assert run_key_for(protocol, code, 600, None, 6) != run_key_for(
            protocol, code, 600, None, 6
        )

    def test_int_and_seedsequence_fingerprints_differ(self, protocol, code):
        """spawn_shard_seeds derives different streams for an int seed vs
        the equivalent SeedSequence (reserved-domain branch), so their run
        keys must differ too."""
        import numpy as np

        assert run_key_for(protocol, code, 600, 5, 6) != run_key_for(
            protocol, code, 600, np.random.SeedSequence(5), 6
        )


class TestJournalStore:
    def test_record_and_replay_roundtrip(self, journal_path):
        with CheckpointJournal(journal_path) as journal:
            journal.register_run("k1", kind="memory", shots=100, num_shards=2)
            journal.record_shard("k1", 0, 50, 3)
            journal.record_shard("k1", 1, 50, 1)
            assert journal.completed_shards("k1") == {0: (50, 3), 1: (50, 1)}
            assert journal.merged_counts("k1") == (100, 4)
            assert journal.runs() == [("k1", "memory", 100, 2)]

    def test_rerecord_is_idempotent(self, journal_path):
        with CheckpointJournal(journal_path) as journal:
            journal.record_shard("k1", 0, 50, 3)
            journal.record_shard("k1", 0, 50, 3)
            assert journal.completed_shards("k1") == {0: (50, 3)}

    def test_runs_are_isolated_by_key(self, journal_path):
        with CheckpointJournal(journal_path) as journal:
            journal.record_shard("k1", 0, 50, 3)
            journal.record_shard("k2", 0, 70, 9)
            assert journal.completed_shards("k1") == {0: (50, 3)}
            assert journal.completed_shards("k2") == {0: (70, 9)}
            journal.clear_run("k1")
            assert journal.completed_shards("k1") == {}
            assert journal.completed_shards("k2") == {0: (70, 9)}

    def test_survives_reopen(self, journal_path):
        with CheckpointJournal(journal_path) as journal:
            journal.record_shard("k1", 0, 50, 3)
        with CheckpointJournal(journal_path) as journal:
            assert journal.completed_shards("k1") == {0: (50, 3)}

    def test_wal_mode_active(self, journal_path):
        with CheckpointJournal(journal_path) as journal:
            mode = journal._conn.execute("PRAGMA journal_mode").fetchone()[0]
            assert mode == "wal"

    def test_close_leaves_no_wal_litter(self, journal_path):
        """close() must truncate the WAL into the main db file: a scratch
        directory should hold exactly one file afterwards, not a trio of
        .sqlite/-wal/-shm."""
        with CheckpointJournal(journal_path) as journal:
            journal.record_shard("k1", 0, 50, 3)
        assert not journal_path.with_name(journal_path.name + "-wal").exists()
        assert not journal_path.with_name(journal_path.name + "-shm").exists()
        # and the data really was folded into the main file
        with CheckpointJournal(journal_path) as journal:
            assert journal.completed_shards("k1") == {0: (50, 3)}

    def test_close_is_idempotent(self, journal_path):
        journal = CheckpointJournal(journal_path)
        journal.record_shard("k1", 0, 50, 3)
        journal.close()
        journal.close()  # second close is a no-op, not an error
        with journal:  # __exit__ after close is also safe
            pass

    def test_register_run_conflict_raises(self, journal_path):
        """INSERT OR IGNORE used to silently keep stale metadata when a key
        was re-registered with different (kind, shots, num_shards); now the
        mismatch is an error — a run key *is* its metadata, so a conflict
        means corruption or a hash collision, never business as usual."""
        with CheckpointJournal(journal_path) as journal:
            journal.register_run("k1", kind="memory", shots=100, num_shards=2)
            # Re-registering identical metadata is fine (resume path).
            journal.register_run("k1", kind="memory", shots=100, num_shards=2)
            for bad in (
                dict(kind="capacity", shots=100, num_shards=2),
                dict(kind="memory", shots=200, num_shards=2),
                dict(kind="memory", shots=100, num_shards=4),
            ):
                with pytest.raises(JournalMismatch):
                    journal.register_run("k1", **bad)
            # The stored row is untouched by the failed attempts.
            assert journal.runs() == [("k1", "memory", 100, 2)]


class TestCheckpointedRuns:
    def test_checkpointed_run_matches_plain_run(
        self, protocol, code, journal_path
    ):
        base = sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1, num_shards=6
        )
        checkpointed = sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1,
            num_shards=6, checkpoint=journal_path,
        )
        assert checkpointed == base
        key = run_key_for(protocol, code, 600, 5, 6)
        with CheckpointJournal(journal_path) as journal:
            assert sorted(journal.completed_shards(key)) == [0, 1, 2, 3, 4, 5]
            assert journal.merged_counts(key) == (base.shots, base.failures)

    def test_completed_run_replays_without_executing(
        self, protocol, code, journal_path, spy_run_shard
    ):
        first = sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1,
            num_shards=6, checkpoint=journal_path,
        )
        executed_first = len(spy_run_shard)
        replayed = sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1,
            num_shards=6, checkpoint=journal_path,
        )
        assert executed_first == 6
        assert len(spy_run_shard) == executed_first  # zero new executions
        assert replayed == first

    def test_killed_run_resumes_only_unfinished_shards(
        self, protocol, code, journal_path, spy_run_shard
    ):
        """The acceptance criterion: a run killed mid-scan resumes from the
        journal and re-executes only the shards that never finished."""
        base = sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1, num_shards=6
        )
        sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1,
            num_shards=6, checkpoint=journal_path,
        )
        key = run_key_for(protocol, code, 600, 5, 6)
        # Simulate the kill: shards 3..5 never made it into the journal.
        with CheckpointJournal(journal_path) as journal:
            for idx in (3, 4, 5):
                journal._conn.execute(
                    "DELETE FROM shard_results WHERE run_key=? AND shard_index=?",
                    (key, idx),
                )
            journal._conn.commit()
        spy_run_shard.clear()
        resumed = sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1,
            num_shards=6, checkpoint=journal_path,
        )
        assert len(spy_run_shard) == 3  # only the unfinished shards re-ran
        assert {spec[2] for spec in spy_run_shard} == {100}
        assert resumed == base  # bit-for-bit, not merely statistically equal

    def test_resume_false_reexecutes_everything(
        self, protocol, code, journal_path, spy_run_shard
    ):
        sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1,
            num_shards=6, checkpoint=journal_path,
        )
        spy_run_shard.clear()
        sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1,
            num_shards=6, checkpoint=journal_path, resume=False,
        )
        assert len(spy_run_shard) == 6

    def test_changed_inputs_never_replay_stale_rows(
        self, protocol, code, journal_path, spy_run_shard
    ):
        sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1,
            num_shards=6, checkpoint=journal_path,
        )
        spy_run_shard.clear()
        # Different seed → different run key → full re-execution.
        sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=6, workers=1,
            num_shards=6, checkpoint=journal_path,
        )
        assert len(spy_run_shard) == 6

    def test_corrupt_journal_row_quarantined_and_recomputed(
        self, protocol, code, journal_path, spy_run_shard
    ):
        """A bad cached row must never poison a resume OR kill it: the row
        is quarantined (CacheCorrupt warning), only that shard recomputes,
        and the pooled answer is bit-for-bit what a clean run produces."""
        base = sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1, num_shards=6
        )
        sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1,
            num_shards=6, checkpoint=journal_path,
        )
        key = run_key_for(protocol, code, 600, 5, 6)
        with CheckpointJournal(journal_path) as journal:
            journal.record_shard(key, 0, 999, 0)  # wrong shard size
        spy_run_shard.clear()
        with pytest.warns(CacheCorrupt):
            resumed = sharded_memory_experiment(
                protocol, code, rounds=1, shots=600, seed=5, workers=1,
                num_shards=6, checkpoint=journal_path,
            )
        assert len(spy_run_shard) == 1  # only the quarantined shard re-ran
        assert resumed == base
        # The repaired journal is clean: a further resume replays fully.
        spy_run_shard.clear()
        sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1,
            num_shards=6, checkpoint=journal_path,
        )
        assert len(spy_run_shard) == 0

    def test_tampered_checksum_quarantined(
        self, protocol, code, journal_path, spy_run_shard
    ):
        """Bit rot on a stored row (failures flipped, checksum now stale)
        is caught by checksum verification, not just shard-plan checks."""
        base = sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1,
            num_shards=6, checkpoint=journal_path,
        )
        key = run_key_for(protocol, code, 600, 5, 6)
        with CheckpointJournal(journal_path) as journal:
            journal._conn.execute(
                "UPDATE shard_results SET failures = failures + 1 "
                "WHERE run_key=? AND shard_index=2",
                (key,),
            )
            journal._conn.commit()
        spy_run_shard.clear()
        with pytest.warns(CacheCorrupt):
            resumed = sharded_memory_experiment(
                protocol, code, rounds=1, shots=600, seed=5, workers=1,
                num_shards=6, checkpoint=journal_path,
            )
        assert len(spy_run_shard) == 1
        assert resumed == base

    @pytest.mark.slow_mp
    def test_multiprocess_checkpoint_resume(self, protocol, code, journal_path):
        base = sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=1, num_shards=6
        )
        mp_run = sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=2,
            num_shards=6, checkpoint=journal_path,
        )
        assert mp_run == base
        key = run_key_for(protocol, code, 600, 5, 6)
        with CheckpointJournal(journal_path) as journal:
            for idx in (1, 4):
                journal._conn.execute(
                    "DELETE FROM shard_results WHERE run_key=? AND shard_index=?",
                    (key, idx),
                )
            journal._conn.commit()
        resumed = sharded_memory_experiment(
            protocol, code, rounds=1, shots=600, seed=5, workers=2,
            num_shards=6, checkpoint=journal_path,
        )
        assert resumed == base

    def test_grid_scan_checkpoints_per_point(
        self, protocol, code, journal_path, spy_run_shard
    ):
        """fit_level1_coefficient threads checkpoint= through: each grid
        point journals under its own run key, so a killed scan resumes
        mid-grid."""
        import numpy as np

        grid = np.array([1e-3, 2e-3])
        factory = lambda eps: SteaneECProtocol(circuit_level(eps))  # noqa: E731
        fit_a = fit_level1_coefficient(
            factory, code, grid, shots=200, seed=3,
            num_shards=2, checkpoint=journal_path,
        )
        executed = len(spy_run_shard)
        assert executed == 4  # 2 points x 2 shards
        fit_b = fit_level1_coefficient(
            factory, code, grid, shots=200, seed=3,
            num_shards=2, checkpoint=journal_path,
        )
        assert len(spy_run_shard) == executed  # fully replayed from disk
        assert fit_a == fit_b


_CONCURRENT_DRIVER_SCRIPT = """\
import sys, warnings
from repro.codes import SteaneCode
from repro.ft import SteaneECProtocol
from repro.noise import circuit_level
from repro.threshold import JournalDegraded, sharded_memory_experiment

seed, path = int(sys.argv[1]), sys.argv[2]
with warnings.catch_warnings():
    # Degrading under contention would silently skip journaling — the whole
    # point of WAL + busy timeout is that two drivers serialize instead.
    warnings.simplefilter("error", JournalDegraded)
    res = sharded_memory_experiment(
        SteaneECProtocol(circuit_level(2e-3)), SteaneCode(), rounds=1,
        shots=400, seed=seed, workers=1, num_shards=4, checkpoint=path,
    )
print(res.shots, res.failures)
"""


class TestConcurrentDrivers:
    @pytest.mark.slow_mp
    def test_two_drivers_share_one_journal(self, protocol, code, journal_path):
        """The docstring claim 'WAL serializes concurrent driver processes
        safely' — proven with two live processes writing different run keys
        into the same journal file at the same time."""
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        src = str(sharded.__file__).rsplit("/repro/", 1)[0]
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _CONCURRENT_DRIVER_SCRIPT,
                 str(seed), str(journal_path)],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True,
            )
            for seed in (5, 6)
        ]
        outs = [p.communicate(timeout=150) for p in procs]
        for proc, (out, err) in zip(procs, outs):
            assert proc.returncode == 0, f"driver failed:\n{err}"
        # Both runs landed, complete, under their own keys.
        key5 = run_key_for(protocol, code, 400, 5, 4)
        key6 = run_key_for(protocol, code, 400, 6, 4)
        with CheckpointJournal(journal_path) as journal:
            assert sorted(journal.completed_shards(key5)) == [0, 1, 2, 3]
            assert sorted(journal.completed_shards(key6)) == [0, 1, 2, 3]
            merged5 = journal.merged_counts(key5)
            merged6 = journal.merged_counts(key6)
        # And each child's printed counts are bit-for-bit what an
        # in-process run of the same seed produces.
        for seed, merged, (out, _) in zip((5, 6), (merged5, merged6), outs):
            expected = sharded_memory_experiment(
                protocol, code, rounds=1, shots=400, seed=seed,
                workers=1, num_shards=4,
            )
            assert merged == (expected.shots, expected.failures)
            assert out.split() == [str(expected.shots), str(expected.failures)]