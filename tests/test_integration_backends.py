"""Cross-backend integration tests.

The library has three execution backends (dense statevector, CHP tableau,
Pauli-frame engine).  These tests pin them against each other on random
circuits — the strongest correctness evidence for the frame semantics that
every threshold number rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit
from repro.noise import NoiseModel
from repro.pauliframe import FrameSimulator
from repro.stabilizer import StabilizerSimulator


def random_clifford_ops(n: int, depth: int, rng: np.random.Generator) -> list:
    ops = []
    one_q = ["H", "S", "SDG", "X", "Y", "Z", "RPRIME"]
    for _ in range(depth):
        if n >= 2 and rng.random() < 0.5:
            a, b = rng.choice(n, size=2, replace=False)
            ops.append((str(rng.choice(["CNOT", "CZ", "SWAP"])), (int(a), int(b))))
        else:
            ops.append((str(rng.choice(one_q)), (int(rng.integers(n)),)))
    return ops


def conjugation_circuit(n: int, ops: list) -> Circuit:
    """U ... U† ... measure-all: every outcome is deterministically 0 in
    the noiseless reference, so an injected error's flips are directly
    comparable across backends."""
    c = Circuit(n, n)
    for gate, qs in ops:
        c.append(gate, *qs)
    inverse = {"S": "SDG", "SDG": "S"}
    for gate, qs in reversed(ops):
        if gate == "RPRIME":
            # (H S† H)† = H S H.
            c.h(qs[0]).s(qs[0]).h(qs[0])
        else:
            c.append(inverse.get(gate, gate), *qs)
    for q in range(n):
        c.measure(q, q)
    return c


class TestFrameVsTableau:
    @given(st.integers(0, 400))
    @settings(max_examples=40, deadline=None)
    def test_injected_error_flips_agree(self, seed):
        """Inject a random Pauli mid-circuit: the frame engine's predicted
        measurement flips must equal the tableau's actual outcomes."""
        rng = np.random.default_rng(seed)
        n = 3
        ops = random_clifford_ops(n, 8, rng)
        circuit = conjugation_circuit(n, ops)
        # Error after the forward half (operation index len(ops) - 1).
        qubit = int(rng.integers(n))
        kind = str(rng.choice(["X", "Y", "Z"]))
        inject_at = len(ops) - 1

        frame_sim = FrameSimulator(circuit, NoiseModel())
        res = frame_sim.run(1, seed=0, fault_injections=[(inject_at, qubit, kind)])
        frame_flips = [int(res.meas_flips[0, q]) for q in range(n)]

        tableau = StabilizerSimulator(n)
        record: dict[int, int] = {}
        for i, op in enumerate(circuit):
            if op.gate == "M":
                record[op.cbits[0]] = tableau.measure(op.qubits[0], np.random.default_rng(1))
                continue
            getattr_map = {
                "H": tableau.h,
                "S": tableau.s,
                "SDG": tableau.sdg,
                "X": tableau.x_gate,
                "Y": tableau.y_gate,
                "Z": tableau.z_gate,
                "RPRIME": tableau.rprime,
                "CNOT": tableau.cnot,
                "CZ": tableau.cz,
                "SWAP": tableau.swap,
            }
            getattr_map[op.gate](*op.qubits)
            if i == inject_at:
                {"X": tableau.x_gate, "Y": tableau.y_gate, "Z": tableau.z_gate}[kind](qubit)
        tableau_bits = [record[q] for q in range(n)]
        assert frame_flips == tableau_bits

    @given(st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_frame_linearity(self, seed):
        """Frame responses are GF(2)-linear: response(e1 ⊕ e2) =
        response(e1) ⊕ response(e2) — the property the verification
        fix-up splicing in threshold counting relies on."""
        rng = np.random.default_rng(seed)
        n = 4
        ops = random_clifford_ops(n, 10, rng)
        circuit = conjugation_circuit(n, ops)
        sim = FrameSimulator(circuit, NoiseModel())
        i1, i2 = sorted(rng.integers(0, len(ops), size=2))
        q1, q2 = int(rng.integers(n)), int(rng.integers(n))
        k1, k2 = (str(rng.choice(["X", "Y", "Z"])) for _ in range(2))
        r1 = sim.run(1, seed=0, fault_injections=[(int(i1), q1, k1)])
        r2 = sim.run(1, seed=0, fault_injections=[(int(i2), q2, k2)])
        r12 = sim.run(1, seed=0, fault_injections=[[(int(i1), q1, k1), (int(i2), q2, k2)]])
        assert np.array_equal(r12.meas_flips[0], r1.meas_flips[0] ^ r2.meas_flips[0])
        assert np.array_equal(r12.fx[0], r1.fx[0] ^ r2.fx[0])
        assert np.array_equal(r12.fz[0], r1.fz[0] ^ r2.fz[0])

    @given(st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_noiseless_frames_stay_empty(self, seed):
        rng = np.random.default_rng(seed)
        n = 3
        circuit = conjugation_circuit(n, random_clifford_ops(n, 12, rng))
        res = FrameSimulator(circuit, NoiseModel()).run(16, seed=1)
        assert not res.meas_flips.any()
        assert not res.fx.any() and not res.fz.any()


class TestEndToEndLogicalTeleportOfErrors:
    def test_transversal_cnot_copies_frames_blockwise(self):
        """Fig. 11: a logical X̄ error on the source block copies onto the
        target block under transversal XOR — exactly like the physical
        CNOT propagation rule, lifted to the logical level."""
        from repro.codes import SteaneCode
        from repro.ft.transversal import transversal_cnot

        code = SteaneCode()
        circuit = transversal_cnot(code, 0, 7, num_qubits=14)
        sim = FrameSimulator(circuit, NoiseModel())
        init = np.zeros((1, 14), dtype=np.uint8)
        init[0, :7] = 1  # X̄ on the source block
        res = sim.run(1, seed=0, initial_fx=init)
        # Both blocks now carry X̄.
        assert res.fx[0, :7].all() and res.fx[0, 7:].all()
        action_target = code.logical_action_of_frame(res.fx[:, 7:], res.fz[:, 7:])
        assert action_target[0, 0] == 1

    def test_full_ec_protects_through_logical_gate(self):
        """Integration: EC round -> transversal gate -> EC round keeps a
        clean logical qubit clean at moderate noise."""
        from repro.codes import SteaneCode
        from repro.ft import SteaneECProtocol
        from repro.noise import circuit_level

        code = SteaneCode()
        proto = SteaneECProtocol(circuit_level(2e-4))
        fx, fz = proto.run_round(5000, seed=3)
        # Transversal H between rounds swaps the frames blockwise.
        fx, fz = fz.copy(), fx.copy()
        fx, fz = proto.run_round(5000, seed=4, data_fx=fx, data_fz=fz)
        cfx, cfz = code.correct_frame(fx, fz)
        action = code.logical_action_of_frame(cfx, cfz)
        assert action.any(axis=1).mean() < 0.01
