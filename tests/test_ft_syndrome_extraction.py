"""Tests for Shor and Steane syndrome extraction and the bad/good contrast."""

import numpy as np
import pytest

from repro.circuits import gate_counts, resource_summary
from repro.codes import FiveQubitCode, SteaneCode
from repro.ft.nonft_ec import bad_syndrome_circuit, good_syndrome_circuit, parse_good_syndrome
from repro.ft.shor_ec import ShorSyndromeExtraction
from repro.ft.steane_ec import SteaneAncillaPrep, SteaneSyndromeExtraction
from repro.noise import NoiseModel
from repro.pauliframe import FrameSimulator


@pytest.fixture(scope="module")
def steane():
    return SteaneCode()


class TestBadCircuit:
    def test_shared_ancilla_structure(self, steane):
        c = bad_syndrome_circuit(steane)
        counts = gate_counts(c)
        assert counts["CNOT"] == 12  # 3 checks x 4 data qubits
        assert counts["M"] == 3

    def test_detects_single_bitflip(self, steane):
        c = bad_syndrome_circuit(steane)
        sim = FrameSimulator(c, NoiseModel())
        init = np.zeros((1, c.num_qubits), dtype=np.uint8)
        init[0, 4] = 1  # X error on data qubit 4 (position 5)
        res = sim.run(1, seed=0, initial_fx=init)
        syn = res.meas_flips[0, :3]
        assert int(syn[0]) * 4 + int(syn[1]) * 2 + int(syn[2]) == 5

    def test_backaction_plants_multiqubit_error(self, steane):
        """§3.1: a phase error on the shared ancilla mid-sequence feeds
        back into several data qubits — the non-FT failure mode."""
        c = bad_syndrome_circuit(steane)
        # Fault: Z on the first check's ancilla right after its second XOR.
        cnots = [i for i, op in enumerate(c) if op.gate == "CNOT"]
        anc = 7
        sim = FrameSimulator(c, NoiseModel())
        res = sim.run(1, seed=0, fault_injections=[(cnots[1], anc, "Z")])
        data_z_weight = int(res.fz[0, :7].sum())
        assert data_z_weight >= 2


class TestGoodCircuit:
    def test_shor_state_structure(self, steane):
        c = good_syndrome_circuit(steane, verify=True)
        counts = gate_counts(c)
        # Per check: 3 chain + 2 verify + 4 coupling CNOTs.
        assert counts["CNOT"] == 3 * (3 + 2 + 4)

    def test_detects_single_bitflip(self, steane):
        c = good_syndrome_circuit(steane, verify=False)
        sim = FrameSimulator(c, NoiseModel())
        init = np.zeros((1, c.num_qubits), dtype=np.uint8)
        init[0, 2] = 1  # position 3
        res = sim.run(1, seed=0, initial_fx=init)
        syn, fail = parse_good_syndrome(steane, res.meas_flips, verify=False)
        assert int(syn[0, 0]) * 4 + int(syn[0, 1]) * 2 + int(syn[0, 2]) == 3
        assert not fail.any()

    def test_single_ancilla_phase_error_harmless(self, steane):
        """Each ancilla qubit targets one XOR: a Z fault on it reaches at
        most one data qubit."""
        c = good_syndrome_circuit(steane, verify=False)
        sim = FrameSimulator(c, NoiseModel())
        # Inject Z on every ancilla qubit right after the Shor-state H's.
        failures = 0
        for i, op in enumerate(c):
            if op.gate == "H":
                q = op.qubits[0]
                res = sim.run(1, seed=0, fault_injections=[(i, q, "Z")])
                if res.fz[0, :7].sum() >= 2:
                    failures += 1
        assert failures == 0


class TestShorExtraction:
    def test_resource_plan_for_steane(self, steane):
        ext = ShorSyndromeExtraction(steane, repetitions=1)
        # §3.2: "the syndrome measurement uses 24 ancilla bits ... and 24
        # XOR gates" (per measurement round, excluding preparation).
        anc_bits = sum(len(b.qubits) for b in ext.blocks)
        assert anc_bits == 24
        circuit = ext.extraction_circuit()
        coupling_cnots = sum(
            1 for op in circuit if op.gate == "CNOT" and op.tag == "syndrome"
        )
        assert coupling_cnots == 24

    def test_parse_shapes(self, steane):
        ext = ShorSyndromeExtraction(steane, repetitions=2)
        flips = np.zeros((5, ext.total_cbits), dtype=np.uint8)
        syn = ext.parse_syndromes(flips)
        assert syn.shape == (5, 2, 6)

    def test_clean_run_trivial_syndrome(self, steane):
        ext = ShorSyndromeExtraction(steane, repetitions=2)
        sim = FrameSimulator(ext.extraction_circuit(), NoiseModel())
        res = sim.run(4, seed=0)
        syn = ext.parse_syndromes(res.meas_flips)
        assert not syn.any()

    def test_data_error_detected(self, steane):
        ext = ShorSyndromeExtraction(steane, repetitions=1)
        sim = FrameSimulator(ext.extraction_circuit(), NoiseModel())
        init = np.zeros((1, ext.total_qubits), dtype=np.uint8)
        init[0, 0] = 1  # X on data qubit 0
        res = sim.run(1, seed=0, initial_fx=init)
        syn = ext.parse_syndromes(res.meas_flips)[0, 0]
        # Z-type generators (first three for CSS) see the X error.
        assert syn[:3].any()
        assert not syn[3:].any()

    def test_five_qubit_code_supported(self):
        code = FiveQubitCode()
        ext = ShorSyndromeExtraction(code, repetitions=1)
        sim = FrameSimulator(ext.extraction_circuit(), NoiseModel())
        res = sim.run(2, seed=0)
        assert not ext.parse_syndromes(res.meas_flips).any()

    def test_five_qubit_single_errors_give_unique_syndromes(self):
        code = FiveQubitCode()
        ext = ShorSyndromeExtraction(code, repetitions=1)
        sim = FrameSimulator(ext.extraction_circuit(), NoiseModel())
        seen = {}
        from repro.paulis import Pauli

        for q in range(5):
            for kind in "XYZ":
                init_fx = np.zeros((1, ext.total_qubits), dtype=np.uint8)
                init_fz = np.zeros((1, ext.total_qubits), dtype=np.uint8)
                if kind in "XY":
                    init_fx[0, q] = 1
                if kind in "YZ":
                    init_fz[0, q] = 1
                res = sim.run(1, seed=0, initial_fx=init_fx, initial_fz=init_fz)
                syn = tuple(ext.parse_syndromes(res.meas_flips)[0, 0])
                expected = tuple(code.syndrome_of(Pauli.single(5, q, kind)))
                assert syn == expected
                seen[(q, kind)] = syn
        assert len(set(seen.values())) == 15

    def test_invalid_repetitions(self, steane):
        with pytest.raises(ValueError):
            ShorSyndromeExtraction(steane, repetitions=0)


class TestSteaneExtraction:
    def test_cost_14_ancillas_14_xors(self, steane):
        # §3.3: "only 14 ancilla bits and 14 XOR gates are needed" per
        # syndrome measurement (both types, one repetition).
        ext = SteaneSyndromeExtraction(steane, repetitions=1)
        anc = sum(len(l.anc_qubits) for l in ext.layouts)
        assert anc == 14
        circuit = ext.extraction_circuit()
        cnots = gate_counts(circuit)["CNOT"]
        assert cnots == 14

    def test_clean_run_trivial(self, steane):
        ext = SteaneSyndromeExtraction(steane, repetitions=2)
        sim = FrameSimulator(ext.extraction_circuit(), NoiseModel())
        res = sim.run(3, seed=0)
        x_syn, z_syn = ext.parse_syndromes(res.meas_flips)
        assert not x_syn.any() and not z_syn.any()

    def test_x_error_lights_bitflip_syndrome(self, steane):
        ext = SteaneSyndromeExtraction(steane, repetitions=1)
        sim = FrameSimulator(ext.extraction_circuit(), NoiseModel())
        init = np.zeros((1, ext.total_qubits), dtype=np.uint8)
        init[0, 6] = 1  # X on data qubit 6 -> position 7
        res = sim.run(1, seed=0, initial_fx=init)
        x_syn, z_syn = ext.parse_syndromes(res.meas_flips)
        assert int(x_syn[0, 0, 0]) * 4 + int(x_syn[0, 0, 1]) * 2 + int(x_syn[0, 0, 2]) == 7
        assert not z_syn.any()

    def test_z_error_lights_phase_syndrome(self, steane):
        ext = SteaneSyndromeExtraction(steane, repetitions=1)
        sim = FrameSimulator(ext.extraction_circuit(), NoiseModel())
        init = np.zeros((1, ext.total_qubits), dtype=np.uint8)
        init[0, 1] = 1  # Z on data qubit 1 -> position 2
        res = sim.run(1, seed=0, initial_fz=init)
        x_syn, z_syn = ext.parse_syndromes(res.meas_flips)
        assert int(z_syn[0, 0, 0]) * 4 + int(z_syn[0, 0, 1]) * 2 + int(z_syn[0, 0, 2]) == 2
        assert not x_syn.any()


class TestSteaneAncillaPrep:
    def test_clean_prep_accepted_unchanged(self):
        prep = SteaneAncillaPrep()
        sim = FrameSimulator(prep.circuit(), NoiseModel())
        res = sim.run(8, seed=0)
        flips = prep.parse(res.meas_flips)
        assert not flips.any()
        assert not res.fx[:, :7].any() and not res.fz[:, :7].any()

    def test_verification_catches_logical_flip(self):
        """Force an X̄-like fault on the prepared block: both verification
        rounds must decode it as |1̄> and the fix-up must fire."""
        prep = SteaneAncillaPrep()
        circuit = prep.circuit()
        # Find the op index where block-0 encoding ends: inject transversal
        # X on the ancilla right before verification couplings.
        first_verify_cnot = [
            i for i, op in enumerate(circuit) if op.tag == "verify" and op.gate == "CNOT"
        ][0]
        sim = FrameSimulator(circuit, NoiseModel())
        spec = [[(first_verify_cnot - 1, q, "X") for q in range(7)]]
        res = sim.run(1, seed=0, fault_injections=spec)
        fire = prep.parse(res.meas_flips)
        assert fire[0] == 1
        fixed = prep.apply_fixups(res.fx[:, :7], fire)
        # Transversal X̄ cancels the injected X̄ exactly.
        assert not fixed.any()

    def test_single_verifier_error_does_not_flip(self):
        """A fault in ONE verification block gives conflicting results;
        the §3.3 tie rule says do nothing."""
        prep = SteaneAncillaPrep()
        circuit = prep.circuit()
        meas_ops = [
            i for i, op in enumerate(circuit) if op.gate == "M" and op.tag == "verify"
        ]
        sim = FrameSimulator(circuit, NoiseModel())
        # Corrupt 3 qubits of the first verify block just before readout —
        # an odd pattern that decodes as logical 1 in round one only.
        v1_qubits = [7, 8, 9]
        spec = [[(meas_ops[0] - 1, q, "X") for q in v1_qubits]]
        res = sim.run(1, seed=0, fault_injections=spec)
        fire = prep.parse(res.meas_flips)
        assert fire[0] == 0
