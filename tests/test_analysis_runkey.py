"""Run-key stability: the content-addressed cache key must depend only on
physics + seed + shard plan.

Two regression guards for failure modes the static-analysis pass was
built to catch (RPL305 wall-clock-in-key, RPL203 scratch-state-in-pickle):

* wall clock — a ``time.time()`` anywhere in the key path would make
  every run cache-miss and silently recompute;
* scratch buffers — run keys hash the *pickled* protocol payload, so a
  work buffer leaking into ``__getstate__`` would make a protocol's cache
  identity depend on what it happened to execute last.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.codes.steane import SteaneCode
from repro.ft.exrec import SteaneECProtocol
from repro.noise.models import circuit_level
from repro.threshold.journal import compute_physics_key, compute_run_key
from repro.threshold.montecarlo import memory_experiment
from repro.threshold.sharded import _seed_fingerprint


def _steane_args(noise=None):
    noise = noise or circuit_level(1e-3)
    protocol = SteaneECProtocol(noise)
    return protocol, ("memory", (protocol, protocol.code, 2))


def test_run_key_independent_of_wall_clock(monkeypatch):
    _, args = _steane_args()
    fingerprint = _seed_fingerprint(1234)
    before = compute_run_key("memory", args, 500, fingerprint, 4)

    monkeypatch.setattr(time, "time", lambda: 1.0e9)
    monkeypatch.setattr(time, "time_ns", lambda: 10**18)
    shifted = compute_run_key("memory", args, 500, fingerprint, 4)
    monkeypatch.setattr(time, "time", lambda: 2.0e9)
    shifted_again = compute_run_key("memory", args, 500, fingerprint, 4)

    assert before == shifted == shifted_again


def test_run_key_independent_of_scratch_buffers():
    noise = circuit_level(1e-3)
    protocol, _ = _steane_args(noise)
    code = SteaneCode()
    args = ("memory", (protocol, code, 2))
    fingerprint = _seed_fingerprint(99)
    fresh_key = compute_run_key("memory", args, 200, fingerprint, 2)
    fresh_physics = compute_physics_key("memory", args)

    # Execute real rounds so the packed work buffers are populated —
    # without __getstate__ excluding them, the pickle (and thus the key)
    # would now differ from the fresh protocol's.
    memory_experiment(protocol, code, rounds=2, shots=64, seed=7)
    assert protocol._buffers, "expected the run to populate scratch buffers"

    assert compute_run_key("memory", args, 200, fingerprint, 2) == fresh_key
    assert compute_physics_key("memory", args) == fresh_physics

    # And a brand-new protocol over the same physics lands on the same key.
    rebuilt = SteaneECProtocol(noise)
    rebuilt_args = ("memory", (rebuilt, code, 2))
    assert compute_run_key("memory", rebuilt_args, 200, fingerprint, 2) == fresh_key


def test_run_key_pins_seed_shots_and_shard_plan():
    _, args = _steane_args()
    base = compute_run_key("memory", args, 500, _seed_fingerprint(1), 4)

    assert compute_run_key("memory", args, 500, _seed_fingerprint(2), 4) != base
    assert compute_run_key("memory", args, 501, _seed_fingerprint(1), 4) != base
    assert compute_run_key("memory", args, 500, _seed_fingerprint(1), 5) != base
    # int seed and the equivalent SeedSequence derive different shard
    # streams, so they must fingerprint differently too.
    assert (
        compute_run_key(
            "memory", args, 500, _seed_fingerprint(np.random.SeedSequence(1)), 4
        )
        != base
    )


def test_physics_key_pools_across_seed_and_shots():
    _, args = _steane_args()
    key = compute_physics_key("memory", args)
    assert key == compute_physics_key("memory", args)
    # Different physics (noise strength) must not pool.
    other_protocol = SteaneECProtocol(circuit_level(2e-3))
    other = ("memory", (other_protocol, other_protocol.code, 2))
    assert compute_physics_key("memory", other) != key


def test_journal_refuses_to_pickle(tmp_path):
    """CheckpointJournal holds a process-local sqlite connection; shipping
    one to a worker must fail loudly at pickle time, not deadlock later."""
    import pickle

    from repro.threshold.journal import CheckpointJournal

    journal = CheckpointJournal(tmp_path / "ckpt.sqlite")
    try:
        with pytest.raises(TypeError, match="cannot be pickled"):
            pickle.dumps(journal)
    finally:
        journal.close()
