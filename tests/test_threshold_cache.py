"""The content-addressed result cache: read-before-compute, cross-run
pooling, schema versioning/migration, and cache maintenance.

The acceptance contract under test:

* a repeated identical run returns its cached pooled counts without a
  worker pool ever being created;
* two completed runs over the same physics with different seeds pool into
  one merged higher-shot answer (and runs with different physics, or
  incomplete runs, never leak into the pool);
* a v0 (PR 6 layout) journal migrates in place and keeps replaying; an
  unknown/newer schema version is refused, never guessed at.
"""

import sqlite3
import time

import pytest

from repro.codes import SteaneCode
from repro.threshold import (
    CacheCorrupt,
    CheckpointJournal,
    JournalSchemaError,
    ResultCache,
    compute_physics_key,
    compute_run_key,
    row_checksum,
    sharded_code_capacity_memory,
)
from repro.threshold import runtime, sharded
from repro.threshold.journal import _SCHEMA_VERSION


EPS = 0.08
SHOTS = 400
SHARDS = 4


@pytest.fixture(scope="module")
def code():
    return SteaneCode()


@pytest.fixture()
def cache_path(tmp_path):
    return tmp_path / "cache.sqlite"


def capacity_key(code, eps, shots, seed, num_shards):
    specs, fingerprint = sharded._build_specs(
        "capacity", (code, eps, 1), shots, seed, num_shards
    )
    return compute_run_key(
        "capacity", (code, eps, 1), shots, fingerprint, len(specs)
    )


def run_capacity(code, cache_path, seed, shots=SHOTS, eps=EPS, **kw):
    return sharded_code_capacity_memory(
        code, eps, rounds=1, shots=shots, seed=seed, workers=1,
        num_shards=SHARDS, checkpoint=cache_path, **kw,
    )


class TestReadBeforeCompute:
    def test_full_hit_never_creates_a_pool(
        self, code, cache_path, monkeypatch
    ):
        """THE tentpole acceptance test: once a run is fully cached, asking
        for it again — even with workers=4 — answers from the store without
        ``ProcessPoolExecutor`` ever being touched."""
        first = run_capacity(code, cache_path, seed=11)

        def pool_bomb(workers):
            raise AssertionError(
                "worker pool requested on a full cache hit"
            )

        monkeypatch.setattr(runtime, "_get_pool", pool_bomb)
        replayed = sharded_code_capacity_memory(
            code, EPS, rounds=1, shots=SHOTS, seed=11, workers=4,
            num_shards=SHARDS, checkpoint=cache_path,
        )
        assert replayed == first

    def test_full_hit_executes_no_shards(self, code, cache_path, monkeypatch):
        run_capacity(code, cache_path, seed=11)
        calls = []
        original = sharded._run_shard
        monkeypatch.setattr(
            sharded, "_run_shard",
            lambda spec: calls.append(spec) or original(spec),
        )
        run_capacity(code, cache_path, seed=11)
        assert calls == []

    def test_partial_hit_resumes_remainder(self, code, cache_path, monkeypatch):
        base = run_capacity(code, cache_path, seed=11)
        key = capacity_key(code, EPS, SHOTS, 11, SHARDS)
        with CheckpointJournal(cache_path) as journal:
            journal._conn.execute(
                "DELETE FROM shard_results WHERE run_key=? AND shard_index IN (1, 3)",
                (key,),
            )
            journal._conn.commit()
        calls = []
        original = sharded._run_shard
        monkeypatch.setattr(
            sharded, "_run_shard",
            lambda spec: calls.append(spec) or original(spec),
        )
        resumed = run_capacity(code, cache_path, seed=11)
        assert len(calls) == 2
        assert resumed == base


class TestCacheLookup:
    def test_statuses(self, code, cache_path):
        run_capacity(code, cache_path, seed=11)
        key = capacity_key(code, EPS, SHOTS, 11, SHARDS)
        sizes = sharded.shard_sizes(SHOTS, SHARDS)
        with ResultCache(cache_path) as cache:
            hit = cache.lookup(key, sizes)
            assert hit.status == "full"
            assert hit.shots == SHOTS
            assert sorted(hit.counts) == [0, 1, 2, 3]
            assert cache.lookup("no-such-key", sizes).status == "miss"
            cache.journal._conn.execute(
                "DELETE FROM shard_results WHERE run_key=? AND shard_index=0",
                (key,),
            )
            cache.journal._conn.commit()
            partial = cache.lookup(key, sizes)
            assert partial.status == "partial"
            assert partial.shots == SHOTS - sizes[0]

    def test_lookup_quarantines_tampered_row(self, code, cache_path):
        run_capacity(code, cache_path, seed=11)
        key = capacity_key(code, EPS, SHOTS, 11, SHARDS)
        sizes = sharded.shard_sizes(SHOTS, SHARDS)
        with ResultCache(cache_path) as cache:
            cache.journal._conn.execute(
                "UPDATE shard_results SET failures = failures + 5 "
                "WHERE run_key=? AND shard_index=2",
                (key,),
            )
            cache.journal._conn.commit()
            with pytest.warns(CacheCorrupt):
                hit = cache.lookup(key, sizes)
            assert hit.status == "partial"
            assert 2 not in hit.counts
            assert cache.stats()["quarantined_rows"] == 1


class TestCrossRunPooling:
    def test_same_physics_different_seeds_pool(self, code, cache_path):
        a = run_capacity(code, cache_path, seed=11)
        b = run_capacity(code, cache_path, seed=12)
        with ResultCache(cache_path) as cache:
            shots, failures = cache.pooled_counts("capacity", (code, EPS, 1))
            assert shots == a.shots + b.shots
            assert failures == a.failures + b.failures
            assert len(cache.pooled_runs("capacity", (code, EPS, 1))) == 2

    def test_pooled_result_recomputes_wilson_bounds(self, code, cache_path):
        from repro.util.stats import binomial_confidence

        a = run_capacity(code, cache_path, seed=11)
        b = run_capacity(code, cache_path, seed=12)
        with ResultCache(cache_path) as cache:
            pooled = cache.pooled_result("capacity", (code, EPS, 1), rounds=1)
        assert pooled.shots == a.shots + b.shots
        assert pooled.failures == a.failures + b.failures
        est, low, high = binomial_confidence(pooled.failures, pooled.shots)
        assert (pooled.failure_rate, pooled.low, pooled.high) == (est, low, high)
        # The pooled interval is tighter than either constituent's.
        assert (pooled.high - pooled.low) <= min(a.high - a.low, b.high - b.low)

    def test_different_physics_never_pool(self, code, cache_path):
        run_capacity(code, cache_path, seed=11)
        other = run_capacity(code, cache_path, seed=11, eps=0.05)
        with ResultCache(cache_path) as cache:
            shots, failures = cache.pooled_counts("capacity", (code, 0.05, 1))
            assert (shots, failures) == (other.shots, other.failures)

    def test_incomplete_runs_excluded_from_pool(self, code, cache_path):
        a = run_capacity(code, cache_path, seed=11)
        run_capacity(code, cache_path, seed=12)
        key_b = capacity_key(code, EPS, SHOTS, 12, SHARDS)
        with ResultCache(cache_path) as cache:
            cache.journal._conn.execute(
                "DELETE FROM shard_results WHERE run_key=? AND shard_index=0",
                (key_b,),
            )
            cache.journal._conn.commit()
            shots, failures = cache.pooled_counts("capacity", (code, EPS, 1))
            assert (shots, failures) == (a.shots, a.failures)

    def test_pool_empty_without_completed_runs(self, code, cache_path):
        with ResultCache(cache_path) as cache:
            assert cache.pooled_counts("capacity", (code, EPS, 1)) == (0, 0)
            assert cache.pooled_result("capacity", (code, EPS, 1), rounds=1) is None

    def test_physics_key_excludes_seed_shots_shards(self, code):
        base = compute_physics_key("capacity", (code, EPS, 1))
        assert compute_physics_key("capacity", (code, EPS, 1)) == base
        assert compute_physics_key("capacity", (code, 0.05, 1)) != base
        assert compute_physics_key("memory", (code, EPS, 1)) != base


class TestSchemaVersioning:
    def test_user_version_stamped(self, cache_path):
        with CheckpointJournal(cache_path):
            pass
        conn = sqlite3.connect(cache_path)
        assert conn.execute("PRAGMA user_version").fetchone()[0] == _SCHEMA_VERSION
        conn.close()

    def test_v0_journal_migrates_and_replays(self, code, cache_path, monkeypatch):
        """A PR 6 journal (no checksums/physics keys/quarantine) opens,
        migrates in place, and its rows keep replaying."""
        conn = sqlite3.connect(cache_path)
        conn.executescript(
            """
            CREATE TABLE runs (
                run_key TEXT PRIMARY KEY, kind TEXT NOT NULL,
                shots INTEGER NOT NULL, num_shards INTEGER NOT NULL,
                created_unix REAL NOT NULL
            );
            CREATE TABLE shard_results (
                run_key TEXT NOT NULL, shard_index INTEGER NOT NULL,
                shots INTEGER NOT NULL, failures INTEGER NOT NULL,
                recorded_unix REAL NOT NULL,
                PRIMARY KEY (run_key, shard_index)
            );
            """
        )
        # Seed it with a *real* completed run's rows so the migrated cache
        # must produce a bit-for-bit replay.
        base = sharded_code_capacity_memory(
            code, EPS, rounds=1, shots=SHOTS, seed=11, workers=1,
            num_shards=SHARDS,
        )
        key = capacity_key(code, EPS, SHOTS, 11, SHARDS)
        sizes = sharded.shard_sizes(SHOTS, SHARDS)
        specs, _ = sharded._build_specs(
            "capacity", (code, EPS, 1), SHOTS, 11, SHARDS
        )
        conn.execute(
            "INSERT INTO runs VALUES (?, 'capacity', ?, ?, ?)",
            (key, SHOTS, SHARDS, time.time()),
        )
        for idx, spec in enumerate(specs):
            shots, failures = sharded._run_shard(spec)
            conn.execute(
                "INSERT INTO shard_results VALUES (?, ?, ?, ?, ?)",
                (key, idx, shots, failures, time.time()),
            )
        conn.commit()
        conn.close()

        calls = []
        original = sharded._run_shard
        monkeypatch.setattr(
            sharded, "_run_shard",
            lambda spec: calls.append(spec) or original(spec),
        )
        replayed = run_capacity(code, cache_path, seed=11)
        assert calls == []  # the migrated rows replayed, none recomputed
        assert replayed == base
        conn = sqlite3.connect(cache_path)
        assert conn.execute("PRAGMA user_version").fetchone()[0] == _SCHEMA_VERSION
        # checksums were backfilled at migration
        for idx, shots, failures, checksum in conn.execute(
            "SELECT shard_index, shots, failures, checksum FROM shard_results"
        ):
            assert checksum == row_checksum(key, idx, shots, failures)
        conn.close()

    def test_newer_schema_version_refused(self, cache_path):
        conn = sqlite3.connect(cache_path)
        conn.execute("PRAGMA user_version = 99")
        conn.execute("CREATE TABLE t (x)")
        conn.commit()
        conn.close()
        with pytest.raises(JournalSchemaError):
            CheckpointJournal(cache_path)
        # The refusal propagates out of a sharded run too — migrate-or-refuse
        # is a user decision, not a fault to degrade on.
        with pytest.raises(JournalSchemaError):
            sharded_code_capacity_memory(
                SteaneCode(), EPS, rounds=1, shots=SHOTS, seed=11, workers=1,
                num_shards=SHARDS, checkpoint=cache_path,
            )

    def test_unrecognized_v0_layout_refused(self, cache_path):
        conn = sqlite3.connect(cache_path)
        conn.execute("CREATE TABLE shard_results (weird TEXT)")
        conn.commit()
        conn.close()
        with pytest.raises(JournalSchemaError):
            CheckpointJournal(cache_path)


class TestMaintenance:
    def test_stats(self, code, cache_path):
        run_capacity(code, cache_path, seed=11)
        run_capacity(code, cache_path, seed=12)
        key = capacity_key(code, EPS, SHOTS, 12, SHARDS)
        with ResultCache(cache_path) as cache:
            cache.journal._conn.execute(
                "DELETE FROM shard_results WHERE run_key=? AND shard_index=0",
                (key,),
            )
            cache.journal._conn.commit()
            stats = cache.stats()
        assert stats["runs"] == 2
        assert stats["complete_runs"] == 1
        assert stats["shard_rows"] == 2 * SHARDS - 1
        assert stats["quarantined_rows"] == 0
        assert stats["schema_version"] == _SCHEMA_VERSION
        assert stats["bytes"] > 0

    def test_gc_drops_incomplete_and_quarantine(self, code, cache_path):
        a = run_capacity(code, cache_path, seed=11)
        run_capacity(code, cache_path, seed=12)
        key_b = capacity_key(code, EPS, SHOTS, 12, SHARDS)
        sizes = sharded.shard_sizes(SHOTS, SHARDS)
        with ResultCache(cache_path) as cache:
            # Make run B incomplete and plant one quarantined row.
            cache.journal._conn.execute(
                "UPDATE shard_results SET failures = failures + 5 "
                "WHERE run_key=? AND shard_index=0",
                (key_b,),
            )
            cache.journal._conn.commit()
            with pytest.warns(CacheCorrupt):
                cache.lookup(key_b, sizes)
            # grace_seconds=0: this test's incomplete run *is* abandoned
            # (the grace window itself is covered in TestGcLiveRunRace).
            report = cache.gc(grace_seconds=0.0)
            assert report["incomplete_runs_dropped"] == 1
            assert report["quarantined_rows_purged"] == 1
            stats = cache.stats()
            assert stats["runs"] == 1
            assert stats["complete_runs"] == 1
            assert stats["shard_rows"] == SHARDS
            assert stats["quarantined_rows"] == 0
            # The surviving complete run still answers.
            shots, failures = cache.pooled_counts("capacity", (code, EPS, 1))
            assert (shots, failures) == (a.shots, a.failures)


class TestGcLiveRunRace:
    """``gc`` must never collect a run that is merely *unfinished* — only
    one that is provably abandoned.  WAL lets a gc run concurrently with a
    live scan writing the same journal; the guards under test here are
    the grace window (fresh rows mean a claimant is mid-write) and the
    scan queue's ``active_run_keys`` (a pending job may sit in the queue
    longer than any grace window before its claimant starts)."""

    def _make_incomplete(self, cache, key):
        cache.journal._conn.execute(
            "DELETE FROM shard_results WHERE run_key=? AND shard_index=0",
            (key,),
        )
        cache.journal._conn.commit()

    def test_default_grace_presumes_fresh_incomplete_runs_live(
        self, code, cache_path
    ):
        run_capacity(code, cache_path, seed=11)
        run_capacity(code, cache_path, seed=12)
        key_b = capacity_key(code, EPS, SHOTS, 12, SHARDS)
        with ResultCache(cache_path) as cache:
            # Run B looks exactly like an in-flight scan: incomplete, but
            # its surviving rows were journaled moments ago.
            self._make_incomplete(cache, key_b)
            report = cache.gc()
            assert report["incomplete_runs_dropped"] == 0
            assert report["live_runs_skipped"] == 1
            stats = cache.stats()
            assert stats["runs"] == 2
            assert stats["shard_rows"] == 2 * SHARDS - 1
            # Once the grace window has elapsed the same run is abandoned
            # and collectible.
            report = cache.gc(grace_seconds=0.0)
            assert report["incomplete_runs_dropped"] == 1
            assert report["live_runs_skipped"] == 0
            assert cache.stats()["runs"] == 1

    def test_queue_active_run_keys_protect_regardless_of_age(
        self, code, cache_path, tmp_path
    ):
        from repro.threshold.scheduler import ScanQueue

        run_capacity(code, cache_path, seed=12)
        key = capacity_key(code, EPS, SHOTS, 12, SHARDS)
        with ResultCache(cache_path) as cache:
            # A claimant journaled 3 of 4 shards, then died; the job was
            # requeued and has sat pending far longer than any grace
            # window.  Backdate every trace of activity to the epoch.
            self._make_incomplete(cache, key)
            cache.journal._conn.execute(
                "UPDATE runs SET created_unix=0 WHERE run_key=?", (key,)
            )
            cache.journal._conn.execute(
                "UPDATE shard_results SET recorded_unix=0 WHERE run_key=?",
                (key,),
            )
            cache.journal._conn.commit()
            with ScanQueue(
                tmp_path / "queue.sqlite", cache_path=cache_path
            ) as queue:
                queue.submit_scan(
                    "capacity", (code, EPS, 1), SHOTS, 12, num_shards=SHARDS
                )
                assert key in queue.active_run_keys()
                # Stale by age, but the queue still owns this run key: the
                # partial shards must survive for the next claimant.
                report = cache.gc(
                    grace_seconds=0.0,
                    protected_keys=queue.active_run_keys(),
                )
                assert report["incomplete_runs_dropped"] == 0
                assert report["live_runs_skipped"] == 1
                assert cache.stats()["shard_rows"] == SHARDS - 1
            # With the queue out of the picture the run is collectible.
            report = cache.gc(grace_seconds=0.0)
            assert report["incomplete_runs_dropped"] == 1
