"""Tests for the high-level API (core) and shared utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FaultTolerancePlanner, LogicalMemory, UnencodedMemory
from repro.util import (
    as_rng,
    binomial_confidence,
    fit_power_law,
    logical_error_per_round,
    wilson_interval,
)


class TestRngPlumbing:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seeds_deterministically(self):
        a = as_rng(42).random(5)
        b = as_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen


class TestStats:
    def test_wilson_contains_truth(self):
        low, high = wilson_interval(50, 1000)
        assert low < 0.05 < high

    def test_wilson_zero_failures(self):
        low, high = wilson_interval(0, 1000)
        assert low == 0.0
        assert 0 < high < 0.01

    def test_wilson_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)

    def test_binomial_confidence_triplet(self):
        est, low, high = binomial_confidence(10, 100)
        assert low <= est <= high

    @given(st.floats(0.5, 3.0), st.floats(1e-6, 1e-2))
    @settings(max_examples=30)
    def test_power_law_fit_recovers(self, k, a):
        x = np.array([1e-4, 3e-4, 1e-3, 3e-3])
        y = a * x**k
        a_fit, k_fit = fit_power_law(x, y)
        assert k_fit == pytest.approx(k, rel=1e-6)
        assert a_fit == pytest.approx(a, rel=1e-6)

    def test_power_law_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([1.0]), np.array([1.0]))

    def test_per_round_conversion_roundtrip(self):
        p_round = 0.01
        rounds = 7
        p_total = 1 - (1 - p_round) ** rounds
        assert logical_error_per_round(p_total, rounds) == pytest.approx(p_round)

    def test_per_round_validation(self):
        with pytest.raises(ValueError):
            logical_error_per_round(0.5, 0)
        with pytest.raises(ValueError):
            logical_error_per_round(1.5, 3)


class TestLogicalMemoryAPI:
    def test_ideal_method(self):
        mem = LogicalMemory(code="steane", method="ideal", eps=1e-3)
        result = mem.run(rounds=2, shots=20_000, seed=0)
        assert result.failure_rate < 1e-3

    def test_steane_method_runs(self):
        mem = LogicalMemory(code="steane", method="steane", eps=1e-3)
        result = mem.run(rounds=1, shots=2000, seed=0)
        assert 0 <= result.failure_rate < 0.1

    def test_shor_method_five_qubit(self):
        mem = LogicalMemory(code="five_qubit", method="shor", eps=5e-4)
        result = mem.run(rounds=1, shots=1000, seed=0)
        assert 0 <= result.failure_rate < 0.2

    def test_breakeven_below_pseudothreshold(self):
        mem = LogicalMemory(code="steane", method="steane", eps=5e-5)
        assert mem.breakeven(shots=50_000, seed=1)

    def test_invalid_combinations(self):
        with pytest.raises(ValueError):
            LogicalMemory(code="nope")
        with pytest.raises(ValueError):
            LogicalMemory(method="nope")
        with pytest.raises(ValueError):
            LogicalMemory(code="five_qubit", method="steane")

    def test_unencoded_rate_matches_eps(self):
        bare = UnencodedMemory(0.01).run(1, 100_000, seed=2)
        assert bare.failure_rate == pytest.approx(0.01, abs=0.002)

    def test_unencoded_validation(self):
        with pytest.raises(ValueError):
            UnencodedMemory(1.5)


class TestPlannerIntegration:
    def test_planner_end_to_end(self):
        planner = FaultTolerancePlanner()
        plan = planner.factoring_plan(1e-6)
        assert plan.meets_target()
        assert plan.total_qubits > plan.data_qubits / 2

    def test_levels_monotone_in_target(self):
        planner = FaultTolerancePlanner()
        assert planner.levels_for(1e-3, 1e-15) >= planner.levels_for(1e-3, 1e-6)
