"""Tests for Kitaev-style bare-ancilla extraction (§3.6 last paragraph)."""

import numpy as np
import pytest

from repro.circuits import gate_counts
from repro.ft.kitaev_ec import (
    audit_feedback_bound,
    toric_extraction_circuit,
    toric_syndromes_from_flips,
)
from repro.noise import NoiseModel
from repro.pauliframe import FrameSimulator
from repro.topo import ToricCode


class TestCircuitStructure:
    def test_four_xors_per_syndrome_bit(self):
        code = ToricCode(3)
        circuit = toric_extraction_circuit(code)
        counts = gate_counts(circuit)
        # 18 checks (9 plaquette + 9 vertex) x 4 XORs each.
        assert counts["CNOT"] == 18 * 4
        assert counts["M"] == 18

    def test_single_ancilla_per_bit(self):
        code = ToricCode(3)
        circuit = toric_extraction_circuit(code)
        assert circuit.num_qubits == code.n + 18


class TestSyndromeReadout:
    def test_clean_run_trivial(self):
        code = ToricCode(3)
        circuit = toric_extraction_circuit(code)
        res = FrameSimulator(circuit, NoiseModel()).run(4, seed=0)
        plaq, vert = toric_syndromes_from_flips(code, res.meas_flips)
        assert not plaq.any() and not vert.any()

    def test_x_error_lights_plaquettes(self):
        code = ToricCode(3)
        circuit = toric_extraction_circuit(code)
        sim = FrameSimulator(circuit, NoiseModel())
        init = np.zeros((1, circuit.num_qubits), dtype=np.uint8)
        edge = code.v_edge(1, 1)
        init[0, edge] = 1
        res = sim.run(1, seed=0, initial_fx=init)
        plaq, vert = toric_syndromes_from_flips(code, res.meas_flips)
        expected = code.plaquette_syndrome(np.eye(code.n, dtype=np.uint8)[edge])[0]
        assert np.array_equal(plaq[0], expected)
        assert not vert.any()

    def test_z_error_lights_vertices(self):
        code = ToricCode(3)
        circuit = toric_extraction_circuit(code)
        sim = FrameSimulator(circuit, NoiseModel())
        init = np.zeros((1, circuit.num_qubits), dtype=np.uint8)
        edge = code.h_edge(0, 2)
        init[0, edge] = 1
        res = sim.run(1, seed=0, initial_fz=init)
        plaq, vert = toric_syndromes_from_flips(code, res.meas_flips)
        expected = code.vertex_syndrome(np.eye(code.n, dtype=np.uint8)[edge])[0]
        assert np.array_equal(vert[0], expected)
        assert not plaq.any()


class TestFeedbackBound:
    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_single_fault_feedback_bounded_by_check_weight(self, d):
        """The §3.6 claim: with weight-4 checks and bare ancillas, one
        fault feeds back at most 3 (= w − 1) errors of either type —
        independent of lattice size."""
        report = audit_feedback_bound(ToricCode(d))
        assert report["max_x_feedback"] <= 3
        assert report["max_z_feedback"] <= 3

    def test_feedback_constant_in_lattice_size(self):
        small = audit_feedback_bound(ToricCode(2))
        large = audit_feedback_bound(ToricCode(4))
        assert large["max_x_feedback"] <= small["max_x_feedback"] + 1
        assert large["max_z_feedback"] <= small["max_z_feedback"] + 1

    def test_fault_cases_scale_with_lattice(self):
        small = audit_feedback_bound(ToricCode(2))
        large = audit_feedback_bound(ToricCode(3))
        assert large["fault_cases"] > small["fault_cases"]
