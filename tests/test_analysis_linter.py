"""Fixture tests for the RPL linter: every rule fires on a minimal
violating snippet and stays quiet on the compliant rewrite, suppressions
and the baseline behave as documented, and the repo itself lints clean.

The linter runs on source text only (``lint_source``) — nothing here
imports the code under analysis.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.diagnostics import RULES, parse_suppressions
from repro.analysis.linter import (
    BASELINE_NAME,
    collect_targets,
    lint_paths,
    lint_source,
    load_baseline,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def codes(diags, include_suppressed=False):
    return [
        d.rule for d in diags if include_suppressed or not d.suppressed
    ]


def lint(snippet: str, path: str = "src/repro/mod.py", profile: str = "src"):
    return lint_source(textwrap.dedent(snippet), path, profile)


# ----------------------------------------------------------------------
# RNG family (RPL1xx).
# ----------------------------------------------------------------------
class TestRngRules:
    def test_rpl101_global_np_random_fires(self):
        fired = lint(
            """
            import numpy as np

            def draw(n):
                np.random.seed(0)
                return np.random.rand(n)
            """
        )
        assert codes(fired) == ["RPL101", "RPL101"]

    def test_rpl101_from_import_of_legacy_function(self):
        fired = lint("from numpy.random import shuffle\n")
        assert codes(fired) == ["RPL101"]

    def test_rpl101_quiet_on_generator_api(self):
        clean = lint(
            """
            import numpy as np
            from numpy.random import default_rng, SeedSequence

            def draw(n, seed):
                return np.random.default_rng(seed).random(n)
            """
        )
        assert codes(clean) == []

    def test_rpl102_unseeded_default_rng_fires(self):
        assert codes(lint("import numpy as np\nrng = np.random.default_rng()\n")) == [
            "RPL102"
        ]
        assert codes(lint("from numpy.random import default_rng\nr = default_rng(None)\n")) == [
            "RPL102"
        ]

    def test_rpl102_quiet_when_seeded_or_in_sanctioned_funnel(self):
        assert codes(lint("import numpy as np\nrng = np.random.default_rng(7)\n")) == []
        assert (
            codes(
                lint(
                    "import numpy as np\nrng = np.random.default_rng()\n",
                    path="src/repro/util/rng.py",
                )
            )
            == []
        )

    def test_rpl103_seed_arithmetic_fires(self):
        fired = lint(
            """
            import numpy as np

            def shard_rngs(seed, n):
                return [np.random.default_rng(seed + i) for i in range(n)]
            """
        )
        assert codes(fired) == ["RPL103"]

    def test_rpl103_quiet_on_spawn(self):
        clean = lint(
            """
            import numpy as np

            def shard_rngs(seed, n):
                return [np.random.default_rng(s) for s in np.random.SeedSequence(seed).spawn(n)]
            """
        )
        assert codes(clean) == []

    def test_rpl104_stdlib_random_fires(self):
        assert codes(lint("import random\n")) == ["RPL104"]
        assert codes(lint("from random import choice\n")) == ["RPL104"]

    def test_rpl104_quiet_on_other_modules(self):
        assert codes(lint("import secrets\nimport numpy as np\n")) == []


# ----------------------------------------------------------------------
# Picklability family (RPL2xx).
# ----------------------------------------------------------------------
class TestPickleRules:
    def test_rpl201_slots_without_hooks_fires(self):
        fired = lint(
            """
            class Pauli:
                __slots__ = ("xs", "zs")
            """
        )
        assert codes(fired) == ["RPL201"]

    def test_rpl201_quiet_with_getstate(self):
        clean = lint(
            """
            class Pauli:
                __slots__ = ("xs", "zs")

                def __getstate__(self):
                    return (self.xs, self.zs)

                def __setstate__(self, state):
                    self.xs, self.zs = state
            """
        )
        assert codes(clean) == []

    def test_rpl202_lambda_to_submit_fires(self):
        fired = lint(
            """
            def run(pool, shots):
                return pool.submit(lambda: shots * 2)
            """
        )
        assert codes(fired) == ["RPL202"]

    def test_rpl202_nested_function_to_map_fires(self):
        fired = lint(
            """
            def run(pool, shards):
                def work(shard):
                    return shard.execute()
                return list(pool.map(work, shards))
            """
        )
        assert codes(fired) == ["RPL202"]

    def test_rpl202_quiet_on_module_level_callable(self):
        clean = lint(
            """
            def work(shard):
                return shard.execute()

            def run(pool, shards):
                return list(pool.map(work, shards))
            """
        )
        assert codes(clean) == []

    def test_rpl203_scratch_buffer_without_getstate_fires(self):
        fired = lint(
            """
            class Protocol:
                def __init__(self):
                    self._buffers = {}

                def run(self, shots):
                    self._buffers[shots] = object()
            """
        )
        assert codes(fired) == ["RPL203"]

    def test_rpl203_quiet_with_getstate(self):
        clean = lint(
            """
            class Protocol:
                def __init__(self):
                    self._buffers = {}

                def __getstate__(self):
                    return {k: v for k, v in self.__dict__.items() if k != "_buffers"}
            """
        )
        assert codes(clean) == []


# ----------------------------------------------------------------------
# Concurrency family (RPL3xx).
# ----------------------------------------------------------------------
class TestConcurrencyRules:
    def test_rpl301_sqlite_in_class_without_hook_fires(self):
        fired = lint(
            """
            import sqlite3

            class Journal:
                def __init__(self, path):
                    self._conn = sqlite3.connect(path)
            """
        )
        assert codes(fired) == ["RPL301"]

    def test_rpl301_quiet_with_getstate(self):
        clean = lint(
            """
            import sqlite3

            class Journal:
                def __init__(self, path):
                    self._conn = sqlite3.connect(path)

                def __getstate__(self):
                    raise TypeError("process-local; pass the path instead")
            """
        )
        assert codes(clean) == []

    def test_rpl302_pool_without_spawn_context_fires(self):
        fired = lint(
            """
            from concurrent.futures import ProcessPoolExecutor

            def make_pool(n):
                return ProcessPoolExecutor(max_workers=n)
            """
        )
        assert codes(fired) == ["RPL302"]
        assert codes(
            lint("import multiprocessing\nctx = multiprocessing.get_context('fork')\n")
        ) == ["RPL302"]

    def test_rpl302_quiet_with_spawn(self):
        clean = lint(
            """
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            def make_pool(n):
                ctx = multiprocessing.get_context("spawn")
                return ProcessPoolExecutor(max_workers=n, mp_context=ctx)
            """
        )
        assert codes(clean) == []

    def test_rpl303_abandoning_shutdown_fires(self):
        fired = lint("def stop(pool):\n    pool.shutdown(wait=False)\n")
        assert codes(fired) == ["RPL303"]

    def test_rpl303_quiet_on_waiting_shutdown(self):
        assert codes(lint("def stop(pool):\n    pool.shutdown(wait=True)\n")) == []

    def test_rpl304_silent_broad_except_fires(self):
        fired = lint(
            """
            def close(conn):
                try:
                    conn.close()
                except Exception:
                    pass
            """
        )
        assert codes(fired) == ["RPL304"]

    def test_rpl304_quiet_when_narrowed_or_warned(self):
        assert (
            codes(
                lint(
                    """
                    def close(conn):
                        try:
                            conn.close()
                        except OSError:
                            pass
                    """
                )
            )
            == []
        )
        assert (
            codes(
                lint(
                    """
                    import warnings

                    def close(conn):
                        try:
                            conn.close()
                        except Exception:
                            warnings.warn("close failed", RuntimeWarning)
                    """
                )
            )
            == []
        )

    def test_rpl305_wall_clock_in_key_fires(self):
        fired = lint(
            """
            import time

            def compute_run_key(args):
                return hash((args, time.time()))
            """
        )
        assert codes(fired) == ["RPL305"]

    def test_rpl305_quiet_outside_key_functions(self):
        clean = lint(
            """
            import time

            def elapsed(start):
                return time.time() - start
            """
        )
        assert codes(clean) == []

    def test_rpl306_monotonic_in_lease_logic_fires(self):
        fired = lint(
            """
            import time

            def lease_expired(deadline):
                return time.monotonic() > deadline

            def heartbeat(job):
                job.beat_at = time.perf_counter()
            """
        )
        assert codes(fired) == ["RPL306", "RPL306"]

    def test_rpl306_quiet_for_wall_clock_leases_and_local_timing(self):
        clean = lint(
            """
            import time

            def claim_job(queue):
                return queue.claim(now=time.time())

            def elapsed(start):
                return time.monotonic() - start
            """
        )
        assert codes(clean) == []

    def test_rpl307_unguarded_terminal_update_fires(self):
        fired = lint(
            """
            def complete(conn, job_id):
                conn.execute(
                    "UPDATE jobs SET state='done' WHERE job_id=?", (job_id,)
                )
            """
        )
        assert codes(fired) == ["RPL307"]

    def test_rpl307_quiet_when_owner_guarded(self):
        clean = lint(
            """
            def complete(conn, job_id, owner):
                conn.execute(
                    "UPDATE jobs SET state='done' "
                    "WHERE job_id=? AND lease_owner=?",
                    (job_id, owner),
                )
            """
        )
        assert codes(clean) == []


class TestSqlRules:
    def test_rpl308_fstring_execute_fires(self):
        fired = lint(
            """
            def fetch(conn, state):
                return conn.execute(f"SELECT * FROM jobs WHERE state={state!r}")
            """
        )
        assert codes(fired) == ["RPL308"]

    def test_rpl308_accumulated_sql_fires(self):
        """The canonical shape the scheduler used to carry: a static base
        statement grown with `sql += " WHERE ..."` per optional filter."""
        fired = lint(
            """
            def jobs(conn, state):
                sql = "SELECT * FROM jobs"
                if state is not None:
                    sql += " WHERE state=?"
                return conn.execute(sql)
            """
        )
        assert codes(fired) == ["RPL308"]

    def test_rpl308_nonconstant_concat_and_percent_fire(self):
        fired = lint(
            """
            def events(conn, job_id, kind):
                sql = "SELECT * FROM events" + (" WHERE job_id=?" if job_id else "")
                conn.execute("DELETE FROM events WHERE kind=%s" % kind)
                return conn.execute(sql)
            """
        )
        assert codes(fired) == ["RPL308", "RPL308"]

    def test_rpl308_quiet_on_static_sql_pragmas_and_prose(self):
        """Static statements (including implicit/constant concatenation),
        the schema-version PRAGMA f-string, and error messages that merely
        *mention* SQL keywords are all fine."""
        clean = lint(
            """
            VERSION = 3

            def setup(conn, job_id):
                conn.execute(f"PRAGMA user_version = {VERSION}")
                sql = (
                    "UPDATE jobs SET state='done' "
                    "WHERE job_id=? AND lease_owner=?"
                )
                conn.execute(sql, (job_id, "owner"))
                raise ValueError(f"expected = after SET column near {job_id}")
            """
        )
        assert codes(clean) == []


# ----------------------------------------------------------------------
# Profiles, suppressions, baseline.
# ----------------------------------------------------------------------
class TestMachinery:
    def test_every_rule_has_a_fixture_above(self):
        exercised = {
            "RPL101", "RPL102", "RPL103", "RPL104",
            "RPL201", "RPL202", "RPL203",
            "RPL301", "RPL302", "RPL303", "RPL304", "RPL305",
            "RPL306", "RPL307", "RPL308",
        }
        # The RPL4xx protocol diagnostics are emitted by protocheck, not
        # the per-file lint; their firing/quiet fixtures (scheduler
        # mutants) live in tests/test_analysis_protocheck.py.
        protocol = {code for code in RULES if code.startswith("RPL4")}
        assert protocol == {
            "RPL401", "RPL402", "RPL403", "RPL404",
            "RPL405", "RPL406", "RPL407",
        }
        assert exercised == set(RULES) - protocol

    def test_tests_profile_keeps_rng_rules_only(self):
        source = textwrap.dedent(
            """
            import numpy as np

            def helper(pool):
                pool.shutdown(wait=False)
                return np.random.default_rng()
            """
        )
        strict = lint_source(source, "src/repro/mod.py", "src")
        relaxed = lint_source(source, "tests/test_mod.py", "tests")
        assert codes(strict) == ["RPL303", "RPL102"]
        assert codes(relaxed) == ["RPL102"]

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown profile"):
            lint_source("x = 1\n", "mod.py", "paranoid")

    def test_same_line_suppression_with_reason(self):
        diags = lint(
            """
            def stop(pool):
                pool.shutdown(wait=False)  # repro: disable=RPL303 -- reaped below
            """
        )
        assert codes(diags) == []
        assert codes(diags, include_suppressed=True) == ["RPL303"]

    def test_preceding_line_suppression_covers_next_line(self):
        diags = lint(
            """
            def stop(pool):
                # repro: disable=RPL303 -- reaped below
                pool.shutdown(wait=False)
            """
        )
        assert codes(diags) == []
        assert codes(diags, include_suppressed=True) == ["RPL303"]

    def test_suppression_is_rule_specific(self):
        diags = lint(
            """
            def stop(pool):
                pool.shutdown(wait=False)  # repro: disable=RPL999 -- wrong code
            """
        )
        assert codes(diags) == ["RPL303"]

    def test_parse_suppressions_multiple_codes(self):
        supp = parse_suppressions(
            "x = 1  # repro: disable=RPL101,RPL303 -- legacy\n"
        )
        assert supp[1] == {"RPL101", "RPL303"}

    def test_baseline_roundtrip_and_staleness(self, tmp_path):
        src_dir = tmp_path / "src"
        src_dir.mkdir()
        bad = src_dir / "mod.py"
        bad.write_text("def stop(pool):\n    pool.shutdown(wait=False)\n")
        baseline_path = tmp_path / BASELINE_NAME

        report = lint_paths(tmp_path, baseline_path=baseline_path)
        assert codes(report.findings) == ["RPL303"]

        # New entries are refused without a justification...
        with pytest.raises(ValueError, match="lack a justification"):
            write_baseline(baseline_path, report.findings, [])
        # ...and recorded with one when given.
        entries = write_baseline(
            baseline_path, report.findings, [], default_reason="fixture debt"
        )
        assert len(entries) == 1
        assert entries[0]["reason"] == "fixture debt"

        # Baselined: the same finding no longer fails the run.
        report = lint_paths(tmp_path, baseline_path=baseline_path)
        assert report.ok and len(report.baselined) == 1 and not report.stale_baseline

        # Moving the offending line must NOT orphan the entry (snippet-keyed).
        bad.write_text(
            "import os\n\n\ndef stop(pool):\n    pool.shutdown(wait=False)\n"
        )
        report = lint_paths(tmp_path, baseline_path=baseline_path)
        assert report.ok and len(report.baselined) == 1 and not report.stale_baseline

        # Fixing the code makes the entry stale.
        bad.write_text("def stop(pool):\n    pool.shutdown(wait=True)\n")
        report = lint_paths(tmp_path, baseline_path=baseline_path)
        assert report.ok and len(report.stale_baseline) == 1

        # Regenerating drops the stale entry.
        report_entries = write_baseline(baseline_path, [], load_baseline(baseline_path))
        assert report_entries == []

    def test_malformed_baseline_entry_rejected(self, tmp_path):
        path = tmp_path / BASELINE_NAME
        path.write_text(json.dumps({"entries": [{"path": "x.py"}]}))
        with pytest.raises(ValueError, match="lacks required key"):
            load_baseline(path)


# ----------------------------------------------------------------------
# The repo itself.
# ----------------------------------------------------------------------
class TestRepoIsClean:
    def test_repo_lints_clean_against_committed_baseline(self):
        report = lint_paths(REPO_ROOT)
        assert report.files > 100
        assert [d.format() for d in report.findings] == []
        assert report.stale_baseline == []

    def test_committed_baseline_never_grows(self):
        """The baseline may only shrink; bump this bound DOWN when entries
        are burned, never up — new code must be clean or suppressed inline
        with a reason."""
        entries = load_baseline(REPO_ROOT / BASELINE_NAME)
        assert len(entries) <= 0

    def test_collect_targets_covers_the_layout(self):
        targets = dict(
            (str(p.relative_to(REPO_ROOT)), profile)
            for p, profile in collect_targets(REPO_ROOT)
        )
        assert targets["src/repro/analysis/linter.py"] == "src"
        assert targets["scripts_run_full.py"] == "tools"
        assert targets["scripts/bench_perf.py"] == "tools"
        assert targets["tests/test_analysis_linter.py"] == "tests"

    def test_progcheck_reexport_is_lazy(self):
        """`import repro.analysis` must not drag in the verifier module;
        the names resolve on first attribute access (verified in a clean
        subprocess so this test is order-independent)."""
        import subprocess
        import sys

        code = (
            "import sys, repro.analysis\n"
            "assert 'repro.analysis.progcheck' not in sys.modules\n"
            "assert repro.analysis.verify_program is not None\n"
            "assert 'repro.analysis.progcheck' in sys.modules\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0
