"""Sharded Monte Carlo driver: parity, determinism, and the RNG/crossing
and per-round-conversion fixes that rode along with it.

The contract under test (see ``repro/threshold/sharded.py``):

* ``workers=1`` with no explicit shard count is the unsharded path and
  reproduces the single-process results bit-for-bit;
* the shard plan and per-shard ``SeedSequence`` children depend only on
  ``(seed, shots, num_shards)``, so pooled counts are identical for any
  worker count — in-process serial execution included;
* pooled Wilson bounds equal ``binomial_confidence`` on the pooled counts.
"""

import json
import math
import pickle
import sys
import time
import warnings
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

from repro.codes import SteaneCode
from repro.ft import ShorECProtocol, SteaneECProtocol
from repro.noise import circuit_level
from repro.threshold import (
    PseudoThresholdNotBracketed,
    PseudoThresholdWarning,
    code_capacity_memory,
    crossing_from_curve,
    memory_experiment,
    pseudo_threshold,
    sharded_memory_experiment,
    shard_sizes,
    spawn_shard_seeds,
)
from repro.threshold import runtime
from repro.util.stats import binomial_confidence, logical_error_per_round


@pytest.fixture(scope="module")
def code():
    return SteaneCode()


@pytest.fixture(scope="module")
def protocol():
    return SteaneECProtocol(circuit_level(2e-3))


class TestShardPlan:
    def test_sizes_cover_shots_without_empty_shards(self):
        for shots, n in [(10, 3), (64, 16), (1000, 16), (5, 16), (1, 1)]:
            sizes = shard_sizes(shots, n)
            assert sum(sizes) == shots
            assert all(s >= 1 for s in sizes)
            assert max(sizes) - min(sizes) <= 1

    def test_plan_independent_of_workers(self):
        # The plan takes no worker count at all — determinism by design.
        assert shard_sizes(1000, 4) == [250, 250, 250, 250]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            shard_sizes(0, 4)
        with pytest.raises(ValueError):
            shard_sizes(100, 0)

    def test_seed_spawning_rejects_generators(self):
        with pytest.raises(TypeError):
            spawn_shard_seeds(np.random.default_rng(0), 4)

    def test_caller_seed_sequence_not_mutated(self):
        """Spawning must not advance the caller's SeedSequence: repeated
        sharded runs with the same sequence object get the same children."""
        ss = np.random.SeedSequence(7)
        first = spawn_shard_seeds(ss, 3)
        second = spawn_shard_seeds(ss, 3)
        assert ss.n_children_spawned == 0
        for a, b in zip(first, second):
            assert np.array_equal(
                np.random.default_rng(a).random(4), np.random.default_rng(b).random(4)
            )

    def test_no_collision_with_caller_spawned_children(self):
        """Shard streams live under a reserved spawn-key branch, so they
        never duplicate children the caller spawns from the same root."""
        root = np.random.SeedSequence(42)
        theirs = root.spawn(3)
        ours = spawn_shard_seeds(root, 3)
        their_draws = [np.random.default_rng(c).random(4) for c in theirs]
        our_draws = [np.random.default_rng(c).random(4) for c in ours]
        for td in their_draws:
            for od in our_draws:
                assert not np.array_equal(td, od)

    @pytest.mark.slow_mp
    def test_more_workers_than_shards_warns(self, code):
        with pytest.warns(UserWarning, match="capped at the shard count"):
            sharded_memory_experiment(
                SteaneECProtocol(circuit_level(1e-2)), code,
                rounds=1, shots=200, seed=0, workers=3, num_shards=2,
            )


class TestSingleProcessParity:
    def test_workers1_bit_for_bit(self, code, protocol):
        """The acceptance criterion: workers=1 sharded == unsharded."""
        base = memory_experiment(protocol, code, rounds=2, shots=2000, seed=7)
        via_driver = sharded_memory_experiment(
            protocol, code, rounds=2, shots=2000, seed=7, workers=1
        )
        assert via_driver == base

    def test_serial_shards_match_manual_pooling(self, code, protocol):
        """Pooled counts == sum of per-shard runs with the spawned seeds."""
        shots, num_shards = 3000, 3
        pooled = sharded_memory_experiment(
            protocol, code, rounds=1, shots=shots, seed=11, workers=1,
            num_shards=num_shards,
        )
        sizes = shard_sizes(shots, num_shards)
        seeds = spawn_shard_seeds(11, num_shards)
        manual = [
            memory_experiment(protocol, code, rounds=1, shots=s, seed=ss)
            for s, ss in zip(sizes, seeds)
        ]
        assert pooled.shots == shots
        assert pooled.failures == sum(r.failures for r in manual)
        est, low, high = binomial_confidence(pooled.failures, shots)
        assert (pooled.failure_rate, pooled.low, pooled.high) == (est, low, high)
        assert pooled.per_round_rate == logical_error_per_round(est, 1)


@pytest.mark.slow_mp
class TestMultiprocessParity:
    def test_deterministic_across_worker_counts(self, code, protocol):
        """Fixed (seed, shots, num_shards) → identical results for any
        worker count, including in-process serial execution."""
        kwargs = dict(rounds=1, shots=1500, seed=3, num_shards=4)
        serial = memory_experiment(protocol, code, workers=1, **kwargs)
        two = memory_experiment(protocol, code, workers=2, **kwargs)
        three = memory_experiment(protocol, code, workers=3, **kwargs)
        assert serial == two == three

    def test_multiworker_agrees_with_single_process_statistics(self, code, protocol):
        """Different stream partitions, same physics: Wilson intervals of
        the sharded and unsharded estimates overlap."""
        single = memory_experiment(protocol, code, rounds=1, shots=4000, seed=5)
        sharded = memory_experiment(
            protocol, code, rounds=1, shots=4000, seed=5, workers=2
        )
        assert sharded.shots == single.shots
        assert max(single.low, sharded.low) <= min(single.high, sharded.high)

    def test_code_capacity_sharded(self, code):
        kwargs = dict(eps=5e-3, rounds=2, shots=4000, seed=9, num_shards=4)
        serial = code_capacity_memory(code, workers=1, **kwargs)
        pooled = code_capacity_memory(code, workers=2, **kwargs)
        assert pooled == serial
        assert pooled.shots == 4000

    def test_shor_protocol_crosses_process_boundary(self, code):
        """ShorECProtocol carries Pauli objects, whose slots-immutability
        guard used to break unpickling in the worker processes."""
        protocol = ShorECProtocol(code, circuit_level(1e-3))
        restored = pickle.loads(pickle.dumps(protocol))
        assert restored.code.n == code.n
        result = memory_experiment(
            protocol, code, rounds=1, shots=600, seed=1, workers=2, num_shards=2
        )
        assert result.shots == 600


class TestGridSeedStreams:
    def test_adjacent_root_seeds_do_not_share_streams(self):
        """Regression for the seed+i collision: grid point i of root seed s
        must not reuse the stream of point i-1 of root seed s+1."""
        children_0 = spawn_shard_seeds(0, 3)
        children_1 = spawn_shard_seeds(1, 3)
        draws_0 = [np.random.default_rng(c).random(8) for c in children_0]
        draws_1 = [np.random.default_rng(c).random(8) for c in children_1]
        for i in range(1, 3):
            assert not np.array_equal(draws_0[i], draws_1[i - 1])
        # And points within one scan stay mutually independent streams.
        assert not np.array_equal(draws_0[0], draws_0[1])

    def test_fit_scans_with_adjacent_seeds_decorrelated(self, code):
        """End-to-end: the shifted-grid overlap of seed s vs seed s+1 scans
        (exact under the old seed+i scheme) is gone."""
        grid = np.array([1e-3, 2e-3, 4e-3])
        factory = lambda eps: SteaneECProtocol(circuit_level(eps))  # noqa: E731
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PseudoThresholdWarning)
            _, curve_a = pseudo_threshold(factory, code, grid, shots=4000, seed=0)
            _, curve_b = pseudo_threshold(factory, code, grid, shots=4000, seed=1)
        # Old bug: seed 0's point i used stream seed 0+i == seed 1's point
        # i-1, so the overlapping sub-curves were *exactly* equal.  With
        # spawned child streams they are independent samples.
        overlap_a = [curve_a[i][1] for i in (1, 2)]
        overlap_b = [curve_b[i][1] for i in (0, 1)]
        assert overlap_a != overlap_b


class TestCrossingDetection:
    def test_exact_grid_point_crossing(self):
        """Regression: f1 == 0 used to be skipped, and the following pair
        could no longer bracket — the crossing came back NaN."""
        curve = [(1e-4, 5e-5), (2e-4, 2e-4), (4e-4, 9e-4)]
        assert crossing_from_curve(curve) == 2e-4

    def test_interpolated_crossing_unchanged(self):
        curve = [(1e-4, 5e-5), (4e-4, 8e-4)]
        crossing = crossing_from_curve(curve)
        assert 1e-4 < crossing < 4e-4
        # Same log-linear interpolation as before the fix.
        f1, f2 = 5e-5 - 1e-4, 8e-4 - 4e-4
        t = f1 / (f1 - f2)
        expected = math.exp(math.log(1e-4) + t * (math.log(4e-4) - math.log(1e-4)))
        assert crossing == pytest.approx(expected)

    def test_never_bracketing_curve_is_nan(self):
        assert math.isnan(crossing_from_curve([(1e-4, 2e-4), (2e-4, 5e-4)]))

    def test_lucky_touch_in_all_above_curve_is_not_a_crossing(self):
        """p == eps by Monte Carlo luck inside a curve that never dips
        below is not a pseudo-threshold."""
        assert math.isnan(
            crossing_from_curve([(1e-4, 2e-4), (2e-4, 2e-4), (4e-4, 9e-4)])
        )

    def test_exact_touch_at_first_grid_point(self):
        """A grid starting exactly on the threshold still reports it."""
        assert crossing_from_curve([(2e-4, 2e-4), (4e-4, 9e-4)]) == 2e-4

    def test_unbracketed_grid_warns_with_curve(self, code):
        factory = lambda eps: SteaneECProtocol(circuit_level(eps))  # noqa: E731
        grid = np.array([5e-3, 1e-2])  # far above threshold: p > eps
        with pytest.warns(PseudoThresholdWarning):
            crossing, curve = pseudo_threshold(
                factory, code, grid, shots=400, seed=4
            )
        assert math.isnan(crossing)
        assert len(curve) == 2

    def test_unbracketed_grid_raises_with_curve(self, code):
        factory = lambda eps: SteaneECProtocol(circuit_level(eps))  # noqa: E731
        grid = np.array([5e-3, 1e-2])
        with pytest.raises(PseudoThresholdNotBracketed) as excinfo:
            pseudo_threshold(
                factory, code, grid, shots=400, seed=4, on_unbracketed="raise"
            )
        assert len(excinfo.value.curve) == 2

    def test_bracketing_grid_does_not_warn(self, code):
        factory = lambda eps: SteaneECProtocol(circuit_level(eps))  # noqa: E731
        grid = np.array([1e-4, 3e-3])
        with warnings.catch_warnings():
            warnings.simplefilter("error", PseudoThresholdWarning)
            crossing, _ = pseudo_threshold(factory, code, grid, shots=4000, seed=6)
        assert not math.isnan(crossing)


class TestPerRoundConversion:
    def test_p_total_one_maps_to_one(self):
        assert logical_error_per_round(1.0, 5) == 1.0

    def test_endpoints_and_monotonicity(self):
        assert logical_error_per_round(0.0, 3) == 0.0
        rates = [logical_error_per_round(p, 3) for p in (0.1, 0.5, 0.9, 1.0)]
        assert rates == sorted(rates)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            logical_error_per_round(1.5, 3)
        with pytest.raises(ValueError):
            logical_error_per_round(0.5, 0)

    def test_memory_results_route_through_helper(self, code, protocol):
        result = memory_experiment(protocol, code, rounds=3, shots=1000, seed=2)
        assert result.per_round_rate == logical_error_per_round(
            result.failure_rate, 3
        )
        capacity = code_capacity_memory(code, 1e-2, rounds=2, shots=1000, seed=2)
        assert capacity.per_round_rate == logical_error_per_round(
            capacity.failure_rate, 2
        )


@pytest.mark.slow_mp
class TestPoolLifecycle:
    """The cached-executor contract of the resilient runtime: clean calls
    reuse one spawned pool; a pool whose worker died — even while idle in
    the cache between calls — is evicted and replaced, never returned."""

    def test_pool_cache_reused_across_clean_calls(self, code, protocol):
        kwargs = dict(rounds=1, shots=600, seed=3, workers=2, num_shards=4)
        first = sharded_memory_experiment(protocol, code, **kwargs)
        pool = runtime._pool_cache.get(2)
        assert pool is not None
        second = sharded_memory_experiment(protocol, code, **kwargs)
        # Same executor object: the ~0.6 s spawn cost is paid once per scan.
        assert runtime._pool_cache.get(2) is pool
        assert second == first

    def test_externally_killed_worker_evicts_and_recovers(self, code, protocol):
        """BrokenProcessPool eviction: SIGKILL a cached pool's worker (as
        the OOM killer would) and the next call must replace the executor
        and still finish bit-for-bit."""
        kwargs = dict(rounds=1, shots=600, seed=3, num_shards=4)
        base = sharded_memory_experiment(protocol, code, workers=1, **kwargs)
        sharded_memory_experiment(protocol, code, workers=2, **kwargs)
        pool = runtime._pool_cache[2]
        victim = next(iter(pool._processes.values()))
        victim.kill()
        victim.join(10)
        # The executor's manager thread marks the pool broken asynchronously.
        deadline = time.monotonic() + 10
        while not pool._broken and time.monotonic() < deadline:
            time.sleep(0.05)
        assert pool._broken
        result = sharded_memory_experiment(
            protocol, code, workers=2, backoff=0.001, **kwargs
        )
        assert result == base
        assert runtime._pool_cache.get(2) is not pool


class TestBenchGuard:
    """Like-for-like guard semantics of scripts/bench_perf.py (pure
    record-comparison functions; nothing is measured here)."""

    @staticmethod
    def _record(rate=4e6, shots=10_000, rounds=10, sharded=None,
                hostname="vm", cpus=1):
        record = {
            "config": {
                "shots": shots, "rounds": rounds,
                "noise": "circuit_level(0.001)",
                "hostname": hostname, "cpu_count": cpus,
            },
            "compiled": {"shot_rounds_per_sec": rate},
        }
        if sharded is not None:
            record["sharded"] = sharded
        return record

    @staticmethod
    def _stored(path, record):
        """Record under host_baselines as bench_perf v5 stores it."""
        import bench_perf

        return bench_perf.load_baselines(path)[bench_perf._host_key(record)]

    def test_same_protocol_regression_detected(self):
        from bench_perf import check_regression

        assert check_regression(self._record(rate=1e6), self._record(rate=4e6))
        assert check_regression(self._record(rate=4e6), self._record(rate=4e6)) is None

    def test_different_protocol_compares_nothing(self):
        from bench_perf import check_regression

        quick = self._record(rate=1e6, shots=2000, rounds=3)
        assert check_regression(quick, self._record(rate=4e6)) is None

    def test_sharded_compared_only_at_matching_workers(self):
        from bench_perf import check_regression

        old = self._record(sharded={"workers": 2, "shot_rounds_per_sec": 8e6})
        regressed = self._record(sharded={"workers": 2, "shot_rounds_per_sec": 1e6})
        other_workers = self._record(sharded={"workers": 4, "shot_rounds_per_sec": 1e6})
        assert check_regression(regressed, old)
        assert check_regression(other_workers, old) is None

    def test_host_key_separates_unlike_hardware(self):
        """Unlike hardware never meets in a comparison: each
        (hostname, cpu_count) owns its own baseline key."""
        from bench_perf import _host_key

        assert _host_key(self._record(hostname="vm", cpus=1)) == "vm|1cpu"
        assert _host_key(self._record(hostname="vm", cpus=8)) != _host_key(
            self._record(hostname="vm", cpus=1)
        )
        assert _host_key(self._record(hostname="ci", cpus=8)) != _host_key(
            self._record(hostname="vm", cpus=8)
        )

    def test_new_host_writes_fresh_and_preserves_other_hosts(self, tmp_path):
        """A run on hardware with no stored record starts its own ratchet
        (the v4 behavior silently *skipped* the guard instead) and never
        clobbers another host's baseline."""
        from bench_perf import _host_key, write_guarded

        path = tmp_path / "bench.json"
        old_host = self._record(rate=4e6, hostname="vm", cpus=1)
        assert write_guarded(old_host, path) == 0
        # 4x slower, but on different hardware: fresh ratchet, no refusal.
        new_host = self._record(rate=1e6, hostname="ci", cpus=8)
        assert write_guarded(new_host, path) == 0
        assert self._stored(path, old_host)["compiled"]["shot_rounds_per_sec"] == 4e6
        assert self._stored(path, new_host)["compiled"]["shot_rounds_per_sec"] == 1e6
        # ... and the guard is live for the new host from then on.
        assert write_guarded(self._record(rate=2e5, hostname="ci", cpus=8), path) == 2

    def test_same_host_regression_refused_on_write(self, tmp_path):
        from bench_perf import write_guarded

        path = tmp_path / "bench.json"
        assert write_guarded(self._record(rate=4e6), path) == 0
        assert write_guarded(self._record(rate=1e6), path) == 2

    def test_v4_single_record_file_migrates_under_its_host_key(self, tmp_path):
        """A pre-v5 file (one bare record at the top level) keeps guarding
        the host that recorded it."""
        from bench_perf import load_baselines, write_guarded

        path = tmp_path / "bench.json"
        path.write_text(json.dumps(self._record(rate=4e6)))
        assert load_baselines(path) == {"vm|1cpu": self._record(rate=4e6)}
        assert write_guarded(self._record(rate=1e6), path) == 2
        assert write_guarded(self._record(rate=5e6), path) == 0
        data = json.loads(path.read_text())
        assert data["schema_version"] == 5
        assert set(data["host_baselines"]) == {"vm|1cpu"}

    def test_write_refuses_protocol_mismatch(self, tmp_path):
        from bench_perf import write_guarded

        path = tmp_path / "bench.json"
        path.write_text(json.dumps(self._record()))
        assert write_guarded(self._record(shots=2000, rounds=3), path) == 2

    def test_write_carries_sharded_baseline_forward(self, tmp_path):
        from bench_perf import write_guarded

        path = tmp_path / "bench.json"
        sharded = {"workers": 2, "shot_rounds_per_sec": 8e6}
        stored = self._record(sharded=sharded)
        path.write_text(json.dumps(stored))
        assert write_guarded(self._record(), path) == 0
        assert self._stored(path, stored)["sharded"] == {
            **sharded, "carried_forward": True
        }

    def test_write_refuses_sharded_worker_mismatch(self, tmp_path):
        from bench_perf import write_guarded

        path = tmp_path / "bench.json"
        path.write_text(
            json.dumps(self._record(sharded={"workers": 2, "shot_rounds_per_sec": 8e6}))
        )
        mismatched = self._record(sharded={"workers": 4, "shot_rounds_per_sec": 8e6})
        assert write_guarded(mismatched, path) == 2
        # --force replaces the sharded baseline deliberately.
        assert write_guarded(mismatched, path, force=True) == 0
        assert self._stored(path, mismatched)["sharded"]["workers"] == 4

    def test_write_does_not_mutate_caller_record(self, tmp_path):
        from bench_perf import write_guarded

        path = tmp_path / "bench.json"
        path.write_text(
            json.dumps(self._record(sharded={"workers": 2, "shot_rounds_per_sec": 8e6}))
        )
        record = self._record()
        assert write_guarded(record, path) == 0
        assert "sharded" not in record  # carried forward only in the file
