"""Tier-1 suite hardening: a per-test watchdog alarm.

The chaos suite deliberately injects worker crashes and hangs into the
multiprocess runtime; if the runtime ever mishandles one, the failure
mode is a test that blocks forever — which would wedge the whole tier-1
run.  pytest-timeout is not in the environment, so this is the in-repo
equivalent: a SIGALRM watchdog around every test that raises a plain
``Failed`` instead of letting the run hang.

Every test gets a generous default budget; tests marked ``slow_mp``
(multiprocess/chaos — pool spawns cost ~0.6 s each on top of the work)
document themselves as such and may override the budget via
``@pytest.mark.slow_mp(timeout=N)``.  ``pytest -m "not slow_mp"`` (or
``python scripts_run_full.py --tests --quick``) runs the fast
single-process suite only.

SIGALRM only exists on POSIX and only fires in the main thread — both
true for this suite; the fixture is a no-op anywhere else.
"""

from __future__ import annotations

import signal
import threading

import pytest

# Far above any healthy test (the full suite runs in well under a minute)
# but far below "wedged CI job".
DEFAULT_TIMEOUT = 300.0
# Multiprocess tests pay pool spawns, chaos-driven pool rebuilds, and
# backoff sleeps; still nothing healthy takes remotely this long.
SLOW_MP_TIMEOUT = 180.0


def _watchdog_available() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@pytest.fixture(autouse=True)
def _test_watchdog(request):
    if not _watchdog_available():
        yield
        return
    marker = request.node.get_closest_marker("slow_mp")
    timeout = DEFAULT_TIMEOUT
    if marker is not None:
        timeout = float(marker.kwargs.get("timeout", SLOW_MP_TIMEOUT))

    def _alarm(signum, frame):
        pytest.fail(
            f"watchdog: test exceeded {timeout}s — presumed hung "
            f"(multiprocess deadlock or unrecovered chaos fault)",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
