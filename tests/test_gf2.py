"""Unit and property tests for GF(2) linear algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2 import (
    gf2_inverse,
    gf2_kernel,
    gf2_matmul,
    gf2_rank,
    gf2_row_reduce,
    gf2_row_space,
    gf2_solve,
    in_row_space,
)


def random_matrix(rows: int, cols: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(rows, cols), dtype=np.uint8)


matrix_strategy = st.tuples(
    st.integers(1, 8), st.integers(1, 8), st.integers(0, 10_000)
).map(lambda args: random_matrix(*args))


class TestRowReduce:
    def test_identity_is_fixed_point(self):
        eye = np.eye(4, dtype=np.uint8)
        rref, pivots = gf2_row_reduce(eye)
        assert np.array_equal(rref, eye)
        assert pivots == [0, 1, 2, 3]

    def test_zero_matrix(self):
        z = np.zeros((3, 5), dtype=np.uint8)
        rref, pivots = gf2_row_reduce(z)
        assert not rref.any()
        assert pivots == []

    def test_single_dependent_row(self):
        m = np.array([[1, 0, 1], [1, 0, 1]], dtype=np.uint8)
        assert gf2_rank(m) == 1

    def test_accepts_vector(self):
        rref, pivots = gf2_row_reduce(np.array([0, 1, 1], dtype=np.uint8))
        assert pivots == [1]

    @given(matrix_strategy)
    @settings(max_examples=50)
    def test_rref_has_same_row_space(self, m):
        rref, _ = gf2_row_reduce(m)
        for row in m:
            assert in_row_space(rref, row)
        for row in rref:
            if row.any():
                assert in_row_space(m, row)

    @given(matrix_strategy)
    @settings(max_examples=50)
    def test_pivot_columns_are_unit(self, m):
        rref, pivots = gf2_row_reduce(m)
        for r, c in enumerate(pivots):
            col = rref[:, c]
            assert col[r] == 1
            assert col.sum() == 1


class TestRankAndKernel:
    @given(matrix_strategy)
    @settings(max_examples=50)
    def test_rank_nullity(self, m):
        assert gf2_rank(m) + gf2_kernel(m).shape[0] == m.shape[1]

    @given(matrix_strategy)
    @settings(max_examples=50)
    def test_kernel_annihilated(self, m):
        for v in gf2_kernel(m):
            assert not gf2_matmul(m, v).any()

    def test_kernel_of_full_rank_square(self):
        m = np.array([[1, 1], [0, 1]], dtype=np.uint8)
        assert gf2_kernel(m).shape[0] == 0

    def test_rank_bounds(self):
        m = random_matrix(5, 9, 3)
        assert 0 <= gf2_rank(m) <= 5


class TestSolve:
    @given(matrix_strategy, st.integers(0, 10_000))
    @settings(max_examples=50)
    def test_solve_consistent_system(self, m, seed):
        rng = np.random.default_rng(seed)
        x_true = rng.integers(0, 2, size=m.shape[1], dtype=np.uint8)
        b = gf2_matmul(m, x_true)
        x = gf2_solve(m, b)
        assert x is not None
        assert np.array_equal(gf2_matmul(m, x), b)

    def test_solve_inconsistent(self):
        m = np.array([[1, 0], [1, 0]], dtype=np.uint8)
        b = np.array([0, 1], dtype=np.uint8)
        assert gf2_solve(m, b) is None

    def test_solve_shape_mismatch(self):
        with pytest.raises(ValueError):
            gf2_solve(np.eye(2, dtype=np.uint8), np.zeros(3, dtype=np.uint8))


class TestInverse:
    def test_identity(self):
        eye = np.eye(5, dtype=np.uint8)
        assert np.array_equal(gf2_inverse(eye), eye)

    def test_known_inverse(self):
        m = np.array([[1, 1], [0, 1]], dtype=np.uint8)
        inv = gf2_inverse(m)
        assert np.array_equal(gf2_matmul(m, inv), np.eye(2, dtype=np.uint8))

    def test_singular_raises(self):
        with pytest.raises(ValueError):
            gf2_inverse(np.zeros((2, 2), dtype=np.uint8))

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            gf2_inverse(np.zeros((2, 3), dtype=np.uint8))

    @given(st.integers(0, 10_000), st.integers(2, 6))
    @settings(max_examples=30)
    def test_random_invertible(self, seed, k):
        rng = np.random.default_rng(seed)
        while True:
            m = rng.integers(0, 2, size=(k, k), dtype=np.uint8)
            if gf2_rank(m) == k:
                break
        inv = gf2_inverse(m)
        assert np.array_equal(gf2_matmul(inv, m), np.eye(k, dtype=np.uint8))


class TestRowSpace:
    def test_row_space_membership(self):
        m = np.array([[1, 0, 1], [0, 1, 1]], dtype=np.uint8)
        assert in_row_space(m, np.array([1, 1, 0], dtype=np.uint8))
        assert not in_row_space(m, np.array([1, 1, 1], dtype=np.uint8))

    def test_row_space_basis_rank(self):
        m = random_matrix(6, 6, 7)
        basis = gf2_row_space(m)
        assert basis.shape[0] == gf2_rank(m)
