"""Tests of the [7,4,3] Hamming code against the paper's §2 claims."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classical import HammingCode
from repro.classical.hamming import H_EQ1, H_EQ15


class TestParityCheckForms:
    def test_eq1_matches_paper(self):
        code = HammingCode("eq1")
        assert np.array_equal(code.h, H_EQ1)

    def test_eq15_matches_paper(self):
        code = HammingCode("eq15")
        assert np.array_equal(code.h, H_EQ15)

    def test_forms_are_column_permutations(self):
        # Eq. (15) is "obtained from the form in Eq. (1) by permuting the
        # columns" — same multiset of columns.
        cols1 = sorted(tuple(H_EQ1[:, j]) for j in range(7))
        cols15 = sorted(tuple(H_EQ15[:, j]) for j in range(7))
        assert cols1 == cols15

    def test_unknown_form_rejected(self):
        with pytest.raises(ValueError):
            HammingCode("eq7")


class TestCodeStructure:
    @pytest.fixture(params=["eq1", "eq15"])
    def code(self, request):
        return HammingCode(request.param)

    def test_sixteen_codewords(self, code):
        assert code.codewords().shape == (16, 7)
        assert code.k == 4

    def test_minimum_distance_three(self, code):
        assert code.minimum_distance() == 3

    def test_eight_even_eight_odd(self, code):
        assert code.even_codewords().shape[0] == 8
        assert code.odd_codewords().shape[0] == 8

    def test_eq6_codewords_literal(self):
        # The even codewords listed in Eq. (6).
        expected = {
            "0000000", "0001111", "0110011", "0111100",
            "1010101", "1011010", "1100110", "1101001",
        }
        code = HammingCode("eq1")
        got = {"".join(map(str, w)) for w in code.even_codewords()}
        assert got == expected

    def test_eq7_codewords_literal(self):
        # The odd codewords listed in Eq. (7).
        expected = {
            "1111111", "1110000", "1001100", "1000011",
            "0101010", "0100101", "0011001", "0010110",
        }
        code = HammingCode("eq1")
        got = {"".join(map(str, w)) for w in code.odd_codewords()}
        assert got == expected

    def test_contains_dual(self, code):
        # The property enabling the CSS/Steane construction.
        assert code.contains_dual()


class TestErrorCorrection:
    def test_syndrome_reads_position_eq1(self):
        # Eq. (3): H·e_i is the i-th column, which is binary(i+1).
        code = HammingCode("eq1")
        for i in range(7):
            err = np.zeros(7, dtype=np.uint8)
            err[i] = 1
            s = code.syndrome(err).ravel()
            assert int(s[0]) * 4 + int(s[1]) * 2 + int(s[2]) == i + 1

    @given(st.integers(0, 15), st.integers(0, 6))
    @settings(max_examples=40)
    def test_single_error_corrected(self, msg_idx, flip):
        code = HammingCode("eq1")
        msg = np.array([(msg_idx >> j) & 1 for j in range(4)], dtype=np.uint8)
        word = code.encode(msg)
        corrupted = word.copy()
        corrupted[flip] ^= 1
        assert np.array_equal(code.correct_single(corrupted), word)

    def test_double_error_miscorrects(self):
        # §2: "if two or more different bits flip, the encoded data will be
        # damaged" — recovery lands on a *wrong* codeword.
        code = HammingCode("eq1")
        word = code.codewords()[3]
        corrupted = word.copy()
        corrupted[0] ^= 1
        corrupted[1] ^= 1
        repaired = code.correct_single(corrupted)
        assert code.is_codeword(repaired)
        assert not np.array_equal(repaired, word)

    def test_error_position_none_when_clean(self):
        code = HammingCode("eq1")
        assert code.error_position(code.codewords()[5]) is None

    def test_logical_value_majority(self):
        code = HammingCode("eq1")
        for word in code.codewords():
            expected = int(word.sum() % 2)
            # Flip any single bit: destructive measurement still decodes.
            for i in range(7):
                corrupted = word.copy()
                corrupted[i] ^= 1
                assert code.logical_value(corrupted) == expected
