"""Tests for generic linear codes and the repetition code."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classical import LinearCode, RepetitionCode
from repro.classical.hamming import H_EQ1


class TestLinearCode:
    def test_dimensions(self):
        code = LinearCode(H_EQ1)
        assert (code.n, code.k, code.rank) == (7, 4, 3)

    def test_redundant_rows_tolerated(self):
        h = np.vstack([H_EQ1, H_EQ1[0]])
        code = LinearCode(h)
        assert code.k == 4

    def test_encode_roundtrip_syndrome_free(self):
        code = LinearCode(H_EQ1)
        for idx in range(16):
            msg = np.array([(idx >> j) & 1 for j in range(4)], dtype=np.uint8)
            assert code.is_codeword(code.encode(msg))

    def test_encode_wrong_length(self):
        code = LinearCode(H_EQ1)
        with pytest.raises(ValueError):
            code.encode(np.zeros(3, dtype=np.uint8))

    def test_batch_syndrome_shape(self):
        code = LinearCode(H_EQ1)
        batch = np.zeros((5, 7), dtype=np.uint8)
        assert code.syndrome(batch).shape == (5, 3)

    def test_decode_beyond_capacity_returns_input(self):
        code = LinearCode(np.array([[1, 1, 0], [0, 1, 1]], dtype=np.uint8))
        # rep-3 code: weight-2 error has the syndrome of weight-1 on the
        # remaining bit; decoding is defined but lands on the wrong word.
        word = np.array([1, 1, 1], dtype=np.uint8)
        noisy = word ^ np.array([1, 1, 0], dtype=np.uint8)
        assert code.is_codeword(code.decode(noisy))

    def test_dual_of_hamming_is_simplex(self):
        code = LinearCode(H_EQ1)
        dual = code.dual()
        assert (dual.n, dual.k) == (7, 3)
        # Simplex code: all nonzero words have weight 4.
        words = dual.codewords()
        weights = sorted(int(w.sum()) for w in words)
        assert weights == [0] + [4] * 7

    def test_1d_parity_check_rejected(self):
        with pytest.raises(ValueError):
            LinearCode(np.zeros((2, 2, 2), dtype=np.uint8))


class TestRepetitionCode:
    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_parameters(self, n):
        code = RepetitionCode(n)
        assert (code.n, code.k) == (n, 1)
        assert code.minimum_distance() == n

    def test_too_small(self):
        with pytest.raises(ValueError):
            RepetitionCode(1)

    @given(st.integers(3, 9), st.integers(0, 10_000))
    @settings(max_examples=30)
    def test_corrects_minority_flips(self, n, seed):
        code = RepetitionCode(n)
        t = (n - 1) // 2
        rng = np.random.default_rng(seed)
        word = code.encode(np.array([1], dtype=np.uint8))
        flips = rng.choice(n, size=rng.integers(0, t + 1), replace=False)
        noisy = word.copy()
        noisy[flips] ^= 1
        assert np.array_equal(code.decode(noisy, max_weight=t), word)
