"""Smoke/shape tests for the experiment runners (quick mode).

The heavy statistical assertions live in benchmarks/; these tests pin the
runner *interfaces* (keys, row structure) and the cheap exact claims so a
plain `pytest tests/` still exercises every experiment module.
"""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.e05_shor_vs_steane_cost import run as run_e05
from repro.experiments.e06_code_family_scaling import run as run_e06
from repro.experiments.e09_factoring_resources import run as run_e09
from repro.experiments.e13_anyonic_logic import run as run_e13
from repro.experiments.e14_toffoli_budget import run as run_e14


class TestRegistry:
    def test_all_fourteen_registered(self):
        assert sorted(ALL_EXPERIMENTS) == [f"E{i:02d}" for i in range(1, 15)]

    def test_runners_callable(self):
        for runner in ALL_EXPERIMENTS.values():
            assert callable(runner)


class TestExactClaims:
    """The deterministic (non-Monte-Carlo) paper numbers must be exact."""

    def test_e05_resource_counts(self):
        out = run_e05(quick=True)
        assert out["measured_shor_ancillas"] == 24
        assert out["measured_shor_xors"] == 24
        assert out["measured_steane_ancillas"] == 14
        assert out["measured_steane_xors"] == 14

    def test_e06_shape_ratio(self):
        out = run_e06(quick=True)
        assert out["measured_shape_ratio"] == pytest.approx(2.0**-4)
        assert out["formula_tracks_bruteforce"]

    def test_e09_paper_table(self):
        out = run_e09(quick=True)
        assert out["measured_logical_qubits"] == 2160
        assert out["planned_levels_paper_constants"] == 3
        assert out["planned_block_paper_constants"] == 343
        assert 9e5 < out["planned_total_qubits_paper_constants"] < 1.1e6

    def test_e13_group_theory(self):
        out = run_e13(quick=True)
        assert out["not_gate_algebraic"]
        assert out["not_gate_compiled_depth"] == 1
        assert out["a5_only_nonsolvable_leq_60"]
        assert out["group_report"]["A5"]["perfect"]

    def test_e14_footnote_j(self):
        out = run_e14(quick=True)
        assert out["footnote_j_holds"]
        assert out["gadget_resources"]["ccz_locations"] == 14

    def test_runner_outputs_have_experiment_and_claim(self):
        for name, runner in list(ALL_EXPERIMENTS.items()):
            if name in ("E05", "E06", "E09", "E13", "E14"):
                out = runner(quick=True)
                assert out["experiment"] == name
                assert isinstance(out["claim"], str) and out["claim"]
