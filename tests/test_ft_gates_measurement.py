"""Tests for transversal gates, logical measurement, the Toffoli gadget,
and leakage detection."""

import numpy as np
import pytest

from repro.circuits import Circuit, gate_counts
from repro.codes import SteaneCode
from repro.ft.leakage_detect import detection_outcome_ideal, leakage_detection_circuit
from repro.ft.measurement import (
    decode_destructive_record,
    destructive_logical_measurement,
    repeated_nondestructive_measurement,
)
from repro.ft.toffoli import ShorToffoliGadget, encoded_toffoli_resources
from repro.ft.transversal import (
    transversal_cnot,
    transversal_hadamard,
    transversal_pauli,
    transversal_phase,
)
from repro.stabilizer import StabilizerSimulator
from repro.statevector import StateVector, run_circuit


@pytest.fixture(scope="module")
def steane():
    return SteaneCode()


class TestTransversalGates:
    def _encoded(self, steane, value=0):
        sim = StabilizerSimulator(7)
        if value:
            sim.x_gate(steane.input_qubit)
        sim.run(steane.encoding_circuit())
        return sim

    def test_transversal_x_flips_logical(self, steane):
        sim = self._encoded(steane)
        sim.run(transversal_pauli(steane, "X"))
        assert sim.pauli_expectation(steane.logical_z[0]) == -1

    def test_transversal_z_flips_logical_phase(self, steane):
        sim = self._encoded(steane)
        for q in range(7):
            sim.h(q)  # |+̄>
        sim.run(transversal_pauli(steane, "Z"))
        assert sim.pauli_expectation(steane.logical_x[0]) == -1

    def test_transversal_h_swaps_bases(self, steane):
        sim = self._encoded(steane)
        sim.run(transversal_hadamard(steane))
        assert sim.pauli_expectation(steane.logical_x[0]) == 1

    def test_transversal_phase_preserves_codespace(self, steane):
        sim = self._encoded(steane)
        sim.run(transversal_phase(steane))
        for g in steane.generators:
            assert sim.pauli_expectation(g) == 1
        assert sim.pauli_expectation(steane.logical_z[0]) == 1

    def test_transversal_cnot_logical_action(self, steane):
        # Encoded |1>|0> -> |1>|1> under blockwise XOR (Fig. 11).
        sim = StabilizerSimulator(14)
        sim.x_gate(steane.input_qubit)
        sim.run(steane.encoding_circuit().remapped({i: i for i in range(7)}, num_qubits=14))
        sim.run(steane.encoding_circuit().remapped({i: 7 + i for i in range(7)}, num_qubits=14))
        sim.run(transversal_cnot(steane, 0, 7, num_qubits=14))
        from repro.paulis import Pauli

        z2 = Pauli(np.zeros(14, dtype=np.uint8), np.concatenate([np.zeros(7), np.ones(7)]).astype(np.uint8))
        assert sim.pauli_expectation(z2) == -1

    def test_transversal_gate_counts(self, steane):
        assert gate_counts(transversal_cnot(steane, 0, 7))["CNOT"] == 7
        assert gate_counts(transversal_hadamard(steane))["H"] == 7

    def test_bad_letter_rejected(self, steane):
        with pytest.raises(ValueError):
            transversal_pauli(steane, "H")


class TestDestructiveMeasurement:
    def test_circuit_structure(self, steane):
        c = destructive_logical_measurement(steane)
        assert gate_counts(c)["M"] == 7

    def test_x_basis_adds_hadamards(self, steane):
        c = destructive_logical_measurement(steane, basis="X")
        counts = gate_counts(c)
        assert counts["H"] == 7

    def test_bad_basis(self, steane):
        with pytest.raises(ValueError):
            destructive_logical_measurement(steane, basis="Y")

    def test_decode_tolerates_single_flip(self, steane):
        flips = np.zeros((7, 7), dtype=np.uint8)
        for i in range(7):
            flips[i, i] = 1
        assert not decode_destructive_record(steane, flips).any()

    def test_decode_flags_logical(self, steane):
        flips = np.ones((1, 7), dtype=np.uint8)
        assert decode_destructive_record(steane, flips)[0] == 1

    def test_nondestructive_repeats(self, steane):
        c = repeated_nondestructive_measurement(steane, repetitions=2)
        counts = gate_counts(c)
        assert counts["CNOT"] == 6  # Fig. 4's 3 XORs, twice
        assert counts["M"] == 2
        with pytest.raises(ValueError):
            repeated_nondestructive_measurement(steane, repetitions=0)


class TestToffoliGadget:
    @pytest.mark.parametrize("basis", range(8))
    def test_classical_inputs(self, basis):
        gadget = ShorToffoliGadget()
        amps = np.zeros(8, dtype=complex)
        amps[basis] = 1.0
        out = gadget.run_dense(amps, rng=basis)
        x, y, z = (basis >> 2) & 1, (basis >> 1) & 1, basis & 1
        expected = (x << 2) | (y << 1) | (z ^ (x & y))
        assert abs(out[expected]) == pytest.approx(1.0)

    @pytest.mark.parametrize("seed", range(6))
    def test_superposition_input(self, seed):
        gadget = ShorToffoliGadget()
        rng = np.random.default_rng(seed)
        amps = rng.normal(size=8) + 1j * rng.normal(size=8)
        amps /= np.linalg.norm(amps)
        out = gadget.run_dense(amps, rng=rng)
        # Reference: dense CCX on the same input.
        sv = StateVector.from_amplitudes(amps)
        sv.apply_gate("CCX", 0, 1, 2)
        overlap = abs(np.vdot(sv.amplitudes(), out)) ** 2
        assert overlap == pytest.approx(1.0, abs=1e-9)

    def test_bad_input_shape(self):
        with pytest.raises(ValueError):
            ShorToffoliGadget().run_dense(np.ones(4))

    def test_encoded_resource_accounting(self):
        summary = encoded_toffoli_resources(measurement_repetitions=2)
        assert summary["ccz_locations"] == 2 * 7
        counts = summary["gate_counts"]
        assert counts["CCZ"] == 14
        assert counts["M"] >= 2 * 7 + 3 * 7  # cat readouts + data blocks
        assert summary["num_qubits"] == 6 * 7 + 7 + 1


class TestLeakageDetection:
    def test_circuit_matches_fig15(self):
        c = leakage_detection_circuit()
        gates = [op.gate for op in c if op.gate != "TICK"]
        assert gates == ["R", "CNOT", "X", "CNOT", "X", "M"]

    def test_healthy_qubit_reads_one(self):
        # Works for both |0> and |1> data states.
        for initial in (0, 1):
            c = Circuit(2, 1)
            if initial:
                c.x(0)
            c.compose(leakage_detection_circuit())
            _, record = run_circuit(c, rng=0)
            assert record[0] == 1

    def test_healthy_superposition_undisturbed(self):
        c = Circuit(2, 1).h(0)
        c.compose(leakage_detection_circuit())
        sv, record = run_circuit(c, rng=0)
        assert record[0] == 1
        # Data returns to |+> (ancilla ends in |1> after its single flip).
        ref = StateVector(2)
        ref.apply_gate("H", 0)
        ref.apply_gate("X", 1)
        assert sv.fidelity(ref) == pytest.approx(1.0)

    def test_ideal_outcomes(self):
        assert detection_outcome_ideal(True) == 0
        assert detection_outcome_ideal(False) == 1
