"""Packed-program verifier: corrupted instruction streams raise distinct
typed diagnostics, every shipped experiment's compiled program verifies
clean, and the verifier actually runs at build time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.progcheck import (
    BadOpcode,
    BufferAliasError,
    NoiseRangeError,
    OperandRangeError,
    ProgramVerificationError,
    verify_program,
)
from repro.circuits import Circuit
from repro.codes.shor9 import ShorNineCode
from repro.codes.steane import SteaneCode
from repro.ft.exrec import ShorECProtocol, SteaneECProtocol
from repro.noise.models import NoiseModel, circuit_level
from repro.pauliframe import compiled as cmod
from repro.pauliframe.compiled import CompiledFrameProgram


def small_program() -> CompiledFrameProgram:
    circ = Circuit(3, 2)
    circ.h(0)
    circ.cnot(0, 1)
    circ.cnot(1, 2)
    circ.measure(0, 0)
    circ.measure(1, 1)
    return CompiledFrameProgram(circ, circuit_level(1e-3))


def stream_of(prog: CompiledFrameProgram) -> list[tuple]:
    return list(prog._instructions)


def reverify(prog: CompiledFrameProgram, instructions: list[tuple]) -> None:
    verify_program(
        instructions,
        prog.circuit.num_qubits,
        prog.circuit.num_cbits,
        prog._counts,
        prog.noise,
    )


def idx(*vals: int) -> np.ndarray:
    return np.array(vals, dtype=np.intp)


class TestCorruptedStreams:
    def test_clean_stream_verifies(self):
        prog = small_program()
        reverify(prog, stream_of(prog))

    def test_bad_opcode(self):
        prog = small_program()
        stream = stream_of(prog) + [(99, idx(0))]
        with pytest.raises(BadOpcode, match="unknown opcode 99"):
            reverify(prog, stream)

    def test_wrong_arity_is_bad_opcode(self):
        prog = small_program()
        stream = stream_of(prog) + [(cmod._OP_CNOT, idx(0))]
        with pytest.raises(BadOpcode, match="expects 2 operand"):
            reverify(prog, stream)

    def test_empty_tuple_is_bad_opcode(self):
        prog = small_program()
        with pytest.raises(BadOpcode, match="empty instruction"):
            reverify(prog, stream_of(prog) + [()])

    def test_qubit_index_out_of_range(self):
        prog = small_program()
        stream = stream_of(prog) + [(cmod._OP_H, idx(7))]
        with pytest.raises(OperandRangeError, match="qubit index outside"):
            reverify(prog, stream)

    def test_negative_qubit_index(self):
        prog = small_program()
        stream = stream_of(prog) + [(cmod._OP_H, idx(-1))]
        with pytest.raises(OperandRangeError, match="qubit index outside"):
            reverify(prog, stream)

    def test_cbit_index_out_of_range(self):
        prog = small_program()
        stream = stream_of(prog) + [(cmod._OP_M, idx(0), idx(40))]
        with pytest.raises(OperandRangeError, match="cbit index outside"):
            reverify(prog, stream)

    def test_noise_slice_past_budget(self):
        prog = small_program()
        total = prog._counts["g1"]
        stream = stream_of(prog) + [(cmod._OP_NG1, idx(0), total, 1)]
        with pytest.raises(OperandRangeError, match="noise-plane slice"):
            reverify(prog, stream)

    def test_aliased_fused_batch(self):
        prog = small_program()
        stream = stream_of(prog) + [(cmod._OP_H, idx(0, 0))]
        with pytest.raises(BufferAliasError, match="duplicate qubit rows"):
            reverify(prog, stream)

    def test_control_target_overlap(self):
        prog = small_program()
        stream = stream_of(prog) + [(cmod._OP_CNOT, idx(0, 1), idx(1, 2))]
        with pytest.raises(BufferAliasError, match="controls and targets overlap"):
            reverify(prog, stream)

    def test_replayed_noise_plane_rows(self):
        prog = small_program()
        # Duplicate an existing noise instruction: its plane slice is now
        # consumed twice — two locations sharing one sampled fault.
        stream = stream_of(prog)
        noise_ins = next(
            ins
            for ins in stream
            if ins[0] in (cmod._OP_NG1, cmod._OP_NG2, cmod._OP_NM)
        )
        with pytest.raises(BufferAliasError, match="consumed by two instructions"):
            reverify(prog, stream + [noise_ins])

    def test_noise_probability_above_one(self):
        prog = small_program()
        bad = circuit_level(1e-3)
        # NoiseModel validates in __post_init__; corrupt a frozen copy to
        # prove the verifier re-checks rather than trusting the dataclass.
        object.__setattr__(bad, "eps_meas", 1.5)
        with pytest.raises(NoiseRangeError, match="eps_meas=1.5"):
            verify_program(
                stream_of(prog),
                prog.circuit.num_qubits,
                prog.circuit.num_cbits,
                prog._counts,
                bad,
            )

    def test_negative_noise_probability(self):
        prog = small_program()
        bad = circuit_level(1e-3)
        object.__setattr__(bad, "eps_gate2", -0.25)
        with pytest.raises(NoiseRangeError, match="eps_gate2=-0.25"):
            verify_program(
                stream_of(prog),
                prog.circuit.num_qubits,
                prog.circuit.num_cbits,
                prog._counts,
                bad,
            )

    def test_diagnostics_are_distinct_types_under_one_base(self):
        kinds = {BadOpcode, OperandRangeError, BufferAliasError, NoiseRangeError}
        assert all(issubclass(k, ProgramVerificationError) for k in kinds)
        assert all(issubclass(k, ValueError) for k in kinds)
        assert len(kinds) == 4

    def test_error_carries_instruction_index(self):
        prog = small_program()
        stream = stream_of(prog)
        stream.append((99,))
        with pytest.raises(BadOpcode) as exc_info:
            reverify(prog, stream)
        assert exc_info.value.instruction_index == len(stream) - 1
        assert f"instruction {len(stream) - 1}" in str(exc_info.value)


class TestBuildTimeWiring:
    def test_verify_runs_during_construction(self, monkeypatch):
        calls = []
        original = CompiledFrameProgram.verify
        monkeypatch.setattr(
            CompiledFrameProgram,
            "verify",
            lambda self: (calls.append(1), original(self)),
        )
        small_program()
        assert calls

    def test_manual_reverify_of_built_program(self):
        prog = small_program()
        prog.verify()  # idempotent on a clean program

    def test_corrupting_a_built_program_is_caught_on_reverify(self):
        prog = small_program()
        prog._instructions = stream_of(prog) + [(cmod._OP_H, idx(99))]
        with pytest.raises(OperandRangeError):
            prog.verify()


class TestShippedExperimentsVerifyClean:
    """Building a protocol compiles (and therefore verifies) its factory
    and extraction programs; reverifying the streams directly makes the
    assertion explicit rather than relying on __init__ side effects."""

    @pytest.fixture(scope="class")
    def noise(self):
        return circuit_level(1e-3)

    def _all_programs(self, protocol):
        progs = []
        for attr in ("_factory_prog", "_extract_prog"):
            if hasattr(protocol, attr):
                progs.append(getattr(protocol, attr))
        progs.extend(getattr(protocol, "_factory_progs", {}).values())
        return progs

    @pytest.mark.parametrize(
        "build",
        [
            lambda noise: SteaneECProtocol(noise),
            lambda noise: ShorECProtocol(SteaneCode(), noise),
            lambda noise: ShorECProtocol(ShorNineCode(), noise),
        ],
        ids=["steane-ec", "shor-ec-steane", "shor-ec-shor9"],
    )
    def test_protocol_programs_verify(self, build, noise):
        protocol = build(noise)
        progs = self._all_programs(protocol)
        assert progs, "expected compiled programs on the protocol"
        for prog in progs:
            reverify(prog, stream_of(prog))

    def test_unfused_variant_also_verifies(self, noise):
        circ = SteaneECProtocol(noise).prep.circuit()
        prog = CompiledFrameProgram(circ, noise, fuse=False)
        reverify(prog, stream_of(prog))

    def test_noise_free_program_verifies(self):
        circ = Circuit(2)
        circ.h(0)
        circ.cnot(0, 1)
        prog = CompiledFrameProgram(circ, NoiseModel())
        reverify(prog, stream_of(prog))
