"""Tests for the assembled EC protocols (Fig. 9 end-to-end)."""

import numpy as np
import pytest

from repro.codes import FiveQubitCode, SteaneCode
from repro.ft import ShorECProtocol, SteaneECProtocol, resolve_syndrome_policy
from repro.noise import NoiseModel, circuit_level


@pytest.fixture(scope="module")
def steane():
    return SteaneCode()


class TestSyndromePolicies:
    def test_paper_policy_needs_agreement(self):
        syn = np.zeros((3, 2, 3), dtype=np.uint8)
        syn[0, 0] = [1, 0, 0]
        syn[0, 1] = [1, 0, 0]  # agree, nontrivial -> act
        syn[1, 0] = [1, 0, 0]
        syn[1, 1] = [0, 1, 0]  # disagree -> do nothing
        accepted, act = resolve_syndrome_policy(syn, "paper")
        assert act.tolist() == [True, False, False]
        assert accepted[0].tolist() == [1, 0, 0]

    def test_first_policy(self):
        syn = np.zeros((2, 1, 3), dtype=np.uint8)
        syn[0, 0] = [0, 1, 1]
        accepted, act = resolve_syndrome_policy(syn, "first")
        assert act.tolist() == [True, False]

    def test_majority_policy(self):
        syn = np.zeros((1, 3, 2), dtype=np.uint8)
        syn[0, 0] = [1, 0]
        syn[0, 1] = [1, 1]
        syn[0, 2] = [0, 1]
        accepted, act = resolve_syndrome_policy(syn, "majority")
        assert accepted[0].tolist() == [1, 1]

    def test_policy_validation(self):
        syn = np.zeros((1, 1, 3), dtype=np.uint8)
        with pytest.raises(ValueError):
            resolve_syndrome_policy(syn, "paper")
        with pytest.raises(ValueError):
            resolve_syndrome_policy(np.zeros((1, 2, 3), dtype=np.uint8), "majority")
        with pytest.raises(ValueError):
            resolve_syndrome_policy(syn, "bogus")


class TestSteaneProtocol:
    def test_noiseless_identity(self, steane):
        proto = SteaneECProtocol(NoiseModel())
        fx, fz = proto.run_round(20, seed=0)
        assert not fx.any() and not fz.any()

    @pytest.mark.parametrize("qubit,kind", [(0, "X"), (3, "X"), (5, "Z"), (6, "Z")])
    def test_corrects_any_single_error(self, steane, qubit, kind):
        proto = SteaneECProtocol(NoiseModel())
        data_fx = np.zeros((10, 7), dtype=np.uint8)
        data_fz = np.zeros((10, 7), dtype=np.uint8)
        if kind == "X":
            data_fx[:, qubit] = 1
        else:
            data_fz[:, qubit] = 1
        fx, fz = proto.run_round(10, seed=1, data_fx=data_fx, data_fz=data_fz)
        assert not fx.any() and not fz.any()

    def test_corrects_simultaneous_x_and_z(self, steane):
        proto = SteaneECProtocol(NoiseModel())
        data_fx = np.zeros((4, 7), dtype=np.uint8)
        data_fz = np.zeros((4, 7), dtype=np.uint8)
        data_fx[:, 1] = 1
        data_fz[:, 4] = 1
        fx, fz = proto.run_round(4, seed=2, data_fx=data_fx, data_fz=data_fz)
        assert not fx.any() and not fz.any()

    def test_double_error_becomes_logical(self, steane):
        # Eq. (12): two bit flips miscorrect to the logical flip.
        proto = SteaneECProtocol(NoiseModel())
        data_fx = np.zeros((2, 7), dtype=np.uint8)
        data_fx[:, 0] = data_fx[:, 1] = 1
        fx, fz = proto.run_round(2, seed=3, data_fx=data_fx)
        cfx, cfz = steane.correct_frame(fx, fz)
        action = steane.logical_action_of_frame(cfx, cfz)
        assert action[:, 0].all()

    def test_logical_rate_quadratic_scaling(self, steane):
        rates = []
        for eps in (5e-4, 2e-3):
            proto = SteaneECProtocol(circuit_level(eps))
            fx, fz = proto.run_round(30_000, seed=4)
            cfx, cfz = steane.correct_frame(fx, fz)
            action = steane.logical_action_of_frame(cfx, cfz)
            rates.append(action.any(axis=1).mean())
        # 4x the physical rate should give ~16x the logical rate; allow a
        # generous band for Monte Carlo noise and linear contamination.
        ratio = rates[1] / max(rates[0], 1e-9)
        assert 6 < ratio < 40

    def test_verification_improves_high_noise(self, steane):
        eps = 3e-3
        with_v = SteaneECProtocol(circuit_level(eps), verify_ancilla=True)
        without_v = SteaneECProtocol(circuit_level(eps), verify_ancilla=False)
        results = {}
        for name, proto in (("with", with_v), ("without", without_v)):
            fx, fz = proto.run_round(40_000, seed=5)
            cfx, cfz = steane.correct_frame(fx, fz)
            action = steane.logical_action_of_frame(cfx, cfz)
            results[name] = action.any(axis=1).mean()
        assert results["with"] <= results["without"] * 1.1


class TestShorProtocol:
    def test_noiseless_identity_steane_code(self, steane):
        proto = ShorECProtocol(steane, NoiseModel())
        fx, fz = proto.run_round(10, seed=0)
        assert not fx.any() and not fz.any()

    def test_corrects_singles_five_qubit(self):
        code = FiveQubitCode()
        proto = ShorECProtocol(code, NoiseModel())
        for q in range(5):
            for kind in ("X", "Z", "Y"):
                data_fx = np.zeros((2, 5), dtype=np.uint8)
                data_fz = np.zeros((2, 5), dtype=np.uint8)
                if kind in ("X", "Y"):
                    data_fx[:, q] = 1
                if kind in ("Z", "Y"):
                    data_fz[:, q] = 1
                fx, fz = proto.run_round(2, seed=1, data_fx=data_fx, data_fz=data_fz)
                assert not fx.any() and not fz.any(), (q, kind)

    def test_noisy_run_below_physical(self):
        code = SteaneCode()
        eps = 3e-4
        proto = ShorECProtocol(code, circuit_level(eps))
        fx, fz = proto.run_round(30_000, seed=2)
        cfx, cfz = code.correct_frame(fx, fz)
        action = code.logical_action_of_frame(cfx, cfz)
        assert action.any(axis=1).mean() < 10 * eps

    def test_factory_exhaustion_raises(self):
        # eps_meas = 1 flips every verification readout, so every cat
        # preparation is rejected and resampling has nothing to draw from.
        code = SteaneCode()
        proto = ShorECProtocol(code, NoiseModel(eps_meas=1.0))
        with pytest.raises(RuntimeError):
            proto.run_round(50, seed=3)
