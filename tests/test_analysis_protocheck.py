"""Scheduler protocol verifier: the SQL mini-parser, the static
conformance pass (protocheck), and the interleaving explorer.

The mutant tests are the teeth: each one applies a realistic bad edit to
the *shipped* scheduler source and asserts the checker reports exactly
the expected RPL4xx defect.  A mutated rule usually also leaves its
declared transition unimplemented, so an RPL407 companion
("declared transition with no conforming statement") is legitimate
alongside the primary code — but nothing else is.

The explorer tests pin the minimal counterexample traces: when a
protocol knob is weakened the model must not merely fail, it must fail
with the *specific* interleaving that breaks the real scheduler.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.explore import ModelConfig, explore
from repro.analysis.protocheck import check_source, extract_jobs_dml
from repro.analysis.protospec import (
    JOB_STATES,
    TRANSITION_SPEC,
    transition_diagram,
)
from repro.analysis.sqlmini import (
    SqlParseError,
    UpdateStatement,
    parse_statement,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
SCHEDULER = REPO_ROOT / "src" / "repro" / "threshold" / "scheduler.py"


# ----------------------------------------------------------------------
# SQL mini-parser.
# ----------------------------------------------------------------------
class TestSqlMini:
    def test_update_round_trip(self):
        stmt = parse_statement(
            "UPDATE jobs SET state='done', result_shots=?, lease_owner=NULL "
            "WHERE job_id=? AND lease_owner=? AND state='leased'"
        )
        assert isinstance(stmt, UpdateStatement)
        assert stmt.table == "jobs"
        cols = stmt.set_columns
        assert cols["state"].text == "done"
        assert cols["result_shots"].is_param
        assert cols["lease_owner"].is_null
        assert stmt.where_value("job_id").is_param
        assert stmt.where_value("state").text == "leased"
        assert stmt.where_value("missing") is None

    def test_update_expression_assignments_normalize(self):
        stmt = parse_statement(
            "UPDATE jobs SET attempts=MAX(attempts - 1, 0), priority=MAX(priority, ?) "
            "WHERE job_id=?"
        )
        assert stmt.set_columns["attempts"].kind == "expr"
        assert stmt.set_columns["attempts"].text == "max(attempts-1,0)"
        assert stmt.set_columns["priority"].text == "max(priority,?)"

    def test_insert_round_trip(self):
        stmt = parse_statement(
            "INSERT INTO jobs (run_key, state, shots) VALUES (?, 'pending', ?)"
        )
        assert stmt.table == "jobs"
        assert stmt.columns == ("run_key", "state", "shots")
        assert stmt.column_values["state"].text == "pending"
        assert stmt.column_values["shots"].is_param

    @pytest.mark.parametrize(
        "bad",
        [
            "UPDATE jobs SET WHERE job_id=?",  # no assignments
            "UPDATE jobs SET state 'done' WHERE job_id=?",  # missing =
            "UPDATE jobs SET state=?, state=? WHERE job_id=?",  # dup column
            "UPDATE jobs SET state=? WHERE job_id=? OR state=?",  # top-level OR
            "INSERT INTO jobs (a, b) VALUES (?)",  # count mismatch
            "INSERT INTO jobs (a, a) VALUES (?, ?)",  # dup column
            "DELETE FROM jobs WHERE job_id=?",  # unsupported verb
        ],
    )
    def test_malformed_sql_raises(self, bad):
        with pytest.raises(SqlParseError):
            parse_statement(bad)


# ----------------------------------------------------------------------
# Shipped scheduler conformance.
# ----------------------------------------------------------------------
class TestShippedScheduler:
    def test_shipped_scheduler_verifies_clean(self):
        report = check_source(SCHEDULER.read_text(), "scheduler.py")
        assert report.diagnostics == []
        assert report.ok

    def test_every_jobs_statement_is_extracted(self):
        """The extractor sees all jobs-table DML, including statements
        built by constant concatenation inside nested txn closures."""
        statements, extraction_diags = extract_jobs_dml(
            SCHEDULER.read_text(), "scheduler.py"
        )
        assert extraction_diags == []
        assert len(statements) >= 13
        methods = {s.method for s in statements}
        # Nested `_txn`/`_body` closures must resolve to the enclosing
        # public method, never to the closure's own name.
        assert methods & {"submit_scan", "complete", "release", "requeue"}
        assert not methods & {"_txn", "_retry", "_body"}

    def test_every_declared_transition_is_implemented(self):
        report = check_source(SCHEDULER.read_text(), "scheduler.py")
        expected = {r.name for r in TRANSITION_SPEC} | {"birth"}
        assert set(report.matched_rules) == expected

    def test_scheduler_states_are_the_declared_states(self):
        """The runtime tuple IS the spec object — they cannot drift."""
        from repro.threshold import scheduler

        assert scheduler._JOB_STATES is JOB_STATES


# ----------------------------------------------------------------------
# Mutants: realistic bad edits the checker must catch.
# ----------------------------------------------------------------------
def mutate_after(source: str, anchor: str, old: str, new: str) -> str:
    """Replace the first ``old`` occurring after ``anchor``."""
    start = source.index(anchor)
    at = source.index(old, start)
    return source[:at] + new + source[at + len(old):]


def _codes(source: str) -> list[str]:
    return [d.rule for d in check_source(source, "scheduler.py").diagnostics]


def _assert_detects(source: str, primary: str) -> None:
    """The mutant must raise ``primary``; an RPL407 companion (the
    mutated rule's transition is now unimplemented) is the only other
    diagnostic allowed — anything else is checker noise."""
    codes = _codes(source)
    assert primary in codes, f"expected {primary}, got {codes}"
    assert set(codes) <= {primary, "RPL407"}, codes


class TestMutants:
    def test_clean_before_mutation(self):
        assert _codes(SCHEDULER.read_text()) == []

    def test_dropped_owner_fence_on_complete_is_rpl402(self):
        mutated = mutate_after(
            SCHEDULER.read_text(), "SET state='done'", "lease_owner=? AND ", ""
        )
        _assert_detects(mutated, "RPL402")

    def test_rogue_terminal_update_is_rpl401(self):
        """A brand-new code path writing jobs outside the declared
        protocol (no fence, no source-state pin, wrong method)."""
        rogue = (
            "\n\ndef _expedite(conn, job_id):\n"
            "    conn.execute(\n"
            "        \"UPDATE jobs SET state='done', finished_unix=? \"\n"
            "        \"WHERE job_id=?\",\n"
            "        (0, job_id),\n"
            "    )\n"
        )
        codes = _codes(SCHEDULER.read_text() + rogue)
        assert codes == ["RPL401"]

    def test_identity_rewrite_without_checksum_is_rpl403(self):
        mutated = SCHEDULER.read_text().replace("checksum=?, ", "", 1)
        codes = _codes(mutated)
        assert codes == ["RPL403"]

    def test_wrong_source_state_pin_is_rpl404(self):
        mutated = mutate_after(
            SCHEDULER.read_text(),
            "SET state='done'",
            "AND state='leased'",
            "AND state='pending'",
        )
        _assert_detects(mutated, "RPL404")

    def test_lease_grant_without_expiry_stamp_is_rpl405(self):
        mutated = mutate_after(
            SCHEDULER.read_text(),
            "SET state='leased'",
            "lease_expires_unix=?, ",
            "",
        )
        _assert_detects(mutated, "RPL405")

    def test_dropped_fence_on_drain_requeue_is_rpl402(self):
        mutated = mutate_after(
            SCHEDULER.read_text(),
            "attempts=MAX(attempts - 1, 0)",
            "lease_owner=? AND ",
            "",
        )
        _assert_detects(mutated, "RPL402")


class TestDynamicSql:
    def test_fstring_jobs_dml_is_rpl406(self):
        source = (
            "def zap(conn, state):\n"
            "    conn.execute(f\"UPDATE jobs SET state={state!r} WHERE job_id=?\")\n"
        )
        codes = _codes(source)
        assert codes.count("RPL406") == 1
        # ... and with no statements extracted, every declared transition
        # (plus the birth rule) is reported unimplemented.
        assert codes.count("RPL407") == len(TRANSITION_SPEC) + 1
        assert set(codes) == {"RPL406", "RPL407"}

    def test_accumulated_jobs_dml_is_rpl406(self):
        source = (
            "def fetch(conn, state):\n"
            "    sql = \"UPDATE jobs SET heartbeat_unix=? \"\n"
            "    if state:\n"
            "        sql += \"WHERE state=?\"\n"
            "    conn.execute(sql)\n"
        )
        codes = _codes(source)
        assert "RPL406" in codes


# ----------------------------------------------------------------------
# Interleaving explorer.
# ----------------------------------------------------------------------
class TestExplorer:
    def test_real_protocol_is_exhaustively_safe(self):
        report = explore(ModelConfig())
        assert report.ok
        assert not report.truncated  # the full space fits under the bound
        assert report.violations == []
        assert report.states > 1000  # non-trivial space actually explored

    def test_exploration_is_deterministic(self):
        a, b = explore(ModelConfig()), explore(ModelConfig())
        assert (a.states, a.transitions, a.violations) == (
            b.states, b.transitions, b.violations
        )

    def test_unfenced_complete_yields_the_stale_lease_race(self):
        """Without the owner fence, the classic race: c0's lease expires,
        c1 takes over, and c0 — resurrected — writes the terminal state
        it no longer owns."""
        report = explore(ModelConfig(shards=1, fenced_complete=False))
        assert not report.ok
        violation = report.violations[0]
        assert "terminal write by c0 without the lease" in violation.invariant
        assert list(violation.trace) == [
            "c0.claim (attempt 1)",
            "tick (clock -> 1)",
            "c1.claim (attempt 2, stale-lease takeover)",
            "c0.shard(0) -> durable",
            "c0.complete -> done",
        ]

    def test_unfenced_requeue_yields_the_stale_drain_race(self):
        report = explore(ModelConfig(shards=1, fenced_requeue=False))
        assert not report.ok
        violation = report.violations[0]
        assert "requeue by c0 without the lease" in violation.invariant
        assert list(violation.trace) == [
            "c0.claim (attempt 1)",
            "tick (clock -> 1)",
            "c1.claim (attempt 2, stale-lease takeover)",
            "c0.drain -> requeued",
        ]

    def test_unrefunded_drain_charges_the_attempt(self):
        """The minimal counterexample is two steps: claim then drain —
        the job lost an attempt to an administrative action."""
        report = explore(ModelConfig(shards=1, refund_on_requeue=False))
        assert not report.ok
        violation = report.violations[0]
        assert "drain charged the attempt" in violation.invariant
        assert list(violation.trace) == [
            "c0.claim (attempt 1)",
            "c0.drain -> requeued",
        ]

    def test_double_pooling_is_the_lost_update(self):
        report = explore(ModelConfig(shards=1, double_pool=True))
        assert not report.ok
        assert "lost update" in report.violations[0].invariant

    def test_recompute_without_cache_resume_is_still_safe(self):
        """Ignoring the durable cache on takeover is wasteful but SAFE —
        shard writes are idempotent, so the explorer must NOT flag it.
        Pinned as a positive property: the invariants catch protocol
        violations, not performance sins."""
        report = explore(ModelConfig(shards=1, resume_from_cache=False))
        assert report.ok

    def test_depth_bound_reports_truncation_honestly(self):
        report = explore(ModelConfig(max_steps=3))
        assert report.truncated
        assert report.ok  # no violation within the bound — and says so


# ----------------------------------------------------------------------
# Docs stay in lockstep.
# ----------------------------------------------------------------------
class TestDocs:
    def test_scheduler_md_embeds_the_declared_diagram(self):
        """SCHEDULER.md's transition diagram is generated from the spec
        the checker enforces — prose cannot drift from the machine."""
        text = (REPO_ROOT / "SCHEDULER.md").read_text()
        assert transition_diagram() in text

    def test_analysis_md_documents_the_protocol_rules(self):
        text = (REPO_ROOT / "ANALYSIS.md").read_text()
        for code in ("RPL308", "RPL401", "RPL402", "RPL403", "RPL404",
                     "RPL405", "RPL406", "RPL407"):
            assert code in text
