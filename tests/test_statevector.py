"""Tests for the dense statevector simulator."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.paulis import pauli_from_string
from repro.statevector import StateVector, run_circuit


class TestBasics:
    def test_initial_state(self):
        sv = StateVector(2)
        amps = sv.amplitudes()
        assert amps[0] == 1.0 and np.allclose(amps[1:], 0)

    def test_qubit_zero_is_msb(self):
        sv = StateVector(2)
        sv.apply_gate("X", 0)
        assert abs(sv.amplitudes()[0b10]) == pytest.approx(1.0)

    def test_from_amplitudes_normalizes(self):
        sv = StateVector.from_amplitudes(np.array([2.0, 0, 0, 0]))
        assert sv.norm() == pytest.approx(1.0)

    def test_from_amplitudes_bad_length(self):
        with pytest.raises(ValueError):
            StateVector.from_amplitudes(np.ones(3))

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            StateVector.from_amplitudes(np.zeros(4))

    def test_too_many_qubits(self):
        with pytest.raises(ValueError):
            StateVector(21)


class TestGates:
    def test_bell_state(self):
        c = Circuit(2).h(0).cnot(0, 1)
        sv, _ = run_circuit(c)
        expected = np.zeros(4, dtype=complex)
        expected[0b00] = expected[0b11] = 1 / np.sqrt(2)
        assert sv.fidelity(expected) == pytest.approx(1.0)

    def test_ghz_state(self):
        c = Circuit(3).h(0).cnot(0, 1).cnot(0, 2)
        sv, _ = run_circuit(c)
        amps = sv.amplitudes()
        assert abs(amps[0b000]) == pytest.approx(1 / np.sqrt(2))
        assert abs(amps[0b111]) == pytest.approx(1 / np.sqrt(2))

    def test_toffoli_truth_table(self):
        # Fig. 1: z -> z XOR xy.
        for x in (0, 1):
            for y in (0, 1):
                for z in (0, 1):
                    sv = StateVector(3)
                    if x:
                        sv.apply_gate("X", 0)
                    if y:
                        sv.apply_gate("X", 1)
                    if z:
                        sv.apply_gate("X", 2)
                    sv.apply_gate("CCX", 0, 1, 2)
                    idx = (x << 2) | (y << 1) | (z ^ (x & y))
                    assert abs(sv.amplitudes()[idx]) == pytest.approx(1.0)

    def test_hadamard_conjugates_x_to_z(self):
        # Fig. 5's identity rests on H X H = Z.
        sv = StateVector(1)
        sv.apply_gate("H", 0)
        sv.apply_gate("Z", 0)
        sv.apply_gate("H", 0)
        ref = StateVector(1)
        ref.apply_gate("X", 0)
        assert sv.fidelity(ref) == pytest.approx(1.0)

    def test_xor_direction_swap_identity_fig5(self):
        # Fig. 5: H⊗H · CNOT(a->b) · H⊗H = CNOT(b->a).
        rng = np.random.default_rng(0)
        amps = rng.normal(size=4) + 1j * rng.normal(size=4)
        sv1 = StateVector.from_amplitudes(amps)
        sv2 = sv1.copy()
        for q in (0, 1):
            sv1.apply_gate("H", q)
        sv1.apply_gate("CNOT", 0, 1)
        for q in (0, 1):
            sv1.apply_gate("H", q)
        sv2.apply_gate("CNOT", 1, 0)
        assert sv1.fidelity(sv2) == pytest.approx(1.0)

    def test_rprime_conjugates_y_to_minus_z(self):
        # Eq. (20): R' is used to rotate Y-checks into Z-checks.
        rp = pauli_from_string("Y").to_matrix()
        from repro.circuits.gates import gate_matrix

        r = gate_matrix("RPRIME")
        conj = r @ rp @ r.conj().T
        assert np.allclose(conj, -pauli_from_string("Z").to_matrix())


class TestMeasurement:
    def test_deterministic_measure(self):
        sv = StateVector(1)
        assert sv.measure(0, np.random.default_rng(0)) == 0

    def test_plus_state_statistics(self):
        rng = np.random.default_rng(42)
        ones = 0
        for _ in range(200):
            sv = StateVector(1)
            sv.apply_gate("H", 0)
            ones += sv.measure(0, rng)
        assert 60 < ones < 140

    def test_forced_outcome(self):
        sv = StateVector(1)
        sv.apply_gate("H", 0)
        assert sv.measure(0, force=1) == 1
        # State collapsed to |1>.
        assert abs(sv.amplitudes()[1]) == pytest.approx(1.0)

    def test_forced_impossible_outcome(self):
        sv = StateVector(1)
        with pytest.raises(ValueError):
            sv.measure(0, force=1)

    def test_bell_correlations(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            c = Circuit(2, 2).h(0).cnot(0, 1).measure(0, 0).measure(1, 1)
            _, record = run_circuit(c, rng=rng)
            assert record[0] == record[1]

    def test_reset(self):
        sv = StateVector(1)
        sv.apply_gate("X", 0)
        sv.reset(0, np.random.default_rng(0))
        assert sv.probability_of_zero(0) == pytest.approx(1.0)


class TestConditionals:
    def test_conditioned_on_one(self):
        c = Circuit(2, 1)
        c.x(0).measure(0, 0)
        c.x(1, condition=(0,))
        sv, record = run_circuit(c)
        assert record[0] == 1
        assert abs(sv.amplitudes()[0b11]) == pytest.approx(1.0)

    def test_conditioned_on_zero_skipped(self):
        c = Circuit(2, 1)
        c.measure(0, 0)
        c.x(1, condition=(0,))
        sv, _ = run_circuit(c)
        assert abs(sv.amplitudes()[0b00]) == pytest.approx(1.0)

    def test_parity_condition(self):
        # Condition on XOR of two bits.
        c = Circuit(3, 2)
        c.x(0).measure(0, 0).measure(1, 1)
        c.x(2, condition=(0, 1))
        sv, _ = run_circuit(c)
        assert abs(sv.amplitudes()[0b101]) == pytest.approx(1.0)

    def test_mx_measurement(self):
        c = Circuit(1, 1).h(0).measure_x(0, 0)
        _, record = run_circuit(c)
        assert record[0] == 0  # |+> is the +1 eigenstate of X

    def test_teleportation(self):
        # End-to-end check of gates + measurement + conditionals.
        rng = np.random.default_rng(7)
        theta = 1.234
        for _ in range(8):
            c = Circuit(3, 2)
            # Entangle qubits 1, 2.
            c.h(1).cnot(1, 2)
            # Bell measurement of (0, 1).
            c.cnot(0, 1).h(0).measure(0, 0).measure(1, 1)
            c.x(2, condition=(1,))
            c.z(2, condition=(0,))
            # Prepare the unknown state on qubit 0 before running.
            sv = StateVector(3)
            u = np.array(
                [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]],
                dtype=complex,
            )
            sv.apply_unitary(u, (0,))
            out, _ = run_circuit(c, state=sv, rng=rng)
            # Qubit 2 should now carry cos|0> + sin|1>.
            expected = np.zeros(8, dtype=complex)
            expected[0b000] = np.cos(theta)
            expected[0b001] = np.sin(theta)
            # Qubits 0, 1 are in a random post-measurement state; check by
            # tracing: probability amplitudes conditional on their record.
            amps = out.amplitudes().reshape(2, 2, 2)
            vec = None
            for i in range(2):
                for j in range(2):
                    sub = amps[i, j]
                    if np.linalg.norm(sub) > 1e-9:
                        vec = sub
            overlap = abs(np.vdot(vec, np.array([np.cos(theta), np.sin(theta)]))) ** 2
            assert overlap == pytest.approx(1.0)
