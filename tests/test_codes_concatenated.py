"""Tests for concatenated Steane codes (paper §5, Fig. 14)."""

import numpy as np
import pytest

from repro.codes import ConcatenatedSteane, SteaneCode
from repro.stabilizer import StabilizerSimulator


class TestConstruction:
    def test_block_sizes(self):
        assert ConcatenatedSteane(1).n == 7
        assert ConcatenatedSteane(2).n == 49
        assert ConcatenatedSteane(3).n == 343

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            ConcatenatedSteane(0)

    def test_level1_matches_base(self):
        cat = ConcatenatedSteane(1)
        base = SteaneCode()
        assert cat.input_qubit == base.input_qubit
        enc_ops = [(op.gate, op.qubits) for op in cat.encoding_circuit()]
        base_ops = [(op.gate, op.qubits) for op in base.encoding_circuit()]
        assert enc_ops == base_ops


class TestLevel2Encoder:
    @pytest.fixture(scope="class")
    def encoded(self):
        cat = ConcatenatedSteane(2)
        sim = StabilizerSimulator(49)
        sim.run(cat.encoding_circuit())
        return cat, sim

    def test_inner_blocks_stabilized(self, encoded):
        cat, sim = encoded
        base = SteaneCode()
        from repro.paulis import Pauli

        for block in range(7):
            for g in base.generators:
                x = np.zeros(49, dtype=np.uint8)
                z = np.zeros(49, dtype=np.uint8)
                x[7 * block : 7 * (block + 1)] = g.x
                z[7 * block : 7 * (block + 1)] = g.z
                assert sim.pauli_expectation(Pauli(x, z, g.phase)) == 1

    def test_outer_logical_z(self, encoded):
        cat, sim = encoded
        from repro.paulis import pauli_from_string

        # Global Z on all 49 qubits = outer Z̄ built from inner Z̄'s.
        assert sim.pauli_expectation(pauli_from_string("Z" * 49)) == 1

    def test_outer_stabilizers(self, encoded):
        cat, sim = encoded
        base = SteaneCode()
        from repro.paulis import Pauli

        # Each outer generator, lifted by replacing each virtual qubit with
        # the transversal logical on the corresponding inner block.
        for g in base.generators:
            x = np.zeros(49, dtype=np.uint8)
            z = np.zeros(49, dtype=np.uint8)
            for v in range(7):
                if g.x[v]:
                    x[7 * v : 7 * (v + 1)] = 1
                if g.z[v]:
                    z[7 * v : 7 * (v + 1)] = 1
            assert sim.pauli_expectation(Pauli(x, z)) == 1


class TestHierarchicalDecoding:
    @pytest.fixture(scope="class")
    def cat2(self):
        return ConcatenatedSteane(2)

    def test_no_error_decodes_clean(self, cat2):
        fx = np.zeros((4, 49), dtype=np.uint8)
        lx, lz = cat2.decode_frame_hierarchical(fx, fx)
        assert not lx.any() and not lz.any()

    def test_single_error_per_block_corrected(self, cat2):
        # One X error in every inner block: all corrected at level 1.
        fx = np.zeros((1, 49), dtype=np.uint8)
        for block in range(7):
            fx[0, 7 * block + block % 7] = 1
        lx, _ = cat2.decode_frame_hierarchical(fx, np.zeros_like(fx))
        assert not lx.any()

    def test_two_errors_one_block_survivable(self, cat2):
        # Two errors in ONE inner block make that block fail (logical X on
        # the virtual qubit), but the outer level corrects a single virtual
        # error: no encoded failure.  This is Eq. (33)'s mechanism.
        fx = np.zeros((1, 49), dtype=np.uint8)
        fx[0, 0] = fx[0, 1] = 1
        lx, _ = cat2.decode_frame_hierarchical(fx, np.zeros_like(fx))
        assert not lx.any()

    def test_two_failing_blocks_break_level2(self, cat2):
        # Double failures in two separate inner blocks -> two virtual
        # errors -> the outer block fails.
        fx = np.zeros((1, 49), dtype=np.uint8)
        fx[0, 0] = fx[0, 1] = 1  # block 0 fails
        fx[0, 7] = fx[0, 8] = 1  # block 1 fails
        lx, _ = cat2.decode_frame_hierarchical(fx, np.zeros_like(fx))
        assert lx[0] == 1

    def test_level3_block_size(self):
        cat3 = ConcatenatedSteane(3)
        fx = np.zeros((2, 343), dtype=np.uint8)
        lx, lz = cat3.decode_frame_hierarchical(fx, fx)
        assert lx.shape == (2,)
        assert not lx.any()
