"""Tests for error models: stochastic, coherent, leakage."""

import numpy as np
import pytest

from repro.noise import (
    CODE_CAPACITY,
    LeakageModel,
    NoiseModel,
    circuit_level,
    coherent_overrotation_error,
    random_phase_walk_error,
    systematic_threshold_penalty,
)
from repro.noise.coherent import simulate_rotation_walk


class TestNoiseModel:
    def test_defaults_trivial(self):
        assert NoiseModel().is_trivial

    def test_scaled(self):
        m = circuit_level(1e-3).scaled(2.0)
        assert m.eps_gate1 == pytest.approx(2e-3)
        assert m.eps_store == pytest.approx(2e-3)

    def test_scaled_clips(self):
        m = NoiseModel(eps_gate1=0.6).scaled(2.0)
        assert m.eps_gate1 == 1.0

    def test_code_capacity(self):
        m = CODE_CAPACITY(0.01)
        assert m.eps_store == 0.01
        assert m.eps_gate1 == 0.0

    def test_circuit_level_ratios(self):
        m = circuit_level(1e-3, storage_ratio=0.5)
        assert m.eps_store == pytest.approx(5e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(eps_meas=-0.1)


class TestCoherentErrors:
    def test_systematic_quadratic_growth(self):
        # §6: systematic amplitudes add linearly -> probability ~ N².
        theta = 1e-3
        p10 = coherent_overrotation_error(theta, 10)
        p100 = coherent_overrotation_error(theta, 100)
        assert p100 / p10 == pytest.approx(100.0, rel=0.01)

    def test_random_linear_growth(self):
        theta = 1e-3
        p10 = random_phase_walk_error(theta, 10)
        p100 = random_phase_walk_error(theta, 100)
        assert p100 / p10 == pytest.approx(10.0, rel=0.01)

    def test_systematic_exact_formula(self):
        assert coherent_overrotation_error(np.pi, 1) == pytest.approx(1.0)
        assert coherent_overrotation_error(np.pi / 2, 2) == pytest.approx(1.0)
        assert coherent_overrotation_error(0.0, 50) == 0.0

    def test_monte_carlo_matches_exact(self):
        theta, n = 0.05, 40
        mc = simulate_rotation_walk(theta, n, trials=40_000, systematic=False, seed=3)
        exact = random_phase_walk_error(theta, n)
        assert mc == pytest.approx(exact, abs=2e-3)
        mc_sys = simulate_rotation_walk(theta, n, trials=10, systematic=True, seed=3)
        assert mc_sys == pytest.approx(coherent_overrotation_error(theta, n))

    def test_threshold_penalty(self):
        # §6: systematic threshold is of order ε₀².
        assert systematic_threshold_penalty(6e-4) == pytest.approx(3.6e-7)
        with pytest.raises(ValueError):
            systematic_threshold_penalty(2.0)

    def test_negative_gates_rejected(self):
        with pytest.raises(ValueError):
            coherent_overrotation_error(0.1, -1)


class TestLeakage:
    def test_exposure_accumulates(self):
        model = LeakageModel(p_leak=0.5)
        leaked = np.zeros(10_000, dtype=bool)
        model.expose(leaked, steps=2, rng=0)
        expected = 1 - 0.5**2
        assert leaked.mean() == pytest.approx(expected, abs=0.02)

    def test_leaks_are_absorbing(self):
        model = LeakageModel(p_leak=0.0)
        leaked = np.ones(5, dtype=bool)
        model.expose(leaked, steps=3, rng=0)
        assert leaked.all()

    def test_ideal_detection(self):
        model = LeakageModel(p_leak=0.1)
        leaked = np.array([True, False, True])
        det = model.detect(leaked, rng=0)
        assert det.tolist() == [0, 1, 0]

    def test_noisy_detection_rate(self):
        model = LeakageModel(p_leak=0.0, p_detect_flip=0.25)
        leaked = np.zeros(40_000, dtype=bool)
        det = model.detect(leaked, rng=1)
        assert (det == 0).mean() == pytest.approx(0.25, abs=0.01)

    def test_replacement_clears_and_marks(self):
        rng = np.random.default_rng(0)
        model = LeakageModel(p_leak=0.0)
        leaked = np.array([True, False])
        det = np.array([0, 1], dtype=np.uint8)
        fx = np.zeros(2, dtype=np.uint8)
        fz = np.zeros(2, dtype=np.uint8)
        model.replace_detected(leaked, det, fx, fz, rng)
        assert not leaked[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            LeakageModel(p_leak=1.5)
        with pytest.raises(ValueError):
            LeakageModel(p_leak=0.1, p_detect_flip=-1)
