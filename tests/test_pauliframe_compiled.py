"""Parity suite: compiled bit-packed frame engine vs the legacy interpreter.

Two agreement regimes, mirroring the engine's contract:

* **Exact** on every deterministic path — no noise, arbitrary initial
  frames, fault injections, classically conditioned Paulis.  The two
  engines must produce bit-identical :class:`FrameResult` contents.
* **Statistical** on noisy paths — the engines consume randomness
  differently (per-location draws vs per-channel-class planes), so seeded
  outputs differ shot by shot; observed rates must agree within combined
  Wilson 95% intervals.

Plus packing round-trips and a seeded-determinism regression (same seed ⇒
identical results, run to run and fused vs unfused).
"""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.codes import SteaneCode
from repro.ft import SteaneECProtocol
from repro.ft.steane_ec import SteaneAncillaPrep, SteaneSyndromeExtraction
from repro.noise import NoiseModel, circuit_level
from repro.pauliframe import (
    CompiledFrameProgram,
    FrameSimulator,
    pack_rows,
    pack_shot_major,
    unpack_rows,
    unpack_shot_major,
    words_for,
)
from repro.threshold import memory_experiment
from repro.util.stats import wilson_interval


def random_clifford_circuit(rng, num_qubits=6, num_cbits=6, depth=60, conditional=False):
    c = Circuit(num_qubits, num_cbits)
    one_q = ["H", "S", "SDG", "RPRIME", "X", "Y", "Z", "I"]
    two_q = ["CNOT", "CZ", "CY", "SWAP"]
    measured: list[int] = []
    for _ in range(depth):
        roll = rng.random()
        if roll < 0.35:
            c.append(one_q[rng.integers(len(one_q))], int(rng.integers(num_qubits)))
        elif roll < 0.7:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            c.append(two_q[rng.integers(len(two_q))], int(a), int(b))
        elif roll < 0.8:
            q = int(rng.integers(num_qubits))
            cb = int(rng.integers(num_cbits))
            c.append("M" if rng.random() < 0.5 else "MX", q, cbits=(cb,))
            measured.append(cb)
        elif roll < 0.88:
            c.reset(int(rng.integers(num_qubits)))
        elif roll < 0.95 or not (conditional and measured):
            c.tick()
        else:
            cond = tuple({int(rng.choice(measured)) for _ in range(2)})
            gate = ["X", "Y", "Z"][rng.integers(3)]
            c.append(gate, int(rng.integers(num_qubits)), condition=cond)
    return c


def assert_results_equal(a, b):
    np.testing.assert_array_equal(a.meas_flips, b.meas_flips)
    np.testing.assert_array_equal(a.fx, b.fx)
    np.testing.assert_array_equal(a.fz, b.fz)


class TestPacking:
    @pytest.mark.parametrize("shots", [1, 63, 64, 65, 1000])
    def test_roundtrip_rows(self, shots):
        rng = np.random.default_rng(shots)
        bits = (rng.random((5, shots)) < 0.3).astype(np.uint8)
        packed = pack_rows(bits)
        assert packed.shape == (5, words_for(shots))
        np.testing.assert_array_equal(unpack_rows(packed, shots), bits)

    def test_roundtrip_shot_major(self):
        rng = np.random.default_rng(9)
        arr = (rng.random((130, 7)) < 0.4).astype(np.uint8)
        np.testing.assert_array_equal(unpack_shot_major(pack_shot_major(arr), 130), arr)

    def test_xor_in_packed_domain_matches_unpacked(self):
        rng = np.random.default_rng(10)
        a = (rng.random((3, 100)) < 0.5).astype(np.uint8)
        b = (rng.random((3, 100)) < 0.5).astype(np.uint8)
        np.testing.assert_array_equal(
            unpack_rows(pack_rows(a) ^ pack_rows(b), 100), a ^ b
        )


class TestExactParity:
    @pytest.mark.parametrize("trial", range(5))
    def test_random_circuits_noiseless(self, trial):
        rng = np.random.default_rng(trial)
        c = random_clifford_circuit(rng, conditional=True)
        shots = 70  # straddles the 64-bit word boundary
        init_fx = (rng.random((shots, c.num_qubits)) < 0.3).astype(np.uint8)
        init_fz = (rng.random((shots, c.num_qubits)) < 0.3).astype(np.uint8)
        legacy = FrameSimulator(c, backend="legacy").run(
            shots, seed=0, initial_fx=init_fx, initial_fz=init_fz
        )
        compiled = FrameSimulator(c, backend="compiled").run(
            shots, seed=0, initial_fx=init_fx, initial_fz=init_fz
        )
        assert_results_equal(legacy, compiled)

    def test_fault_injection_parity(self):
        rng = np.random.default_rng(77)
        c = random_clifford_circuit(rng, conditional=True)
        n_ops = len(c.operations)
        shots = 80
        specs = []
        for s in range(shots):
            entries = [
                (int(rng.integers(-1, n_ops)), int(rng.integers(c.num_qubits)),
                 "XYZ"[rng.integers(3)])
                for _ in range(rng.integers(1, 4))
            ]
            specs.append(entries)
        legacy = FrameSimulator(c, backend="legacy").run(shots, seed=0, fault_injections=specs)
        compiled = FrameSimulator(c, backend="compiled").run(shots, seed=0, fault_injections=specs)
        assert_results_equal(legacy, compiled)

    def test_fused_requires_no_injection(self):
        c = Circuit(2).h(0).cnot(0, 1)
        prog = CompiledFrameProgram(c, fuse=True)
        fx, fz, flips = prog.new_buffers(4)
        with pytest.raises(ValueError):
            prog.run_packed(4, 0, fx, fz, flips, fault_injections=[(0, 0, "X")] * 4)

    def test_fused_and_unfused_bit_identical_under_noise(self):
        # Fusion must not change how the RNG is consumed: the noise planes
        # are keyed by location index, not by instruction shape.
        rng = np.random.default_rng(5)
        c = random_clifford_circuit(rng, conditional=True)
        noise = circuit_level(0.02)
        fused = CompiledFrameProgram(c, noise, fuse=True).run(300, seed=42)
        unfused = CompiledFrameProgram(c, noise, fuse=False).run(300, seed=42)
        assert_results_equal(fused, unfused)

    def test_e02_factory_circuit_noiseless_parity(self):
        c = SteaneAncillaPrep(SteaneCode(), verify=True).circuit()
        rng = np.random.default_rng(3)
        shots = 66
        init_fx = (rng.random((shots, c.num_qubits)) < 0.2).astype(np.uint8)
        legacy = FrameSimulator(c, backend="legacy").run(shots, seed=0, initial_fx=init_fx)
        compiled = FrameSimulator(c, backend="compiled").run(shots, seed=0, initial_fx=init_fx)
        assert_results_equal(legacy, compiled)

    def test_e04_extraction_circuit_fault_paths(self):
        # The E04 protocol circuit: single deterministic faults anywhere in
        # the first half of the round must propagate identically.
        c = SteaneSyndromeExtraction(SteaneCode(), 2).extraction_circuit()
        n_ops = len(c.operations)
        specs = [
            (op_i % n_ops, q % c.num_qubits, "XYZ"[(op_i + q) % 3])
            for op_i, q in zip(range(0, 2 * n_ops, 2), range(100))
        ]
        legacy = FrameSimulator(c, backend="legacy").run(len(specs), seed=0, fault_injections=specs)
        compiled = FrameSimulator(c, backend="compiled").run(len(specs), seed=0, fault_injections=specs)
        assert_results_equal(legacy, compiled)

    def test_broadcast_initial_frames_match_legacy(self):
        # The legacy engine accepts a (1, n) initial frame via NumPy
        # broadcasting; the packed engine must broadcast before packing
        # (packing a (1, n) array directly would hit only shot 0 per word).
        c = Circuit(3, 3).cnot(0, 1).measure(0, 0).measure(1, 1).measure(2, 2)
        init = np.array([[1, 0, 1]], dtype=np.uint8)
        shots = 130
        legacy = FrameSimulator(c, backend="legacy").run(shots, seed=0, initial_fx=init)
        compiled = FrameSimulator(c, backend="compiled").run(shots, seed=0, initial_fx=init)
        assert_results_equal(legacy, compiled)
        assert legacy.meas_flips[:, 0].sum() == shots

    def test_circuit_growth_recompiles(self):
        # Circuit is append-only; growing it between runs must invalidate
        # the cached instruction stream like the legacy interpreter would.
        c = Circuit(1, 1).measure(0, 0)
        sim = FrameSimulator(c)
        before = sim.run(10, seed=0, initial_fx=np.ones((10, 1), dtype=np.uint8))
        assert before.meas_flips[:, 0].all()
        c.x(0, condition=(0,))  # cancels the injected X after measuring it
        after = sim.run(10, seed=0, initial_fx=np.ones((10, 1), dtype=np.uint8))
        assert not after.fx.any()

    def test_noise_swap_recompiles(self):
        c = Circuit(1, 1).h(0).measure(0, 0)
        sim = FrameSimulator(c)
        assert sim.run(2000, seed=0).meas_flips.sum() == 0
        sim.noise = NoiseModel(eps_meas=1.0)
        assert sim.run(2000, seed=0).meas_flips.all()

    def test_protocol_broadcast_data_frames_match_legacy(self):
        # run_round must broadcast a (1, 7) data frame across all shots on
        # both engines, like the legacy in-place XOR did.
        data_fx = np.array([[1, 1, 0, 0, 0, 0, 0]], dtype=np.uint8)
        out = {}
        for engine in ("legacy", "compiled"):
            proto = SteaneECProtocol(NoiseModel(), engine=engine)
            out[engine] = proto.run_round(130, seed=0, data_fx=data_fx)
        np.testing.assert_array_equal(out["legacy"][0], out["compiled"][0])
        np.testing.assert_array_equal(out["legacy"][1], out["compiled"][1])
        # Eq. (12): the double bit-flip miscorrects identically in every shot.
        assert (out["compiled"][0] == out["compiled"][0][0]).all()
        assert out["compiled"][0].any()

    def test_protocol_noiseless_parity(self):
        # E02/E04 building block: a full Steane EC round with injected data
        # errors is deterministic without noise — engines must agree exactly.
        data_fx = np.zeros((8, 7), dtype=np.uint8)
        data_fx[:, 2] = 1
        out = {}
        for engine in ("legacy", "compiled"):
            proto = SteaneECProtocol(NoiseModel(), engine=engine)
            out[engine] = proto.run_round(8, seed=0, data_fx=data_fx)
        np.testing.assert_array_equal(out["legacy"][0], out["compiled"][0])
        np.testing.assert_array_equal(out["legacy"][1], out["compiled"][1])


class TestSeededDeterminism:
    def test_same_seed_same_result(self):
        rng = np.random.default_rng(8)
        c = random_clifford_circuit(rng, conditional=True)
        sim = FrameSimulator(c, circuit_level(0.01))
        a = sim.run(500, seed=123)
        b = sim.run(500, seed=123)
        assert_results_equal(a, b)

    def test_fresh_simulator_same_seed_same_result(self):
        rng = np.random.default_rng(8)
        c = random_clifford_circuit(rng, conditional=True)
        noise = circuit_level(0.01)
        a = FrameSimulator(c, noise).run(500, seed=123)
        b = FrameSimulator(c, noise).run(500, seed=123)
        assert_results_equal(a, b)

    def test_packed_buffer_reuse_is_clean(self):
        # Reusing buffers across runs must not leak state between rounds.
        c = Circuit(2, 2).h(0).cnot(0, 1).measure(0, 0).measure(1, 1)
        prog = CompiledFrameProgram(c, circuit_level(0.05))
        fx, fz, flips = prog.new_buffers(200)
        prog.run_packed(200, 1, fx, fz, flips)
        first = (fx.copy(), fz.copy(), flips.copy())
        fx[:] = 0
        fz[:] = 0
        prog.run_packed(200, 1, fx, fz, flips)
        np.testing.assert_array_equal(first[0], fx)
        np.testing.assert_array_equal(first[1], fz)
        np.testing.assert_array_equal(first[2], flips)

    def test_memory_experiment_seeded_regression(self):
        proto = SteaneECProtocol(circuit_level(1e-3))
        r1 = memory_experiment(proto, SteaneCode(), rounds=3, shots=2000, seed=7)
        r2 = memory_experiment(proto, SteaneCode(), rounds=3, shots=2000, seed=7)
        assert r1.failures == r2.failures
        assert r1.failure_rate == r2.failure_rate


def wilson_compatible(k1, n1, k2, n2):
    """True when two binomial observations have overlapping 95% intervals."""
    lo1, hi1 = wilson_interval(k1, n1)
    lo2, hi2 = wilson_interval(k2, n2)
    return max(lo1, lo2) <= min(hi1, hi2)


class TestStatisticalParity:
    SHOTS = 40_000

    @pytest.mark.parametrize(
        "noise",
        [
            NoiseModel(eps_gate1=0.3),           # dense sampling path
            NoiseModel(eps_gate1=0.01),          # sparse sampling path
            NoiseModel(eps_meas=0.15),
            NoiseModel(eps_prep=0.12),
            NoiseModel(eps_store=0.08),
            NoiseModel(eps_gate2=0.2, two_qubit_mode="both_damaged"),
            NoiseModel(eps_gate2=0.2, two_qubit_mode="depolarizing15"),
            NoiseModel(eps_gate2=0.01, two_qubit_mode="depolarizing15"),
        ],
    )
    def test_channel_rates_match(self, noise):
        c = Circuit(2, 2)
        c.h(0).cnot(0, 1).tick().reset(1).measure(0, 0).measure(1, 1)
        res = {}
        for backend in ("legacy", "compiled"):
            res[backend] = FrameSimulator(c, noise, backend=backend).run(self.SHOTS, seed=11)
        for field in ("meas_flips", "fx", "fz"):
            a = getattr(res["legacy"], field)
            b = getattr(res["compiled"], field)
            for col in range(a.shape[1]):
                assert wilson_compatible(
                    int(a[:, col].sum()), self.SHOTS, int(b[:, col].sum()), self.SHOTS
                ), (field, col)

    def test_conditional_gate_noise_rates_match(self):
        # The conditional Pauli fires on ~half the shots and is noisy only
        # where it fires — the masked-noise rate must agree across engines.
        c = Circuit(1, 2)
        c.h(0).measure(0, 0)  # reference outcome 0; flips ~eps rate
        c = Circuit(1, 2).reset(0).measure(0, 0).x(0, condition=(0,)).measure(0, 1)
        noise = NoiseModel(eps_prep=0.5, eps_gate1=0.3)
        res = {}
        for backend in ("legacy", "compiled"):
            res[backend] = FrameSimulator(c, noise, backend=backend).run(self.SHOTS, seed=13)
        a, b = res["legacy"], res["compiled"]
        for col in range(2):
            assert wilson_compatible(
                int(a.meas_flips[:, col].sum()), self.SHOTS,
                int(b.meas_flips[:, col].sum()), self.SHOTS,
            )

    def test_steane_round_logical_rates_match(self):
        code = SteaneCode()
        eps = 2e-3
        counts = {}
        for engine in ("legacy", "compiled"):
            proto = SteaneECProtocol(circuit_level(eps), engine=engine)
            fx, fz = proto.run_round(self.SHOTS, seed=17)
            cfx, cfz = code.correct_frame(fx, fz)
            action = code.logical_action_of_frame(cfx, cfz)
            counts[engine] = int(action.any(axis=1).sum())
        assert wilson_compatible(counts["legacy"], self.SHOTS, counts["compiled"], self.SHOTS)

    def test_packed_and_unpacked_protocol_entries_match(self):
        proto = SteaneECProtocol(circuit_level(1e-3))
        shots = 5000
        fx_u, fz_u = proto.run_round(shots, seed=19)
        dfx = np.zeros((7, words_for(shots)), dtype=np.uint64)
        dfz = np.zeros_like(dfx)
        proto.run_round_packed(shots, 19, dfx, dfz)
        np.testing.assert_array_equal(fx_u, unpack_shot_major(dfx, shots))
        np.testing.assert_array_equal(fz_u, unpack_shot_major(dfz, shots))
