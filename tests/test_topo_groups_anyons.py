"""Tests for finite groups, fluxon registers, and interferometry (§7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topo import (
    ChargeInterferometer,
    FluxInterferometer,
    FluxPairRegister,
    PermutationGroup,
)
from repro.topo.groups import FiniteGroup, cycles, parse_cycles
from repro.topo.interferometer import majority_confidence


class TestGroupBasics:
    def test_orders(self):
        assert PermutationGroup.symmetric(3).order == 6
        assert PermutationGroup.symmetric(4).order == 24
        assert PermutationGroup.alternating(4).order == 12
        assert PermutationGroup.alternating(5).order == 60
        assert PermutationGroup.cyclic(7).order == 7
        assert PermutationGroup.dihedral(4).order == 8
        assert PermutationGroup.quaternion().order == 8

    def test_parse_and_render_cycles(self):
        p = parse_cycles("(125)", 5)
        assert cycles(p) == "(125)"
        q = parse_cycles("(14)(35)", 5)
        assert cycles(q) == "(14)(35)"
        assert parse_cycles("e", 4) == (0, 1, 2, 3)

    def test_parse_validation(self):
        with pytest.raises(ValueError):
            parse_cycles("125", 5)
        with pytest.raises(ValueError):
            parse_cycles("(16)", 5)

    @given(st.integers(0, 1000))
    @settings(max_examples=30)
    def test_group_axioms_random_elements(self, seed):
        g = PermutationGroup.symmetric(4)
        rng = np.random.default_rng(seed)
        a, b, c = (g.elements[rng.integers(g.order)] for _ in range(3))
        assert g.mul(g.mul(a, b), c) == g.mul(a, g.mul(b, c))
        assert g.mul(a, g.inv(a)) == g.identity
        assert g.mul(g.identity, a) == a

    def test_conjugation_is_homomorphism(self):
        g = PermutationGroup.alternating(5)
        a = parse_cycles("(125)", 5)
        b = parse_cycles("(234)", 5)
        v = parse_cycles("(14)(35)", 5)
        lhs = g.conjugate(g.mul(a, b), v)
        rhs = g.mul(g.conjugate(a, v), g.conjugate(b, v))
        assert lhs == rhs


class TestSolvability:
    def test_solvable_groups(self):
        for g in (
            PermutationGroup.symmetric(3),
            PermutationGroup.symmetric(4),
            PermutationGroup.alternating(4),
            PermutationGroup.dihedral(5),
            PermutationGroup.quaternion(),
            PermutationGroup.cyclic(12),
        ):
            assert g.is_solvable(), g.name
            assert not g.is_perfect(), g.name

    def test_a5_nonsolvable_perfect(self):
        a5 = PermutationGroup.alternating(5)
        assert not a5.is_solvable()
        assert a5.is_perfect()

    def test_s5_nonsolvable_not_perfect(self):
        s5 = PermutationGroup.symmetric(5)
        assert not s5.is_solvable()
        assert not s5.is_perfect()  # [S5, S5] = A5

    def test_commutator_subgroup_of_s4(self):
        s4 = PermutationGroup.symmetric(4)
        assert s4.commutator_subgroup().order == 12  # A4

    def test_conjugacy_classes_partition(self):
        g = PermutationGroup.alternating(5)
        classes = g.conjugacy_classes()
        assert sum(len(c) for c in classes) == 60
        sizes = sorted(len(c) for c in classes)
        assert sizes == [1, 12, 12, 15, 20]  # the A5 class equation


class TestFluxPairRegister:
    @pytest.fixture(scope="class")
    def a5(self):
        return PermutationGroup.alternating(5)

    @pytest.fixture(scope="class")
    def basis(self, a5):
        return parse_cycles("(125)", 5), parse_cycles("(234)", 5)

    def test_pull_through_conjugates_inner(self, a5, basis):
        u0, u1 = basis
        v = parse_cycles("(14)(35)", 5)
        reg = FluxPairRegister(a5, [u0, v])
        reg.pull_through(0, 1)
        assert reg.probability_of((u1, v)) == pytest.approx(1.0)

    def test_outer_flux_unmodified(self, a5, basis):
        u0, _ = basis
        v = parse_cycles("(14)(35)", 5)
        reg = FluxPairRegister(a5, [u0, v])
        reg.pull_through(0, 1)
        assert reg.measure_flux(1, rng=0) == v

    def test_pull_through_linear_on_superpositions(self, a5, basis):
        u0, u1 = basis
        v = parse_cycles("(14)(35)", 5)
        reg = FluxPairRegister.from_superposition(
            a5, {(u0, v): 1 / np.sqrt(2), (u1, v): 1j / np.sqrt(2)}
        )
        reg.pull_through(0, 1)
        # NOT on the superposition: amplitudes swap.
        assert reg.probability_of((u1, v)) == pytest.approx(0.5)
        assert reg.probability_of((u0, v)) == pytest.approx(0.5)

    def test_exchange_eq40(self, a5):
        # |u1>|u2> -> |u2>|u2⁻¹ u1 u2>.
        u1 = parse_cycles("(123)", 5)
        u2 = parse_cycles("(345)", 5)
        reg = FluxPairRegister(a5, [u1, u2])
        reg.exchange(0, 1)
        expected = (u2, a5.conjugate(u1, u2))
        assert reg.probability_of(expected) == pytest.approx(1.0)

    def test_charge_zero_pair_uniform_over_class(self, a5, basis):
        u0, _ = basis
        reg = FluxPairRegister(a5, [])
        reg.num_pairs = 0
        reg.state = {(): 1.0 + 0j}
        idx = reg.append_charge_zero_pair(u0)
        cls = a5.conjugacy_class(u0)
        assert len(cls) == 20  # the 3-cycles of A5
        for u in cls:
            assert reg.probability_of((u,)) == pytest.approx(1 / 20)
        # Flux measurement calibrates the pair (§7.4's reservoir).
        flux = reg.measure_flux(idx, rng=3)
        assert flux in cls
        assert reg.probability_of((flux,)) == pytest.approx(1.0)

    def test_charge_measurement_projects_plus_minus(self, a5, basis):
        u0, u1 = basis
        v = parse_cycles("(14)(35)", 5)
        plus = FluxPairRegister.from_superposition(
            a5, {(u0,): 1 / np.sqrt(2), (u1,): 1 / np.sqrt(2)}
        )
        assert plus.measure_conjugation_parity(0, v, rng=0) == 0
        minus = FluxPairRegister.from_superposition(
            a5, {(u0,): 1 / np.sqrt(2), (u1,): -1 / np.sqrt(2)}
        )
        assert minus.measure_conjugation_parity(0, v, rng=0) == 1

    def test_charge_measurement_on_flux_eigenstate_randomizes(self, a5, basis):
        u0, u1 = basis
        v = parse_cycles("(14)(35)", 5)
        outcomes = set()
        for seed in range(20):
            reg = FluxPairRegister(a5, [u0])
            outcomes.add(reg.measure_conjugation_parity(0, v, rng=seed))
        assert outcomes == {0, 1}

    def test_self_pull_through_rejected(self, a5, basis):
        reg = FluxPairRegister(a5, [basis[0]])
        with pytest.raises(ValueError):
            reg.pull_through(0, 0)

    def test_bad_flux_rejected(self, a5):
        odd = parse_cycles("(12)", 5)  # odd permutation, not in A5
        with pytest.raises(ValueError):
            FluxPairRegister(a5, [odd])


class TestInterferometers:
    def test_majority_confidence_decays(self):
        assert majority_confidence(0.2, 31) < majority_confidence(0.2, 5)
        assert majority_confidence(0.2, 31) < 1e-3

    def test_flux_interferometer_ideal(self):
        a5 = PermutationGroup.alternating(5)
        u0 = parse_cycles("(125)", 5)
        u1 = parse_cycles("(234)", 5)
        reg = FluxPairRegister(a5, [u0])
        meter = FluxInterferometer(p_err=0.0, probes=1)
        assert meter.measure(reg, 0, (u0, u1), rng=0) == u0

    def test_flux_interferometer_noisy_majority(self):
        a5 = PermutationGroup.alternating(5)
        u0 = parse_cycles("(125)", 5)
        u1 = parse_cycles("(234)", 5)
        meter = FluxInterferometer(p_err=0.25, probes=51)
        wrong = 0
        for seed in range(40):
            reg = FluxPairRegister(a5, [u0])
            if meter.measure(reg, 0, (u0, u1), rng=seed) != u0:
                wrong += 1
        assert wrong <= 2  # majority over 51 probes at 25% noise

    def test_charge_interferometer(self):
        a5 = PermutationGroup.alternating(5)
        u0 = parse_cycles("(125)", 5)
        u1 = parse_cycles("(234)", 5)
        v = parse_cycles("(14)(35)", 5)
        reg = FluxPairRegister.from_superposition(
            a5, {(u0,): 1 / np.sqrt(2), (u1,): 1 / np.sqrt(2)}
        )
        meter = ChargeInterferometer(p_err=0.0, probes=1)
        assert meter.measure(reg, 0, v, rng=0) == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FluxInterferometer(p_err=0.6)
        with pytest.raises(ValueError):
            ChargeInterferometer(probes=0)
        with pytest.raises(ValueError):
            majority_confidence(0.2, 10)
