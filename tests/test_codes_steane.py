"""Tests of the Steane code against the paper's §2 algebra."""

import numpy as np
import pytest

from repro.codes import SteaneCode
from repro.paulis import Pauli, pauli_from_string
from repro.stabilizer import StabilizerSimulator
from repro.statevector import StateVector, run_circuit


@pytest.fixture(scope="module")
def code():
    return SteaneCode()


class TestStructure:
    def test_parameters(self, code):
        assert (code.n, code.k) == (7, 1)
        assert code.distance() == 3

    def test_eq18_generators_stabilize(self, code):
        """The literal Eq. (18) operators generate the same group as the
        CSS construction's generators."""
        for g in code.eq18_generators():
            assert code.in_stabilizer_group(g)

    def test_six_generators(self, code):
        assert code.num_generators == 6

    def test_transversal_logicals(self, code):
        assert code.logical_x[0] == pauli_from_string("XXXXXXX")
        assert code.logical_z[0] == pauli_from_string("ZZZZZZZ")

    def test_min_weight_logicals(self, code):
        lx = code.min_weight_logical_x()
        assert lx.weight() == 3
        assert code.is_logical_operator(lx)
        lz = code.min_weight_logical_z()
        assert lz.weight() == 3
        assert code.is_logical_operator(lz)

    def test_single_errors_all_distinct_syndromes(self, code):
        """Every weight-1 error must be identifiable: X and Z parts each
        map to distinct nonzero half-syndromes."""
        seen = set()
        for q in range(7):
            for letter in "XYZ":
                syn = tuple(code.syndrome_of(Pauli.single(7, q, letter)))
                assert any(syn), f"{letter}{q} is undetected"
                seen.add((letter in "XY", letter in "YZ", syn))
        assert len(seen) == 21


class TestEncoderStateVector:
    def test_logical_zero_is_eq6(self, code):
        sv, _ = run_circuit(code.encoding_circuit())
        amps = sv.amplitudes()
        expected_support = {
            int("".join(map(str, w)), 2) for w in code.hamming.even_codewords()
        }
        support = {int(i) for i in np.nonzero(np.abs(amps) > 1e-12)[0]}
        assert support == expected_support
        assert np.allclose(np.abs(amps[sorted(support)]), 1 / np.sqrt(8))

    def test_logical_one_is_eq7(self, code):
        sv = StateVector(7)
        sv.apply_gate("X", code.input_qubit)
        sv, _ = run_circuit(code.encoding_circuit(), state=sv)
        amps = sv.amplitudes()
        expected_support = {
            int("".join(map(str, w)), 2) for w in code.hamming.odd_codewords()
        }
        support = {int(i) for i in np.nonzero(np.abs(amps) > 1e-12)[0]}
        assert support == expected_support

    def test_superposition_encoded_faithfully(self, code):
        # Encode (3|0> + 4i|1>)/5 and verify both logical components.
        sv = StateVector(7)
        u = np.array([[0.6, -0.8j], [0.8j, 0.6]], dtype=complex)
        sv.apply_unitary(u, (code.input_qubit,))
        sv, _ = run_circuit(code.encoding_circuit(), state=sv)
        zero_sv, _ = run_circuit(code.encoding_circuit())
        one_in = StateVector(7)
        one_in.apply_gate("X", code.input_qubit)
        one_sv, _ = run_circuit(code.encoding_circuit(), state=one_in)
        amp0 = np.vdot(zero_sv.amplitudes(), sv.amplitudes())
        amp1 = np.vdot(one_sv.amplitudes(), sv.amplitudes())
        assert abs(amp0) == pytest.approx(0.6)
        assert abs(amp1) == pytest.approx(0.8)

    def test_decoder_inverts_encoder(self, code):
        sv = StateVector(7)
        u = np.array([[0.28, -0.96], [0.96, 0.28]], dtype=complex)
        sv.apply_unitary(u, (code.input_qubit,))
        reference = sv.copy()
        sv, _ = run_circuit(code.encoding_circuit(), state=sv)
        sv, _ = run_circuit(code.decoding_circuit(), state=sv)
        assert sv.fidelity(reference) == pytest.approx(1.0)

    def test_transversal_hadamard_eq11(self, code):
        """Bitwise R maps |0>code to (|0>code+|1>code)/sqrt(2) (Eq. 11)."""
        sv, _ = run_circuit(code.encoding_circuit())
        for q in range(7):
            sv.apply_gate("H", q)
        zero_sv, _ = run_circuit(code.encoding_circuit())
        one_in = StateVector(7)
        one_in.apply_gate("X", code.input_qubit)
        one_sv, _ = run_circuit(code.encoding_circuit(), state=one_in)
        plus = (zero_sv.amplitudes() + one_sv.amplitudes()) / np.sqrt(2)
        assert sv.fidelity(plus) == pytest.approx(1.0)


class TestEncoderTableau:
    def test_all_stabilizers_plus_one(self, code):
        sim = StabilizerSimulator(7)
        sim.run(code.encoding_circuit())
        for g in code.eq18_generators():
            assert sim.pauli_expectation(g) == 1

    def test_logical_z_plus_one_for_zero(self, code):
        sim = StabilizerSimulator(7)
        sim.run(code.encoding_circuit())
        assert sim.pauli_expectation(code.logical_z[0]) == 1

    def test_logical_z_minus_one_for_one(self, code):
        sim = StabilizerSimulator(7)
        sim.x_gate(code.input_qubit)
        sim.run(code.encoding_circuit())
        assert sim.pauli_expectation(code.logical_z[0]) == -1
        for g in code.eq18_generators():
            assert sim.pauli_expectation(g) == 1

    def test_transversal_phase_gate(self, code):
        """§4.1: applying P^-1 (= S†) bitwise implements the encoded P.

        On |0>code (Z̄ = +1 eigenstate) P acts trivially; on the encoded
        |+> it maps X̄ -> Ȳ.  Check the latter via stabilizer expectations.
        """
        sim = StabilizerSimulator(7)
        sim.run(code.encoding_circuit())
        # Make encoded |+>: transversal H on |0>code.
        for q in range(7):
            sim.h(q)
        for q in range(7):
            sim.sdg(q)
        logical_y = pauli_from_string("YYYYYYY")
        # P X̄ P† = Ȳ up to sign; accept either deterministic value.
        assert sim.pauli_expectation(logical_y) in (1, -1)
        for g in code.eq18_generators():
            assert sim.pauli_expectation(g) == 1


class TestFrameDecoding:
    def test_destructive_measurement_decode(self, code):
        words = code.hamming.codewords()
        for w in words:
            expected = int(w.sum() % 2)
            assert code.destructive_measurement_decode(w)[0] == expected
            for i in range(7):
                corrupted = w.copy()
                corrupted[i] ^= 1
                assert code.destructive_measurement_decode(corrupted)[0] == expected

    def test_decode_bitflip_syndrome_positions(self, code):
        for q in range(7):
            fx = np.zeros((1, 7), dtype=np.uint8)
            fx[0, q] = 1
            syn = code.x_syndrome_of_frame(fx)
            corr = code.decode_bitflip_syndrome(syn)
            assert np.array_equal(corr, fx)

    def test_correct_frame_single_errors(self, code):
        rng = np.random.default_rng(0)
        fx = np.zeros((21, 7), dtype=np.uint8)
        fz = np.zeros((21, 7), dtype=np.uint8)
        i = 0
        for q in range(7):
            for kind in range(3):
                if kind in (0, 1):
                    fx[i, q] = 1
                if kind in (1, 2):
                    fz[i, q] = 1
                i += 1
        cfx, cfz = code.correct_frame(fx, fz)
        action = code.logical_action_of_frame(cfx, cfz)
        assert not action.any()

    def test_correct_frame_double_bitflip_is_logical(self, code):
        # §2: two bit flips in a block -> recovery lands on the wrong
        # codeword, a logical X error (Eq. 12).
        fx = np.zeros((1, 7), dtype=np.uint8)
        fx[0, 0] = fx[0, 1] = 1
        cfx, cfz = code.correct_frame(fx, np.zeros_like(fx))
        action = code.logical_action_of_frame(cfx, cfz)
        assert action[0, 0] == 1  # logical X
        assert action[0, 1] == 0

    def test_x_and_z_single_errors_both_corrected(self, code):
        # §2: "If one qubit in the block has a phase error, and another one
        # has a bit flip error, then recovery will be successful."
        fx = np.zeros((1, 7), dtype=np.uint8)
        fz = np.zeros((1, 7), dtype=np.uint8)
        fx[0, 2] = 1
        fz[0, 5] = 1
        cfx, cfz = code.correct_frame(fx, fz)
        assert not code.logical_action_of_frame(cfx, cfz).any()

    def test_nondestructive_parity_circuit_counts(self, code):
        from repro.circuits import gate_counts

        circ = code.nondestructive_parity_circuit()
        counts = gate_counts(circ)
        assert counts["CNOT"] == 3  # Fig. 4's three XORs
        assert counts["M"] == 1
