"""I/O-level chaos: the persistence path under deterministic storage faults.

Counterpart of the worker-fault chaos suite in ``test_threshold_runtime``:
here the *journal's sqlite connection* is the thing that fails.  The
contract under proof, for every fault kind: the run completes with
bit-for-bit the counts an unjournaled run produces, emitting a structured
warning (``JournalDegraded`` / ``CacheCorrupt``) instead of raising.

Write-ordinal accounting (fresh ``resume=True`` run, the default): the
run-registration INSERT is write 1 and the per-shard records are writes
``2..num_shards+1`` in shard order (serial driver), so ordinals address
"registration", "first shard", "mid-run" exactly.  A retried statement
re-executes and advances the counter, so a lock-contention *burst* is
modelled as consecutive planned ordinals.
"""

import warnings

import pytest

from repro.codes import SteaneCode
from repro.threshold import (
    CacheCorrupt,
    ChaosPlan,
    CheckpointJournal,
    IOChaosPlan,
    JournalDegraded,
    sharded_code_capacity_memory,
)
from repro.threshold import sharded

EPS = 0.08
SHOTS = 400
SHARDS = 4
SEED = 7


@pytest.fixture(scope="module")
def code():
    return SteaneCode()


@pytest.fixture(scope="module")
def baseline(code):
    """Unjournaled ground truth every chaos run must reproduce exactly."""
    return sharded_code_capacity_memory(
        code, EPS, rounds=1, shots=SHOTS, seed=SEED, workers=1,
        num_shards=SHARDS,
    )


def run_with_io_chaos(code, cache_path, io_faults, workers=1, **kw):
    return sharded_code_capacity_memory(
        code, EPS, rounds=1, shots=SHOTS, seed=SEED, workers=workers,
        num_shards=SHARDS, checkpoint=cache_path, backoff=0.0,
        io_chaos=IOChaosPlan(io_faults) if io_faults is not None else None,
        **kw,
    )


def shard_rows(cache_path, code):
    key_specs, fp = sharded._build_specs(
        "capacity", (code, EPS, 1), SHOTS, SEED, SHARDS
    )
    from repro.threshold import compute_run_key

    key = compute_run_key("capacity", (code, EPS, 1), SHOTS, fp, len(key_specs))
    with CheckpointJournal(cache_path) as journal:
        return journal.completed_shards(key)


class TestIOFaultKinds:
    def test_io_error_on_registration_degrades(self, code, baseline, tmp_path):
        with pytest.warns(JournalDegraded):
            result = run_with_io_chaos(
                code, tmp_path / "c.sqlite", {1: "io_error_on_write"}
            )
        assert result == baseline

    def test_disk_full_mid_run_degrades(self, code, baseline, tmp_path):
        """The overnight-scan killer: the disk fills after two shards have
        already been journaled.  The run must finish anyway — and the rows
        that made it to disk stay valid for a later resume."""
        path = tmp_path / "c.sqlite"
        with pytest.warns(JournalDegraded):
            result = run_with_io_chaos(code, path, {4: "disk_full"})
        assert result == baseline
        assert sorted(shard_rows(path, code)) == [0, 1]  # writes 2 and 3 landed

    def test_every_fault_kind_completes_bit_for_bit(
        self, code, baseline, tmp_path
    ):
        for kind in ("io_error_on_write", "disk_full", "lock_contention"):
            path = tmp_path / f"{kind}.sqlite"
            # Ordinal 6 never arrives for a 4-shard run's happy path, so
            # plan a mid-run fault (ordinal 3) plus a burst long enough to
            # exhaust the lock budget for the contention kind.
            faults = {n: kind for n in range(3, 9)}
            with pytest.warns(JournalDegraded):
                result = run_with_io_chaos(code, path, faults)
            assert result == baseline, kind

    def test_lock_burst_within_retry_budget_is_absorbed(
        self, code, baseline, tmp_path
    ):
        """Two consecutive locked attempts on one shard record are retried
        and the run stays *fully journaled* — no degradation warning."""
        path = tmp_path / "c.sqlite"
        with warnings.catch_warnings():
            warnings.simplefilter("error", JournalDegraded)
            result = run_with_io_chaos(
                code, path, {2: "lock_contention", 3: "lock_contention"}
            )
        assert result == baseline
        assert sorted(shard_rows(path, code)) == [0, 1, 2, 3]

    def test_lock_burst_beyond_retry_budget_degrades(
        self, code, baseline, tmp_path
    ):
        # _JOURNAL_LOCK_RETRIES = 4 → the 5th consecutive locked attempt
        # stops retrying and degrades.
        faults = {n: "lock_contention" for n in range(2, 7)}
        with pytest.warns(JournalDegraded):
            result = run_with_io_chaos(code, tmp_path / "c.sqlite", faults)
        assert result == baseline

    def test_corrupt_row_caught_on_next_run(
        self, code, baseline, tmp_path, monkeypatch
    ):
        """The torn-write/bit-rot fault: the poisoned run itself sails
        through silently (nothing *failed*), and the *next* run's checksum
        verification quarantines exactly the tampered row and recomputes
        only that shard — pooled counts bit-for-bit either way."""
        path = tmp_path / "c.sqlite"
        # write 3 = shard 1's record
        poisoned = run_with_io_chaos(code, path, {3: "corrupt_row"})
        assert poisoned == baseline  # tamper happens on disk, not in RAM
        calls = []
        original = sharded._run_shard
        monkeypatch.setattr(
            sharded, "_run_shard",
            lambda spec: calls.append(spec) or original(spec),
        )
        with pytest.warns(CacheCorrupt):
            replayed = run_with_io_chaos(code, path, None)
        assert len(calls) == 1  # only the quarantined shard re-ran
        assert replayed == baseline
        # The repaired cache replays fully clean afterwards.
        calls.clear()
        with warnings.catch_warnings():
            warnings.simplefilter("error", (CacheCorrupt, JournalDegraded))
            assert run_with_io_chaos(code, path, None) == baseline
        assert calls == []

    def test_unopenable_checkpoint_path_degrades(self, code, baseline, tmp_path):
        """checkpoint= pointing at a directory (sqlite can't open it) must
        degrade at open time, not kill the run."""
        with pytest.warns(JournalDegraded):
            result = sharded_code_capacity_memory(
                code, EPS, rounds=1, shots=SHOTS, seed=SEED, workers=1,
                num_shards=SHARDS, checkpoint=tmp_path,
            )
        assert result == baseline


class TestCombinedChaos:
    @pytest.mark.slow_mp
    def test_worker_and_io_faults_together(self, code, baseline, tmp_path):
        """The full gauntlet: a crashing worker (BrokenProcessPool path)
        *and* a dying disk in one multiprocess run — still bit-for-bit."""
        with pytest.warns(JournalDegraded):
            result = sharded_code_capacity_memory(
                code, EPS, rounds=1, shots=SHOTS, seed=SEED, workers=2,
                num_shards=SHARDS, checkpoint=tmp_path / "c.sqlite",
                backoff=0.0, chaos=ChaosPlan({0: "crash"}),
                io_chaos=IOChaosPlan({2: "io_error_on_write"}),
            )
        assert result == baseline
