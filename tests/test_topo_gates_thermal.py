"""Tests for anyonic gate compilation and the §7.1 error phenomenology."""

import numpy as np
import pytest

from repro.topo import PullThroughCompiler, TopologicalErrorModel, toffoli_feasibility_report
from repro.topo.gates import A5_COMPUTATIONAL_BASIS, A5_NOT_FLUX, not_gate_works
from repro.topo.groups import PermutationGroup, parse_cycles


class TestNotGate:
    def test_fig21_not_gate(self):
        assert not_gate_works()

    def test_not_flux_is_in_a5(self):
        a5 = PermutationGroup.alternating(5)
        assert A5_NOT_FLUX in a5

    def test_basis_fluxes_share_one_object(self):
        # Eq. (45): "three-cycles with one object in common" — both move
        # object 2 (1-indexed).
        u0, u1 = A5_COMPUTATIONAL_BASIS
        moved0 = {i for i in range(5) if u0[i] != i}
        moved1 = {i for i in range(5) if u1[i] != i}
        assert len(moved0 & moved1) == 1


class TestCompiler:
    def test_compiles_identity(self):
        a5 = PermutationGroup.alternating(5)
        u0, u1 = A5_COMPUTATIONAL_BASIS
        compiler = PullThroughCompiler(a5, max_depth=2)
        gate = compiler.compile([(u0,), (u1,)], [(u0,), (u1,)])
        assert gate is not None and gate.depth == 0

    def test_compiles_not_in_one_step(self):
        a5 = PermutationGroup.alternating(5)
        u0, u1 = A5_COMPUTATIONAL_BASIS
        compiler = PullThroughCompiler(a5, max_depth=2)
        gate = compiler.compile(
            [(u0,), (u1,)],
            [(u1,), (u0,)],
            ancilla_fluxes=(A5_NOT_FLUX,),
        )
        assert gate is not None
        assert gate.depth == 1
        assert gate.steps[0] == (0, 1)
        assert gate.catalytic

    def test_discovers_not_flux_automatically(self):
        """Search with a *wrong* ancilla finds nothing at depth 1."""
        a5 = PermutationGroup.alternating(5)
        u0, u1 = A5_COMPUTATIONAL_BASIS
        compiler = PullThroughCompiler(a5, max_depth=1)
        wrong = parse_cycles("(12345)", 5)
        gate = compiler.compile([(u0,), (u1,)], [(u1,), (u0,)], ancilla_fluxes=(wrong,))
        assert gate is None

    def test_compiles_two_pair_swap_in_s3(self):
        """A worked small-group example: conjugation swaps the two
        3-cycles of S3 via a transposition ancilla."""
        s3 = PermutationGroup.symmetric(3)
        r = parse_cycles("(123)", 3)
        r2 = parse_cycles("(132)", 3)
        t = parse_cycles("(12)", 3)
        compiler = PullThroughCompiler(s3, max_depth=2)
        gate = compiler.compile([(r,), (r2,)], [(r2,), (r,)], ancilla_fluxes=(t,))
        assert gate is not None and gate.depth == 1

    def test_depth_limit_respected(self):
        a5 = PermutationGroup.alternating(5)
        u0, u1 = A5_COMPUTATIONAL_BASIS
        compiler = PullThroughCompiler(a5, max_depth=0)
        gate = compiler.compile(
            [(u0,), (u1,)], [(u1,), (u0,)], ancilla_fluxes=(A5_NOT_FLUX,)
        )
        assert gate is None

    def test_input_validation(self):
        a5 = PermutationGroup.alternating(5)
        compiler = PullThroughCompiler(a5)
        with pytest.raises(ValueError):
            compiler.compile([(A5_COMPUTATIONAL_BASIS[0],)], [])


class TestFeasibilityReport:
    def test_a5_unique_nonsolvable_below_order_60(self):
        report = toffoli_feasibility_report()
        nonsolvable = [k for k, v in report.items() if v["universality_candidate"]]
        small = [k for k in nonsolvable if report[k]["order"] <= 60]
        assert small == ["A5"]

    def test_a5_perfect(self):
        report = toffoli_feasibility_report()
        assert report["A5"]["perfect"] is True
        assert report["S5"]["perfect"] is False

    def test_orders_recorded(self):
        report = toffoli_feasibility_report()
        assert report["S4"]["order"] == 24
        assert report["Q8"]["order"] == 8


class TestThermalModel:
    def test_tunneling_decays_exponentially(self):
        model = TopologicalErrorModel(mass=1.0)
        r1 = model.tunneling_error_rate(5.0)
        r2 = model.tunneling_error_rate(10.0)
        # Amplitude e^{-mL} -> probability e^{-2mL}.
        assert r2 / r1 == pytest.approx(np.exp(-10.0), rel=1e-6)

    def test_thermal_boltzmann_factor(self):
        model = TopologicalErrorModel(gap=2.0)
        r1 = model.thermal_error_rate(0.5)
        r2 = model.thermal_error_rate(1.0)
        assert r1 / r2 == pytest.approx(np.exp(-4.0 + 2.0), rel=1e-6)

    def test_zero_temperature_no_thermal_errors(self):
        model = TopologicalErrorModel()
        assert model.thermal_error_rate(0.0) == 0.0

    def test_lifetime_grows_with_separation(self):
        model = TopologicalErrorModel(mass=1.0, gap=1.0)
        short = model.memory_lifetime(2.0, 0.0, trials=512, seed=0)
        long = model.memory_lifetime(4.0, 0.0, trials=512, seed=0)
        assert long > short * 10

    def test_lifetime_falls_with_temperature(self):
        model = TopologicalErrorModel()
        cold = model.memory_lifetime(50.0, 0.2, trials=512, seed=1)
        hot = model.memory_lifetime(50.0, 1.0, trials=512, seed=1)
        assert cold > hot

    def test_validation(self):
        model = TopologicalErrorModel()
        with pytest.raises(ValueError):
            model.tunneling_error_rate(-1.0)
        with pytest.raises(ValueError):
            model.thermal_error_rate(-0.1)
