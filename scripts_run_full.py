"""Run every experiment at full statistics and dump JSON for EXPERIMENTS.md.

Exit status is meaningful for CI: non-zero when any experiment raises,
``--bench`` runs the perf harness (``scripts/bench_perf.py``), refusing to
overwrite ``BENCH_*.json`` on a >20% throughput regression, and ``--tests``
runs the tier-1 pytest suite (with the per-test watchdog from
``tests/conftest.py`` active, so an injected hang can never wedge it;
``--tests --quick`` skips the ``slow_mp`` multiprocess/chaos tests), and
``--lint`` runs the in-repo static-analysis pass (``repro.analysis
--strict``; see ANALYSIS.md).

Resilience: Monte Carlo experiments run on the crash-safe sharded runtime
(`repro.threshold.runtime`).  ``--checkpoint PATH`` journals every finished
shard into a sqlite file keyed by content-addressed run keys, and
``--resume`` replays finished shards after a crash or Ctrl-C, re-executing
only the remainder; ``--shard-timeout`` / ``--max-retries`` bound hung and
failing workers.

The journal doubles as a content-addressed **result cache**: ``--cache
[PATH]`` (default ``full_results.checkpoint.sqlite``) makes every Monte
Carlo run consult the store before computing — a repeat of an
already-completed run replays its pooled counts from disk without spawning
a worker pool; corrupted rows are quarantined and recomputed
(``CacheCorrupt``); storage faults degrade to uncheckpointed execution
(``JournalDegraded``) instead of killing the run.  ``--no-cache`` forces
recomputation even when a cache path is configured.  ``cache stats`` and
``cache gc`` inspect and compact the store.

Threshold-as-a-service: ``serve --queue PATH [--workers N]`` runs a
claimant loop against a durable scan queue (``repro.threshold.scheduler``,
see SCHEDULER.md) — lease-based claiming, heartbeats, graceful drain on
SIGTERM/Ctrl-C (in-flight work requeued, completed shards durable).
Run one ``serve`` per host against a shared queue file for multi-claimant
dispatch.  ``queue stats`` / ``queue jobs [STATE]`` inspect the queue.
"""

import argparse
import inspect
import json
import os
import subprocess
import sys
import time
import traceback
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent
DEFAULT_CHECKPOINT = str(REPO_ROOT / "full_results.checkpoint.sqlite")


def run_experiments(output_path: str, workers: int = 1, **resilience) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    results = {}
    failed = []
    for name, runner in ALL_EXPERIMENTS.items():
        params = inspect.signature(runner).parameters
        kwargs = {"quick": False}
        if workers != 1 and "workers" in params:
            kwargs["workers"] = workers
        for knob, value in resilience.items():
            if value is not None and knob in params:
                kwargs[knob] = value
        t0 = time.time()
        try:
            results[name] = runner(**kwargs)
        except Exception:
            failed.append(name)
            results[name] = {"_error": traceback.format_exc()}
            print(f"{name} FAILED", flush=True)
            continue
        results[name]["_runtime_seconds"] = round(time.time() - t0, 1)
        print(f"{name} done in {results[name]['_runtime_seconds']}s", flush=True)
    with open(output_path, "w") as fh:
        json.dump(results, fh, indent=1, default=str)
    if failed:
        print(f"FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("ALL DONE")
    return 0


def run_bench(quick: bool, workers: int = 1) -> int:
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    from bench_perf import main as bench_main

    # Quick runs are smoke runs only: CI-sized rates are overhead-dominated
    # and were never comparable to the full-size baseline (the old guarded
    # write refused them 100% of the time as a spurious "regression").  The
    # real regression guard engages on the full protocol, i.e. --bench
    # without --quick.
    argv = ["--quick", "--check"] if quick else ["--cache-bench"]
    if workers != 1:
        argv += ["--workers", str(workers)]
    return bench_main(argv)


def run_tests(quick: bool) -> int:
    """Tier-1 suite under the per-test watchdog (tests/conftest.py): a
    hung multiprocess test raises instead of wedging the run.  ``--quick``
    deselects the ``slow_mp``-marked multiprocess/chaos tests."""
    cmd = [sys.executable, "-m", "pytest", "-x", "-q"]
    if quick:
        cmd += ["-m", "not slow_mp"]
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.call(cmd, cwd=str(REPO_ROOT), env=env)


def run_lint() -> int:
    """Static-analysis pass: the RPL rule catalog over src/scripts/tests
    plus the committed baseline (``python -m repro.analysis --strict``),
    then the scheduler protocol verifier (``--verify-protocol``): static
    SQL conformance against the declared transition spec plus the bounded
    exhaustive interleaving explorer.  See ANALYSIS.md for the catalog and
    the suppression/baseline workflow, SCHEDULER.md for the protocol."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.analysis.__main__ import main as lint_main

    rc = lint_main(["--strict", "--root", str(REPO_ROOT)])
    if rc != 0:
        return rc
    return lint_main(["--verify-protocol", "--root", str(REPO_ROOT)])


def run_cache_command(command: list[str], cache_path: str, queue_path: str | None = None) -> int:
    """``cache stats`` / ``cache gc`` — inspect or compact the result cache.

    ``gc`` only collects *stale* incomplete runs (grace window) and never
    collects runs the scan queue still has pending or leased — a gc racing
    a live scan must not eat its checkpointed shards mid-write.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.threshold import ResultCache, ScanQueue

    sub = command[1] if len(command) > 1 else "stats"
    if sub not in ("stats", "gc"):
        print(f"unknown cache subcommand {sub!r}; use 'stats' or 'gc'", file=sys.stderr)
        return 2
    if not Path(cache_path).exists():
        print(f"no cache at {cache_path}", file=sys.stderr)
        return 1
    protected: set = set()
    if sub == "gc" and queue_path is not None and Path(queue_path).exists():
        with ScanQueue(queue_path) as queue:
            protected = queue.active_run_keys()
    with ResultCache(cache_path) as cache:
        report = (
            cache.stats()
            if sub == "stats"
            else cache.gc(protected_keys=protected)
        )
    print(json.dumps(report, indent=1))
    return 0


def run_queue_command(command: list[str], queue_path: str) -> int:
    """``queue stats`` / ``queue jobs [STATE]`` — inspect the scan queue."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.threshold import ScanQueue

    sub = command[1] if len(command) > 1 else "stats"
    if sub not in ("stats", "jobs"):
        print(f"unknown queue subcommand {sub!r}; use 'stats' or 'jobs'", file=sys.stderr)
        return 2
    if not Path(queue_path).exists():
        print(f"no queue at {queue_path}", file=sys.stderr)
        return 1
    with ScanQueue(queue_path) as queue:
        if sub == "stats":
            report = queue.stats()
        else:
            state = command[2] if len(command) > 2 else None
            report = [
                {
                    k: row[k]
                    for k in (
                        "job_id", "run_key", "kind", "state", "priority",
                        "attempts", "lease_owner", "source", "result_shots",
                        "result_failures", "error",
                    )
                }
                for row in queue.jobs(state)
            ]
    print(json.dumps(report, indent=1))
    return 0


def run_serve(args) -> int:
    """Claimant loop against a shared scan queue (SIGTERM drains gracefully)."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.threshold import serve

    try:
        report = serve(
            args.queue,
            cache_path=args.cache or args.checkpoint or DEFAULT_CHECKPOINT,
            workers=args.workers,
            drain_on_empty=not args.keep_serving,
            lease_seconds=args.lease_seconds,
            shard_timeout=args.shard_timeout,
            max_retries=args.max_retries,
            install_signal_handlers=True,
        )
    except KeyboardInterrupt:
        # A Ctrl-C that lands between jobs (claim/poll) rather than inside
        # the drain-aware execution path: nothing was leased, clean exit.
        print("interrupted while idle; queue untouched", file=sys.stderr)
        return 0
    print(
        json.dumps(
            {
                "owner": report.owner,
                "claimed": report.claimed,
                "completed": report.completed,
                "released": report.released,
                "failed": report.failed,
                "requeued": report.requeued,
                "stale_completions": report.stale_completions,
                "drained": report.drained,
            },
            indent=1,
        )
    )
    return 0 if report.failed == 0 else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "command", nargs="*", default=[],
        help="optional subcommand: 'cache stats' (health summary), "
        "'cache gc' (drop stale incomplete runs, purge quarantine, VACUUM), "
        "'serve' (claimant loop against --queue), 'queue stats', or "
        "'queue jobs [STATE]'",
    )
    parser.add_argument(
        "--queue", default=str(REPO_ROOT / "scan_queue.sqlite"), metavar="PATH",
        help="durable scan-queue sqlite file for 'serve' / 'queue' commands",
    )
    parser.add_argument(
        "--via-queue", action="store_true",
        help="route experiment Monte Carlo grids through the durable scan "
        "queue at --queue (submit all points, drain with an inline "
        "claimant; an interrupt requeues the remainder for resume)",
    )
    parser.add_argument(
        "--keep-serving", action="store_true",
        help="serve: keep polling when the queue is empty instead of "
        "draining and exiting",
    )
    parser.add_argument(
        "--lease-seconds", type=float, default=60.0,
        help="serve: lease duration; a claimant that stops heartbeating "
        "loses its job to another claimant after this long (default 60)",
    )
    parser.add_argument(
        "--bench", action="store_true",
        help="run the perf harness instead of the experiments (guarded "
        "BENCH_*.json update: a >20%% regression refuses to overwrite)",
    )
    parser.add_argument(
        "--tests", action="store_true",
        help="run the tier-1 pytest suite under the per-test watchdog "
        "(--quick skips slow_mp multiprocess/chaos tests)",
    )
    parser.add_argument(
        "--lint", action="store_true",
        help="run the in-repo static-analysis pass (repro.analysis --strict: "
        "RPL determinism/picklability/concurrency rules against the "
        "committed baseline, see ANALYSIS.md)",
    )
    parser.add_argument("--quick", action="store_true", help="CI-sized bench/tests run")
    parser.add_argument(
        "--workers", type=int, default=1,
        help="shot-shard Monte Carlo workloads across this many worker "
        "processes (experiments that support it, and the bench's sharded "
        "datapoint)",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="journal finished Monte Carlo shards into this sqlite file "
        "(crash-safe; implied by --resume at "
        f"{Path(DEFAULT_CHECKPOINT).name})",
    )
    parser.add_argument(
        "--cache", nargs="?", const=DEFAULT_CHECKPOINT, default=None,
        metavar="PATH",
        help="use the journal as a content-addressed result cache (read "
        "before compute + checkpoint + resume); PATH defaults to "
        f"{Path(DEFAULT_CHECKPOINT).name}",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="force recomputation: ignore --cache/--checkpoint entirely",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="replay shards already recorded in the checkpoint journal and "
        "re-execute only the remainder (run keys are content-addressed, so "
        "a stale journal can never corrupt results)",
    )
    parser.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="declare a Monte Carlo shard hung after this long and replace "
        "its worker (default: no timeout)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=None,
        help="re-executions allowed per failing shard before it degrades "
        "to in-process execution (default 2)",
    )
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "full_results.json"),
        help="experiments output JSON (the bench always writes BENCH_*.json)",
    )
    args = parser.parse_args()
    if args.command:
        if args.command[0] == "cache":
            return run_cache_command(
                args.command,
                args.cache or args.checkpoint or DEFAULT_CHECKPOINT,
                queue_path=args.queue,
            )
        if args.command[0] == "queue":
            return run_queue_command(args.command, args.queue)
        if args.command[0] == "serve":
            return run_serve(args)
        print(f"unknown command {args.command[0]!r}", file=sys.stderr)
        return 2
    if args.bench:
        return run_bench(args.quick, args.workers)
    if args.tests:
        return run_tests(args.quick)
    if args.lint:
        return run_lint()
    # --cache is checkpoint + resume under its result-cache reading; an
    # explicit --checkpoint still works, and --no-cache wins over both.
    checkpoint = args.cache or args.checkpoint
    if args.resume and checkpoint is None:
        checkpoint = DEFAULT_CHECKPOINT
    if args.no_cache:
        checkpoint = None
    resume = args.resume or args.cache is not None
    return run_experiments(
        args.out,
        args.workers,
        checkpoint=checkpoint,
        resume=resume if checkpoint is not None else None,
        shard_timeout=args.shard_timeout,
        max_retries=args.max_retries,
        queue=args.queue if args.via_queue else None,
    )


if __name__ == "__main__":
    raise SystemExit(main())
