"""Run every experiment at full statistics and dump JSON for EXPERIMENTS.md."""
import json, time
from repro.experiments import ALL_EXPERIMENTS

results = {}
for name, runner in ALL_EXPERIMENTS.items():
    t0 = time.time()
    results[name] = runner(quick=False)
    results[name]["_runtime_seconds"] = round(time.time() - t0, 1)
    print(f"{name} done in {results[name]['_runtime_seconds']}s", flush=True)
with open("/root/repo/full_results.json", "w") as fh:
    json.dump(results, fh, indent=1, default=str)
print("ALL DONE")
