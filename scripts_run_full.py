"""Run every experiment at full statistics and dump JSON for EXPERIMENTS.md.

Exit status is meaningful for CI: non-zero when any experiment raises,
``--bench`` runs the perf harness (``scripts/bench_perf.py``), refusing to
overwrite ``BENCH_*.json`` on a >20% throughput regression, and ``--tests``
runs the tier-1 pytest suite (with the per-test watchdog from
``tests/conftest.py`` active, so an injected hang can never wedge it;
``--tests --quick`` skips the ``slow_mp`` multiprocess/chaos tests).

Resilience: Monte Carlo experiments run on the crash-safe sharded runtime
(`repro.threshold.runtime`).  ``--checkpoint PATH`` journals every finished
shard into a sqlite file keyed by content-addressed run keys, and
``--resume`` replays finished shards after a crash or Ctrl-C, re-executing
only the remainder; ``--shard-timeout`` / ``--max-retries`` bound hung and
failing workers.
"""

import argparse
import inspect
import json
import os
import subprocess
import sys
import time
import traceback
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent
DEFAULT_CHECKPOINT = str(REPO_ROOT / "full_results.checkpoint.sqlite")


def run_experiments(output_path: str, workers: int = 1, **resilience) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    results = {}
    failed = []
    for name, runner in ALL_EXPERIMENTS.items():
        params = inspect.signature(runner).parameters
        kwargs = {"quick": False}
        if workers != 1 and "workers" in params:
            kwargs["workers"] = workers
        for knob, value in resilience.items():
            if value is not None and knob in params:
                kwargs[knob] = value
        t0 = time.time()
        try:
            results[name] = runner(**kwargs)
        except Exception:
            failed.append(name)
            results[name] = {"_error": traceback.format_exc()}
            print(f"{name} FAILED", flush=True)
            continue
        results[name]["_runtime_seconds"] = round(time.time() - t0, 1)
        print(f"{name} done in {results[name]['_runtime_seconds']}s", flush=True)
    with open(output_path, "w") as fh:
        json.dump(results, fh, indent=1, default=str)
    if failed:
        print(f"FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("ALL DONE")
    return 0


def run_bench(quick: bool, workers: int = 1) -> int:
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    from bench_perf import main as bench_main

    # Quick runs are smoke runs only: CI-sized rates are overhead-dominated
    # and were never comparable to the full-size baseline (the old guarded
    # write refused them 100% of the time as a spurious "regression").  The
    # real regression guard engages on the full protocol, i.e. --bench
    # without --quick.
    argv = ["--quick", "--check"] if quick else []
    if workers != 1:
        argv += ["--workers", str(workers)]
    return bench_main(argv)


def run_tests(quick: bool) -> int:
    """Tier-1 suite under the per-test watchdog (tests/conftest.py): a
    hung multiprocess test raises instead of wedging the run.  ``--quick``
    deselects the ``slow_mp``-marked multiprocess/chaos tests."""
    cmd = [sys.executable, "-m", "pytest", "-x", "-q"]
    if quick:
        cmd += ["-m", "not slow_mp"]
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.call(cmd, cwd=str(REPO_ROOT), env=env)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench", action="store_true",
        help="run the perf harness instead of the experiments (guarded "
        "BENCH_*.json update: a >20%% regression refuses to overwrite)",
    )
    parser.add_argument(
        "--tests", action="store_true",
        help="run the tier-1 pytest suite under the per-test watchdog "
        "(--quick skips slow_mp multiprocess/chaos tests)",
    )
    parser.add_argument("--quick", action="store_true", help="CI-sized bench/tests run")
    parser.add_argument(
        "--workers", type=int, default=1,
        help="shot-shard Monte Carlo workloads across this many worker "
        "processes (experiments that support it, and the bench's sharded "
        "datapoint)",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="journal finished Monte Carlo shards into this sqlite file "
        "(crash-safe; implied by --resume at "
        f"{Path(DEFAULT_CHECKPOINT).name})",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="replay shards already recorded in the checkpoint journal and "
        "re-execute only the remainder (run keys are content-addressed, so "
        "a stale journal can never corrupt results)",
    )
    parser.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="declare a Monte Carlo shard hung after this long and replace "
        "its worker (default: no timeout)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=None,
        help="re-executions allowed per failing shard before it degrades "
        "to in-process execution (default 2)",
    )
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "full_results.json"),
        help="experiments output JSON (the bench always writes BENCH_*.json)",
    )
    args = parser.parse_args()
    if args.bench:
        return run_bench(args.quick, args.workers)
    if args.tests:
        return run_tests(args.quick)
    checkpoint = args.checkpoint
    if args.resume and checkpoint is None:
        checkpoint = DEFAULT_CHECKPOINT
    return run_experiments(
        args.out,
        args.workers,
        checkpoint=checkpoint,
        resume=args.resume if checkpoint is not None else None,
        shard_timeout=args.shard_timeout,
        max_retries=args.max_retries,
    )


if __name__ == "__main__":
    raise SystemExit(main())
