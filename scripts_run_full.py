"""Run every experiment at full statistics and dump JSON for EXPERIMENTS.md.

Exit status is meaningful for CI: non-zero when any experiment raises, and
``--bench`` runs the perf harness (``scripts/bench_perf.py``), refusing to
overwrite ``BENCH_*.json`` on a >20% throughput regression.
"""

import argparse
import json
import sys
import time
import traceback
from pathlib import Path


def run_experiments(output_path: str, workers: int = 1) -> int:
    import inspect

    from repro.experiments import ALL_EXPERIMENTS

    results = {}
    failed = []
    for name, runner in ALL_EXPERIMENTS.items():
        kwargs = {"quick": False}
        if workers != 1 and "workers" in inspect.signature(runner).parameters:
            kwargs["workers"] = workers
        t0 = time.time()
        try:
            results[name] = runner(**kwargs)
        except Exception:
            failed.append(name)
            results[name] = {"_error": traceback.format_exc()}
            print(f"{name} FAILED", flush=True)
            continue
        results[name]["_runtime_seconds"] = round(time.time() - t0, 1)
        print(f"{name} done in {results[name]['_runtime_seconds']}s", flush=True)
    with open(output_path, "w") as fh:
        json.dump(results, fh, indent=1, default=str)
    if failed:
        print(f"FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("ALL DONE")
    return 0


def run_bench(quick: bool, workers: int = 1) -> int:
    sys.path.insert(0, str(Path(__file__).resolve().parent / "scripts"))
    from bench_perf import main as bench_main

    # Quick runs are smoke runs only: CI-sized rates are overhead-dominated
    # and were never comparable to the full-size baseline (the old guarded
    # write refused them 100% of the time as a spurious "regression").  The
    # real regression guard engages on the full protocol, i.e. --bench
    # without --quick.
    argv = ["--quick", "--check"] if quick else []
    if workers != 1:
        argv += ["--workers", str(workers)]
    return bench_main(argv)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench", action="store_true",
        help="run the perf harness instead of the experiments (guarded "
        "BENCH_*.json update: a >20%% regression refuses to overwrite)",
    )
    parser.add_argument("--quick", action="store_true", help="CI-sized bench run")
    parser.add_argument(
        "--workers", type=int, default=1,
        help="shot-shard Monte Carlo workloads across this many worker "
        "processes (experiments that support it, and the bench's sharded "
        "datapoint)",
    )
    parser.add_argument(
        "--out", default="/root/repo/full_results.json",
        help="experiments output JSON (the bench always writes BENCH_*.json)",
    )
    args = parser.parse_args()
    if args.bench:
        return run_bench(args.quick, args.workers)
    return run_experiments(args.out, args.workers)


if __name__ == "__main__":
    raise SystemExit(main())
