"""Fault-tolerance planning: the §5–§6 mathematics as one object.

Answers the engineering questions the paper closes with: given hardware
error rates, how many concatenation levels, what block size, how many
physical qubits, and can the 432-bit factoring run finish?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.threshold.flow import (
    CONCATENATION_COEFFICIENT,
    levels_needed,
    logical_rate_closed_form,
    threshold_from_coefficient,
)
from repro.threshold.resources import (
    FACTORING_432_BIT,
    FactoringPlan,
    FactoringProblem,
    plan_factoring,
)
from repro.threshold.scaling import block_size_required

__all__ = ["FaultTolerancePlanner"]


@dataclass
class FaultTolerancePlanner:
    """Resource planning against the concatenated-Steane threshold.

    Parameters
    ----------
    threshold: the flow fixed point (default 1/21 from Eq. 33; substitute
        a Monte-Carlo pseudo-threshold for circuit-level planning).
    """

    threshold: float = threshold_from_coefficient(CONCATENATION_COEFFICIENT)

    def levels_for(self, physical_error: float, target_error: float) -> int:
        """Concatenation levels needed to push ε to the target (Eq. 36)."""
        return levels_needed(physical_error, target_error, self.threshold)

    def logical_error(self, physical_error: float, levels: int) -> float:
        return logical_rate_closed_form(physical_error, levels, self.threshold)

    def block_size(self, physical_error: float, target_error: float) -> int:
        return 7 ** self.levels_for(physical_error, target_error)

    def block_size_for_computation(self, physical_error: float, gates: float) -> float:
        """Eq. (37): block size for a computation of ``gates`` operations."""
        return block_size_required(physical_error, self.threshold, gates)

    def factoring_plan(
        self,
        physical_error: float = 1e-6,
        problem: FactoringProblem = FACTORING_432_BIT,
        ancilla_overhead: float = 2.0,
    ) -> FactoringPlan:
        """The §6 worked example (432-bit number, Shor's algorithm)."""
        return plan_factoring(problem, physical_error, self.threshold, ancilla_overhead)

    def summary(self, physical_error: float, target_error: float) -> dict[str, float]:
        levels = self.levels_for(physical_error, target_error)
        return {
            "physical_error": physical_error,
            "target_error": target_error,
            "threshold": self.threshold,
            "levels": float(levels),
            "block_size": float(7**levels),
            "achieved_error": self.logical_error(physical_error, levels),
        }
