"""Logical-qubit memory experiments — the user-facing façade.

Example
-------
>>> from repro.core import LogicalMemory
>>> mem = LogicalMemory(code="steane", method="steane", eps=1e-3)
>>> result = mem.run(rounds=3, shots=5000, seed=7)
>>> result.failure_rate           # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codes.five_qubit import FiveQubitCode
from repro.codes.shor9 import ShorNineCode
from repro.codes.steane import SteaneCode
from repro.ft.exrec import ShorECProtocol, SteaneECProtocol
from repro.noise.models import NoiseModel, circuit_level
from repro.threshold.montecarlo import (
    MemoryResult,
    code_capacity_memory,
    memory_experiment,
)
from repro.util.rng import as_rng
from repro.util.stats import binomial_confidence, logical_error_per_round

__all__ = ["LogicalMemory", "UnencodedMemory"]

_CODES = {
    "steane": SteaneCode,
    "five_qubit": FiveQubitCode,
    "shor9": ShorNineCode,
}


class LogicalMemory:
    """One logical qubit protected by a chosen code and EC method.

    Parameters
    ----------
    code: ``"steane"``, ``"five_qubit"``, or ``"shor9"``.
    method: ``"steane"`` (Fig. 9 extraction; Steane code only), ``"shor"``
        (cat-state extraction; any code), or ``"ideal"`` (code-capacity:
        flawless recovery, §2's setting).
    eps: shorthand for a uniform circuit-level error rate; ignored when an
        explicit ``noise`` model is given.
    """

    def __init__(
        self,
        code: str = "steane",
        method: str = "steane",
        eps: float = 1e-3,
        noise: NoiseModel | None = None,
        repetitions: int = 2,
        policy: str = "paper",
    ) -> None:
        if code not in _CODES:
            raise ValueError(f"unknown code {code!r}; choose from {sorted(_CODES)}")
        if method not in ("steane", "shor", "ideal"):
            raise ValueError("method must be 'steane', 'shor', or 'ideal'")
        if method == "steane" and code != "steane":
            raise ValueError("the Steane extraction method applies to the Steane code")
        self.code = _CODES[code]()
        self.method = method
        self.eps = eps
        self.noise = noise if noise is not None else circuit_level(eps)
        self.repetitions = repetitions
        self.policy = policy
        self._protocol = self._build_protocol()

    def _build_protocol(self):
        if self.method == "steane":
            return SteaneECProtocol(
                self.noise, repetitions=self.repetitions, policy=self.policy, code=self.code
            )
        if self.method == "shor":
            return ShorECProtocol(
                self.code, self.noise, repetitions=self.repetitions, policy=self.policy
            )
        return None

    # ------------------------------------------------------------------
    def run(
        self, rounds: int, shots: int, seed: int | None = None, workers: int = 1
    ) -> MemoryResult:
        """Simulate ``rounds`` EC rounds over ``shots`` Monte Carlo samples.

        ``workers>1`` shards the shots across processes (see
        :mod:`repro.threshold.sharded`); ``workers=1`` is the exact
        single-process path.
        """
        if self.method == "ideal":
            return code_capacity_memory(
                self.code, self.noise.eps_store or self.eps, rounds, shots, seed,
                workers=workers,
            )
        return memory_experiment(
            self._protocol, self.code, rounds, shots, seed, workers=workers
        )

    def logical_error_per_round(self, shots: int = 20_000, seed: int | None = 0) -> float:
        """Convenience: one-round failure rate."""
        return self.run(1, shots, seed).failure_rate

    def breakeven(self, shots: int = 20_000, seed: int | None = 0) -> bool:
        """Does encoding beat the bare qubit at this noise level?"""
        bare = UnencodedMemory(self.eps).run(1, shots, seed).failure_rate
        return self.logical_error_per_round(shots, seed) < bare


class UnencodedMemory:
    """The baseline: one bare qubit exposed to the same storage noise.

    Its fidelity after one step is F = 1 − ε (Eq. 14) — the number the
    encoded memory must beat.
    """

    def __init__(self, eps: float) -> None:
        if not 0 <= eps <= 1:
            raise ValueError("eps must be a probability")
        self.eps = eps

    def run(self, rounds: int, shots: int, seed: int | None = None) -> MemoryResult:
        rng = as_rng(seed)
        hit = rng.random((shots, rounds)) < self.eps
        kind = rng.integers(0, 3, size=(shots, rounds))
        fx = np.bitwise_xor.reduce(hit & (kind != 2), axis=1)
        fz = np.bitwise_xor.reduce(hit & (kind != 0), axis=1)
        failures = int((fx | fz).sum())
        est, low, high = binomial_confidence(failures, shots)
        return MemoryResult(
            rounds, shots, failures, est, low, high, logical_error_per_round(est, rounds)
        )
