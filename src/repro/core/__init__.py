"""High-level public API.

`LogicalMemory` is the entry point a downstream user scripts against:
pick a code, an EC method, and an error model; run memory experiments and
threshold scans without touching frames or circuits directly.
`FaultTolerancePlanner` wraps the §5–§6 resource mathematics.
"""

from repro.core.memory import LogicalMemory, UnencodedMemory
from repro.core.planner import FaultTolerancePlanner

__all__ = ["LogicalMemory", "UnencodedMemory", "FaultTolerancePlanner"]
