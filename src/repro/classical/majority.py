"""Majority voting and recursive-majority reliability (paper §1).

Von Neumann's observation: executing each gate many times and taking a
majority vote suppresses independent failures, provided the per-gate failure
probability is below a threshold.  The recursion here is the classical
ancestor of the concatenated-code flow equation (Eq. 33): a triple-modular
vote fails when at least 2 of 3 inputs fail,

    p' = 3 p^2 (1 - p) + p^3 = 3 p^2 - 2 p^3,

with fixed point p* = 1/2.  Including a noisy voter with failure rate eps,
p' = eps + (3 p^2 - 2 p^3), whose threshold drops below 1/2 — the same
structure as the quantum threshold analysis in §5.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import as_rng

__all__ = ["majority_vote", "majority_failure", "recursive_majority_failure", "simulate_majority"]


def majority_vote(bits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Bitwise majority along ``axis`` (ties broken toward 1 for even n)."""
    arr = np.asarray(bits).astype(np.int64)
    n = arr.shape[axis]
    return (arr.sum(axis=axis) * 2 >= n).astype(np.uint8)


def majority_failure(p: float, n: int = 3) -> float:
    """Exact probability that a majority of n independent components fail,
    each with probability p (n odd)."""
    if n % 2 == 0:
        raise ValueError("majority vote needs odd n")
    from math import comb

    return float(sum(comb(n, k) * p**k * (1 - p) ** (n - k) for k in range((n + 1) // 2, n + 1)))


def recursive_majority_failure(p: float, levels: int, n: int = 3, voter_error: float = 0.0) -> float:
    """Failure probability after ``levels`` of recursive n-fold voting.

    ``voter_error`` adds an independent failure of the voting gate itself at
    every level (von Neumann's noisy-majority organ).  The map is iterated
    ``levels`` times; level 0 returns ``p`` unchanged.
    """
    q = float(p)
    for _ in range(levels):
        q = min(1.0, voter_error + majority_failure(q, n))
    return q


def simulate_majority(
    p: float,
    levels: int,
    trials: int,
    n: int = 3,
    voter_error: float = 0.0,
    seed: int | np.random.Generator | None = None,
) -> float:
    """Monte Carlo check of :func:`recursive_majority_failure`.

    Builds a depth-``levels`` n-ary voting tree over i.i.d. leaf failures and
    returns the observed root failure rate.
    """
    rng = as_rng(seed)
    width = n**levels
    state = (rng.random((trials, width)) < p).astype(np.uint8)
    for _ in range(levels):
        grouped = state.reshape(trials, -1, n)
        state = majority_vote(grouped, axis=2)
        if voter_error > 0:
            state ^= (rng.random(state.shape) < voter_error).astype(np.uint8)
    return float(state.ravel().mean())
