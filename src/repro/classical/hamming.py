"""The [7,4,3] Hamming code (paper §2, Eqs. 1–3 and 15).

Steane's 7-qubit code is built directly on this classical code: the logical
|0> is the superposition of even-weight Hamming codewords (Eq. 6) and the
logical |1> of odd-weight codewords (Eq. 7).  The paper uses two column
orderings of the parity-check matrix — the "syndrome = binary position"
form of Eq. (1) and the systematic form of Eq. (15) used by the encoding
circuit of Fig. 3 — both are provided here.
"""

from __future__ import annotations

import numpy as np

from repro.classical.linear_code import LinearCode

__all__ = ["HammingCode", "H_EQ1", "H_EQ15"]

# Eq. (1): column i (1-indexed) is the binary representation of i, so the
# syndrome of a single bit-flip at position i literally reads out i.
H_EQ1 = np.array(
    [
        [0, 0, 0, 1, 1, 1, 1],
        [0, 1, 1, 0, 0, 1, 1],
        [1, 0, 1, 0, 1, 0, 1],
    ],
    dtype=np.uint8,
)

# Eq. (15): a column permutation of Eq. (1) in systematic form [I | P]; the
# first three bits characterize the even subcode and the last four are
# parity bits.  This is the form Fig. 3's encoder switches on.
H_EQ15 = np.array(
    [
        [1, 0, 0, 1, 0, 1, 1],
        [0, 1, 0, 1, 1, 0, 1],
        [0, 0, 1, 1, 1, 1, 0],
    ],
    dtype=np.uint8,
)


class HammingCode(LinearCode):
    """The [7,4,3] Hamming code with single-error syndrome decoding.

    Parameters
    ----------
    form:
        ``"eq1"`` for the position-readout parity check of Eq. (1) or
        ``"eq15"`` for the systematic form of Eq. (15).
    """

    def __init__(self, form: str = "eq1") -> None:
        if form == "eq1":
            h = H_EQ1
        elif form == "eq15":
            h = H_EQ15
        else:
            raise ValueError(f"unknown form {form!r}; use 'eq1' or 'eq15'")
        super().__init__(h, name=f"Hamming[7,4,3]/{form}")
        self.form = form

    def error_position(self, word: np.ndarray) -> int | None:
        """Locate a single bit flip: the column of H matching the syndrome.

        Returns the 0-indexed flipped position, or ``None`` when the
        syndrome is trivial (no detected error).  With the Eq. (1) form the
        syndrome, read as a binary number, *is* the 1-indexed position —
        that is the property the paper highlights after Eq. (3).
        """
        s = self.syndrome(word).ravel()
        if not s.any():
            return None
        matches = np.nonzero((self.h == s[:, np.newaxis]).all(axis=0))[0]
        # Every nonzero syndrome is a column of H for the Hamming code.
        return int(matches[0])

    def correct_single(self, word: np.ndarray) -> np.ndarray:
        """Flip back the (unique) bit indicated by the syndrome."""
        w = np.asarray(word).astype(np.uint8).ravel() & 1
        pos = self.error_position(w)
        if pos is None:
            return w.copy()
        out = w.copy()
        out[pos] ^= 1
        return out

    def even_codewords(self) -> np.ndarray:
        """The 8 even-weight codewords — the support of |0>_code (Eq. 6)."""
        words = self.codewords()
        return words[words.sum(axis=1) % 2 == 0]

    def odd_codewords(self) -> np.ndarray:
        """The 8 odd-weight codewords — the support of |1>_code (Eq. 7)."""
        words = self.codewords()
        return words[words.sum(axis=1) % 2 == 1]

    def logical_value(self, word: np.ndarray) -> int:
        """Destructive logical measurement (§3.5): classically correct the
        measured 7 bits, then report the parity of the corrected codeword."""
        corrected = self.correct_single(word)
        return int(corrected.sum() % 2)
