"""Von Neumann NAND multiplexing (paper §1).

Von Neumann (1952) showed that a circuit of noisy gates can compute reliably
if each logical wire is carried by a *bundle* of N physical wires and each
logical NAND is executed by N physical NANDs on a random pairing of the two
input bundles, followed by a restorative stage.  A bundle represents logical
0/1 when at most a fraction Δ of its wires are wrong.

This module provides a vectorized Monte Carlo of the multiplexed NAND organ:
it tracks the *excitation fraction* of each bundle through executive and
restorative stages with per-gate flip probability ``eps`` and reports whether
the output bundle stays within the decision threshold.  It exists as the
classical reference point for the quantum threshold story: a threshold in
``eps`` below which deeper circuits keep working.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import as_rng

__all__ = ["NoisyGateModel", "simulate_multiplexed_nand", "nand_fixed_points"]


@dataclass(frozen=True)
class NoisyGateModel:
    """Error model for the classical substrate.

    Attributes
    ----------
    eps:
        Probability that a physical NAND emits the wrong output bit.
    bundle_size:
        Number of physical wires per logical bundle (von Neumann's N).
    threshold:
        Decision fraction Δ: a bundle decodes to 1 when more than
        ``1 - threshold`` of its wires are 1, to 0 when fewer than
        ``threshold`` are, and is *ambiguous* in between.
    """

    eps: float
    bundle_size: int = 100
    threshold: float = 0.07

    def __post_init__(self) -> None:
        if not 0.0 <= self.eps <= 1.0:
            raise ValueError("eps must be a probability")
        if self.bundle_size < 1:
            raise ValueError("bundle_size must be positive")
        if not 0.0 < self.threshold < 0.5:
            raise ValueError("threshold must lie in (0, 0.5)")


def _noisy_nand(a: np.ndarray, b: np.ndarray, eps: float, rng: np.random.Generator) -> np.ndarray:
    out = 1 - (a & b)
    flips = (rng.random(out.shape) < eps).astype(np.uint8)
    return out ^ flips


def _multiplexed_stage(
    a: np.ndarray, b: np.ndarray, eps: float, rng: np.random.Generator
) -> np.ndarray:
    """One executive NAND stage: random permutation pairing, then NAND."""
    perm = rng.permutation(a.shape[-1])
    return _noisy_nand(a, b[..., perm], eps, rng)


def simulate_multiplexed_nand(
    model: NoisyGateModel,
    depth: int,
    trials: int = 256,
    seed: int | np.random.Generator | None = None,
) -> dict[str, float]:
    """Push logical (1, 1) bundles through ``depth`` multiplexed NAND organs.

    Each organ = executive stage + two restorative stages (the standard von
    Neumann construction: a NAND of a bundle with a permuted copy of itself
    restores the excitation level toward 0 or 1).  The expected logical
    output alternates NAND(1,1)=0, NAND(0,0)=1, ...

    Returns a dict with the final mean error fraction and the fraction of
    trials whose output bundle is correct (within the decision threshold).
    """
    rng = as_rng(seed)
    n = model.bundle_size
    ones = np.ones((trials, n), dtype=np.uint8)
    a, b = ones.copy(), ones.copy()
    expected = 1
    for _ in range(depth):
        out = _multiplexed_stage(a, b, model.eps, rng)
        # Restorative double-NAND: y = NAND(x, x'), z = NAND(y, y') ~ x.
        mid = _multiplexed_stage(out, out, model.eps, rng)
        out = _multiplexed_stage(mid, mid, model.eps, rng)
        expected = 1 - expected
        a, b = out.copy(), out
    wrong_fraction = np.abs(a.mean(axis=1) - expected)
    decided_ok = wrong_fraction < model.threshold
    return {
        "mean_error_fraction": float(wrong_fraction.mean()),
        "success_rate": float(decided_ok.mean()),
        "expected_output": float(expected),
    }


def nand_fixed_points(eps: float) -> tuple[float, float]:
    """Fixed points of the restorative excitation map.

    If a fraction x of a bundle is (wrongly) excited, one noisy NAND of the
    bundle against a random permutation of itself maps x -> f(x) with

        f(x) = (1 - 2 eps) * (1 - x**2) + eps,

    and the double-NAND restoration iterates f twice.  Returns the stable
    fixed point of f∘f near 0 and near 1 found numerically; their distance
    from {0, 1} measures the residual error floor ~2 eps.  Above the von
    Neumann threshold (~0.0107 for 3-input majority; higher for this organ)
    the two merge.
    """
    if not 0.0 <= eps <= 0.5:
        raise ValueError("eps must lie in [0, 0.5]")

    def f(x: float) -> float:
        return (1 - 2 * eps) * (1 - x * x) + eps

    lo, hi = 0.0, 1.0
    for _ in range(200):
        lo = f(f(lo))
        hi = f(f(hi))
    return (float(lo), float(hi))
