"""Classical coding substrate.

The paper's quantum constructions rest on classical ones: Steane's [[7,1,3]]
code is built from the [7,4,3] Hamming code (§2), syndrome verification uses
classical parity checks, destructive logical measurement performs classical
Hamming decoding on the measured bits (§3.5), and the whole program is an
analogue of von Neumann's 1952 majority-vote fault tolerance (§1).
"""

from repro.classical.hamming import HammingCode
from repro.classical.linear_code import LinearCode, RepetitionCode
from repro.classical.majority import majority_vote, recursive_majority_failure
from repro.classical.vonneumann import NoisyGateModel, simulate_multiplexed_nand

__all__ = [
    "HammingCode",
    "LinearCode",
    "RepetitionCode",
    "majority_vote",
    "recursive_majority_failure",
    "NoisyGateModel",
    "simulate_multiplexed_nand",
]
