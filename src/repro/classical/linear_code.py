"""Generic binary linear block codes.

A ``LinearCode`` is specified by a parity-check matrix H (and optionally a
generator matrix G).  It supports encoding, syndrome computation, nearest-
codeword decoding via a precomputed syndrome table (practical for the code
sizes in this project), and exact minimum-distance computation for small
codes.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.gf2 import gf2_kernel, gf2_matmul, gf2_rank, gf2_row_reduce

__all__ = ["LinearCode", "RepetitionCode"]


class LinearCode:
    """A binary [n, k] linear code defined by its parity-check matrix.

    Parameters
    ----------
    parity_check:
        Array of shape ``(n - k, n)`` (redundant rows are tolerated; the
        effective k is computed from the rank).
    name:
        Optional human-readable label used in reprs and reports.
    """

    def __init__(self, parity_check: np.ndarray, name: str = "") -> None:
        h = np.asarray(parity_check).astype(np.uint8) & 1
        if h.ndim != 2:
            raise ValueError("parity_check must be a 2-D array")
        self.h = h
        self.n = int(h.shape[1])
        self.rank = gf2_rank(h)
        self.k = self.n - self.rank
        self.name = name or f"[{self.n},{self.k}]"
        # Generator: basis of ker(H), one codeword per row.
        self.g = gf2_kernel(h)
        self._syndrome_table: dict[tuple[int, ...], np.ndarray] | None = None

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinearCode({self.name}, n={self.n}, k={self.k})"

    def encode(self, message: np.ndarray) -> np.ndarray:
        """Encode a length-k message into a length-n codeword (G^T action)."""
        msg = np.asarray(message).astype(np.uint8).ravel() & 1
        if msg.shape[0] != self.k:
            raise ValueError(f"message must have length k={self.k}")
        return gf2_matmul(msg, self.g).astype(np.uint8)

    def syndrome(self, word: np.ndarray) -> np.ndarray:
        """Syndrome H·w (mod 2).  Accepts a single word or a batch.

        For a batch of shape ``(batch, n)`` returns ``(batch, n - k)``.
        """
        w = np.asarray(word).astype(np.uint8) & 1
        return gf2_matmul(w, self.h.T).astype(np.uint8)

    def is_codeword(self, word: np.ndarray) -> bool:
        return not np.any(self.syndrome(word))

    def codewords(self) -> np.ndarray:
        """All 2^k codewords, shape ``(2**k, n)`` (small codes only)."""
        if self.k > 20:
            raise ValueError("too many codewords to enumerate")
        msgs = ((np.arange(2**self.k)[:, np.newaxis] >> np.arange(self.k)) & 1).astype(np.uint8)
        return gf2_matmul(msgs, self.g).astype(np.uint8)

    def minimum_distance(self) -> int:
        """Exact minimum Hamming weight over nonzero codewords."""
        words = self.codewords()
        weights = words.sum(axis=1)
        nz = weights[weights > 0]
        if nz.size == 0:
            raise ValueError("code has no nonzero codewords")
        return int(nz.min())

    # ------------------------------------------------------------------
    def _build_syndrome_table(self, max_weight: int) -> dict[tuple[int, ...], np.ndarray]:
        """Map syndrome -> minimum-weight error pattern, up to max_weight."""
        table: dict[tuple[int, ...], np.ndarray] = {}
        zero = np.zeros(self.n, dtype=np.uint8)
        table[tuple(self.syndrome(zero).ravel())] = zero
        for w in range(1, max_weight + 1):
            for positions in combinations(range(self.n), w):
                err = np.zeros(self.n, dtype=np.uint8)
                err[list(positions)] = 1
                key = tuple(self.syndrome(err).ravel())
                if key not in table:
                    table[key] = err
        return table

    def correctable_weight(self) -> int:
        """t = floor((d - 1) / 2) for the exact minimum distance."""
        return (self.minimum_distance() - 1) // 2

    def decode(self, word: np.ndarray, max_weight: int | None = None) -> np.ndarray:
        """Correct ``word`` to the nearest codeword via syndrome lookup.

        ``max_weight`` bounds the error patterns in the table (defaults to
        the code's correctable weight).  Unmatched syndromes return the word
        unchanged — the caller can detect this via :meth:`is_codeword`.
        """
        if max_weight is None:
            max_weight = self.correctable_weight()
        if self._syndrome_table is None:
            self._syndrome_table = self._build_syndrome_table(max_weight)
        w = np.asarray(word).astype(np.uint8).ravel() & 1
        key = tuple(self.syndrome(w).ravel())
        err = self._syndrome_table.get(key)
        if err is None:
            return w.copy()
        return w ^ err

    def dual(self) -> "LinearCode":
        """The dual code: codewords are the rows of H's row space, so the
        dual's parity check matrix is this code's generator matrix."""
        return LinearCode(self.g, name=f"dual({self.name})")

    def contains_dual(self) -> bool:
        """Whether C⊥ ⊆ C, i.e. every row of H is itself a codeword.

        This is the condition for building a self-dual-style CSS code (the
        Steane construction uses the Hamming code, which satisfies it).
        """
        return not np.any(self.syndrome(self.h))

    def standard_form_generator(self) -> np.ndarray:
        """Generator in RREF — convenient for systematic encoding."""
        rref, pivots = gf2_row_reduce(self.g)
        return rref[: len(pivots)]


class RepetitionCode(LinearCode):
    """The [n, 1, n] repetition code — the simplest majority-vote code.

    Used both as a classical substrate (von Neumann voting, §1) and as the
    classical ingredient of quantum bit-flip/phase-flip codes.
    """

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ValueError("repetition code needs n >= 2")
        h = np.zeros((n - 1, n), dtype=np.uint8)
        for i in range(n - 1):
            h[i, 0] = 1
            h[i, i + 1] = 1
        super().__init__(h, name=f"rep{n}")
