"""The Z₂ Kitaev lattice model — the toric code (paper §7.1–7.2, Fig. 17).

Kitaev's spin model places a spin on every link of a square lattice; the
Hamiltonian is a sum of commuting 4-body site ("electric", Gauss-law) and
plaquette ("magnetic flux") operators.  On a torus the ground space is
4-dimensional — quantum information stored in the homology of the surface
— and the excitations are the electric/magnetic quasiparticles whose
Aharonov–Bohm braiding phase (Fig. 16) this module exhibits exactly.

The full nonabelian A₅ model of §7.4 would carry a 60-component spin per
link (the paper itself calls this out with a "(!)"); the Z₂ model realizes
every structural feature §7.1 relies on — commuting parts, charge/flux
quasiparticles, topological degeneracy, braiding — at simulable size, and
is the basis of the E12 topological-memory experiment.
"""

from __future__ import annotations

import numpy as np

from repro.gf2 import gf2_matmul, gf2_rank

__all__ = ["ToricCode"]


class ToricCode:
    """Distance-d toric code on a d×d torus (2d² edge qubits).

    Edge indexing: horizontal edge at (row r, col c) — pointing right from
    vertex (r, c) — has index ``r·d + c``; vertical edge at (r, c) —
    pointing down — has index ``d² + r·d + c``.
    """

    def __init__(self, d: int) -> None:
        if d < 2:
            raise ValueError("need lattice size d >= 2")
        self.d = d
        self.n = 2 * d * d
        self.vertex_checks = self._build_vertex_checks()     # X-type
        self.plaquette_checks = self._build_plaquette_checks()  # Z-type
        self.logical_z = self._logical_z()
        self.logical_x = self._logical_x()

    # -- edge helpers ------------------------------------------------------
    def h_edge(self, r: int, c: int) -> int:
        d = self.d
        return (r % d) * d + (c % d)

    def v_edge(self, r: int, c: int) -> int:
        d = self.d
        return d * d + (r % d) * d + (c % d)

    # -- stabilizers ---------------------------------------------------------
    def _build_vertex_checks(self) -> np.ndarray:
        d = self.d
        checks = np.zeros((d * d, self.n), dtype=np.uint8)
        for r in range(d):
            for c in range(d):
                row = checks[r * d + c]
                row[self.h_edge(r, c)] = 1
                row[self.h_edge(r, c - 1)] = 1
                row[self.v_edge(r, c)] = 1
                row[self.v_edge(r - 1, c)] = 1
        return checks

    def _build_plaquette_checks(self) -> np.ndarray:
        d = self.d
        checks = np.zeros((d * d, self.n), dtype=np.uint8)
        for r in range(d):
            for c in range(d):
                row = checks[r * d + c]
                row[self.h_edge(r, c)] = 1
                row[self.h_edge(r + 1, c)] = 1
                row[self.v_edge(r, c)] = 1
                row[self.v_edge(r, c + 1)] = 1
        return checks

    def _logical_z(self) -> np.ndarray:
        """Two Z-type logicals: a row loop of horizontal edges and a
        column loop of vertical edges (the two primal homology cycles)."""
        d = self.d
        out = np.zeros((2, self.n), dtype=np.uint8)
        for c in range(d):
            out[0, self.h_edge(0, c)] = 1
        for r in range(d):
            out[1, self.v_edge(r, 0)] = 1
        return out

    def _logical_x(self) -> np.ndarray:
        """Dual (X-type) partners: a column of horizontal edges crosses the
        first Z loop once; a row of vertical edges crosses the second."""
        d = self.d
        out = np.zeros((2, self.n), dtype=np.uint8)
        for r in range(d):
            out[0, self.h_edge(r, 0)] = 1
        for c in range(d):
            out[1, self.v_edge(0, c)] = 1
        return out

    # -- topological invariants ------------------------------------------------
    def ground_space_dimension(self) -> int:
        """2^k with k = n − rank(vertex) − rank(plaquette); equals 4 on the
        torus (each check family has one global relation)."""
        k = self.n - gf2_rank(self.vertex_checks) - gf2_rank(self.plaquette_checks)
        return 2**k

    def check_commutation(self) -> bool:
        """Every X-check must share an even number of edges with every
        Z-check (the Hamiltonian's terms are mutually commuting)."""
        overlap = gf2_matmul(self.vertex_checks, self.plaquette_checks.T)
        return not overlap.any()

    # -- syndromes (vectorized over shots) ----------------------------------
    def plaquette_syndrome(self, x_errors: np.ndarray) -> np.ndarray:
        """Magnetic defects lit by an X-error pattern: H_p · e mod 2."""
        return gf2_matmul(np.atleast_2d(x_errors), self.plaquette_checks.T).astype(np.uint8)

    def vertex_syndrome(self, z_errors: np.ndarray) -> np.ndarray:
        """Electric defects lit by a Z-error pattern: H_v · e mod 2."""
        return gf2_matmul(np.atleast_2d(z_errors), self.vertex_checks.T).astype(np.uint8)

    def logical_x_action(self, x_residual: np.ndarray) -> np.ndarray:
        """Which logical X̄'s a residual X pattern performs: parity of the
        overlap with each Z̄ loop; shape ``(shots, 2)``."""
        return gf2_matmul(np.atleast_2d(x_residual), self.logical_z.T).astype(np.uint8)

    def logical_z_action(self, z_residual: np.ndarray) -> np.ndarray:
        return gf2_matmul(np.atleast_2d(z_residual), self.logical_x.T).astype(np.uint8)

    # -- quasiparticles and braiding -------------------------------------------
    def z_string_endpoints(self, edges: list[int]) -> np.ndarray:
        """Plaquette defects ("magnetic fluxons") created by a Z... — no:
        a Z string on primal edges creates *vertex* (electric) defects at
        its endpoints.  Returns the vertex syndrome of the string."""
        pattern = np.zeros(self.n, dtype=np.uint8)
        pattern[edges] = 1
        return self.vertex_syndrome(pattern)[0]

    def x_string_endpoints(self, edges: list[int]) -> np.ndarray:
        """Magnetic (plaquette) defects at the endpoints of an X string."""
        pattern = np.zeros(self.n, dtype=np.uint8)
        pattern[edges] = 1
        return self.plaquette_syndrome(pattern)[0]

    def charge_loop_operator(self, r: int, c: int) -> np.ndarray:
        """The X-loop transporting an electric charge counterclockwise
        around plaquette (r, c): exactly that plaquette's edge set (the
        smallest closed dual... primal loop enclosing the face)."""
        return self.plaquette_checks[(r % self.d) * self.d + (c % self.d)].copy()

    def braiding_phase(self, loop_x: np.ndarray, string_z: np.ndarray) -> int:
        """Aharonov–Bohm phase (Fig. 16): transporting a charge around a
        region crossed by a Z string whose endpoint (a fluxon) lies inside
        gives (−1)^(loop ∩ string).  Returns ±1."""
        overlap = int(np.sum((loop_x & 1) & (string_z & 1)) % 2)
        return -1 if overlap else 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ToricCode(d={self.d}, n={self.n})"
