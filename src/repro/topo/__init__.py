"""Topological quantum computation (paper §7).

Kitaev's proposal in executable form: finite-group flux/charge quantum
numbers (§7.3), fluxon-pair registers with the exchange/pull-through
interactions of Eqs. 40–41, Mach–Zehnder flux and charge interferometry
(Figs. 18/22), the A₅ computational encoding of Eq. 45 with the NOT gate of
Fig. 21 and a bounded-depth pull-through gate compiler, the e^{−mL} /
e^{−Δ/T} error phenomenology of §7.1, and the Z₂ lattice model (toric
code) with homology, braiding, and an MWPM-decoded topological memory.
"""

from repro.topo.groups import FiniteGroup, PermutationGroup, cycles
from repro.topo.anyons import FluxPairRegister
from repro.topo.interferometer import FluxInterferometer, ChargeInterferometer
from repro.topo.gates import (
    A5_COMPUTATIONAL_BASIS,
    A5_NOT_FLUX,
    PullThroughCompiler,
    toffoli_feasibility_report,
)
from repro.topo.thermal import TopologicalErrorModel
from repro.topo.toric import ToricCode
from repro.topo.decoder import MWPMDecoder, toric_memory_experiment

__all__ = [
    "FiniteGroup",
    "PermutationGroup",
    "cycles",
    "FluxPairRegister",
    "FluxInterferometer",
    "ChargeInterferometer",
    "A5_COMPUTATIONAL_BASIS",
    "A5_NOT_FLUX",
    "PullThroughCompiler",
    "toffoli_feasibility_report",
    "TopologicalErrorModel",
    "ToricCode",
    "MWPMDecoder",
    "toric_memory_experiment",
]
