"""Fluxon-pair quantum registers (paper §7.3–7.4).

Quantum information lives in the fluxes of well-separated
fluxon–antifluxon pairs |u, u⁻¹>.  The computational operations are:

* **pull-through** (Fig. 20 / Eq. 41): passing pair i through pair j
  conjugates the inner flux, |u_i> → |u_j⁻¹ u_i u_j>, leaving the outer
  pair unchanged — a *classical* reversible gate on flux eigenstates that
  extends linearly to superpositions;
* **flux measurement** (Fig. 18): projects a pair onto flux eigenstates;
* **charge measurement** (Fig. 22): scattering a probe fluxon v around the
  pair projects onto eigenstates of the conjugation operator C_v
  (|±> = (|u₀> ± |u₁>)/√2 when v swaps u₀ ↔ u₁);
* **charge-zero pair creation** (Eq. 44): local processes produce
  Σ_u |u, u⁻¹> over a conjugacy class; flux-measuring such pairs builds
  the calibrated reservoir of §7.4.

The register stores a sparse complex amplitude map over tuples of fluxes —
adequate for the few-pair registers the gate constructions use (the state
space is |class|^pairs, tiny for computational subspaces).
"""

from __future__ import annotations

import numpy as np

from repro.topo.groups import FiniteGroup, Perm
from repro.util.rng import as_rng

__all__ = ["FluxPairRegister"]

Basis = tuple[Perm, ...]


class FluxPairRegister:
    """A register of fluxon–antifluxon pairs over a finite group.

    ``state`` maps basis tuples (the flux of each pair; the partner is
    always the inverse) to complex amplitudes.
    """

    def __init__(self, group: FiniteGroup, fluxes: list[Perm]) -> None:
        self.group = group
        for u in fluxes:
            if u not in group:
                raise ValueError(f"flux {u} not in group {group.name}")
        self.num_pairs = len(fluxes)
        self.state: dict[Basis, complex] = {tuple(fluxes): 1.0 + 0.0j}

    # ------------------------------------------------------------------
    @classmethod
    def from_superposition(
        cls, group: FiniteGroup, amplitudes: dict[Basis, complex]
    ) -> "FluxPairRegister":
        if not amplitudes:
            raise ValueError("empty state")
        lengths = {len(b) for b in amplitudes}
        if len(lengths) != 1:
            raise ValueError("inconsistent pair counts")
        reg = cls(group, list(next(iter(amplitudes))))
        reg.state = dict(amplitudes)
        reg._normalize()
        return reg

    def _normalize(self) -> None:
        norm = np.sqrt(sum(abs(a) ** 2 for a in self.state.values()))
        if norm < 1e-12:
            raise ValueError("state collapsed to zero")
        self.state = {b: a / norm for b, a in self.state.items() if abs(a) > 1e-14}

    def amplitudes(self) -> dict[Basis, complex]:
        return dict(self.state)

    # ------------------------------------------------------------------
    def append_charge_zero_pair(self, representative: Perm) -> int:
        """Eq. (44): adjoin Σ_u |u, u⁻¹> summed over the conjugacy class of
        ``representative``; returns the new pair's index."""
        cls = self.group.conjugacy_class(representative)
        amp = 1.0 / np.sqrt(len(cls))
        new_state: dict[Basis, complex] = {}
        for basis, a in self.state.items():
            for u in cls:
                new_state[basis + (u,)] = a * amp
        self.state = new_state
        self.num_pairs += 1
        return self.num_pairs - 1

    def pull_through(self, inner: int, outer: int) -> None:
        """Eq. (41): pull pair ``inner`` through pair ``outer``; the inner
        flux is conjugated by the outer flux, the outer is unchanged."""
        if inner == outer:
            raise ValueError("a pair cannot be pulled through itself")
        g = self.group
        new_state: dict[Basis, complex] = {}
        for basis, a in self.state.items():
            lst = list(basis)
            lst[inner] = g.conjugate(basis[inner], basis[outer])
            key = tuple(lst)
            new_state[key] = new_state.get(key, 0.0) + a
        self.state = new_state
        self._normalize()

    def exchange(self, left: int, right: int) -> None:
        """Eq. (40) at the pair level: counterclockwise exchange of two
        pairs — the right pair moves to the left slot unchanged while the
        left flux is conjugated into the right slot."""
        g = self.group
        new_state: dict[Basis, complex] = {}
        for basis, a in self.state.items():
            lst = list(basis)
            u1, u2 = basis[left], basis[right]
            lst[left] = u2
            lst[right] = g.conjugate(u1, u2)
            key = tuple(lst)
            new_state[key] = new_state.get(key, 0.0) + a
        self.state = new_state
        self._normalize()

    # ------------------------------------------------------------------
    def measure_flux(
        self, pair: int, rng: int | np.random.Generator | None = None
    ) -> Perm:
        """Projective flux measurement (repeated Fig. 18 interferometry in
        the ideal limit); collapses the register."""
        gen = as_rng(rng)
        probs: dict[Perm, float] = {}
        for basis, a in self.state.items():
            probs[basis[pair]] = probs.get(basis[pair], 0.0) + abs(a) ** 2
        fluxes = sorted(probs)
        weights = np.array([probs[f] for f in fluxes])
        choice = gen.choice(len(fluxes), p=weights / weights.sum())
        outcome = fluxes[int(choice)]
        self.state = {b: a for b, a in self.state.items() if b[pair] == outcome}
        self._normalize()
        return outcome

    def measure_conjugation_parity(
        self, pair: int, probe: Perm, rng: int | np.random.Generator | None = None
    ) -> int:
        """Charge interferometry (Fig. 22): project onto ±1 eigenspaces of
        the conjugation operator C_probe acting on ``pair``.

        Requires the probe to act on the pair's flux support as an
        involution (orbits of size ≤ 2), which covers the computational
        use u₀ ↔ u₁; returns 0 for the +1 (symmetric) outcome, 1 for −1.
        """
        g = self.group
        plus: dict[Basis, complex] = {}
        minus: dict[Basis, complex] = {}
        for basis, a in self.state.items():
            u = basis[pair]
            v = g.conjugate(u, probe)
            if g.conjugate(v, probe) != u:
                raise ValueError("probe does not act as an involution on this state")
            partner = tuple(list(basis[:pair]) + [v] + list(basis[pair + 1 :]))
            # Symmetric/antisymmetric components under u <-> v.
            plus[basis] = plus.get(basis, 0.0) + a / 2
            plus[partner] = plus.get(partner, 0.0) + a / 2
            minus[basis] = minus.get(basis, 0.0) + a / 2
            minus[partner] = minus.get(partner, 0.0) - a / 2
        p_plus = sum(abs(x) ** 2 for x in plus.values())
        gen = as_rng(rng)
        outcome = 0 if gen.random() < p_plus else 1
        component = plus if outcome == 0 else minus
        self.state = {b: a for b, a in component.items() if abs(a) > 1e-14}
        self._normalize()
        return outcome

    # ------------------------------------------------------------------
    def probability_of(self, basis: Basis) -> float:
        return float(abs(self.state.get(tuple(basis), 0.0)) ** 2)

    def fidelity_with(self, other: dict[Basis, complex]) -> float:
        overlap = sum(np.conj(other.get(b, 0.0)) * a for b, a in self.state.items())
        norm = np.sqrt(sum(abs(a) ** 2 for a in other.values()))
        if norm < 1e-12:
            raise ValueError("reference state is zero")
        return float(abs(overlap / norm) ** 2)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FluxPairRegister({self.group.name}, pairs={self.num_pairs}, terms={len(self.state)})"
