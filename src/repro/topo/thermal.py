"""Topological memory error phenomenology (paper §7.1).

Two intrinsic error channels for flux-encoded information:

* **quantum tunneling** — virtual exchange of charged objects between
  quasiparticles separated by distance L, amplitude ~ e^{−mL} with m the
  lightest charged mass: "If the quasiparticles are kept far apart, the
  probability of an error ... will be extremely low";
* **thermal plasma** — at temperature T a population of real charges with
  density ∝ e^{−Δ/T} (Δ the gap) wanders between the data particles and
  occasionally "slips unnoticed between two of our data-carrying
  particles, resulting in an exchange of charge and hence an error".

:class:`TopologicalErrorModel` provides both rates and a Monte Carlo of a
pair-encoded memory whose lifetime the E12 bench sweeps against L and T.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import as_rng

__all__ = ["TopologicalErrorModel"]


@dataclass(frozen=True)
class TopologicalErrorModel:
    """Rates for the two §7.1 error channels.

    Attributes
    ----------
    mass: m, the lightest charged object's mass (natural units).
    gap: Δ, the energy gap controlling the thermal plasma density.
    attempt_rate: microscopic prefactor shared by both channels (sets the
        time unit; the paper's statements are about the exponentials).
    """

    mass: float = 1.0
    gap: float = 1.0
    attempt_rate: float = 1.0

    def tunneling_error_rate(self, separation: float) -> float:
        """Per-step error probability from virtual charge exchange: the
        amplitude is e^{−mL}, so the probability goes as its square."""
        if separation < 0:
            raise ValueError("separation must be non-negative")
        return float(min(1.0, self.attempt_rate * np.exp(-2.0 * self.mass * separation)))

    def thermal_error_rate(self, temperature: float) -> float:
        """Per-step error probability from the thermal plasma, ∝ e^{−Δ/T}."""
        if temperature < 0:
            raise ValueError("temperature must be non-negative")
        if temperature == 0:
            return 0.0
        return float(min(1.0, self.attempt_rate * np.exp(-self.gap / temperature)))

    def total_error_rate(self, separation: float, temperature: float) -> float:
        t = self.tunneling_error_rate(separation)
        th = self.thermal_error_rate(temperature)
        return float(min(1.0, t + th - t * th))

    # ------------------------------------------------------------------
    def memory_lifetime(
        self,
        separation: float,
        temperature: float,
        max_steps: int = 10**7,
        trials: int = 256,
        seed: int | np.random.Generator | None = None,
    ) -> float:
        """Mean steps until the first charge-exchange error (geometric MC).

        Sampled rather than computed as 1/p so the benches exercise the
        same code path a full device simulation would.
        """
        p = self.total_error_rate(separation, temperature)
        rng = as_rng(seed)
        if p <= 0:
            return float(max_steps)
        lifetimes = rng.geometric(p, size=trials).astype(float)
        return float(np.clip(lifetimes, None, max_steps).mean())
