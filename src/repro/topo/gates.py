"""Anyonic logic gates by conjugation (paper §7.4).

The computational encoding (Eq. 45): basis fluxes u₀ = (125), u₁ = (234) —
three-cycles in A₅ sharing one object.  The published constructions:

* NOT (Fig. 21): one pull-through with v = (14)(35), since v⁻¹u₀v = u₁ and
  v⁻¹u₁v = u₀;
* Toffoli: 16 pull-throughs + 6 catalytic ancilla pairs; Z: 6 steps + 4
  pairs; controlled-ωY: 31 steps + 7 pairs — all from *unpublished* work
  (ref. 65), so the exact sequences are not in the paper.

What we can verify from first principles is provided here: the NOT gate,
the group-theoretic universality criterion (A₅ is perfect; every smaller
candidate is solvable), and :class:`PullThroughCompiler`, a breadth-first
search over pull-through sequences that *finds* conjugation realizations
of target classical gates for small groups and bounded depth.  The
compiler substitutes for the unpublished sequences: same dynamics
(Eq. 41), machine-discovered circuits.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.topo.groups import FiniteGroup, Perm, PermutationGroup, parse_cycles

__all__ = [
    "A5_COMPUTATIONAL_BASIS",
    "A5_NOT_FLUX",
    "not_gate_works",
    "PullThroughCompiler",
    "CompiledGate",
    "toffoli_feasibility_report",
]


def _a5_constants() -> tuple[FiniteGroup, tuple[Perm, Perm], Perm]:
    group = PermutationGroup.alternating(5)
    u0 = parse_cycles("(125)", 5)
    u1 = parse_cycles("(234)", 5)
    v = parse_cycles("(14)(35)", 5)
    return group, (u0, u1), v


_A5, A5_COMPUTATIONAL_BASIS, A5_NOT_FLUX = _a5_constants()


def not_gate_works(group: FiniteGroup | None = None) -> bool:
    """Fig. 21: conjugation by v = (14)(35) swaps u₀ ↔ u₁."""
    g = group or _A5
    u0, u1 = A5_COMPUTATIONAL_BASIS
    return g.conjugate(u0, A5_NOT_FLUX) == u1 and g.conjugate(u1, A5_NOT_FLUX) == u0


@dataclass(frozen=True)
class CompiledGate:
    """A pull-through sequence realizing a classical gate.

    ``steps`` lists (inner, outer) pair indices in execution order over a
    register [computational pairs..., ancilla pairs...]; ``ancilla_fluxes``
    are the initial ancilla values.  ``catalytic`` records whether every
    ancilla returns to its initial flux on every input (so the ancillas are
    reusable, as the paper's constructions require).
    """

    steps: tuple[tuple[int, int], ...]
    ancilla_fluxes: tuple[Perm, ...]
    catalytic: bool

    @property
    def depth(self) -> int:
        return len(self.steps)


class PullThroughCompiler:
    """Breadth-first search for conjugation circuits.

    The dynamics is purely classical on flux eigenstates: a register state
    is the tuple of all pair fluxes, and a pull-through (i, j) maps flux_i
    to conj(flux_i, flux_j).  A gate is found when one sequence of moves
    sends *every* computational input to its target simultaneously.

    The search space grows as (pairs²)^depth — ample for the 1–6-step
    constructions on few pairs, and a documented substitute for the
    unpublished 16/31-step sequences (see DESIGN.md).
    """

    def __init__(self, group: FiniteGroup, max_depth: int = 6) -> None:
        self.group = group
        self.max_depth = max_depth

    def compile(
        self,
        inputs: list[tuple[Perm, ...]],
        targets: list[tuple[Perm, ...]],
        ancilla_fluxes: tuple[Perm, ...] = (),
        require_catalytic: bool = True,
    ) -> CompiledGate | None:
        """Find a pull-through sequence mapping inputs[k] -> targets[k].

        ``inputs``/``targets`` list the computational-pair fluxes for every
        basis input; ancillas are appended with fixed initial fluxes.
        Targets constrain only the computational pairs unless
        ``require_catalytic`` (then ancillas must be restored too).
        """
        if len(inputs) != len(targets):
            raise ValueError("inputs and targets must pair up")
        width = len(inputs[0]) + len(ancilla_fluxes)
        start = tuple(tuple(inp) + tuple(ancilla_fluxes) for inp in inputs)
        moves = [
            (i, j) for i in range(width) for j in range(width) if i != j
        ]
        ncomp = len(inputs[0])

        def is_goal(state: tuple[tuple[Perm, ...], ...]) -> bool:
            for got, want in zip(state, targets):
                if got[:ncomp] != tuple(want):
                    return False
                if require_catalytic and got[ncomp:] != tuple(ancilla_fluxes):
                    return False
            return True

        if is_goal(start):
            return CompiledGate((), tuple(ancilla_fluxes), True)
        frontier = deque([(start, ())])
        seen = {start}
        while frontier:
            state, path = frontier.popleft()
            if len(path) >= self.max_depth:
                continue
            for move in moves:
                nxt = self._apply(state, move)
                if nxt in seen:
                    continue
                new_path = path + (move,)
                if is_goal(nxt):
                    catalytic = all(
                        row[ncomp:] == tuple(ancilla_fluxes) for row in nxt
                    )
                    return CompiledGate(new_path, tuple(ancilla_fluxes), catalytic)
                seen.add(nxt)
                frontier.append((nxt, new_path))
        return None

    def _apply(
        self, state: tuple[tuple[Perm, ...], ...], move: tuple[int, int]
    ) -> tuple[tuple[Perm, ...], ...]:
        i, j = move
        out = []
        for row in state:
            lst = list(row)
            lst[i] = self.group.conjugate(row[i], row[j])
            out.append(tuple(lst))
        return tuple(out)


def toffoli_feasibility_report(max_group: int = 5) -> dict[str, dict[str, object]]:
    """The §7.4 universality criterion across candidate groups.

    "No Toffoli gate was found in any group smaller than A₅.  Since A₅ is
    also the smallest of the finite nonsolvable groups, it is tempting to
    conjecture that nonsolvability is a necessary condition..."  We report
    order / solvability / perfectness for the relevant small groups; A₅ is
    the unique nonsolvable (indeed perfect) entry.
    """
    candidates = {
        "S3": PermutationGroup.symmetric(3),
        "A4": PermutationGroup.alternating(4),
        "D4": PermutationGroup.dihedral(4),
        "Q8": PermutationGroup.quaternion(),
        "S4": PermutationGroup.symmetric(4),
        "A5": PermutationGroup.alternating(5),
        "S5": PermutationGroup.symmetric(5),
    }
    report = {}
    for name, group in candidates.items():
        report[name] = {
            "order": group.order,
            "solvable": group.is_solvable(),
            "perfect": group.is_perfect(),
            "universality_candidate": not group.is_solvable(),
        }
    return report
