"""Mach–Zehnder interferometry for fluxes and charges (Figs. 18, 22).

The ideal interferometer routes the probe out of one arm or the other
according to the Aharonov–Bohm phase it picks up.  A *real* interferometer
is imperfect — "the interferometer we build will not be flawless, but the
flux measurement can nevertheless be fault-tolerant — if we have many
charged projectiles and perform the measurement repeatedly, we can
determine the flux with very high statistical confidence" (§7.3).  These
wrappers model exactly that: a per-probe misrouting probability and a
majority vote over N probes, with the first ideal projection supplying the
quantum back-action.
"""

from __future__ import annotations

import numpy as np

from repro.topo.anyons import FluxPairRegister
from repro.topo.groups import Perm
from repro.util.rng import as_rng

__all__ = ["FluxInterferometer", "ChargeInterferometer", "majority_confidence"]


def majority_confidence(p_err: float, probes: int) -> float:
    """Probability that the majority over ``probes`` noisy readings is
    wrong (Chernoff-suppressed in the probe count)."""
    from math import comb

    if not 0 <= p_err < 0.5:
        raise ValueError("per-probe error must be < 1/2")
    if probes % 2 == 0:
        raise ValueError("use an odd probe count")
    return float(
        sum(
            comb(probes, k) * p_err**k * (1 - p_err) ** (probes - k)
            for k in range((probes + 1) // 2, probes + 1)
        )
    )


class FluxInterferometer:
    """Repeated flux measurement of one pair (Fig. 18).

    The first probe performs the ideal projection (quantum back-action);
    every probe's classical reading then misroutes with probability
    ``p_err``, and the reported flux is the majority reading.
    """

    def __init__(self, p_err: float = 0.0, probes: int = 1) -> None:
        if not 0.0 <= p_err < 0.5:
            raise ValueError("p_err must be < 1/2 for majority voting to work")
        if probes < 1:
            raise ValueError("need at least one probe")
        self.p_err = p_err
        self.probes = probes

    def measure(
        self,
        register: FluxPairRegister,
        pair: int,
        candidates: tuple[Perm, Perm],
        rng: int | np.random.Generator | None = None,
    ) -> Perm:
        """Measure ``pair``'s flux, distinguishing two candidate values.

        Returns the (possibly misreported) majority reading; the register
        collapses onto the *true* projection regardless, as in a real
        interferometer where the quantum state follows the actual flux.
        """
        gen = as_rng(rng)
        true_flux = register.measure_flux(pair, gen)
        u1, u2 = candidates
        if true_flux not in (u1, u2):
            raise ValueError("collapsed flux is not among the candidates")
        readings_wrong = gen.random(self.probes) < self.p_err
        wrong_count = int(readings_wrong.sum())
        if wrong_count * 2 > self.probes:
            return u2 if true_flux == u1 else u1
        return true_flux


class ChargeInterferometer:
    """Repeated charge measurement of one pair (Fig. 22).

    Projects onto the |±> eigenstates of conjugation by the probe flux and
    majority-votes the readout.
    """

    def __init__(self, p_err: float = 0.0, probes: int = 1) -> None:
        if not 0.0 <= p_err < 0.5:
            raise ValueError("p_err must be < 1/2")
        if probes < 1:
            raise ValueError("need at least one probe")
        self.p_err = p_err
        self.probes = probes

    def measure(
        self,
        register: FluxPairRegister,
        pair: int,
        probe: Perm,
        rng: int | np.random.Generator | None = None,
    ) -> int:
        gen = as_rng(rng)
        true_outcome = register.measure_conjugation_parity(pair, probe, gen)
        readings_wrong = gen.random(self.probes) < self.p_err
        if int(readings_wrong.sum()) * 2 > self.probes:
            return 1 - true_outcome
        return true_outcome
