"""Minimum-weight perfect-matching decoding of the toric code.

The §7.1 story — "errors are rare when we inspect the encoded information
with poor resolution" — becomes quantitative here: pair up the syndrome
defects along minimum-total-length paths (Edmonds matching on the defect
graph with toroidal distances), apply the correction, and ask whether the
residual loop is homologically trivial.  Below the threshold error rate,
larger lattices store the qubit better; above it, worse — the topological
analogue of the concatenation threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.topo.toric import ToricCode
from repro.util.rng import as_rng
from repro.util.stats import binomial_confidence

__all__ = ["MWPMDecoder", "ToricMemoryResult", "toric_memory_experiment"]


class MWPMDecoder:
    """Matching decoder for independent X (or, by symmetry, Z) errors."""

    def __init__(self, code: ToricCode) -> None:
        self.code = code

    # ------------------------------------------------------------------
    def _toric_delta(self, a: int, b: int) -> tuple[int, int]:
        """Signed minimal (dr, dc) from plaquette a to b on the torus."""
        d = self.code.d
        ra, ca = divmod(a, d)
        rb, cb = divmod(b, d)
        dr = (rb - ra) % d
        if dr > d // 2 or (d % 2 == 0 and dr == d // 2 and False):
            pass
        if dr > d - dr:
            dr = dr - d
        dc = (cb - ca) % d
        if dc > d - dc:
            dc = dc - d
        return dr, dc

    def _distance(self, a: int, b: int) -> int:
        dr, dc = self._toric_delta(a, b)
        return abs(dr) + abs(dc)

    def match_defects(self, defects: np.ndarray) -> list[tuple[int, int]]:
        """Pair up lit plaquettes by minimum-weight perfect matching."""
        lit = [int(i) for i in np.nonzero(defects)[0]]
        if len(lit) % 2 != 0:
            raise ValueError("odd defect count cannot arise from X errors on a torus")
        if not lit:
            return []
        if len(lit) == 2:
            return [(lit[0], lit[1])]
        graph = nx.Graph()
        for i, a in enumerate(lit):
            for b in lit[i + 1 :]:
                graph.add_edge(a, b, weight=self._distance(a, b))
        matching = nx.min_weight_matching(graph)
        return [tuple(sorted(pair)) for pair in matching]

    def correction_for_pair(self, a: int, b: int) -> np.ndarray:
        """X correction along a minimal dual path from plaquette a to b.

        Moves row-wise then column-wise; stepping down from plaquette
        (r, c) to (r+1, c) flips h(r+1, c); stepping right flips
        v(r, c+1).
        """
        code = self.code
        d = code.d
        out = np.zeros(code.n, dtype=np.uint8)
        r, c = divmod(a, d)
        dr, dc = self._toric_delta(a, b)
        step = 1 if dr > 0 else -1
        for _ in range(abs(dr)):
            if step > 0:
                out[code.h_edge(r + 1, c)] ^= 1
                r += 1
            else:
                out[code.h_edge(r, c)] ^= 1
                r -= 1
        step = 1 if dc > 0 else -1
        for _ in range(abs(dc)):
            if step > 0:
                out[code.v_edge(r, c + 1)] ^= 1
                c += 1
            else:
                out[code.v_edge(r, c)] ^= 1
                c -= 1
        return out

    def decode(self, defects: np.ndarray) -> np.ndarray:
        """Full X-correction pattern for one plaquette syndrome."""
        correction = np.zeros(self.code.n, dtype=np.uint8)
        for a, b in self.match_defects(defects):
            correction ^= self.correction_for_pair(a, b)
        return correction

    # -- the dual sector: Z errors / vertex (electric) defects ------------
    def correction_for_vertex_pair(self, a: int, b: int) -> np.ndarray:
        """Z correction along a minimal primal path from vertex a to b.

        Stepping down from vertex (r, c) to (r+1, c) flips v(r, c);
        stepping right flips h(r, c).  (Same toroidal metric as the
        plaquette sector — vertices and plaquettes both live on a d×d
        torus grid.)
        """
        code = self.code
        d = code.d
        out = np.zeros(code.n, dtype=np.uint8)
        r, c = divmod(a, d)
        dr, dc = self._toric_delta(a, b)
        step = 1 if dr > 0 else -1
        for _ in range(abs(dr)):
            if step > 0:
                out[code.v_edge(r, c)] ^= 1
                r += 1
            else:
                out[code.v_edge(r - 1, c)] ^= 1
                r -= 1
        step = 1 if dc > 0 else -1
        for _ in range(abs(dc)):
            if step > 0:
                out[code.h_edge(r, c)] ^= 1
                c += 1
            else:
                out[code.h_edge(r, c - 1)] ^= 1
                c -= 1
        return out

    def decode_vertex(self, defects: np.ndarray) -> np.ndarray:
        """Full Z-correction pattern for one vertex syndrome."""
        correction = np.zeros(self.code.n, dtype=np.uint8)
        for a, b in self.match_defects(defects):
            correction ^= self.correction_for_vertex_pair(a, b)
        return correction


@dataclass
class ToricMemoryResult:
    d: int
    p: float
    shots: int
    failures: int
    failure_rate: float
    low: float
    high: float


def toric_memory_experiment(
    d: int,
    p: float,
    shots: int,
    seed: int | np.random.Generator | None = None,
) -> ToricMemoryResult:
    """Code-capacity toric memory: i.i.d. X errors at rate p, one MWPM
    decode, failure = homologically nontrivial residual.

    The E12 bench sweeps p for several d: curves cross near the toric-code
    threshold (~10–11% for this noise model), below which bigger lattices
    are better — the lattice-model version of the accuracy threshold.
    """
    code = ToricCode(d)
    decoder = MWPMDecoder(code)
    rng = as_rng(seed)
    errors = (rng.random((shots, code.n)) < p).astype(np.uint8)
    syndromes = code.plaquette_syndrome(errors)
    failures = 0
    for s in range(shots):
        correction = decoder.decode(syndromes[s])
        residual = errors[s] ^ correction
        # Sanity: the residual must be syndrome-free (a closed loop).
        if code.plaquette_syndrome(residual).any():
            raise AssertionError("decoder produced an open correction path")
        if code.logical_x_action(residual).any():
            failures += 1
    est, low, high = binomial_confidence(failures, shots)
    return ToricMemoryResult(d, p, shots, failures, est, low, high)
