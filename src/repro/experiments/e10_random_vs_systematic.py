"""E10 — Random vs systematic error accumulation (§6, first bullet).

Paper claims: random-phase errors accumulate like a random walk
(probability ∝ N gates), systematic errors add coherently (amplitude ∝ N,
probability ∝ N²), so the systematic threshold is of order ε₀².  Verified
three ways: closed forms, Monte Carlo of the sign walk, and exact dense
single-qubit simulation with physical over-rotation gates.
"""

from __future__ import annotations

import numpy as np

from repro.noise import (
    coherent_overrotation_error,
    random_phase_walk_error,
    systematic_threshold_penalty,
)
from repro.statevector import StateVector
from repro.util.rng import as_rng
from repro.util.stats import fit_power_law

__all__ = ["run"]


def _dense_walk(theta: float, n_gates: int, systematic: bool, trials: int, seed: int) -> float:
    """Exact statevector accumulation of over-rotations about X."""
    rng = as_rng(seed)
    failures = []
    for _ in range(trials):
        sv = StateVector(1)
        for _ in range(n_gates):
            sign = 1.0 if systematic else float(rng.choice([-1.0, 1.0]))
            angle = sign * theta / 2
            u = np.array(
                [
                    [np.cos(angle), -1j * np.sin(angle)],
                    [-1j * np.sin(angle), np.cos(angle)],
                ],
                dtype=complex,
            )
            sv.apply_unitary(u, (0,))
        failures.append(1.0 - sv.probability_of_zero(0))
    return float(np.mean(failures))


def run(quick: bool = False) -> dict:
    theta = 2e-3
    gate_counts = np.array([25, 50, 100, 200])
    trials = 40 if quick else 200
    rows = []
    for i, n in enumerate(gate_counts):
        rows.append(
            {
                "gates": int(n),
                "systematic_analytic": coherent_overrotation_error(theta, int(n)),
                "random_analytic": random_phase_walk_error(theta, int(n)),
                "systematic_dense": _dense_walk(theta, int(n), True, 1, 90 + i),
                "random_dense": _dense_walk(theta, int(n), False, trials, 95 + i),
            }
        )
    sys_fit = fit_power_law(
        gate_counts.astype(float), np.array([r["systematic_analytic"] for r in rows])
    )
    rand_fit = fit_power_law(
        gate_counts.astype(float), np.array([r["random_analytic"] for r in rows])
    )
    return {
        "experiment": "E10",
        "claim": "systematic error probability ~ N^2, random ~ N; systematic threshold ~ eps0^2",
        "paper_systematic_exponent": 2.0,
        "paper_random_exponent": 1.0,
        "measured_systematic_exponent": sys_fit[1],
        "measured_random_exponent": rand_fit[1],
        "rows": rows,
        "threshold_penalty_at_6e4": systematic_threshold_penalty(6e-4),
    }


if __name__ == "__main__":  # pragma: no cover
    import json

    print(json.dumps(run(quick=True), indent=2))
