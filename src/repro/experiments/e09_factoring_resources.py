"""E09 — Factoring resources: the §6 worked example and Eq. 36/37 scaling.

Paper claims (§6): factoring a 432-bit number needs 2160 logical qubits
and ~3·10⁹ Toffolis; per-Toffoli error ≤ ~1e-9 and storage ≤ ~1e-12;
achievable at ε ~ 1e-6 with 3 levels of concatenation (block 343) and ~1e6
physical qubits; Steane's block-55 alternative uses ~4e5 qubits at 1e-5.
"""

from __future__ import annotations

from repro.threshold import FACTORING_432_BIT, plan_factoring
from repro.threshold.flow import logical_rate_closed_form
from repro.threshold.resources import block55_alternative
from repro.threshold.scaling import block_size_required

__all__ = ["run"]


def run(quick: bool = False) -> dict:
    problem = FACTORING_432_BIT
    # The paper's own flow constants (Shor-method EC, ref. 23) correspond
    # to an effective threshold near 3e-5; its binding constraint is the
    # storage budget 1e-12 per gate time.
    paper_like = plan_factoring(
        problem,
        physical_error=1e-6,
        threshold=3e-5,
        target_error=1e-12,
        ancilla_overhead=1.35,
    )
    # Our own Steane-method numbers: MC pseudo-threshold ~2e-4.
    ours = plan_factoring(
        problem,
        physical_error=1e-6,
        threshold=2e-4,
        target_error=1e-12,
        ancilla_overhead=1.35,
    )
    suppression_curve = [
        {"levels": L, "logical_error": logical_rate_closed_form(1e-6, L, 3e-5)}
        for L in range(5)
    ]
    return {
        "experiment": "E09",
        "claim": "432-bit: 2160 logical qubits, 3e9 Toffolis, L=3, block 343, ~1e6 qubits",
        "paper_logical_qubits": 2160,
        "measured_logical_qubits": problem.logical_qubits,
        "paper_toffoli_gates": 3e9,
        "measured_toffoli_gates": problem.toffoli_gates,
        "paper_levels": 3,
        "paper_block": 343,
        "paper_total_qubits": 1e6,
        "planned_levels_paper_constants": paper_like.levels,
        "planned_block_paper_constants": paper_like.block_size,
        "planned_total_qubits_paper_constants": paper_like.total_qubits,
        "planned_levels_our_constants": ours.levels,
        "planned_block_our_constants": ours.block_size,
        "suppression_curve": suppression_curve,
        "eq37_block_size_estimate": block_size_required(1e-6, 3e-5, problem.toffoli_gates),
        "block55_alternative": block55_alternative(problem),
    }


if __name__ == "__main__":  # pragma: no cover
    import json

    print(json.dumps(run(quick=True), indent=2))
