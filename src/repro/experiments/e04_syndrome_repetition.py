"""E04 — Repeating the syndrome prevents order-ε miscorrection.

Paper claims (§3.4): acting on a single syndrome reading lets one fault
(e.g. a measurement error, or an error striking between extraction and
correction) trigger a wrong correction — "we would actually introduce a
second error into the data block"; accepting only a twice-repeated
nontrivial syndrome removes every such order-ε path.
"""

from __future__ import annotations

from repro.codes import SteaneCode
from repro.ft import ShorECProtocol
from repro.noise import circuit_level
from repro.threshold import memory_experiment

__all__ = ["run"]


def run(quick: bool = False) -> dict:
    """Uses the Shor extraction method, whose generator-by-generator
    schedule makes the §3.4 failure mode concrete: an error striking
    mid-extraction is seen by some checks and not others, so a single
    fault yields an inconsistent syndrome whose "correction" plants a
    second error — unless the syndrome must repeat before being trusted."""
    code = SteaneCode()
    shots = 20_000 if quick else 200_000
    eps_grid = [3e-4, 1e-3]
    rows = []
    for i, eps in enumerate(eps_grid):
        noise = circuit_level(eps)
        naive = ShorECProtocol(code, noise, repetitions=1, policy="first")
        paper = ShorECProtocol(code, noise, repetitions=2, policy="paper")
        r_naive = memory_experiment(naive, code, rounds=1, shots=shots, seed=50 + i)
        r_paper = memory_experiment(paper, code, rounds=1, shots=shots, seed=60 + i)
        rows.append(
            {
                "eps": eps,
                "single_reading_failure": r_naive.failure_rate,
                "repeated_reading_failure": r_paper.failure_rate,
                "improvement": r_naive.failure_rate / max(r_paper.failure_rate, 1e-9),
            }
        )
    return {
        "experiment": "E04",
        "claim": "act only on a repeated nontrivial syndrome (§3.4)",
        "rows": rows,
        "repetition_helps": all(
            r["repeated_reading_failure"] <= r["single_reading_failure"] for r in rows
        ),
    }


if __name__ == "__main__":  # pragma: no cover
    import json

    print(json.dumps(run(quick=True), indent=2))
