"""E01 — Encoded memory fidelity: F = 1 − O(ε²) vs unencoded 1 − ε.

Paper claims (§2, Eq. 14): storing a qubit bare loses fidelity 1 − ε per
step; storing it in Steane's code with uncorrelated per-qubit noise and
flawless recovery gives 1 − O(ε²).  We sweep ε, fit the power law, and
report the break-even point.
"""

from __future__ import annotations

import numpy as np

from repro.codes import SteaneCode
from repro.core import UnencodedMemory
from repro.threshold import code_capacity_memory, spawn_shard_seeds
from repro.util.stats import fit_power_law

__all__ = ["run"]


def run(
    quick: bool = False,
    workers: int = 1,
    checkpoint=None,
    resume: bool = True,
    shard_timeout: float | None = None,
    max_retries: int | None = None,
    cache=None,
    queue=None,
) -> dict:
    """``checkpoint``/``resume`` journal each grid point's shards under its
    own content-addressed run key (the per-point seed is spawned, hence
    distinct), so a killed sweep resumes mid-grid; ``shard_timeout`` /
    ``max_retries`` bound hung and failing workers.  All four thread into
    :func:`repro.threshold.sharded.sharded_code_capacity_memory`.

    ``cache`` is an alias for ``checkpoint`` under its result-cache
    reading: the same sqlite store doubles as a content-addressed result
    cache, so a rerun of an already-completed sweep replays every grid
    point from disk without spawning a worker pool (corrupted rows are
    quarantined and recomputed; storage faults degrade to uncheckpointed
    execution instead of killing the sweep).

    ``queue`` routes the encoded grid points through the durable scan
    queue instead of blocking calls: all points are submitted up front
    (coalescing against the cache), one inline claimant drains them, and
    an interrupt requeues the remainder so a rerun resumes mid-grid —
    see :func:`repro.threshold.scheduler.scan_via_queue`."""
    if cache is not None:
        checkpoint = cache
    resilience = {}
    if checkpoint is not None:
        resilience = {"checkpoint": checkpoint, "resume": resume}
    if shard_timeout is not None:
        resilience["shard_timeout"] = shard_timeout
    if max_retries is not None:
        resilience["max_retries"] = max_retries
    code = SteaneCode()
    eps_grid = np.array([3e-4, 1e-3, 3e-3, 1e-2, 3e-2])
    shots = 20_000 if quick else 400_000
    rows = []
    encoded_seeds = spawn_shard_seeds(100, len(eps_grid))
    bare_seeds = spawn_shard_seeds(200, len(eps_grid))
    if queue is not None:
        from repro.threshold import scan_via_queue

        encoded_results = scan_via_queue(
            queue,
            [
                ("capacity", (code, float(eps), 1), shots, encoded_seeds[i])
                for i, eps in enumerate(eps_grid)
            ],
            cache_path=checkpoint,
            workers=workers,
            shard_timeout=shard_timeout,
            max_retries=max_retries,
        )
        encoded_rates = [r.failures / r.shots for r in encoded_results]
    else:
        encoded_rates = [
            code_capacity_memory(
                code, float(eps), rounds=1, shots=shots, seed=encoded_seeds[i],
                workers=workers, **resilience,
            ).failure_rate
            for i, eps in enumerate(eps_grid)
        ]
    for i, eps in enumerate(eps_grid):
        bare = UnencodedMemory(float(eps)).run(1, shots, seed=bare_seeds[i])
        rows.append(
            {
                "eps": float(eps),
                "encoded_failure": encoded_rates[i],
                "bare_failure": bare.failure_rate,
                "gain": bare.failure_rate / max(encoded_rates[i], 1e-12),
            }
        )
    usable = [(r["eps"], r["encoded_failure"]) for r in rows if r["encoded_failure"] > 0]
    a_fit, k_fit = fit_power_law(
        np.array([u[0] for u in usable]), np.array([u[1] for u in usable])
    )
    return {
        "experiment": "E01",
        "claim": "encoded F = 1 - O(eps^2) vs bare 1 - eps (Eq. 14)",
        "paper_exponent": 2.0,
        "measured_exponent": k_fit,
        "measured_coefficient": a_fit,
        "rows": rows,
        "encoding_helps_everywhere": all(r["gain"] > 1 for r in rows if r["eps"] <= 1e-2),
    }


if __name__ == "__main__":  # pragma: no cover
    import json

    print(json.dumps(run(quick=True), indent=2))
