"""E12 — Topological memory (§7.1–7.2).

Paper claims: (i) tunneling errors fall like e^{−mL} with quasiparticle
separation, (ii) thermal errors scale with the Boltzmann factor e^{−Δ/T},
(iii) information encoded topologically (the Kitaev lattice model) is
robust — in decoder terms, below a threshold error rate a larger lattice
stores the qubit *better* (the curves for different d cross near the
threshold, ~10–11% for i.i.d. noise under matching).
"""

from __future__ import annotations

import numpy as np

from repro.topo import TopologicalErrorModel, toric_memory_experiment
from repro.util.stats import fit_power_law

__all__ = ["run"]


def run(quick: bool = False) -> dict:
    # (i) tunneling suppression with separation.
    model = TopologicalErrorModel(mass=1.0, gap=1.0)
    separations = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
    tunneling = [model.tunneling_error_rate(L) for L in separations]
    slope = np.polyfit(separations, np.log(tunneling), 1)[0]

    # (ii) thermal Boltzmann factor.
    temps = np.array([0.25, 0.5, 1.0])
    thermal = [model.thermal_error_rate(T) for T in temps]
    boltzmann_slope = np.polyfit(1.0 / temps, np.log(thermal), 1)[0]

    # (iii) toric-code memory crossing.
    shots = 300 if quick else 2500
    sizes = (3, 5, 7)
    p_grid = [0.04, 0.08, 0.12, 0.16]
    curves = {}
    for d in sizes:
        curves[d] = [
            {
                "p": p,
                "failure": toric_memory_experiment(d, p, shots, seed=1000 + 10 * d + i).failure_rate,
            }
            for i, p in enumerate(p_grid)
        ]
    below = all(
        curves[7][0]["failure"] <= curves[3][0]["failure"] for _ in (0,)
    )
    above = curves[7][-1]["failure"] >= curves[3][-1]["failure"] * 0.8
    return {
        "experiment": "E12",
        "claim": "tunneling ~ e^{-mL}; thermal ~ e^{-gap/T}; toric memory threshold ~0.10",
        "paper_tunneling_slope": -2.0,  # probability = amplitude², m = 1
        "measured_tunneling_slope": float(slope),
        "paper_boltzmann_slope": -1.0,  # gap = 1
        "measured_boltzmann_slope": float(boltzmann_slope),
        "toric_curves": curves,
        "bigger_lattice_better_below_threshold": below,
        "bigger_lattice_no_better_above_threshold": above,
    }


if __name__ == "__main__":  # pragma: no cover
    import json

    print(json.dumps(run(quick=True), indent=2))
