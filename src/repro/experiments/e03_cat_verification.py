"""E03 — Cat-state verification removes correlated double phase errors.

Paper claims (§3.3, Fig. 8): a single faulty XOR in the cat chain can
leave two bit-flip errors (two *phase* errors after the Hadamard that makes
the Shor state), which would feed back into the data; the first-vs-last
comparison catches every such single-fault history, so accepted states
carry double phase errors only at order ε².
"""

from __future__ import annotations

import numpy as np

from repro.ft.cat import CatStatePrep
from repro.noise import NoiseModel
from repro.pauliframe import FrameSimulator

__all__ = ["run"]


def _double_error_rate(eps: float, shots: int, verify: bool, seed: int) -> dict:
    if verify:
        prep = CatStatePrep((0, 1, 2, 3), 4, 0)
        circuit = prep.circuit(5, 1)
    else:
        prep = CatStatePrep((0, 1, 2, 3))
        circuit = prep.circuit(4, 0)
    sim = FrameSimulator(circuit, NoiseModel(eps_gate1=eps, eps_gate2=eps))
    res = sim.run(shots, seed=seed)
    # Bit-flip errors in the cat = phase errors in the Shor state (the
    # dangerous kind).  Count multiplicity among cat qubits, conditioned
    # on acceptance when verifying.
    cat_x = res.fx[:, :4]
    multi = (cat_x.sum(axis=1) >= 2)
    if verify:
        accepted = res.meas_flips[:, 0] == 0
        rate = float(multi[accepted].mean()) if accepted.any() else float("nan")
        return {
            "acceptance": float(accepted.mean()),
            "double_error_rate": rate,
        }
    return {"acceptance": 1.0, "double_error_rate": float(multi.mean())}


def run(quick: bool = False) -> dict:
    shots = 40_000 if quick else 600_000
    eps_grid = [3e-3, 1e-2, 3e-2]
    rows = []
    for i, eps in enumerate(eps_grid):
        verified = _double_error_rate(eps, shots, True, 30 + i)
        raw = _double_error_rate(eps, shots, False, 40 + i)
        rows.append(
            {
                "eps": eps,
                "unverified_double_rate": raw["double_error_rate"],
                "verified_double_rate": verified["double_error_rate"],
                "acceptance": verified["acceptance"],
                "suppression": raw["double_error_rate"]
                / max(verified["double_error_rate"], 1e-9),
            }
        )
    return {
        "experiment": "E03",
        "claim": "verification reduces correlated double (phase) errors from O(eps) to O(eps^2)",
        "rows": rows,
        "verified_better_everywhere": all(
            r["verified_double_rate"] <= r["unverified_double_rate"] for r in rows
        ),
    }


if __name__ == "__main__":  # pragma: no cover
    import json

    print(json.dumps(run(quick=True), indent=2))
