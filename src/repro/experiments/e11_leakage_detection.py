"""E11 — Leakage detection and replacement (§6 last bullet, Fig. 15).

Paper claims: leakage is handled by interrogating each qubit with the
Fig. 15 circuit, discarding detected leakers and substituting fresh |0>'s,
after which conventional syndrome measurement repairs the located error;
"allowing leakage errors does not have much effect on the accuracy
threshold."  We simulate a Steane block exposed to leakage with and
without the interrogation step.
"""

from __future__ import annotations

import numpy as np

from repro.codes import SteaneCode
from repro.noise import LeakageModel
from repro.util.rng import as_rng
from repro.util.stats import binomial_confidence

__all__ = ["run"]


def _leaky_memory(
    p_leak: float,
    rounds: int,
    shots: int,
    detect: bool,
    seed: int,
    p_detect_flip: float = 0.0,
) -> float:
    """Code-capacity Steane memory where qubits can leak.

    An undetected leaked qubit contributes an unknown Pauli *every round*
    (it has left the code space); with detection, it is replaced by |0>,
    contributing one located error that the decoder then fixes.
    """
    code = SteaneCode()
    model = LeakageModel(p_leak=p_leak, p_detect_flip=p_detect_flip)
    rng = as_rng(seed)
    leaked = np.zeros((shots, 7), dtype=bool)
    logical = np.zeros(shots, dtype=np.uint8)
    for _ in range(rounds):
        model.expose(leaked, steps=1, rng=rng)
        fx = np.zeros((shots, 7), dtype=np.uint8)
        fz = np.zeros((shots, 7), dtype=np.uint8)
        if detect:
            detections = model.detect(leaked, rng=rng)
            model.replace_detected(leaked, detections, fx, fz, rng=rng)
        # Leaked (still-undetected) qubits scramble: random Pauli frame.
        still = leaked
        fx[still] ^= rng.integers(0, 2, size=int(still.sum()), dtype=np.uint8)
        fz[still] ^= rng.integers(0, 2, size=int(still.sum()), dtype=np.uint8)
        cfx, cfz = code.correct_frame(fx, fz)
        action = code.logical_action_of_frame(cfx, cfz)
        logical ^= action[:, 0] | action[:, 1]
    return float(logical.mean())


def run(quick: bool = False) -> dict:
    shots = 10_000 if quick else 80_000
    rounds = 4
    rows = []
    for i, p_leak in enumerate([1e-3, 3e-3, 1e-2]):
        without = _leaky_memory(p_leak, rounds, shots, detect=False, seed=110 + i)
        with_det = _leaky_memory(p_leak, rounds, shots, detect=True, seed=120 + i)
        # A realistic detector is built from the same hardware: its few
        # gates misreport at a rate comparable to (a fraction of) the
        # leakage rate itself.
        noisy_det = _leaky_memory(
            p_leak, rounds, shots, detect=True, seed=130 + i, p_detect_flip=p_leak / 3
        )
        rows.append(
            {
                "p_leak": p_leak,
                "failure_no_detection": without,
                "failure_with_detection": with_det,
                "failure_noisy_detector": noisy_det,
                "gain": without / max(with_det, 1e-9),
            }
        )
    return {
        "experiment": "E11",
        "claim": "Fig. 15 interrogation converts leaks to located, correctable errors",
        "rows": rows,
        "detection_always_helps": all(
            r["failure_with_detection"] < r["failure_no_detection"] for r in rows
        ),
        # The paper's "does not have much effect on the accuracy
        # threshold" claim concerns the below-threshold regime; at the
        # largest (10⁻²) rate false alarms start to bite, which the rows
        # record.
        "noisy_detector_still_helps": all(
            r["failure_noisy_detector"] <= r["failure_no_detection"] for r in rows[:2]
        ),
    }


if __name__ == "__main__":  # pragma: no cover
    import json

    print(json.dumps(run(quick=True), indent=2))
