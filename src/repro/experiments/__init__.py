"""Experiment runners E01–E14 (see DESIGN.md §2 for the index).

Each module exposes ``run(quick: bool = False) -> dict`` regenerating one
of the paper's quantitative claims; the ``benchmarks/`` tree wraps these in
pytest-benchmark fixtures and ``EXPERIMENTS.md`` records paper-vs-measured.
``quick=True`` shrinks shot counts for smoke tests and examples.
"""

from repro.experiments import (
    e01_encoded_memory,
    e02_bad_vs_good_ancilla,
    e03_cat_verification,
    e04_syndrome_repetition,
    e05_shor_vs_steane_cost,
    e06_code_family_scaling,
    e07_flow_equations,
    e08_accuracy_threshold,
    e09_factoring_resources,
    e10_random_vs_systematic,
    e11_leakage_detection,
    e12_topological_memory,
    e13_anyonic_logic,
    e14_toffoli_budget,
)

ALL_EXPERIMENTS = {
    "E01": e01_encoded_memory.run,
    "E02": e02_bad_vs_good_ancilla.run,
    "E03": e03_cat_verification.run,
    "E04": e04_syndrome_repetition.run,
    "E05": e05_shor_vs_steane_cost.run,
    "E06": e06_code_family_scaling.run,
    "E07": e07_flow_equations.run,
    "E08": e08_accuracy_threshold.run,
    "E09": e09_factoring_resources.run,
    "E10": e10_random_vs_systematic.run,
    "E11": e11_leakage_detection.run,
    "E12": e12_topological_memory.run,
    "E13": e13_anyonic_logic.run,
    "E14": e14_toffoli_budget.run,
}

__all__ = ["ALL_EXPERIMENTS"]
