"""E06 — Code-family scaling without concatenation (Eqs. 30–32).

Paper claims (§5): with syndrome complexity t^b (b = 4 for Shor's original
procedure), the block error behaves as (t^b ε)^{t+1}; the optimal t is
~e⁻¹ε^{−1/b}; the minimum block error is exp(−e⁻¹ b ε^{−1/b}); and a
T-cycle computation needs ε ~ (log T)^{−b}.
"""

from __future__ import annotations

import numpy as np

from repro.threshold import (
    block_error_probability,
    minimum_block_error,
    optimal_t,
    required_accuracy,
)

__all__ = ["run"]


def run(quick: bool = False) -> dict:
    eps_values = [1e-5, 1e-6, 1e-7]
    rows = []
    for eps in eps_values:
        t_grid = range(1, 60)
        errors = {t: block_error_probability(t, eps, b=4) for t in t_grid}
        best_t = min(errors, key=errors.get)
        rows.append(
            {
                "eps": eps,
                "best_t_bruteforce": best_t,
                "best_t_formula": optimal_t(eps, b=4),
                "min_block_error_bruteforce": errors[best_t],
                "min_block_error_formula": minimum_block_error(eps, b=4),
            }
        )
    accuracy_rows = [
        {"T": T, "required_eps": required_accuracy(T, b=4)}
        for T in (1e6, 1e9, 1e12, 1e15)
    ]
    # Eq. 32 shape check: eps ~ (log T)^-4 means doubling log T divides
    # the requirement by 16.
    shape_ratio = accuracy_rows[2]["required_eps"] / accuracy_rows[0]["required_eps"]
    return {
        "experiment": "E06",
        "claim": "block error (t^b eps)^(t+1); optimum t ~ e^-1 eps^-1/b; eps ~ (log T)^-b",
        "optimum_rows": rows,
        "accuracy_rows": accuracy_rows,
        "paper_shape_ratio_logT_doubling": 2.0**-4,
        "measured_shape_ratio": shape_ratio,
        "formula_tracks_bruteforce": all(
            abs(r["best_t_bruteforce"] - r["best_t_formula"]) <= max(2, 0.5 * r["best_t_formula"])
            for r in rows
        ),
    }


if __name__ == "__main__":  # pragma: no cover
    import json

    print(json.dumps(run(quick=True), indent=2))
