"""E13 — Anyonic logic in A₅ (§7.3–7.4).

Paper claims: (i) the exchange/pull-through algebra of Eqs. 40–41;
(ii) the NOT gate of Fig. 21 (one pull-through with v = (14)(35));
(iii) imperfect interferometers become fault-tolerant measurements under
repetition; (iv) universality requires a nonsolvable group and A₅ is the
smallest (the Toffoli exists in A₅ but in no smaller group).  The exact
16-step Toffoli is unpublished (ref. 65); our compiler substitutes
machine-found sequences for small targets and the group-theory criterion
for the rest (see DESIGN.md substitutions).
"""

from __future__ import annotations

import numpy as np

from repro.topo import (
    ChargeInterferometer,
    FluxInterferometer,
    FluxPairRegister,
    PermutationGroup,
    PullThroughCompiler,
    toffoli_feasibility_report,
)
from repro.topo.gates import A5_COMPUTATIONAL_BASIS, A5_NOT_FLUX, not_gate_works
from repro.topo.interferometer import majority_confidence

__all__ = ["run"]


def _interferometer_error_curve(p_err: float, probe_counts: list[int]) -> list[dict]:
    return [
        {"probes": n, "majority_error": majority_confidence(p_err, n)}
        for n in probe_counts
    ]


def _charge_measurement_statistics(trials: int) -> dict:
    """Born statistics of charge measurement on |+> and on a flux state."""
    a5 = PermutationGroup.alternating(5)
    u0, u1 = A5_COMPUTATIONAL_BASIS
    meter = ChargeInterferometer()
    plus_outcomes = []
    eigen_outcomes = []
    for seed in range(trials):
        plus = FluxPairRegister.from_superposition(
            a5, {(u0,): 1 / np.sqrt(2), (u1,): 1 / np.sqrt(2)}
        )
        plus_outcomes.append(meter.measure(plus, 0, A5_NOT_FLUX, rng=seed))
        eigen = FluxPairRegister(a5, [u0])
        eigen_outcomes.append(meter.measure(eigen, 0, A5_NOT_FLUX, rng=seed))
    return {
        "plus_state_always_plus": not any(plus_outcomes),
        "flux_state_outcome_mean": float(np.mean(eigen_outcomes)),
    }


def run(quick: bool = False) -> dict:
    a5 = PermutationGroup.alternating(5)
    u0, u1 = A5_COMPUTATIONAL_BASIS

    # (ii) the published NOT gate, plus compiler rediscovery.
    compiler = PullThroughCompiler(a5, max_depth=2)
    not_gate = compiler.compile(
        [(u0,), (u1,)], [(u1,), (u0,)], ancilla_fluxes=(A5_NOT_FLUX,)
    )
    # A two-pair classical gate the compiler can find quickly: swap the
    # fluxes of two computational pairs via mutual conjugation ancilla.
    trials = 20 if quick else 60
    charge_stats = _charge_measurement_statistics(trials)
    report = toffoli_feasibility_report()
    return {
        "experiment": "E13",
        "claim": "Eq. 40/41 algebra, Fig. 21 NOT, FT interferometry, A5 universality criterion",
        "not_gate_algebraic": not_gate_works(),
        "not_gate_compiled_depth": None if not_gate is None else not_gate.depth,
        "not_gate_catalytic": None if not_gate is None else not_gate.catalytic,
        "interferometer_curve": _interferometer_error_curve(0.2, [1, 5, 15, 31]),
        "charge_measurement": charge_stats,
        "group_report": report,
        "a5_only_nonsolvable_leq_60": [
            name
            for name, row in report.items()
            if row["universality_candidate"] and row["order"] <= 60
        ]
        == ["A5"],
    }


if __name__ == "__main__":  # pragma: no cover
    import json

    print(json.dumps(run(quick=True), indent=2))
