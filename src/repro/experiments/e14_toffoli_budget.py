"""E14 — The Toffoli error budget (footnote j of §5).

Paper claims: "The elementary Toffoli gates are not required to be as
accurate as the one and two-body gates — a Toffoli gate error rate of
order 10⁻³ is acceptable, if the other error rates are sufficiently
small."  We sweep the Clifford gate error and compute the largest
tolerable Toffoli rate under the coupled flow, plus the gadget's
gate-location accounting that calibrates the flow.
"""

from __future__ import annotations

from repro.ft.toffoli import encoded_toffoli_resources
from repro.threshold.flow import ToffoliFlowParams, tolerated_toffoli_rate

__all__ = ["run"]


def run(quick: bool = False) -> dict:
    resources = encoded_toffoli_resources(measurement_repetitions=2)
    # Calibrate the flow's Clifford-to-Toffoli location ratio from the
    # gadget: Clifford two-qubit locations per CCZ location.
    counts = resources["gate_counts"]
    clifford_2q = counts.get("CNOT", 0) + counts.get("CZ", 0)
    ratio = clifford_2q / max(counts.get("CCZ", 1), 1)
    params = ToffoliFlowParams(clifford_ratio=float(ratio))
    rows = []
    for p_clifford in (1e-5, 1e-4, 3e-4, 1e-3):
        tol = tolerated_toffoli_rate(p_clifford, params)
        rows.append({"clifford_error": p_clifford, "max_toffoli_error": tol})
    return {
        "experiment": "E14",
        "claim": "Toffoli error ~1e-3 tolerable when Clifford gates are better (footnote j)",
        "paper_tolerated_toffoli": 1e-3,
        "measured_tolerated_at_1e5_clifford": rows[0]["max_toffoli_error"],
        "rows": rows,
        "gadget_resources": {
            "ccz_locations": resources["ccz_locations"],
            "cnot_locations": counts.get("CNOT", 0),
            "clifford_to_toffoli_ratio": ratio,
            "total_qubits": resources["num_qubits"],
        },
        "footnote_j_holds": rows[0]["max_toffoli_error"] >= 1e-3,
    }


if __name__ == "__main__":  # pragma: no cover
    import json

    print(json.dumps(run(quick=True), indent=2))
