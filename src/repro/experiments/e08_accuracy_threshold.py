"""E08 — The accuracy threshold: ε₀ ≈ 6·10⁻⁴ (Eqs. 34–35).

Paper claims (§5): following the Fig. 9 circuit and equating the per-qubit
error accumulation p₀ to 1/21 gives ε_gate,0 ~ 6·10⁻⁴ and ε_store,0 ~
6·10⁻⁴; "a more thorough analysis shows ... somewhat lower", with a
conservative guess that the final thresholds "will exceed 10⁻⁴".

Two independent estimates here:
* **counting** — exhaustive single-fault-path enumeration over the full
  Fig. 9 round (the paper's own methodology, mechanized);
* **Monte Carlo** — the pseudo-threshold crossing where the encoded
  per-round failure equals ε under the pessimistic §6 model.
The paper's band [1e-4, 1e-3] should contain (or closely bracket) both.
"""

from __future__ import annotations

import numpy as np

from repro.codes import SteaneCode
from repro.ft import SteaneECProtocol
from repro.noise import circuit_level
from repro.threshold import count_fault_paths, pseudo_threshold, threshold_from_counting
from repro.threshold.counting import FullSteaneRound

__all__ = ["run"]


def run(
    quick: bool = False,
    workers: int = 1,
    checkpoint=None,
    resume: bool = True,
    shard_timeout: float | None = None,
    max_retries: int | None = None,
    cache=None,
    queue=None,
) -> dict:
    """Resilience knobs thread into the Monte Carlo scan: with
    ``checkpoint`` set, each grid point journals under its own
    content-addressed run key (the protocol embeds ε), so a killed scan
    resumes mid-grid re-executing only unfinished shards.

    ``cache`` aliases ``checkpoint``: the journal doubles as a
    content-addressed result cache, so re-running a completed scan
    replays every grid point from disk without spawning workers.

    ``queue`` routes the Monte Carlo grid through the durable scan queue
    (:func:`repro.threshold.scheduler.scan_via_queue`): every ε point is
    submitted as a ``"memory"`` job with the same per-point spawned seed
    the direct path uses, so the pooled counts — and the crossing fitted
    from them — are bit-for-bit identical to a *checkpointed* blocking
    scan (both use the default shard plan; an uncheckpointed
    ``workers=1`` run takes the unsharded path and differs)."""
    if cache is not None:
        checkpoint = cache
    resilience = {}
    if checkpoint is not None:
        resilience = {"checkpoint": checkpoint, "resume": resume}
    if shard_timeout is not None:
        resilience["shard_timeout"] = shard_timeout
    if max_retries is not None:
        resilience["max_retries"] = max_retries
    report = count_fault_paths(FullSteaneRound())
    eps0_counting = threshold_from_counting(report)

    shots = 20_000 if quick else 150_000
    grid = np.array([5e-5, 1e-4, 2e-4, 4e-4, 8e-4, 1.6e-3])
    code = SteaneCode()
    if queue is not None:
        from repro.threshold import scan_via_queue, spawn_shard_seeds
        from repro.threshold.montecarlo import crossing_from_curve

        grid = np.asarray(sorted(grid), dtype=float)
        point_seeds = spawn_shard_seeds(8, len(grid))
        results = scan_via_queue(
            queue,
            [
                (
                    "memory",
                    (SteaneECProtocol(circuit_level(float(eps))), code, 1),
                    shots,
                    point_seeds[i],
                )
                for i, eps in enumerate(grid)
            ],
            cache_path=checkpoint,
            workers=workers,
            shard_timeout=shard_timeout,
            max_retries=max_retries,
        )
        curve = [
            (float(eps), max(r.failures / r.shots, 1e-12))
            for eps, r in zip(grid, results)
        ]
        crossing = crossing_from_curve(curve)
    else:
        crossing, curve = pseudo_threshold(
            lambda eps: SteaneECProtocol(circuit_level(eps)),
            code,
            grid,
            shots=shots,
            seed=8,
            workers=workers,
            **resilience,
        )
    return {
        "experiment": "E08",
        "claim": "accuracy threshold ~6e-4 (crude), >1e-4 (conservative)",
        "paper_crude_estimate": 6e-4,
        "paper_conservative_floor": 1e-4,
        "counting_threshold": eps0_counting,
        "counting_fault_cases": report.total_fault_cases,
        "counting_single_fault_logical_failures": report.logical_failures,
        "mc_pseudothreshold": crossing,
        "mc_curve": curve,
        "both_in_band": (1e-5 < crossing < 3e-3) and (1e-4 < eps0_counting < 3e-3),
    }


if __name__ == "__main__":  # pragma: no cover
    import json

    print(json.dumps(run(quick=True), indent=2))
