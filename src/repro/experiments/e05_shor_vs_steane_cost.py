"""E05 — Shor vs Steane extraction: 24 ancillas + 24 XORs vs 14 + 14.

Paper claims (§3.2–3.3): the Shor method uses "24 ancilla bits prepared in
6 Shor states, and 24 XOR gates" per syndrome measurement; "The Steane
method has the advantage ... only 14 ancilla bits and 14 XOR gates are
needed.  But ... the ancilla preparation is more complex, so that the
ancilla is somewhat more prone to error."  We count both from the built
circuits and measure the logical failure of each protocol at equal noise.
"""

from __future__ import annotations

from repro.circuits import gate_counts
from repro.codes import SteaneCode
from repro.ft import ShorECProtocol, SteaneECProtocol
from repro.ft.shor_ec import ShorSyndromeExtraction
from repro.ft.steane_ec import SteaneAncillaPrep, SteaneSyndromeExtraction
from repro.noise import circuit_level
from repro.threshold import memory_experiment

__all__ = ["run"]


def run(quick: bool = False) -> dict:
    code = SteaneCode()
    shor = ShorSyndromeExtraction(code, repetitions=1)
    steane = SteaneSyndromeExtraction(code, repetitions=1)
    shor_ancillas = sum(len(b.qubits) for b in shor.blocks)
    shor_xors = sum(
        1 for op in shor.extraction_circuit() if op.gate == "CNOT" and op.tag == "syndrome"
    )
    steane_ancillas = sum(len(l.anc_qubits) for l in steane.layouts)
    steane_xors = gate_counts(steane.extraction_circuit())["CNOT"]
    prep_complexity = gate_counts(SteaneAncillaPrep().circuit())

    shots = 20_000 if quick else 150_000
    eps = 5e-4
    noise = circuit_level(eps)
    shor_mc = memory_experiment(
        ShorECProtocol(code, noise, repetitions=2), code, rounds=1, shots=shots, seed=70
    )
    steane_mc = memory_experiment(
        SteaneECProtocol(noise, repetitions=2), code, rounds=1, shots=shots, seed=71
    )
    return {
        "experiment": "E05",
        "claim": "Shor: 24 ancillas/24 XORs; Steane: 14/14 with costlier prep",
        "paper_shor_ancillas": 24,
        "paper_shor_xors": 24,
        "paper_steane_ancillas": 14,
        "paper_steane_xors": 14,
        "measured_shor_ancillas": shor_ancillas,
        "measured_shor_xors": shor_xors,
        "measured_steane_ancillas": steane_ancillas,
        "measured_steane_xors": steane_xors,
        "steane_prep_gate_counts": prep_complexity,
        "mc_eps": eps,
        "shor_logical_failure": shor_mc.failure_rate,
        "steane_logical_failure": steane_mc.failure_rate,
    }


if __name__ == "__main__":  # pragma: no cover
    import json

    print(json.dumps(run(quick=True), indent=2))
