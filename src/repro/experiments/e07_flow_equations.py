"""E07 — The concatenation flow equation p' = 21 p² and its threshold.

Paper claims (§5, Eq. 33): a level-(L+1) block fails when ≥2 of its 7
sub-blocks fail, p_{L+1} ≈ C(7,2)p_L² = 21 p_L², threshold p₀ = 1/21.  We
verify three ways: (i) the iterated map converges/diverges around 1/21;
(ii) direct Monte Carlo of 7 sub-blocks with ideal hierarchical decoding
reproduces the coefficient 21; (iii) the circuit-level level-1 failure of
the full Steane EC round is quadratic in ε with a (much larger) effective
coefficient.
"""

from __future__ import annotations

import numpy as np

from repro.codes import ConcatenatedSteane, SteaneCode
from repro.ft import SteaneECProtocol
from repro.noise import circuit_level
from repro.threshold import fit_level1_coefficient, iterate_flow
from repro.util.rng import as_rng
from repro.util.stats import fit_power_law

__all__ = ["run"]


def _level2_mc_coefficient(quick: bool, seed: int = 0) -> tuple[float, float]:
    """Monte Carlo of Eq. 33's combinatorics: give each of 7 sub-blocks an
    independent failure probability p (as a logical X on its virtual
    qubit), decode the outer block ideally, fit A in p_out = A·p²."""
    code = SteaneCode()
    rng = as_rng(seed)
    shots = 60_000 if quick else 800_000
    # Quick mode needs larger p for statistics; the full run probes the
    # asymptotic quadratic regime where A -> 21.
    p_grid = np.array([5e-3, 1e-2, 2e-2]) if quick else np.array([2e-3, 4e-3, 8e-3])
    rates = []
    for p in p_grid:
        virtual_fx = (rng.random((shots, 7)) < p).astype(np.uint8)
        cfx, cfz = code.correct_frame(virtual_fx, np.zeros_like(virtual_fx))
        action = code.logical_action_of_frame(cfx, cfz)
        rates.append(max(float(action[:, 0].mean()), 1e-12))
    return fit_power_law(p_grid, np.array(rates))


def run(quick: bool = False) -> dict:
    # (i) iterated map behaviour around the fixed point.
    below = iterate_flow(0.9 / 21, 10)[-1]
    above = iterate_flow(1.1 / 21, 10)[-1]
    # (ii) combinatorial Monte Carlo of the level transition.
    a_mc, k_mc = _level2_mc_coefficient(quick)
    # (iii) circuit-level quadratic fit.
    grid = np.array([6e-4, 1.2e-3, 2.4e-3])
    shots = 30_000 if quick else 150_000
    a_circuit, k_circuit = fit_level1_coefficient(
        lambda eps: SteaneECProtocol(circuit_level(eps)),
        SteaneCode(),
        grid,
        shots=shots,
        seed=3,
    )
    return {
        "experiment": "E07",
        "claim": "p' = 21 p^2, threshold 1/21 (Eq. 33)",
        "paper_coefficient": 21.0,
        "mc_coefficient": a_mc,
        "mc_exponent": k_mc,
        "map_below_threshold_converges": below < 1e-12,
        "map_above_threshold_diverges": above > 0.05,
        "circuit_level_coefficient": a_circuit,
        "circuit_level_exponent": k_circuit,
        "circuit_level_pseudothreshold": 1.0 / a_circuit,
    }


if __name__ == "__main__":  # pragma: no cover
    import json

    print(json.dumps(run(quick=True), indent=2))
