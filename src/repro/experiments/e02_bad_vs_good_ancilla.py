"""E02 — Back-action: the non-FT circuit fails at order ε, the FT one at ε².

Paper claims (§3.1, Figs. 2/6): reusing one ancilla as the target of four
XORs lets a single ancilla phase error fan out into a multi-qubit data
error ("a block phase error may occur with a probability of order ε"); the
Shor-state circuit confines every single fault.  We run both circuits under
depolarizing gate noise, ideal-decode the residual data frames, and fit the
order of the logical-failure law.
"""

from __future__ import annotations

import numpy as np

from repro.codes import SteaneCode
from repro.ft.nonft_ec import (
    bad_syndrome_circuit,
    good_syndrome_circuit,
    parse_good_syndrome,
)
from repro.noise import NoiseModel
from repro.pauliframe import FrameSimulator
from repro.util.stats import fit_power_law

__all__ = ["run"]


def _logical_z_rate(
    code: SteaneCode, circuit, eps: float, shots: int, seed: int, verified: bool
) -> float:
    noise = NoiseModel(eps_gate1=eps, eps_gate2=eps)
    sim = FrameSimulator(circuit, noise)
    res = sim.run(shots, seed=seed)
    keep = np.ones(shots, dtype=bool)
    if verified:
        # The protocol discards ancillas whose cat verification fired
        # (retry with a fresh one); condition on acceptance.
        _, verify_fail = parse_good_syndrome(code, res.meas_flips, verify=True)
        keep = ~verify_fail.astype(bool)
    fx = res.fx[keep, :7]
    fz = res.fz[keep, :7]
    cfx, cfz = code.correct_frame(fx, fz)
    action = code.logical_action_of_frame(cfx, cfz)
    # The back-action mechanism plants correlated *phase* errors: column 1
    # is the logical-Z failure flag.
    return float(action[:, 1].mean())


def run(quick: bool = False) -> dict:
    code = SteaneCode()
    bad = bad_syndrome_circuit(code)
    good = good_syndrome_circuit(code, verify=True)
    shots = 20_000 if quick else 300_000
    eps_grid = np.array([1e-3, 3e-3, 1e-2])
    rows = []
    for i, eps in enumerate(eps_grid):
        rows.append(
            {
                "eps": float(eps),
                "bad_logical_z": _logical_z_rate(
                    code, bad, float(eps), shots, 10 + i, verified=False
                ),
                "good_logical_z": _logical_z_rate(
                    code, good, float(eps), shots, 20 + i, verified=True
                ),
            }
        )
    bad_fit = fit_power_law(
        np.array([r["eps"] for r in rows]),
        np.array([max(r["bad_logical_z"], 1e-9) for r in rows]),
    )
    good_fit = fit_power_law(
        np.array([r["eps"] for r in rows]),
        np.array([max(r["good_logical_z"], 1e-9) for r in rows]),
    )
    return {
        "experiment": "E02",
        "claim": "shared-ancilla circuit fails at O(eps); Shor-state circuit at O(eps^2)",
        "paper_bad_order": 1.0,
        "paper_good_order": 2.0,
        "measured_bad_order": bad_fit[1],
        "measured_good_order": good_fit[1],
        "rows": rows,
        "separation_at_1e3": rows[0]["bad_logical_z"]
        / max(rows[0]["good_logical_z"], 1e-9),
    }


if __name__ == "__main__":  # pragma: no cover
    import json

    print(json.dumps(run(quick=True), indent=2))
