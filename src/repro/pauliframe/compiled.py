"""Compiler + interpreter for bit-packed Pauli-frame simulation.

:class:`CompiledFrameProgram` lowers a :class:`repro.circuits.Circuit` into
a flat instruction stream executed over bit-packed frames (see
``packing.py``): shots live along the bit axis of ``uint64`` words, so one
XOR touches 64 shots.  Two compile-time transformations carry the speedup:

* **Gate fusion** — consecutive operations of the same kind acting on
  disjoint qubits collapse into a single fancy-indexed row operation.  The
  transversal structure of fault-tolerant gadgets (rows of parallel CNOTs,
  blocks of measurements) makes these batches long in practice.
* **Noise-location precompute** — every stochastic location is assigned, in
  program order, an index within its channel class (single-qubit gate,
  two-qubit gate, measurement, preparation, storage).  At run time each
  class is sampled in *one* vectorized draw covering all of its locations,
  instead of one RNG call per operation.  Below ``_SPARSE_MAX_P`` the draw
  uses exact geometric-gap (skip) sampling, so its cost scales with the
  expected number of faults rather than locations x shots.

Semantics match the legacy interpreter in ``engine.py`` exactly on
deterministic paths (no noise, arbitrary initial frames and fault
injections) and in distribution on noisy paths; the parity test suite in
``tests/test_pauliframe_compiled.py`` pins both.  Fault injections need
operation-boundary resolution, which fused batches erase, so they run on an
unfused twin program (see :meth:`FrameSimulator.run
<repro.pauliframe.engine.FrameSimulator.run>`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import Circuit
from repro.noise.models import NoiseModel
from repro.pauliframe.engine import (
    FrameResult,
    build_fault_schedule,
    validate_frame_circuit,
)
from repro.pauliframe.packing import (
    pack_rows,
    pack_shot_major,
    unpack_shot_major,
    words_for,
)
from repro.util.rng import as_rng

__all__ = ["CompiledFrameProgram"]

# Instruction opcodes.  Frame ops first, then noise-application ops.
_OP_H = 0
_OP_S = 1       # S and SDG share the frame action fz ^= fx
_OP_RP = 2      # RPRIME: fx ^= fz
_OP_CNOT = 3
_OP_CZ = 4
_OP_CY = 5
_OP_SWAP = 6
_OP_M = 7
_OP_MX = 8
_OP_R = 9
_OP_COND = 10   # classically conditioned Pauli (+ masked gate noise)
_OP_NG1 = 11    # single-qubit depolarizing planes
_OP_NG2 = 12    # two-qubit error planes
_OP_NM = 13     # measurement-record flip planes
_OP_NP = 14     # faulty-preparation planes
_OP_NSTORE = 15  # storage depolarizing planes (all qubits, one TICK)

_ONE_QUBIT_KIND = {
    "H": "H",
    "S": "S",
    "SDG": "S",
    "RPRIME": "RP",
    # Paulis are frame-transparent but still noisy physical gates.
    "I": "P1",
    "X": "P1",
    "Y": "P1",
    "Z": "P1",
}
_TWO_QUBIT_KIND = {"CNOT": "CNOT", "CZ": "CZ", "CY": "CY", "SWAP": "SWAP"}
_FRAME_OPCODE = {
    "H": _OP_H,
    "S": _OP_S,
    "RP": _OP_RP,
    "CNOT": _OP_CNOT,
    "CZ": _OP_CZ,
    "CY": _OP_CY,
    "SWAP": _OP_SWAP,
    "M": _OP_M,
    "MX": _OP_MX,
    "R": _OP_R,
}

# Above this probability a dense (locations x shots) draw is cheaper than
# geometric skip-sampling; below it the sparse path wins by ~1/p.
_SPARSE_MAX_P = 0.05


# ----------------------------------------------------------------------
# Noise-plane sampling.  One call per channel class per run; identical
# sampling order regardless of fusion, so fused and unfused programs give
# bit-identical results from the same seed.
# ----------------------------------------------------------------------
def _bernoulli_positions(rng: np.random.Generator, total: int, p: float) -> np.ndarray:
    """Indices in ``[0, total)`` hit by independent Bernoulli(p) trials.

    Exact skip sampling: gaps between successive hits are geometric, so the
    cost is O(total * p) instead of O(total).
    """
    if total <= 0 or p <= 0.0:
        return np.empty(0, dtype=np.int64)
    if p >= 1.0:
        return np.arange(total, dtype=np.int64)
    expect = total * p
    chunk = int(expect + 10.0 * math.sqrt(expect + 1.0) + 16.0)
    parts: list[np.ndarray] = []
    last = -1
    while last < total:
        gaps = rng.geometric(p, size=chunk)
        positions = np.cumsum(gaps, dtype=np.int64) + last
        parts.append(positions)
        last = int(positions[-1])
    out = np.concatenate(parts) if len(parts) > 1 else parts[0]
    return out[out < total]


def _scatter(
    count: int, nwords: int, loc: np.ndarray, shot: np.ndarray, sel: np.ndarray | None = None
) -> np.ndarray:
    """OR single bits (loc, shot) into a zeroed ``(count, nwords)`` plane."""
    planes = np.zeros((count, nwords), dtype=np.uint64)
    if sel is not None:
        loc = loc[sel]
        shot = shot[sel]
    if loc.size:
        bits = np.uint64(1) << (shot & 63).astype(np.uint64)
        np.bitwise_or.at(planes, (loc, shot >> 6), bits)
    return planes


def _conditional_kind(u: np.ndarray, p: float, sides: int) -> np.ndarray:
    """Uniform {0..sides-1} from the same uniforms that decided hit = u < p.

    Conditioned on ``u < p``, ``u / p`` is uniform on [0, 1), so one draw
    yields both the hit mask and an independent kind — halving RNG cost on
    the dense path.
    """
    return np.minimum((u * (sides / p)).astype(np.int64), sides - 1)


def _depolarize_planes(
    rng: np.random.Generator, count: int, shots: int, p: float
) -> tuple[np.ndarray, np.ndarray]:
    """X/Z flip planes for ``count`` uniform-X/Y/Z depolarizing locations."""
    nwords = words_for(shots)
    if count == 0 or p <= 0.0:
        empty = np.zeros((count, nwords), dtype=np.uint64)
        return empty, empty.copy()
    if p > _SPARSE_MAX_P:
        u = rng.random((count, shots))
        hit = u < p
        kind = _conditional_kind(u, p, 3)  # 0: X, 1: Y, 2: Z
        return pack_rows(hit & (kind != 2)), pack_rows(hit & (kind != 0))
    idx = _bernoulli_positions(rng, count * shots, p)
    kind = rng.integers(0, 3, size=idx.size)
    loc, shot = idx // shots, idx % shots
    return (
        _scatter(count, nwords, loc, shot, kind != 2),
        _scatter(count, nwords, loc, shot, kind != 0),
    )


def _bernoulli_planes(
    rng: np.random.Generator, count: int, shots: int, p: float
) -> np.ndarray:
    """Flip planes for ``count`` plain Bernoulli(p) locations (meas/prep)."""
    nwords = words_for(shots)
    if count == 0 or p <= 0.0:
        return np.zeros((count, nwords), dtype=np.uint64)
    if p > _SPARSE_MAX_P:
        return pack_rows(rng.random((count, shots)) < p)
    idx = _bernoulli_positions(rng, count * shots, p)
    return _scatter(count, nwords, idx // shots, idx % shots)


def _two_qubit_planes(
    rng: np.random.Generator, count: int, shots: int, noise: NoiseModel
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(ax, az, bx, bz) planes for ``count`` two-qubit gate locations."""
    p = noise.eps_gate2
    nwords = words_for(shots)
    if count == 0 or p <= 0.0:
        empty = np.zeros((count, nwords), dtype=np.uint64)
        return empty, empty.copy(), empty.copy(), empty.copy()
    if noise.two_qubit_mode == "both_damaged":
        # §5's pessimistic model: one hit draws an independent uniform
        # non-trivial-or-not X/Y/Z on each touched qubit.
        if p > _SPARSE_MAX_P:
            u = rng.random((count, shots))
            hit = u < p
            kind_a = _conditional_kind(u, p, 3)
            kind_b = rng.integers(0, 3, size=(count, shots))
            return (
                pack_rows(hit & (kind_a != 2)),
                pack_rows(hit & (kind_a != 0)),
                pack_rows(hit & (kind_b != 2)),
                pack_rows(hit & (kind_b != 0)),
            )
        idx = _bernoulli_positions(rng, count * shots, p)
        kind_a = rng.integers(0, 3, size=idx.size)
        kind_b = rng.integers(0, 3, size=idx.size)
        loc, shot = idx // shots, idx % shots
        return (
            _scatter(count, nwords, loc, shot, kind_a != 2),
            _scatter(count, nwords, loc, shot, kind_a != 0),
            _scatter(count, nwords, loc, shot, kind_b != 2),
            _scatter(count, nwords, loc, shot, kind_b != 0),
        )
    # depolarizing15: uniform over the 15 nontrivial pair Paulis.
    if p > _SPARSE_MAX_P:
        u = rng.random((count, shots))
        hit = u < p
        pair = np.where(hit, _conditional_kind(u, p, 15) + 1, 0)
    else:
        idx = _bernoulli_positions(rng, count * shots, p)
        pair_sparse = rng.integers(1, 16, size=idx.size)
        loc, shot = idx // shots, idx % shots
        return (
            _scatter(count, nwords, loc, shot, ((pair_sparse >> 3) & 1) == 1),
            _scatter(count, nwords, loc, shot, ((pair_sparse >> 2) & 1) == 1),
            _scatter(count, nwords, loc, shot, ((pair_sparse >> 1) & 1) == 1),
            _scatter(count, nwords, loc, shot, (pair_sparse & 1) == 1),
        )
    return (
        pack_rows((pair >> 3) & 1),
        pack_rows((pair >> 2) & 1),
        pack_rows((pair >> 1) & 1),
        pack_rows(pair & 1),
    )


@dataclass
class _Planes:
    """Pre-sampled packed noise bit-planes for one run, by channel class."""

    g1x: np.ndarray
    g1z: np.ndarray
    g2ax: np.ndarray
    g2az: np.ndarray
    g2bx: np.ndarray
    g2bz: np.ndarray
    meas: np.ndarray
    prep: np.ndarray
    storex: np.ndarray
    storez: np.ndarray


def _inject_packed(fx: np.ndarray, fz: np.ndarray, shot: int, qubit: int, kind: str) -> None:
    bit = np.uint64(1) << np.uint64(shot & 63)
    word = shot >> 6
    if kind in ("X", "Y"):
        fx[qubit, word] ^= bit
    if kind in ("Z", "Y"):
        fz[qubit, word] ^= bit


class CompiledFrameProgram:
    """A circuit lowered to a packed-frame instruction stream.

    Parameters
    ----------
    circuit, noise: same contract as :class:`FrameSimulator`.
    fuse: collapse runs of same-kind disjoint-qubit operations into single
        batched instructions.  ``fuse=False`` keeps one instruction group
        per operation, which is what fault injection needs; both variants
        consume the RNG identically, so results are bit-identical.
    """

    def __init__(self, circuit: Circuit, noise: NoiseModel | None = None, fuse: bool = True) -> None:
        self.circuit = circuit
        self.noise = noise or NoiseModel()
        self.fuse = fuse
        # Snapshot for staleness checks: Circuit is append-only, so a grown
        # op count is the one way the instruction stream can go stale.
        self.compiled_ops = len(circuit)
        validate_frame_circuit(circuit)
        self._compile()
        self.verify()

    def verify(self) -> None:
        """Statically verify the compiled instruction stream.

        Runs :func:`repro.analysis.progcheck.verify_program` over the
        packed tuples ``_compile`` just emitted — opcode validity, operand
        bounds, fused-batch aliasing, noise-plane budgets, probability
        ranges.  Raises a typed
        :class:`~repro.analysis.progcheck.ProgramVerificationError`
        subclass on the first violation.  Imported lazily: progcheck needs
        this module's opcode constants, so a module-level import would
        cycle.
        """
        from repro.analysis.progcheck import verify_program

        verify_program(
            self._instructions,
            self.circuit.num_qubits,
            self.circuit.num_cbits,
            self._counts,
            self.noise,
        )

    # ------------------------------------------------------------------
    def _compile(self) -> None:
        noise = self.noise
        num_qubits = self.circuit.num_qubits
        instrs: list[tuple] = []
        op_slices: list[tuple[int, int]] = []
        counts = {"g1": 0, "g2": 0, "meas": 0, "prep": 0, "store": 0}
        # Current fusion batch.
        state = {"kind": None}
        q1: list[int] = []
        q2: list[int] = []
        touched_q: set[int] = set()
        touched_c: set[int] = set()

        def flush() -> None:
            kind = state["kind"]
            if kind is None:
                return
            size = len(q1)
            idx1 = np.array(q1, dtype=np.intp)
            idx2 = np.array(q2, dtype=np.intp)
            if kind in ("H", "S", "RP"):
                instrs.append((_FRAME_OPCODE[kind], idx1))
            elif kind in ("CNOT", "CZ", "CY", "SWAP"):
                instrs.append((_FRAME_OPCODE[kind], idx1, idx2))
            elif kind in ("M", "MX"):
                instrs.append((_FRAME_OPCODE[kind], idx1, idx2))
                if noise.eps_meas > 0:
                    instrs.append((_OP_NM, idx2, counts["meas"], size))
                    counts["meas"] += size
            elif kind == "R":
                instrs.append((_OP_R, idx1))
                if noise.eps_prep > 0:
                    instrs.append((_OP_NP, idx1, counts["prep"], size))
                    counts["prep"] += size
            # "P1" (bare Paulis) emit no frame instruction, only gate noise.
            if kind in ("H", "S", "RP", "P1") and noise.eps_gate1 > 0:
                instrs.append((_OP_NG1, idx1, counts["g1"], size))
                counts["g1"] += size
            elif kind in ("CNOT", "CZ", "CY", "SWAP") and noise.eps_gate2 > 0:
                instrs.append((_OP_NG2, idx1, idx2, counts["g2"], size))
                counts["g2"] += size
            state["kind"] = None
            q1.clear()
            q2.clear()
            touched_q.clear()
            touched_c.clear()

        for op in self.circuit:
            # With fuse=False every op flushes immediately, so instruction
            # indices [start, end) delimit exactly this op's instructions —
            # the resolution fault injection needs.
            start = len(instrs)
            gate = op.gate
            if gate == "TICK":
                flush()
                if noise.eps_store > 0:
                    instrs.append((_OP_NSTORE, counts["store"]))
                    counts["store"] += num_qubits
            elif op.condition:
                flush()
                loc = -1
                if noise.eps_gate1 > 0:
                    loc = counts["g1"]
                    counts["g1"] += 1
                instrs.append(
                    (
                        _OP_COND,
                        gate in ("X", "Y"),
                        gate in ("Z", "Y"),
                        op.qubits[0],
                        np.array(op.condition, dtype=np.intp),
                        loc,
                    )
                )
            else:
                kind = _ONE_QUBIT_KIND.get(gate) or _TWO_QUBIT_KIND.get(gate) or gate
                if kind not in ("H", "S", "RP", "P1", "CNOT", "CZ", "CY", "SWAP", "M", "MX", "R"):
                    raise ValueError(f"unhandled gate {gate}")  # pragma: no cover
                joinable = (
                    self.fuse
                    and state["kind"] == kind
                    and touched_q.isdisjoint(op.qubits)
                    and touched_c.isdisjoint(op.cbits)
                )
                if not joinable:
                    flush()
                    state["kind"] = kind
                q1.append(op.qubits[0])
                if kind in ("CNOT", "CZ", "CY", "SWAP"):
                    q2.append(op.qubits[1])
                elif kind in ("M", "MX"):
                    q2.append(op.cbits[0])
                    touched_c.add(op.cbits[0])
                touched_q.update(op.qubits)
            if not self.fuse:
                flush()
                op_slices.append((start, len(instrs)))
        flush()
        self._instructions = instrs
        self._op_slices = op_slices
        self._counts = counts

    # ------------------------------------------------------------------
    def _sample_planes(self, rng: np.random.Generator, shots: int) -> _Planes:
        counts, noise = self._counts, self.noise
        g1x, g1z = _depolarize_planes(rng, counts["g1"], shots, noise.eps_gate1)
        g2ax, g2az, g2bx, g2bz = _two_qubit_planes(rng, counts["g2"], shots, noise)
        meas = _bernoulli_planes(rng, counts["meas"], shots, noise.eps_meas)
        prep = _bernoulli_planes(rng, counts["prep"], shots, noise.eps_prep)
        storex, storez = _depolarize_planes(rng, counts["store"], shots, noise.eps_store)
        return _Planes(g1x, g1z, g2ax, g2az, g2bx, g2bz, meas, prep, storex, storez)

    # ------------------------------------------------------------------
    def new_buffers(self, shots: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Freshly zeroed packed (fx, fz, flips) buffers for ``shots``."""
        nwords = words_for(shots)
        fx = np.zeros((self.circuit.num_qubits, nwords), dtype=np.uint64)
        fz = np.zeros_like(fx)
        flips = np.zeros((max(1, self.circuit.num_cbits), nwords), dtype=np.uint64)
        return fx, fz, flips

    def run_packed(
        self,
        shots: int,
        rng: int | np.random.Generator | None,
        fx: np.ndarray,
        fz: np.ndarray,
        flips: np.ndarray,
        fault_injections: list | None = None,
    ) -> None:
        """Execute in place over caller-provided packed buffers.

        ``fx``/``fz`` carry the initial frames on entry and the residual
        frames on exit; ``flips`` is zeroed here before execution.  Buffers
        must have ``words_for(shots)`` columns (reuse across rounds is the
        point of this entry).
        """
        rng = as_rng(rng)
        nwords = words_for(shots)
        if fx.shape != (self.circuit.num_qubits, nwords) or fz.shape != fx.shape:
            raise ValueError(
                f"frame buffers must be ({self.circuit.num_qubits}, {nwords}) uint64"
            )
        flips[:] = 0
        planes = self._sample_planes(rng, shots)
        if fault_injections is None:
            self._execute(self._instructions, fx, fz, flips, planes)
            return
        if self.fuse:
            raise ValueError("fault injections require an unfused program (fuse=False)")
        schedule = build_fault_schedule(fault_injections, shots)
        for shot, qubit, kind in schedule.get(-1, []):
            _inject_packed(fx, fz, shot, qubit, kind)
        for op_index, (start, end) in enumerate(self._op_slices):
            if end > start:
                self._execute(self._instructions[start:end], fx, fz, flips, planes)
            for shot, qubit, kind in schedule.get(op_index, []):
                _inject_packed(fx, fz, shot, qubit, kind)

    def run(
        self,
        shots: int,
        seed: int | np.random.Generator | None = None,
        initial_fx: np.ndarray | None = None,
        initial_fz: np.ndarray | None = None,
        fault_injections: list | None = None,
    ) -> FrameResult:
        """Drop-in equivalent of :meth:`FrameSimulator.run` (unpacked API)."""
        rng = as_rng(seed)
        fx, fz, flips = self.new_buffers(shots)
        # Broadcast before packing: the legacy engine's in-place XOR accepts
        # (1, n) initial frames via NumPy broadcasting, and packing a (1, n)
        # array directly would silently hit only shot 0 of each word.
        shape = (shots, self.circuit.num_qubits)
        if initial_fx is not None:
            fx ^= pack_shot_major(np.broadcast_to(np.asarray(initial_fx, dtype=np.uint8), shape))
        if initial_fz is not None:
            fz ^= pack_shot_major(np.broadcast_to(np.asarray(initial_fz, dtype=np.uint8), shape))
        self.run_packed(shots, rng, fx, fz, flips, fault_injections)
        return FrameResult(
            meas_flips=unpack_shot_major(flips, shots),
            fx=unpack_shot_major(fx, shots),
            fz=unpack_shot_major(fz, shots),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _execute(
        instrs: list[tuple],
        fx: np.ndarray,
        fz: np.ndarray,
        flips: np.ndarray,
        pl: _Planes,
    ) -> None:
        for ins in instrs:
            op = ins[0]
            if op == _OP_CNOT:
                _, ctl, tgt = ins
                fx[tgt] ^= fx[ctl]
                fz[ctl] ^= fz[tgt]
            elif op == _OP_M:
                _, qs, cs = ins
                flips[cs] = fx[qs]
                fz[qs] = 0
            elif op == _OP_H:
                qs = ins[1]
                tmp = fx[qs]
                fx[qs] = fz[qs]
                fz[qs] = tmp
            elif op == _OP_NG1:
                _, qs, lo, size = ins
                fx[qs] ^= pl.g1x[lo : lo + size]
                fz[qs] ^= pl.g1z[lo : lo + size]
            elif op == _OP_NG2:
                _, qa, qb, lo, size = ins
                sl = slice(lo, lo + size)
                fx[qa] ^= pl.g2ax[sl]
                fz[qa] ^= pl.g2az[sl]
                fx[qb] ^= pl.g2bx[sl]
                fz[qb] ^= pl.g2bz[sl]
            elif op == _OP_R:
                qs = ins[1]
                fx[qs] = 0
                fz[qs] = 0
            elif op == _OP_NM:
                _, cs, lo, size = ins
                flips[cs] ^= pl.meas[lo : lo + size]
            elif op == _OP_NP:
                _, qs, lo, size = ins
                fx[qs] ^= pl.prep[lo : lo + size]
            elif op == _OP_NSTORE:
                lo = ins[1]
                n = fx.shape[0]
                fx ^= pl.storex[lo : lo + n]
                fz ^= pl.storez[lo : lo + n]
            elif op == _OP_S:
                qs = ins[1]
                fz[qs] ^= fx[qs]
            elif op == _OP_RP:
                qs = ins[1]
                fx[qs] ^= fz[qs]
            elif op == _OP_CZ:
                _, qa, qb = ins
                fz[qb] ^= fx[qa]
                fz[qa] ^= fx[qb]
            elif op == _OP_CY:
                _, ctl, tgt = ins
                fz[ctl] ^= fx[tgt] ^ fz[tgt]
                fx[tgt] ^= fx[ctl]
                fz[tgt] ^= fx[ctl]
            elif op == _OP_SWAP:
                _, qa, qb = ins
                tmp = fx[qa]
                fx[qa] = fx[qb]
                fx[qb] = tmp
                tmp = fz[qa]
                fz[qa] = fz[qb]
                fz[qb] = tmp
            elif op == _OP_MX:
                _, qs, cs = ins
                flips[cs] = fz[qs]
                fx[qs] = 0
            elif op == _OP_COND:
                _, xflag, zflag, qubit, cond, loc = ins
                mask = np.bitwise_xor.reduce(flips[cond], axis=0)
                if xflag:
                    fx[qubit] ^= mask
                if zflag:
                    fz[qubit] ^= mask
                if loc >= 0:
                    # The conditional Pauli is physical only where it fires.
                    fx[qubit] ^= pl.g1x[loc] & mask
                    fz[qubit] ^= pl.g1z[loc] & mask
            else:  # pragma: no cover
                raise AssertionError(f"bad opcode {op}")
