"""Batched Pauli-frame propagation through Clifford circuits.

State per shot: boolean vectors ``fx`` (X-error support) and ``fz``
(Z-error support) of length ``num_qubits``, stored as ``(shots, n)`` arrays
and updated **in place** with column XOR/swap operations (no per-shot Python
loops; see the HPC guide's vectorization notes).

Semantics
---------
* The frame is defined relative to the *noiseless reference execution* of
  the same circuit.  A measurement's recorded outcome differs from the
  reference outcome exactly when the appropriate frame bit is set (X frame
  for Z-basis measurement, Z frame for X-basis).
* Operations conditioned on classical parities are supported for Pauli
  gates only: the reference run and the noisy run may disagree on the
  condition, and the disagreement is itself the parity of measurement-flip
  bits, so the conditional Pauli is applied masked by that parity.  This is
  exactly the structure of the paper's recovery steps — all classically
  conditioned operations in Figs. 9 and 13 are (transversal) Paulis.
* Error injection follows :class:`repro.noise.NoiseModel`: depolarizing
  after gates, storage depolarizing at TICKs, measurement-record flips, and
  faulty preparations.

Sign bookkeeping is intentionally dropped: global phases and Pauli signs do
not affect error-correction statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import Circuit, Operation
from repro.noise.models import NoiseModel
from repro.util.rng import as_rng

__all__ = ["FrameSimulator", "FrameResult", "validate_frame_circuit"]


def build_fault_schedule(fault_injections: list, shots: int) -> dict[int, list]:
    """Normalize per-shot fault specs into an op-index -> entries schedule.

    Shared by both engines (see :meth:`FrameSimulator.run` for the spec
    format); validates fault kinds up front so no frame is partially
    mutated before a bad entry is discovered.
    """
    if len(fault_injections) != shots:
        raise ValueError("need exactly one fault spec (or list) per shot")
    schedule: dict[int, list[tuple[int, int, str]]] = {}
    for s, spec in enumerate(fault_injections):
        entries = [spec] if isinstance(spec, tuple) else list(spec)
        for op_index, qubit, kind in entries:
            if kind not in ("X", "Y", "Z"):
                raise ValueError(f"unknown fault kind {kind!r}")
            schedule.setdefault(op_index, []).append((s, qubit, kind))
    return schedule


def validate_frame_circuit(circuit: Circuit) -> None:
    """Reject circuits the frame formalism cannot represent.

    Frames propagate linearly only through Clifford gates, and classical
    control is exact only for Pauli corrections (see module docstring).
    """
    for op in circuit:
        if op.gate in ("CCX", "CCZ", "T"):
            raise ValueError(
                f"{op.gate} is not Clifford; the frame engine cannot propagate it"
            )
        if op.condition and op.gate not in ("X", "Y", "Z", "I"):
            raise ValueError(
                "classically conditioned operations must be Pauli gates "
                f"(got {op.gate})"
            )


@dataclass
class FrameResult:
    """Outcome of a batched frame simulation.

    Attributes
    ----------
    meas_flips:
        ``(shots, num_cbits)`` uint8 — 1 where the noisy run's recorded bit
        differs from the noiseless reference.
    fx, fz:
        ``(shots, num_qubits)`` uint8 final residual error frames.
    """

    meas_flips: np.ndarray
    fx: np.ndarray
    fz: np.ndarray

    @property
    def shots(self) -> int:
        return int(self.fx.shape[0])

    def residual_pauli_weight(self) -> np.ndarray:
        """Per-shot count of qubits carrying any residual error."""
        return (self.fx | self.fz).sum(axis=1)


class FrameSimulator:
    """Propagates ``shots`` Pauli frames through one circuit.

    The simulator object is reusable: :meth:`run` allocates fresh frames
    each call, so parameter sweeps can share the compiled operation list.

    Parameters
    ----------
    backend: ``"compiled"`` (default) lowers the circuit to the bit-packed
        instruction stream of :class:`repro.pauliframe.compiled.
        CompiledFrameProgram` — same results, ~orders faster at large shot
        counts.  ``"legacy"`` keeps the original per-operation interpreter;
        it remains the executable specification the parity suite tests the
        compiled engine against.
    """

    def __init__(
        self,
        circuit: Circuit,
        noise: NoiseModel | None = None,
        backend: str = "compiled",
    ) -> None:
        if backend not in ("compiled", "legacy"):
            raise ValueError(f"unknown backend {backend!r}")
        self.circuit = circuit
        self.noise = noise or NoiseModel()
        self.backend = backend
        validate_frame_circuit(circuit)
        self._fused = None
        self._unfused = None

    # ------------------------------------------------------------------
    def _program(self, fused: bool):
        """Lazily compiled program (fused twin for plain runs, unfused twin
        for fault injections — both consume the RNG identically).

        Recompiles when ``self.noise`` was swapped or the (append-only)
        circuit grew since the last run, so the mutate-and-rerun pattern
        the legacy backend allowed keeps working.  NoiseModel is frozen,
        so equality is a safe staleness test; for the circuit the op count
        is, because :class:`Circuit` only ever appends.
        """
        from repro.pauliframe.compiled import CompiledFrameProgram

        cached = self._fused if fused else self._unfused
        if (
            cached is None
            or cached.noise != self.noise
            or cached.compiled_ops != len(self.circuit)
        ):
            validate_frame_circuit(self.circuit)
            cached = CompiledFrameProgram(self.circuit, self.noise, fuse=fused)
            if fused:
                self._fused = cached
            else:
                self._unfused = cached
        return cached

    # ------------------------------------------------------------------
    def run(
        self,
        shots: int,
        seed: int | np.random.Generator | None = None,
        initial_fx: np.ndarray | None = None,
        initial_fz: np.ndarray | None = None,
        fault_injections: "list | None" = None,
    ) -> FrameResult:
        """Simulate ``shots`` independent noisy executions.

        ``fault_injections`` optionally places deterministic faults: entry
        ``s`` is either a single ``(op_index, qubit, kind)`` tuple or a
        list of them, with kind in {"X","Y","Z"}, injected into shot ``s``
        immediately *after* operation ``op_index`` executes (op_index −1
        means t = 0).  This is the exhaustive fault-path enumeration used
        by the §5 circuit counting; combine with a trivial noise model for
        pure fault-path analysis.
        """
        if self.backend == "compiled":
            return self._program(fused=fault_injections is None).run(
                shots,
                seed,
                initial_fx=initial_fx,
                initial_fz=initial_fz,
                fault_injections=fault_injections,
            )
        rng = as_rng(seed)
        n = self.circuit.num_qubits
        fx = np.zeros((shots, n), dtype=np.uint8)
        fz = np.zeros((shots, n), dtype=np.uint8)
        if initial_fx is not None:
            fx ^= np.asarray(initial_fx, dtype=np.uint8)
        if initial_fz is not None:
            fz ^= np.asarray(initial_fz, dtype=np.uint8)
        flips = np.zeros((shots, max(1, self.circuit.num_cbits)), dtype=np.uint8)
        schedule: dict[int, list[tuple[int, int, str]]] = {}
        if fault_injections is not None:
            schedule = build_fault_schedule(fault_injections, shots)
            for s, qubit, kind in schedule.get(-1, []):
                _inject(fx, fz, s, qubit, kind)
        for i, op in enumerate(self.circuit):
            self._apply(op, fx, fz, flips, rng)
            for s, qubit, kind in schedule.get(i, []):
                _inject(fx, fz, s, qubit, kind)
        return FrameResult(meas_flips=flips, fx=fx, fz=fz)

    # ------------------------------------------------------------------
    def _apply(
        self,
        op: Operation,
        fx: np.ndarray,
        fz: np.ndarray,
        flips: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        noise = self.noise
        gate = op.gate
        if gate == "TICK":
            if noise.eps_store > 0:
                # One (shots, n) draw for the whole TICK: every resting
                # qubit sees the same depolarizing channel, so a single
                # hit/kind matrix replaces n separate _depolarize calls.
                n = self.circuit.num_qubits
                hit = rng.random((fx.shape[0], n)) < noise.eps_store
                kind = rng.integers(0, 3, size=(fx.shape[0], n))
                _apply_depolarizing_kinds(fx, fz, hit, kind)
            return

        if op.condition:
            # Reference condition parity is 0 by gadget construction (all
            # used parities are deterministic in the noiseless run), so the
            # runs disagree exactly where the flip-parity is 1.
            mask = np.zeros(fx.shape[0], dtype=np.uint8)
            for c in op.condition:
                mask ^= flips[:, c]
            maskb = mask.astype(bool)
            q = op.qubits[0]
            if gate in ("X", "Y"):
                fx[maskb, q] ^= 1
            if gate in ("Z", "Y"):
                fz[maskb, q] ^= 1
            # The conditional Pauli is a physical gate application in the
            # shots where it actually fires, and can fail there.
            if noise.eps_gate1 > 0:
                _depolarize(fx, fz, q, noise.eps_gate1, rng, where=maskb)
            return

        if gate == "M":
            q, c = op.qubits[0], op.cbits[0]
            flips[:, c] = fx[:, q]
            if noise.eps_meas > 0:
                flips[:, c] ^= (rng.random(fx.shape[0]) < noise.eps_meas).astype(np.uint8)
            fz[:, q] = 0  # Z on a Z eigenstate is a phase: absorbed.
            return
        if gate == "MX":
            q, c = op.qubits[0], op.cbits[0]
            flips[:, c] = fz[:, q]
            if noise.eps_meas > 0:
                flips[:, c] ^= (rng.random(fx.shape[0]) < noise.eps_meas).astype(np.uint8)
            fx[:, q] = 0
            return
        if gate == "R":
            q = op.qubits[0]
            fx[:, q] = 0
            fz[:, q] = 0
            if noise.eps_prep > 0:
                fx[:, q] = (rng.random(fx.shape[0]) < noise.eps_prep).astype(np.uint8)
            return

        # Unitary Clifford gates: frame conjugation, then gate noise.
        if gate == "H":
            q = op.qubits[0]
            fx[:, q], fz[:, q] = fz[:, q].copy(), fx[:, q].copy()
        elif gate in ("S", "SDG"):
            q = op.qubits[0]
            fz[:, q] ^= fx[:, q]
        elif gate == "RPRIME":
            q = op.qubits[0]
            fx[:, q] ^= fz[:, q]
        elif gate in ("I", "X", "Y", "Z"):
            pass  # Paulis commute with the frame up to sign.
        elif gate == "CNOT":
            c, t = op.qubits
            fx[:, t] ^= fx[:, c]
            fz[:, c] ^= fz[:, t]
        elif gate == "CZ":
            a, b = op.qubits
            fz[:, b] ^= fx[:, a]
            fz[:, a] ^= fx[:, b]
        elif gate == "CY":
            # Conjugation table: X_c -> X_c Y_t, Z_c -> Z_c,
            # X_t -> Z_c X_t, Z_t -> Z_c Z_t.
            c, t = op.qubits
            fz[:, c] ^= fx[:, t] ^ fz[:, t]
            fx[:, t] ^= fx[:, c]
            fz[:, t] ^= fx[:, c]
        elif gate == "SWAP":
            a, b = op.qubits
            fx[:, a], fx[:, b] = fx[:, b].copy(), fx[:, a].copy()
            fz[:, a], fz[:, b] = fz[:, b].copy(), fz[:, a].copy()
        else:  # pragma: no cover - guarded in __init__
            raise ValueError(f"unhandled gate {gate}")

        if len(op.qubits) == 1 and noise.eps_gate1 > 0:
            _depolarize(fx, fz, op.qubits[0], noise.eps_gate1, rng)
        elif len(op.qubits) == 2 and noise.eps_gate2 > 0:
            _two_qubit_error(fx, fz, op.qubits, noise, rng)


def _inject(fx: np.ndarray, fz: np.ndarray, shot: int, qubit: int, kind: str) -> None:
    if kind in ("X", "Y"):
        fx[shot, qubit] ^= 1
    if kind in ("Z", "Y"):
        fz[shot, qubit] ^= 1
    if kind not in ("X", "Y", "Z"):
        raise ValueError(f"unknown fault kind {kind!r}")


def _apply_depolarizing_kinds(
    fx: np.ndarray, fz: np.ndarray, hit: np.ndarray, kind: np.ndarray
) -> None:
    """XOR uniform-X/Y/Z hits into frame slices (kind 0: X, 1: Y, 2: Z).

    The single home of the kind convention for the legacy engine; ``fx``
    and ``fz`` may be full ``(shots, n)`` frames or single-qubit column
    views, matching ``hit``/``kind``'s shape.
    """
    fx ^= (hit & (kind != 2)).astype(np.uint8)
    fz ^= (hit & (kind != 0)).astype(np.uint8)


def _depolarize(
    fx: np.ndarray,
    fz: np.ndarray,
    qubit: int,
    eps: float,
    rng: np.random.Generator,
    where: np.ndarray | None = None,
) -> None:
    """Apply X/Y/Z each with probability eps/3 to one qubit, batched.

    ``where`` optionally restricts injection to a subset of shots (used for
    conditionally executed gates).
    """
    shots = fx.shape[0]
    u = rng.random(shots)
    hit = u < eps
    if where is not None:
        hit &= where
    if not hit.any():
        return
    kind = rng.integers(0, 3, size=shots)  # 0: X, 1: Y, 2: Z
    _apply_depolarizing_kinds(fx[:, qubit], fz[:, qubit], hit, kind)


def _two_qubit_error(
    fx: np.ndarray,
    fz: np.ndarray,
    qubits: tuple[int, ...],
    noise: NoiseModel,
    rng: np.random.Generator,
) -> None:
    shots = fx.shape[0]
    hit = rng.random(shots) < noise.eps_gate2
    if not hit.any():
        return
    if noise.two_qubit_mode == "both_damaged":
        # §5's pessimistic model: each touched qubit gets a uniform X/Y/Z.
        for q in qubits:
            kind = rng.integers(0, 3, size=shots)
            fx[:, q] ^= (hit & (kind != 2)).astype(np.uint8)
            fz[:, q] ^= (hit & (kind != 0)).astype(np.uint8)
    else:  # depolarizing15: uniform over the 15 nontrivial pair Paulis
        pair = rng.integers(1, 16, size=shots)
        a, b = qubits
        ax = (pair >> 3) & 1
        az = (pair >> 2) & 1
        bx = (pair >> 1) & 1
        bz = pair & 1
        fx[:, a] ^= (hit & (ax == 1)).astype(np.uint8)
        fz[:, a] ^= (hit & (az == 1)).astype(np.uint8)
        fx[:, b] ^= (hit & (bx == 1)).astype(np.uint8)
        fz[:, b] ^= (hit & (bz == 1)).astype(np.uint8)
