"""Bit-packing helpers for the compiled Pauli-frame engine.

Packed layout: one frame bit-plane per qubit, shots along the bit axis of
``uint64`` words — array shape ``(rows, words)`` with ``words =
ceil(shots / 64)`` and shot ``s`` living in bit ``s % 64`` of word
``s // 64`` (little-endian within the word).  Every XOR between two planes
then updates 64 Monte-Carlo shots per machine word, which is what makes
Stim-style frame simulation fast.

The unpacked convention used everywhere else in the library is
``(shots, rows)`` uint8; :func:`pack_shot_major` / :func:`unpack_shot_major`
convert between the two.
"""

from __future__ import annotations

import sys

import numpy as np

__all__ = [
    "WORD_BITS",
    "words_for",
    "pack_rows",
    "unpack_rows",
    "pack_shot_major",
    "unpack_shot_major",
]

if sys.byteorder != "little":  # pragma: no cover - x86/arm are little-endian
    raise ImportError(
        "the packed frame engine relies on little-endian uint8->uint64 views"
    )

WORD_BITS = 64


def words_for(shots: int) -> int:
    """Number of uint64 words needed to hold ``shots`` bits."""
    return (int(shots) + WORD_BITS - 1) // WORD_BITS


def pack_rows(bits: np.ndarray) -> np.ndarray:
    """Pack ``(rows, shots)`` {0,1} values into ``(rows, words)`` uint64."""
    arr = np.ascontiguousarray(np.asarray(bits, dtype=np.uint8) & 1)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-d bit matrix, got shape {arr.shape}")
    nwords = words_for(arr.shape[1])
    packed = np.packbits(arr, axis=1, bitorder="little")
    if packed.shape[1] != nwords * 8:
        packed = np.pad(packed, ((0, 0), (0, nwords * 8 - packed.shape[1])))
    return np.ascontiguousarray(packed).view(np.uint64)


def unpack_rows(planes: np.ndarray, shots: int) -> np.ndarray:
    """Unpack ``(rows, words)`` uint64 planes into ``(rows, shots)`` uint8."""
    planes = np.ascontiguousarray(planes)
    as_bytes = planes.view(np.uint8).reshape(planes.shape[0], -1)
    return np.unpackbits(as_bytes, axis=1, count=int(shots), bitorder="little")


def pack_shot_major(arr: np.ndarray) -> np.ndarray:
    """``(shots, rows)`` uint8 (the library convention) -> packed planes."""
    return pack_rows(np.asarray(arr).T)


def unpack_shot_major(planes: np.ndarray, shots: int) -> np.ndarray:
    """Packed planes -> ``(shots, rows)`` uint8 (the library convention)."""
    return np.ascontiguousarray(unpack_rows(planes, shots).T)


