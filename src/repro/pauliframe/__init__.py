"""Vectorized Pauli-frame Monte Carlo engine (the threshold workhorse).

Fault-tolerant circuits in this paper are Clifford circuits, so an error
history is fully described by a Pauli *frame* — which X and Z errors are
currently attached to each qubit relative to the noiseless reference run.
Frames propagate through Clifford gates linearly and can be simulated for
many shots at once; the default execution path compiles the circuit to a
fused instruction stream over **bit-packed** frames (shots along the bit
axis of ``uint64`` words), the same trick modern tools like Stim use,
implemented here from scratch on NumPy.  ``FrameSimulator`` with
``backend="legacy"`` keeps the original per-operation interpreter as the
executable reference semantics.
"""

from repro.pauliframe.compiled import CompiledFrameProgram
from repro.pauliframe.engine import FrameResult, FrameSimulator, validate_frame_circuit
from repro.pauliframe.packing import (
    pack_rows,
    pack_shot_major,
    unpack_rows,
    unpack_shot_major,
    words_for,
)

__all__ = [
    "CompiledFrameProgram",
    "FrameResult",
    "FrameSimulator",
    "validate_frame_circuit",
    "pack_rows",
    "unpack_rows",
    "pack_shot_major",
    "unpack_shot_major",
    "words_for",
]
