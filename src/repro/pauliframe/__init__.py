"""Vectorized Pauli-frame Monte Carlo engine (the threshold workhorse).

Fault-tolerant circuits in this paper are Clifford circuits, so an error
history is fully described by a Pauli *frame* — which X and Z errors are
currently attached to each qubit relative to the noiseless reference run.
Frames propagate through Clifford gates linearly and can be simulated for
many shots at once as boolean matrices; this is how laptop-scale threshold
Monte Carlo becomes feasible (the same trick modern tools like Stim use,
implemented here from scratch on NumPy).
"""

from repro.pauliframe.engine import FrameResult, FrameSimulator

__all__ = ["FrameResult", "FrameSimulator"]
