"""Systematic (coherent) vs random errors (paper §6, first bullet).

"Errors that have random phases accumulate like a random walk, so that the
probability of error accumulates roughly linearly with the number of gates
applied.  But if the errors have systematic phases, then the error
*amplitude* can increase linearly with the number of gates applied."

We model each gate as carrying a small over-rotation exp(-i θ X / 2).
After N gates:

* systematic (all rotations share the sign): total angle Nθ, failure
  probability sin²(Nθ/2) ≈ (Nθ/2)² — quadratic in N;
* random sign per gate: the accumulated angle performs a random walk with
  variance Nθ², failure probability ≈ N θ²/4 — linear in N.

Hence the threshold for maximally conspiratorial systematic errors is of
order ε₀² when the random-error threshold is ε₀.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import as_rng

__all__ = [
    "coherent_overrotation_error",
    "random_phase_walk_error",
    "simulate_rotation_walk",
    "systematic_threshold_penalty",
]


def coherent_overrotation_error(theta: float, n_gates: int) -> float:
    """Exact failure probability after ``n_gates`` identical over-rotations
    by ``theta``: sin²(N·θ/2)."""
    if n_gates < 0:
        raise ValueError("n_gates must be non-negative")
    return float(np.sin(n_gates * theta / 2.0) ** 2)


def random_phase_walk_error(theta: float, n_gates: int) -> float:
    """Expected failure probability when each gate over-rotates by ±theta
    with random sign: E[sin²(S/2)] where S is the walk sum.

    Uses the exact identity E[sin²(S/2)] = (1 − E[cos S])/2 with
    E[cos S] = cos(θ)^N for i.i.d. ± steps.
    """
    if n_gates < 0:
        raise ValueError("n_gates must be non-negative")
    return float((1.0 - np.cos(theta) ** n_gates) / 2.0)


def simulate_rotation_walk(
    theta: float,
    n_gates: int,
    trials: int,
    systematic: bool,
    seed: int | np.random.Generator | None = None,
) -> float:
    """Monte Carlo of the amplitude accumulation, averaging sin²(S/2).

    With ``systematic=True`` all signs are +1 (returns the deterministic
    value up to no sampling error); with ``False`` signs are ±1 uniform.
    """
    rng = as_rng(seed)
    if systematic:
        total = np.full(trials, n_gates * theta)
    else:
        signs = rng.choice(np.array([-1.0, 1.0]), size=(trials, n_gates))
        total = signs.sum(axis=1) * theta
    return float(np.mean(np.sin(total / 2.0) ** 2))


def systematic_threshold_penalty(eps0: float) -> float:
    """§6: if the random-error threshold is ε₀, the threshold for maximally
    conspiratorial systematic errors is of order ε₀²."""
    if not 0.0 <= eps0 <= 1.0:
        raise ValueError("eps0 must be a probability")
    return eps0 * eps0
