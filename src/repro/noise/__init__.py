"""Error models (paper §6).

The paper's quasi-realistic model: uncorrelated stochastic errors, equal
probabilities for bit flip / phase flip / both (depolarizing-like), per-gate
error ε_gate by gate type, storage error ε_store per qubit per time step,
multi-qubit gate faults damaging every qubit the gate touches, plus the two
extensions it analyzes separately — systematic (coherent) errors and leakage.
"""

from repro.noise.models import NoiseModel, CODE_CAPACITY, circuit_level
from repro.noise.coherent import (
    coherent_overrotation_error,
    random_phase_walk_error,
    systematic_threshold_penalty,
)
from repro.noise.leakage import LeakageModel

__all__ = [
    "NoiseModel",
    "CODE_CAPACITY",
    "circuit_level",
    "coherent_overrotation_error",
    "random_phase_walk_error",
    "systematic_threshold_penalty",
    "LeakageModel",
]
