"""Stochastic Pauli error models for circuit-level Monte Carlo.

The model follows §6 of the paper:

* **Random, uncorrelated errors** — every fault location draws an
  independent Pauli.
* **Equally likely X/Y/Z** — the depolarizing choice made in §5: "the three
  types of errors (bit flip, phase flip, both) are assumed to be equally
  likely", with total per-step probability ε.
* **Multi-qubit gates damage all their qubits** — the pessimistic assumption
  of §5: "a faulty XOR gate introduces errors in both the source qubit and
  the target qubit"; mode ``"both_damaged"`` draws an independent
  non-identity Pauli on *each* touched qubit, mode ``"depolarizing15"``
  draws one of the 15 nontrivial two-qubit Paulis uniformly.
* **Storage errors** — ε_store per resting qubit per TICK.
* **Faulty measurement and preparation** — outcome flips / wrong-state
  preparations with their own rates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["NoiseModel", "CODE_CAPACITY", "circuit_level"]


@dataclass(frozen=True)
class NoiseModel:
    """Per-location error probabilities.

    Attributes
    ----------
    eps_gate1: error probability per single-qubit gate application.
    eps_gate2: error probability per two-qubit gate application.
    eps_meas: probability a measurement outcome is recorded flipped.
    eps_prep: probability a reset/preparation yields the orthogonal state.
    eps_store: probability of a storage error per qubit per TICK.
    two_qubit_mode: ``"both_damaged"`` (paper's pessimistic assumption) or
        ``"depolarizing15"`` (uniform over the 15 nontrivial pair Paulis).
    """

    eps_gate1: float = 0.0
    eps_gate2: float = 0.0
    eps_meas: float = 0.0
    eps_prep: float = 0.0
    eps_store: float = 0.0
    two_qubit_mode: str = "both_damaged"

    def __post_init__(self) -> None:
        for name in ("eps_gate1", "eps_gate2", "eps_meas", "eps_prep", "eps_store"):
            val = getattr(self, name)
            if not 0.0 <= val <= 1.0:
                raise ValueError(f"{name}={val} is not a probability")
        if self.two_qubit_mode not in ("both_damaged", "depolarizing15"):
            raise ValueError(f"unknown two_qubit_mode {self.two_qubit_mode!r}")

    def scaled(self, factor: float) -> "NoiseModel":
        """All rates multiplied by ``factor`` (clipped to 1)."""
        return replace(
            self,
            eps_gate1=min(1.0, self.eps_gate1 * factor),
            eps_gate2=min(1.0, self.eps_gate2 * factor),
            eps_meas=min(1.0, self.eps_meas * factor),
            eps_prep=min(1.0, self.eps_prep * factor),
            eps_store=min(1.0, self.eps_store * factor),
        )

    @property
    def is_trivial(self) -> bool:
        return (
            self.eps_gate1 == 0
            and self.eps_gate2 == 0
            and self.eps_meas == 0
            and self.eps_prep == 0
            and self.eps_store == 0
        )


def CODE_CAPACITY(eps: float) -> NoiseModel:
    """Storage noise only — the §2 setting where encoding/recovery are
    flawless and each stored qubit errs with probability ε per step."""
    return NoiseModel(eps_store=eps)


def circuit_level(eps: float, storage_ratio: float = 1.0, meas_ratio: float = 1.0) -> NoiseModel:
    """The standard circuit-level model used for threshold estimation:
    every location (gates of both arities, measurement, preparation) fails
    at rate ε; storage at ``storage_ratio``·ε."""
    return NoiseModel(
        eps_gate1=eps,
        eps_gate2=eps,
        eps_meas=min(1.0, meas_ratio * eps),
        eps_prep=eps,
        eps_store=min(1.0, storage_ratio * eps),
    )
