"""Leakage errors and their detection (paper §6, last bullet; Fig. 15).

A leaked qubit has left its two-dimensional Hilbert space; gates acting on
it act trivially (the assumption of Fig. 15's caption).  We track a boolean
*leak flag* per qubit per shot, alongside the Pauli frame.  The Fig. 15
interrogation circuit — whose measurement yields 0 iff the data qubit has
leaked — lets the protocol discard the qubit and substitute a fresh |0>,
converting the leak into a located (erasure-like) Pauli error that ordinary
syndrome measurement then repairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import as_rng

__all__ = ["LeakageModel"]


@dataclass(frozen=True)
class LeakageModel:
    """Leakage rates.

    Attributes
    ----------
    p_leak:
        Probability per exposure (gate application or storage step) that an
        unleaked qubit leaks out of the computational space.
    p_detect_flip:
        Probability the Fig. 15 detector misreports (either direction) —
        the detector is built from the same noisy gates as everything else.
    """

    p_leak: float
    p_detect_flip: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_leak <= 1.0:
            raise ValueError("p_leak must be a probability")
        if not 0.0 <= self.p_detect_flip <= 1.0:
            raise ValueError("p_detect_flip must be a probability")

    # ------------------------------------------------------------------
    def expose(
        self, leaked: np.ndarray, steps: int, rng: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Evolve leak flags through ``steps`` exposures, in place.

        ``leaked`` is a boolean array of any shape; each unleaked entry
        leaks with probability ``p_leak`` per step (leaks are absorbing).
        """
        gen = as_rng(rng)
        for _ in range(steps):
            fresh = gen.random(leaked.shape) < self.p_leak
            leaked |= fresh
        return leaked

    def detect(
        self, leaked: np.ndarray, rng: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Fig. 15 detector output per qubit: 0 = "leak detected".

        Returns a uint8 array matching ``leaked``'s shape: the ideal
        response 1−leaked, XORed with detector noise.
        """
        gen = as_rng(rng)
        response = (~np.asarray(leaked, dtype=bool)).astype(np.uint8)
        if self.p_detect_flip > 0:
            response ^= (gen.random(response.shape) < self.p_detect_flip).astype(np.uint8)
        return response

    def replace_detected(
        self,
        leaked: np.ndarray,
        detections: np.ndarray,
        fx: np.ndarray,
        fz: np.ndarray,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Swap detected qubits for fresh |0>'s (§6: "we replace it with a
        fresh qubit in a standard state, say the state |0>").

        The replacement clears the leak flag and the Pauli frame on that
        qubit and leaves behind a *located* error: relative to the ideal
        codeword the fresh |0> is wrong in an unknown-but-positioned way,
        modeled as a uniformly random X/Z frame on that qubit (a fully
        dephased/erased qubit).  Returns the number of replacements per
        shot.
        """
        gen = as_rng(rng)
        flagged = np.asarray(detections, dtype=np.uint8) == 0
        replace = flagged & np.asarray(leaked, dtype=bool)
        false_alarm = flagged & ~np.asarray(leaked, dtype=bool)
        to_reset = replace | false_alarm
        leaked &= ~to_reset
        # Erasure: random Pauli relative to the code state at a known site.
        fx[to_reset] = gen.integers(0, 2, size=int(to_reset.sum()), dtype=np.uint8)
        fz[to_reset] = gen.integers(0, 2, size=int(to_reset.sum()), dtype=np.uint8)
        return to_reset.sum(axis=-1)
