"""CLI for the static-analysis pass.

Usage (from the repo root)::

    python -m repro.analysis                 # lint, reconcile with baseline
    python -m repro.analysis --strict        # also fail on stale baseline rows
    python -m repro.analysis --write-baseline
    python -m repro.analysis --list-rules
    python -m repro.analysis --verify-programs   # packed-program verifier
    python -m repro.analysis --verify-protocol   # scheduler protocol verifier
    python -m repro.analysis path/to/file.py --profile tests

Exit codes: 0 clean, 1 findings (or, under ``--strict``, stale baseline
entries), 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.diagnostics import iter_rules
from repro.analysis.linter import (
    BASELINE_NAME,
    lint_paths,
    load_baseline,
    write_baseline,
)


def _find_root(start: Path) -> Path:
    """Nearest ancestor that looks like the repo root (has src/repro);
    falls back to the package's own checkout layout."""
    for candidate in [start, *start.parents]:
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return Path(__file__).resolve().parents[3]


def _verify_shipped_programs() -> int:
    """Compile every shipped EC protocol's programs; the build-time
    verifier raises on any invalid stream, so success == all clean."""
    from repro.codes.shor9 import ShorNineCode
    from repro.codes.steane import SteaneCode
    from repro.ft.exrec import ShorECProtocol, SteaneECProtocol
    from repro.noise.models import circuit_level

    noise = circuit_level(1e-3)
    built = []
    SteaneECProtocol(noise)
    built.append("SteaneECProtocol(factory+extraction)")
    ShorECProtocol(SteaneCode(), noise)
    built.append("ShorECProtocol[Steane](factory+extraction)")
    ShorECProtocol(ShorNineCode(), noise)
    built.append("ShorECProtocol[Shor9](factory+extraction)")
    for name in built:
        print(f"verified: {name}")
    print(f"{len(built)} protocol program sets verified clean")
    return 0


def _verify_protocol(root: Path, explore_depth: int | None) -> int:
    """Static SQL conformance over the shipped scheduler plus a bounded
    exhaustive interleaving exploration of the declared protocol.

    Stdlib-only on purpose: CI runs this before installing anything.
    """
    from repro.analysis.explore import ModelConfig, explore
    from repro.analysis.protocheck import verify_scheduler_protocol
    from repro.analysis.protospec import TRANSITION_SPEC

    scheduler = root / "src" / "repro" / "threshold" / "scheduler.py"
    if not scheduler.is_file():
        print(f"error: {scheduler} not found", file=sys.stderr)
        return 2
    report = verify_scheduler_protocol(scheduler)
    for diag in report.diagnostics:
        print(diag.format())
    print(
        f"protocheck: {len(report.statements)} jobs-table statement(s) "
        f"checked against {len(TRANSITION_SPEC) + 1} declared rules, "
        f"{len(report.diagnostics)} finding(s)"
    )

    config = ModelConfig() if explore_depth is None else ModelConfig(max_steps=explore_depth)
    exploration = explore(config)
    for violation in exploration.violations:
        print(violation.format())
    print(
        f"explore: {config.claimants} claimants, depth {config.max_steps}: "
        f"{exploration.states} states, {exploration.transitions} transitions, "
        f"{len(exploration.violations)} violation(s)"
    )
    return 0 if report.ok and exploration.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files to lint (default: the whole repo layout)",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="repo root (default: auto-detected from cwd)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail (exit 1) on stale baseline entries",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file (default: <root>/{BASELINE_NAME})",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate the baseline from current findings and exit 0; "
        "entries new to the baseline require --reason",
    )
    parser.add_argument(
        "--reason", default=None, metavar="TEXT",
        help="justification recorded on entries new to the baseline "
        "(carried-forward entries keep their existing reasons)",
    )
    parser.add_argument(
        "--profile", choices=("auto", "src", "tools", "tests"), default="auto",
        help="rule profile (default: auto — tests/ relaxed, all else strict)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the RPL catalog and exit"
    )
    parser.add_argument(
        "--verify-programs", action="store_true",
        help="build every shipped protocol's compiled programs and run the "
        "packed-program verifier over them",
    )
    parser.add_argument(
        "--verify-protocol", action="store_true",
        help="check the scheduler's jobs-table SQL against the declared "
        "transition spec (protocheck) and exhaustively explore claimant "
        "interleavings (explore)",
    )
    parser.add_argument(
        "--explore-depth", type=int, default=None, metavar="K",
        help="schedule depth bound for --verify-protocol's explorer "
        "(default: the model's built-in bound)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.code}  [{rule.family:>11}]  {rule.summary}")
        return 0
    if args.verify_programs:
        return _verify_shipped_programs()

    root = (args.root or _find_root(Path.cwd())).resolve()
    if args.verify_protocol:
        return _verify_protocol(root, args.explore_depth)
    baseline_path = args.baseline if args.baseline is not None else root / BASELINE_NAME
    profile = None if args.profile == "auto" else args.profile
    try:
        report = lint_paths(
            root,
            paths=args.paths or None,
            baseline_path=baseline_path,
            profile_override=profile,
        )
    except (OSError, SyntaxError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        old = load_baseline(baseline_path)
        try:
            entries = write_baseline(
                baseline_path, report.findings, old, default_reason=args.reason
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {len(entries)} baseline entr(y/ies) to {baseline_path}")
        return 0

    if args.format == "json":
        print(
            json.dumps(
                {
                    "files": report.files,
                    "findings": [d.__dict__ for d in report.findings],
                    "baselined": len(report.baselined),
                    "suppressed": len(report.suppressed),
                    "stale_baseline": report.stale_baseline,
                },
                indent=1,
            )
        )
    else:
        for diag in report.findings:
            print(diag.format())
        summary = (
            f"{report.files} file(s): {len(report.findings)} finding(s), "
            f"{len(report.baselined)} baselined, "
            f"{len(report.suppressed)} suppressed"
        )
        if report.stale_baseline:
            summary += f", {len(report.stale_baseline)} stale baseline entr(y/ies)"
            for entry in report.stale_baseline:
                print(
                    f"stale baseline entry: {entry['path']}: {entry['rule']}: "
                    f"{entry['snippet']!r} no longer matches — run "
                    f"--write-baseline to drop it",
                    file=sys.stderr,
                )
        print(summary)

    if report.findings:
        return 1
    if args.strict and report.stale_baseline:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
