"""Driver for the AST linter: file collection, profiles, baseline.

Stdlib-``ast`` only — the pass must run in CI before anything heavier
than ``python`` itself is guaranteed, and it must never import the code
it lints (a module with a module-level ``default_rng()`` call would
otherwise draw entropy just to be inspected).

Profiles
--------
* ``"src"`` — the full rule catalog; applied to ``src/`` and
  ``examples/``.
* ``"tools"`` — ``scripts/``, ``benchmarks/``, and the repo-root driver
  scripts; currently the full catalog under its own name so tool-only
  relaxations have a home.
* ``"tests"`` — the RNG family only (RPL101–RPL104): tests legitimately
  poke pickling and concurrency internals, but a test drawing unseeded
  randomness is flaky *by construction* and may not land.

Baseline workflow
-----------------
``.analysis_baseline.json`` holds the findings the repo has explicitly
decided to live with, keyed by ``(path, rule, stripped source line)`` so
edits elsewhere in a file cannot resurrect or orphan an entry.  The
linter fails on any finding not in the baseline; ``--write-baseline``
regenerates the file from the current findings (carrying forward each
surviving entry's ``reason``).  CI pins the entry count, so the baseline
can only shrink — new code must be clean or carry an inline suppression
with a reason.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis import rules_concurrency, rules_pickle, rules_rng, rules_sql
from repro.analysis.diagnostics import Diagnostic, parse_suppressions

__all__ = [
    "BASELINE_NAME",
    "FileContext",
    "LintReport",
    "PROFILES",
    "collect_targets",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "write_baseline",
]

BASELINE_NAME = ".analysis_baseline.json"

_RULE_MODULES = (rules_rng, rules_pickle, rules_concurrency, rules_sql)

# Rule families active per profile.  ``None`` means "every rule".
# ``tools`` (scripts/, benchmarks/, the repo-root drivers) currently
# carries the full catalog like ``src`` — it exists as its own name so
# tool-only relaxations or additions have a home without touching the
# library profile.
PROFILES: dict[str, frozenset[str] | None] = {
    "src": None,
    "tools": None,
    "tests": frozenset({"RPL101", "RPL102", "RPL103", "RPL104"}),
}


@dataclass
class FileContext:
    """Everything a rule module needs about one file under analysis."""

    path: str  # repo-relative, what diagnostics report
    tree: ast.Module
    source: str
    lines: list[str]
    profile: str
    suppressions: dict[int, set[str]] = field(default_factory=dict)


@dataclass
class LintReport:
    """Outcome of a lint run after suppression + baseline filtering."""

    findings: list[Diagnostic]  # actionable (not suppressed, not baselined)
    baselined: list[Diagnostic]
    suppressed: list[Diagnostic]
    stale_baseline: list[dict]  # baseline entries matching nothing anymore
    files: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def lint_source(
    source: str, path: str = "<string>", profile: str = "src"
) -> list[Diagnostic]:
    """Lint one source blob; suppressed findings are flagged, not dropped."""
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; use one of {sorted(PROFILES)}")
    tree = ast.parse(source, filename=path)
    ctx = FileContext(
        path=path,
        tree=tree,
        source=source,
        lines=source.splitlines(),
        profile=profile,
        suppressions=parse_suppressions(source),
    )
    active = PROFILES[profile]
    diags: list[Diagnostic] = []
    for module in _RULE_MODULES:
        for diag in module.check(ctx):
            if active is not None and diag.rule not in active:
                continue
            covered = ctx.suppressions.get(diag.line, set())
            if diag.rule in covered or "*" in covered:
                diag.suppressed = True
            diags.append(diag)
    diags.sort(key=lambda d: (d.line, d.rule))
    return diags


def collect_targets(root: Path) -> list[tuple[Path, str]]:
    """(file, profile) pairs for the repo layout this project uses."""
    root = Path(root)
    targets: list[tuple[Path, str]] = []
    for base, profile in (
        ("src", "src"),
        ("scripts", "tools"),
        ("benchmarks", "tools"),
        ("examples", "src"),
        ("tests", "tests"),
    ):
        directory = root / base
        if directory.is_dir():
            targets.extend(
                (path, profile) for path in sorted(directory.rglob("*.py"))
            )
    for name in ("scripts_run_full.py", "setup.py"):
        path = root / name
        if path.is_file():
            targets.append((path, "tools"))
    return targets


# ----------------------------------------------------------------------
# Baseline.
# ----------------------------------------------------------------------
def load_baseline(path: Path) -> list[dict]:
    """Entries of the committed baseline (empty when the file is absent)."""
    path = Path(path)
    if not path.is_file():
        return []
    data = json.loads(path.read_text())
    entries = data.get("entries", [])
    for entry in entries:
        for key in ("path", "rule", "snippet"):
            if key not in entry:
                raise ValueError(
                    f"baseline entry {entry!r} lacks required key {key!r}"
                )
    return entries


def write_baseline(
    path: Path,
    diags: Iterable[Diagnostic],
    old: list[dict],
    default_reason: str | None = None,
) -> list[dict]:
    """Regenerate the baseline from current findings, carrying forward the
    ``reason`` of every entry that still matches.

    Entries *new* to the baseline need a justification: ``default_reason``
    is recorded for them, and when it is ``None`` the write is refused
    (``ValueError`` listing the unjustified entries).  A baseline row
    without a reason reads like a bare ``except`` — and the old behavior
    of stamping a literal "TODO: justify or fix" just committed the TODO
    forever.
    """
    reasons = {(e["path"], e["rule"], e["snippet"]): e.get("reason", "") for e in old}
    diags = list(diags)
    new = [d for d in diags if d.key() not in reasons]
    if new and default_reason is None:
        listing = "\n".join(f"  {d.path}:{d.line}: {d.rule}: {d.snippet!r}" for d in new)
        raise ValueError(
            f"{len(new)} new baseline entr(y/ies) lack a justification:\n"
            f"{listing}\n"
            f"pass a reason (CLI: --reason TEXT) or fix/suppress the "
            f"finding(s) instead — baselines only carry explained debt"
        )
    entries = [
        {
            "path": d.path,
            "rule": d.rule,
            "line": d.line,
            "snippet": d.snippet,
            "reason": reasons.get(d.key(), default_reason),
        }
        for d in diags
    ]
    payload = {
        "comment": (
            "Findings the repo explicitly lives with; matched on "
            "(path, rule, snippet), not line numbers.  May only shrink — "
            "CI pins the entry count.  See ANALYSIS.md."
        ),
        "entries": entries,
    }
    Path(path).write_text(json.dumps(payload, indent=1) + "\n")
    return entries


def lint_paths(
    root: Path,
    paths: list[Path] | None = None,
    baseline_path: Path | None = None,
    profile_override: str | None = None,
) -> LintReport:
    """Lint the repo (or explicit ``paths``) and reconcile with the baseline."""
    root = Path(root)
    if paths:
        targets = [
            (p, profile_override or _infer_profile(root, p)) for p in paths
        ]
    else:
        targets = collect_targets(root)
        if profile_override is not None:
            targets = [(p, profile_override) for p, _ in targets]
    all_diags: list[Diagnostic] = []
    for path, profile in targets:
        try:
            rel = str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            rel = str(path)
        all_diags.extend(lint_source(path.read_text(), rel, profile))

    baseline = load_baseline(
        baseline_path if baseline_path is not None else root / BASELINE_NAME
    )
    baseline_keys = {(e["path"], e["rule"], e["snippet"]) for e in baseline}
    matched_keys: set[tuple] = set()
    findings: list[Diagnostic] = []
    baselined: list[Diagnostic] = []
    suppressed: list[Diagnostic] = []
    for diag in all_diags:
        if diag.suppressed:
            suppressed.append(diag)
        elif diag.key() in baseline_keys:
            matched_keys.add(diag.key())
            baselined.append(diag)
        else:
            findings.append(diag)
    stale = [
        e
        for e in baseline
        if (e["path"], e["rule"], e["snippet"]) not in matched_keys
    ]
    return LintReport(
        findings=findings,
        baselined=baselined,
        suppressed=suppressed,
        stale_baseline=stale,
        files=len(targets),
    )


def _infer_profile(root: Path, path: Path) -> str:
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        return "src"
    if rel.parts and rel.parts[0] == "tests":
        return "tests"
    if rel.parts and rel.parts[0] in ("scripts", "benchmarks"):
        return "tools"
    if len(rel.parts) == 1 and rel.parts[0] in ("scripts_run_full.py", "setup.py"):
        return "tools"
    return "src"
