"""SQL-assembly rule (RPL308).

The protocol checker (``repro.analysis.protocheck``) can only verify SQL
it can *see*: static string literals (including implicit and constant
``+`` concatenation).  SQL assembled at runtime — f-strings, ``%``
formatting, ``.format()``, ``sql += " WHERE ..."`` accumulation, or
concatenation with a non-constant — is invisible to the conformance
pass, so a future transition could ship inside a built string and never
be checked.  RPL308 flags every such assembly site; the fix is one
static statement per shape (branch in Python, not in the string).

Precision: a keyword match alone is not enough — error messages and
docstrings legitimately *talk about* SQL ("expected = after SET
column").  The rule therefore only fires where the dynamic string is in
a SQL position: passed to an ``execute*`` call, or bound to a variable
whose name says SQL (``sql``/``query``/``stmt``) or that elsewhere holds
a constant SQL string.

``PRAGMA`` statements are deliberately out of scope: the schema-version
pragmas interpolate a module constant, take no user data, and cannot
express a jobs-table transition.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic

__all__ = ["check"]

# Uppercase-keyword match: the repo writes SQL keywords uppercase, and a
# case-insensitive match would fire on ordinary prose ("set", "from").
# PRAGMA is intentionally absent (see module docstring).
_SQL_KEYWORD_RE = re.compile(
    r"\b(?:SELECT|INSERT|UPDATE|DELETE|REPLACE|CREATE|DROP|ALTER|FROM|WHERE|VALUES|SET)\b"
)

# Variable names that declare SQL intent on their own.
_SQL_NAME_RE = re.compile(r"sql|query|stmt", re.IGNORECASE)


def _looks_like_sql(text: str) -> bool:
    return _SQL_KEYWORD_RE.search(text) is not None


def _constant_str_parts(node: ast.AST) -> list[str]:
    return [
        sub.value
        for sub in ast.walk(node)
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str)
    ]


def _fold_constants(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _fold_constants(node.left)
        right = _fold_constants(node.right)
        if left is not None and right is not None:
            return left + right
    return None


def _dynamic_sql_reason(node: ast.AST) -> str | None:
    """How ``node`` assembles SQL at runtime, or None if it does not."""
    if isinstance(node, ast.JoinedStr):
        has_values = any(isinstance(p, ast.FormattedValue) for p in node.values)
        if has_values and any(_looks_like_sql(p) for p in _constant_str_parts(node)):
            return "f-string"
        return None
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Add):
            if _fold_constants(node) is None and any(
                _looks_like_sql(p) for p in _constant_str_parts(node)
            ):
                return "+ concatenation with a non-constant"
        elif isinstance(node.op, ast.Mod):
            if (
                isinstance(node.left, ast.Constant)
                and isinstance(node.left.value, str)
                and _looks_like_sql(node.left.value)
            ):
                return "% formatting"
        return None
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "format"
        and isinstance(node.func.value, ast.Constant)
        and isinstance(node.func.value.value, str)
        and _looks_like_sql(node.func.value.value)
    ):
        return ".format() call"
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, ctx) -> None:
        self.ctx = ctx
        self.diags: list[Diagnostic] = []
        self._reported: set[int] = set()
        # Names bound (anywhere in the file) to a constant SQL string;
        # `sql += ...` on one of these is dynamic assembly even when the
        # name itself is bland.
        self.sql_names: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                folded = _fold_constants(node.value)
                if folded is not None and _looks_like_sql(folded):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.sql_names.add(target.id)

    def _emit(self, node: ast.AST, how: str) -> None:
        if id(node) in self._reported:
            return
        self._reported.add(id(node))
        line = (
            self.ctx.lines[node.lineno - 1].strip()
            if node.lineno <= len(self.ctx.lines)
            else ""
        )
        self.diags.append(
            Diagnostic(
                rule="RPL308",
                path=self.ctx.path,
                line=node.lineno,
                message=(
                    f"SQL assembled at runtime ({how}) — built statements are "
                    "invisible to the protocol checker (protocheck); use one "
                    "static statement per shape and branch in Python"
                ),
                snippet=line,
            )
        )

    def _is_sql_binding(self, name: str) -> bool:
        return name in self.sql_names or _SQL_NAME_RE.search(name) is not None

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) and node.func.attr.startswith(
            "execute"
        ):
            for arg in node.args:
                reason = _dynamic_sql_reason(arg)
                if reason is not None:
                    self._emit(arg, reason)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if any(
            isinstance(t, ast.Name) and self._is_sql_binding(t.id)
            for t in node.targets
        ):
            reason = _dynamic_sql_reason(node.value)
            if reason is not None:
                self._emit(node.value, reason)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (
            node.value is not None
            and isinstance(node.target, ast.Name)
            and self._is_sql_binding(node.target.id)
        ):
            reason = _dynamic_sql_reason(node.value)
            if reason is not None:
                self._emit(node.value, reason)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, ast.Add):
            target_is_sql = isinstance(
                node.target, ast.Name
            ) and self._is_sql_binding(node.target.id)
            value = _fold_constants(node.value)
            value_is_sql = value is not None and _looks_like_sql(value)
            if (target_is_sql and value is not None) or value_is_sql:
                self._emit(node, "augmented assignment (sql += ...)")
                return
        self.generic_visit(node)


def check(ctx) -> Iterator[Diagnostic]:
    visitor = _Visitor(ctx)
    visitor.visit(ctx.tree)
    yield from visitor.diags
