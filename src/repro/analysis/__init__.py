"""In-repo static analysis: the determinism/picklability/concurrency
linter, the packed-program verifier, and the scheduler protocol verifier.

Four entry points:

* :func:`repro.analysis.linter.lint_paths` / ``python -m repro.analysis``
  — the AST linter (``RPL###`` rule catalog, per-line suppressions,
  committed baseline); stdlib-``ast`` only and never imports the code it
  lints.
* :func:`repro.analysis.progcheck.verify_program` — the packed-program
  verifier :class:`repro.pauliframe.compiled.CompiledFrameProgram` runs
  over its own instruction stream at build time (opcode validity,
  operand bounds, fused-batch aliasing, noise-plane budgets,
  probability ranges).
* :func:`repro.analysis.protocheck.verify_scheduler_protocol` /
  ``python -m repro.analysis --verify-protocol`` — static SQL
  conformance of the scheduler's jobs-table DML against the declared
  transition spec (``repro.analysis.protospec``), emitting ``RPL4xx``
  diagnostics.
* :func:`repro.analysis.explore.explore` — bounded exhaustive
  interleaving exploration of the lease protocol (model claimants whose
  atomic steps mirror the real transactions), with minimal
  counterexample traces for any safety-invariant violation.

See ``ANALYSIS.md`` at the repo root for the rule catalog, suppression
syntax, and the baseline workflow; ``SCHEDULER.md`` embeds the declared
transition diagram.

``progcheck`` names are re-exported lazily so importing the linter (CI,
pre-commit) never pulls numpy or the simulation engine; the protocol
names are lazy only to keep the linter's import footprint minimal (they
are stdlib-clean too).
"""

from __future__ import annotations

from repro.analysis.diagnostics import RULES, Diagnostic, Rule, iter_rules
from repro.analysis.linter import (
    BASELINE_NAME,
    LintReport,
    collect_targets,
    lint_paths,
    lint_source,
)

__all__ = [
    "BASELINE_NAME",
    "Diagnostic",
    "LintReport",
    "RULES",
    "Rule",
    "collect_targets",
    "iter_rules",
    "lint_paths",
    "lint_source",
    # lazily re-exported from repro.analysis.progcheck:
    "BadOpcode",
    "BufferAliasError",
    "NoiseRangeError",
    "OperandRangeError",
    "ProgramVerificationError",
    "verify_program",
    # lazily re-exported from repro.analysis.protocheck / .explore
    # (the explore() function itself is imported from its submodule —
    # the bare name would clash with the submodule attribute):
    "ExplorationReport",
    "ModelConfig",
    "ProtocolReport",
    "check_source",
    "verify_scheduler_protocol",
]

_PROGCHECK_NAMES = {
    "BadOpcode",
    "BufferAliasError",
    "NoiseRangeError",
    "OperandRangeError",
    "ProgramVerificationError",
    "verify_program",
}

_PROTOCHECK_NAMES = {
    "ProtocolReport",
    "check_source",
    "verify_scheduler_protocol",
}

_EXPLORE_NAMES = {
    "ExplorationReport",
    "ModelConfig",
}


def __getattr__(name: str):
    if name in _PROGCHECK_NAMES:
        from repro.analysis import progcheck

        return getattr(progcheck, name)
    if name in _PROTOCHECK_NAMES:
        from repro.analysis import protocheck

        return getattr(protocheck, name)
    if name in _EXPLORE_NAMES:
        from repro.analysis import explore

        return getattr(explore, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
