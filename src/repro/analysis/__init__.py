"""In-repo static analysis: the determinism/picklability/concurrency
linter and the packed-program verifier.

Two entry points:

* :func:`repro.analysis.linter.lint_paths` / ``python -m repro.analysis``
  — the AST linter (``RPL###`` rule catalog, per-line suppressions,
  committed baseline); stdlib-``ast`` only and never imports the code it
  lints.
* :func:`repro.analysis.progcheck.verify_program` — the packed-program
  verifier :class:`repro.pauliframe.compiled.CompiledFrameProgram` runs
  over its own instruction stream at build time (opcode validity,
  operand bounds, fused-batch aliasing, noise-plane budgets,
  probability ranges).

See ``ANALYSIS.md`` at the repo root for the rule catalog, suppression
syntax, and the baseline workflow.

``progcheck`` names are re-exported lazily so importing the linter (CI,
pre-commit) never pulls numpy or the simulation engine.
"""

from __future__ import annotations

from repro.analysis.diagnostics import RULES, Diagnostic, Rule, iter_rules
from repro.analysis.linter import (
    BASELINE_NAME,
    LintReport,
    collect_targets,
    lint_paths,
    lint_source,
)

__all__ = [
    "BASELINE_NAME",
    "Diagnostic",
    "LintReport",
    "RULES",
    "Rule",
    "collect_targets",
    "iter_rules",
    "lint_paths",
    "lint_source",
    # lazily re-exported from repro.analysis.progcheck:
    "BadOpcode",
    "BufferAliasError",
    "NoiseRangeError",
    "OperandRangeError",
    "ProgramVerificationError",
    "verify_program",
]

_PROGCHECK_NAMES = {
    "BadOpcode",
    "BufferAliasError",
    "NoiseRangeError",
    "OperandRangeError",
    "ProgramVerificationError",
    "verify_program",
}


def __getattr__(name: str):
    if name in _PROGCHECK_NAMES:
        from repro.analysis import progcheck

        return getattr(progcheck, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
