"""RNG-discipline rules (RPL1xx).

The determinism contract (see ``repro.threshold.sharded``): every draw
comes from a seeded :class:`numpy.random.Generator`, independent streams
come only from ``SeedSequence.spawn``, and nothing touches process-global
RNG state.  These rules make the contract machine-checked:

* RPL101 — legacy global ``np.random.*`` calls (``seed``, ``rand``, ...)
  mutate or read the hidden global ``RandomState``; one call anywhere
  de-synchronizes every shard that shares the process.
* RPL102 — ``default_rng()`` with no/``None`` seed draws OS entropy; the
  result can never be reproduced and its content-addressed run key never
  matches a previous run.  ``repro.util.rng`` is the one sanctioned
  funnel for deliberate OS entropy.
* RPL103 — ``seed + i`` / ``seed * k`` arithmetic feeding a generator
  recreates the PR 5 stream-collision bug (run ``s`` point ``i`` reused
  run ``s+1`` point ``i−1``); child streams come from ``spawn``.
* RPL104 — stdlib ``random`` is globally seeded and invisible to the
  numpy stream accounting.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic

__all__ = ["check"]

# Factories/types on np.random that do not touch the legacy global state.
_ALLOWED_NP_RANDOM_ATTRS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

# Callables that consume a seed / seed sequence; arithmetic inside their
# arguments is how stream collisions are born.
_SEED_CONSUMERS = {"default_rng", "SeedSequence", "as_rng"}

# Files allowed to call default_rng() unseeded: the sanctioned entropy
# funnel, matched on the trailing path segments.
_UNSEEDED_ALLOWED = ("repro/util/rng.py",)


def _attr_chain(node: ast.AST) -> list[str]:
    """``np.random.default_rng`` -> ["np", "random", "default_rng"]."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        return []
    return parts[::-1]


def _is_np_random(chain: list[str]) -> bool:
    return len(chain) >= 2 and chain[0] in ("np", "numpy") and chain[1] == "random"


def _names_a_seed(node: ast.AST) -> bool:
    """True for a Name/Attribute whose identifier smells like a seed."""
    if isinstance(node, ast.Name):
        return "seed" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "seed" in node.attr.lower()
    return False


def _seed_arithmetic(node: ast.AST) -> ast.BinOp | None:
    """First +/-/* BinOp in ``node``'s subtree with a seed-named operand."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.BinOp) and isinstance(
            sub.op, (ast.Add, ast.Sub, ast.Mult)
        ):
            if _names_a_seed(sub.left) or _names_a_seed(sub.right):
                return sub
    return None


def _snippet(ctx, node: ast.AST) -> str:
    line = getattr(node, "lineno", 0)
    if 1 <= line <= len(ctx.lines):
        return ctx.lines[line - 1].strip()
    return ""


def check(ctx) -> Iterator[Diagnostic]:
    for node in ast.walk(ctx.tree):
        # RPL104 — stdlib random.
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield Diagnostic(
                        "RPL104",
                        ctx.path,
                        node.lineno,
                        "stdlib 'random' is globally seeded; use a seeded "
                        "numpy Generator via repro.util.rng.as_rng",
                        _snippet(ctx, node),
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                yield Diagnostic(
                    "RPL104",
                    ctx.path,
                    node.lineno,
                    "stdlib 'random' is globally seeded; use a seeded "
                    "numpy Generator via repro.util.rng.as_rng",
                    _snippet(ctx, node),
                )
            elif node.module in ("numpy.random", "numpy"):
                for alias in node.names:
                    if (
                        node.module == "numpy.random"
                        and alias.name not in _ALLOWED_NP_RANDOM_ATTRS
                    ):
                        yield Diagnostic(
                            "RPL101",
                            ctx.path,
                            node.lineno,
                            f"'from numpy.random import {alias.name}' pulls "
                            f"a legacy global-state RNG function",
                            _snippet(ctx, node),
                        )
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        # RPL101 — np.random.<legacy>() calls.
        if (
            _is_np_random(chain)
            and len(chain) == 3
            and chain[2] not in _ALLOWED_NP_RANDOM_ATTRS
        ):
            yield Diagnostic(
                "RPL101",
                ctx.path,
                node.lineno,
                f"np.random.{chain[2]}() uses the hidden global RandomState; "
                f"draw from a seeded Generator instead",
                _snippet(ctx, node),
            )
            continue
        callee = chain[-1] if chain else ""
        # RPL102 — unseeded default_rng().
        if callee == "default_rng" and (len(chain) == 1 or _is_np_random(chain)):
            unseeded = not node.args and not node.keywords
            if node.args and isinstance(node.args[0], ast.Constant):
                unseeded = unseeded or node.args[0].value is None
            if unseeded and not ctx.path.replace("\\", "/").endswith(
                _UNSEEDED_ALLOWED
            ):
                yield Diagnostic(
                    "RPL102",
                    ctx.path,
                    node.lineno,
                    "default_rng() without a seed draws OS entropy — the "
                    "run is irreproducible and its run key never matches; "
                    "pass a seed or SeedSequence",
                    _snippet(ctx, node),
                )
        # RPL103 — seed arithmetic feeding a generator.
        if callee in _SEED_CONSUMERS and (len(chain) == 1 or _is_np_random(chain)):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                bad = _seed_arithmetic(arg)
                if bad is not None:
                    yield Diagnostic(
                        "RPL103",
                        ctx.path,
                        bad.lineno,
                        f"seed arithmetic feeding {callee}() — derived "
                        f"streams collide across runs; spawn child streams "
                        f"via SeedSequence.spawn "
                        f"(repro.threshold.sharded.spawn_shard_seeds)",
                        _snippet(ctx, bad),
                    )
                    break
