"""Diagnostic model, rule catalog, and suppression parsing for the linter.

Every finding the static-analysis pass can emit is an ``RPL###`` rule
(Repro Project Lint) registered here, grouped into four families:

* ``RPL1xx`` — **RNG discipline.**  Threshold claims are only credible if
  every Monte Carlo sample is reproducible, which the repo enforces by
  funnelling all randomness through seeded ``numpy`` Generators and
  ``SeedSequence.spawn`` child streams (never ``seed + i`` arithmetic,
  never hidden global state).
* ``RPL2xx`` — **worker-boundary picklability.**  Everything the sharded
  driver ships to a spawn-context worker travels by pickle, and the
  result cache hashes those same pickle bytes into content-addressed run
  keys — so unpicklable payloads break workers and leaked scratch state
  breaks cache identity.
* ``RPL3xx`` — **concurrency / resource hygiene.**  Spawn-context pools,
  process-local sqlite handles, observable fault handling, and
  time-independent cache keys are the invariants PR 5–7 bled for.

The packed-program verifier (``repro.analysis.progcheck``) is the fourth
leg of the pass; it checks compiled instruction streams rather than
source text and therefore lives outside the rule registry.

Suppression syntax
------------------
A diagnostic is suppressed by a comment on the flagged line (or on a
comment-only line directly above it)::

    pool.shutdown(wait=False)  # repro: disable=RPL303 -- workers reaped below

Multiple rules separate with commas (``disable=RPL303,RPL304``); the
``-- reason`` tail is optional but expected — reviewers treat a bare
suppression like a bare ``except``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = [
    "Diagnostic",
    "RULES",
    "Rule",
    "iter_rules",
    "parse_suppressions",
]


@dataclass(frozen=True)
class Rule:
    """One entry of the RPL catalog."""

    code: str
    family: str
    summary: str


# The catalog.  Adding a rule means: register it here, implement it in the
# matching ``rules_*`` module, add a firing + quiet fixture pair to
# ``tests/test_analysis_linter.py``, and document it in ANALYSIS.md.
RULES: dict[str, Rule] = {
    rule.code: rule
    for rule in (
        # -- RNG discipline ------------------------------------------------
        Rule(
            "RPL101",
            "rng",
            "call to a legacy global numpy RNG function (np.random.seed/"
            "rand/...) — hidden global state breaks shard determinism",
        ),
        Rule(
            "RPL102",
            "rng",
            "unseeded default_rng() outside repro.util.rng — OS entropy "
            "makes the result irreproducible and its run key unmatchable",
        ),
        Rule(
            "RPL103",
            "rng",
            "seed arithmetic (seed + i / seed * k) feeding a generator — "
            "derived streams collide across runs; use SeedSequence.spawn",
        ),
        Rule(
            "RPL104",
            "rng",
            "stdlib random used — it is globally seeded and draws outside "
            "the numpy stream accounting",
        ),
        # -- worker-boundary picklability ----------------------------------
        Rule(
            "RPL201",
            "pickle",
            "class defines __slots__ but no __getstate__/__setstate__/"
            "__reduce__ — slots plus guards (immutability, properties) "
            "break the default pickle path at the worker boundary",
        ),
        Rule(
            "RPL202",
            "pickle",
            "lambda or nested function submitted to an executor — spawn "
            "workers pickle tasks by qualified name; only module-level "
            "callables survive the boundary",
        ),
        Rule(
            "RPL203",
            "pickle",
            "class accumulates scratch buffers (self._buffers/_scratch/"
            "_cache) without a __getstate__ excluding them — scratch leaks "
            "into worker payloads and content-addressed run keys",
        ),
        # -- concurrency / resource hygiene --------------------------------
        Rule(
            "RPL301",
            "concurrency",
            "class holds a sqlite3 connection but defines no __getstate__/"
            "__reduce__ — connections are process-local and must fail "
            "loudly, not pickle silently, at a process boundary",
        ),
        Rule(
            "RPL302",
            "concurrency",
            "process pool without an explicit spawn context — fork "
            "inherits locks, RNG state, and sqlite handles mid-flight",
        ),
        Rule(
            "RPL303",
            "concurrency",
            "shutdown(wait=False) — abandoned workers leak semaphore "
            "trackers unless something else reaps them (suppress with a "
            "reason where reaping is handled)",
        ),
        Rule(
            "RPL304",
            "concurrency",
            "except Exception/BaseException that silently swallows (body "
            "is only pass/continue/return) — faults must be narrowed, "
            "re-raised, or surfaced via warnings.warn",
        ),
        Rule(
            "RPL305",
            "concurrency",
            "wall-clock time (time.time/datetime.now) flowing into key/"
            "hash/fingerprint computation — cache keys must be "
            "time-independent to ever hit",
        ),
        Rule(
            "RPL306",
            "concurrency",
            "monotonic clock (time.monotonic/perf_counter) inside lease/"
            "heartbeat/claim/expire logic — process-local clocks cannot "
            "order lease deadlines across claimants; use time.time()",
        ),
        Rule(
            "RPL307",
            "concurrency",
            "UPDATE statement setting state='done' without a lease_owner "
            "guard — an unguarded terminal write lets a stale claimant "
            "clobber the result of the lease's current owner",
        ),
        # -- SQL visibility -------------------------------------------------
        Rule(
            "RPL308",
            "sql",
            "SQL assembled at runtime (f-string / % / .format / += / "
            "concatenation with a non-constant) — built statements are "
            "invisible to the protocol checker; use one static statement "
            "per shape",
        ),
        # -- scheduler protocol conformance (emitted by protocheck, not the
        # -- per-file lint; see ANALYSIS.md "The protocol verifier") --------
        Rule(
            "RPL401",
            "protocol",
            "jobs-table statement performs an undeclared transition or "
            "defects from its declared column shape — every write must "
            "match a TransitionRule in repro.analysis.protospec",
        ),
        Rule(
            "RPL402",
            "protocol",
            "owner-scoped write dropped the lease fence (WHERE "
            "lease_owner=?) — a stale claimant's write must lose, not "
            "clobber; semantic generalization of RPL307",
        ),
        Rule(
            "RPL403",
            "protocol",
            "identity columns written without recomputing the row checksum "
            "in the same statement — a later claim would verify stale bytes",
        ),
        Rule(
            "RPL404",
            "protocol",
            "fenced transition does not pin its declared source state "
            "(WHERE state='...') or pins the wrong one — a terminal write "
            "must be reachable only from its declared source",
        ),
        Rule(
            "RPL405",
            "protocol",
            "lease grant missing a required stamp (lease_owner / "
            "lease_expires_unix / heartbeat_unix / attempt charge) — an "
            "unstamped lease can never expire or be fenced",
        ),
        Rule(
            "RPL406",
            "protocol",
            "jobs-table SQL assembled dynamically or outside the verifiable "
            "mini-dialect — protocheck cannot prove what it executes",
        ),
        Rule(
            "RPL407",
            "protocol",
            "declared transition has no conforming statement — the "
            "implementation dropped (or defected from) a protocol edge",
        ),
    )
}


def iter_rules() -> list[Rule]:
    """Catalog in code order (the ANALYSIS.md table is generated by eye
    from this)."""
    return [RULES[code] for code in sorted(RULES)]


@dataclass
class Diagnostic:
    """One finding, addressable by (path, rule, snippet) for baselining.

    ``snippet`` is the stripped source line the finding anchors to; the
    baseline matches on it instead of the line number so unrelated edits
    above a baselined violation do not resurrect it.
    """

    rule: str
    path: str
    line: int
    message: str
    snippet: str = ""
    suppressed: bool = field(default=False, compare=False)

    def key(self) -> tuple[str, str, str]:
        return (self.path, self.rule, self.snippet)

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*disable=([A-Z0-9,\s]+?)(?:\s*--.*)?$"
)


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map of 1-based line number -> rule codes suppressed on that line.

    A suppression on a comment-only line also covers the next line, so a
    long statement can carry its suppression above itself.
    """
    suppressions: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
        suppressions.setdefault(lineno, set()).update(codes)
        if text.lstrip().startswith("#"):
            suppressions.setdefault(lineno + 1, set()).update(codes)
    return suppressions
