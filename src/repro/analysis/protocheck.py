"""Static SQL conformance: scheduler DML vs. the declared protocol.

The second verification leg of ``repro.analysis`` (the first is the
per-file AST lint, the third the packed-program verifier, the fourth the
interleaving explorer).  This module proves — statically, without
importing or executing the scheduler — that every ``UPDATE jobs`` /
``INSERT INTO jobs`` statement in ``src/repro/threshold/scheduler.py``
implements a transition declared in ``repro.analysis.protospec``:

* an AST extractor finds every jobs-table DML string, folding implicit
  and ``+``-concatenated literals, recording the enclosing method, and
  flagging SQL it cannot see through (f-strings, ``sql += ...``) as
  RPL406;
* ``repro.analysis.sqlmini`` parses each statement's SET/WHERE shape;
* the checker matches statements against the spec's rules, emitting
  typed ``RPL4xx`` diagnostics for every way an implementation can
  defect from the protocol (see the catalog in ``diagnostics.py`` and
  ANALYSIS.md).

There is **no suppression syntax** for protocol diagnostics: a statement
that genuinely needs a new shape gets a new declared rule in protospec,
reviewed as a protocol change — not a lint waiver.

Mutation tests (``tests/test_analysis_protocheck.py``) seed fence-drops,
rogue edges, checksum-skipping identity writes, wrong-source terminal
writes, stampless lease grants, and unfenced requeues into patched
copies of the real source and assert each is caught; the shipped file
verifies clean in CI (``python -m repro.analysis --verify-protocol``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.protospec import (
    BIRTH,
    BIRTH_STATES,
    CHECKSUM_COLUMN,
    IDENTITY_COLUMNS,
    JOB_STATES,
    TRANSITION_SPEC,
)
from repro.analysis.sqlmini import (
    InsertStatement,
    SqlParseError,
    UpdateStatement,
    parse_statement,
)

__all__ = [
    "ExtractedSql",
    "ProtocolReport",
    "check_source",
    "extract_jobs_dml",
    "verify_scheduler_protocol",
]

# A statement that *starts* as jobs DML is checked; a fragment that
# merely mentions jobs DML mid-string (f-string piece, concat operand)
# marks dynamic assembly the checker cannot see through.
_JOBS_DML_RE = re.compile(r"^\s*(?:UPDATE|INSERT\s+INTO)\s+jobs\b", re.IGNORECASE)
_JOBS_FRAGMENT_RE = re.compile(r"(?:UPDATE|INSERT\s+INTO)\s+jobs\b", re.IGNORECASE)


@dataclass(frozen=True)
class ExtractedSql:
    """One jobs-table DML statement recovered from the source."""

    sql: str
    line: int
    method: str  # innermost enclosing function that is not a txn closure


@dataclass
class ProtocolReport:
    """Outcome of one conformance run over one source file."""

    path: str
    statements: tuple = ()
    diagnostics: list = field(default_factory=list)
    matched_rules: frozenset = frozenset()

    @property
    def ok(self) -> bool:
        return not self.diagnostics


# Local transaction closures (`def _txn()`) are an implementation detail
# of the scheduler's lock-retry wrapper; the protocol binds rules to the
# *method* that owns the transaction.
_TXN_NAMES = frozenset({"_txn", "_retry", "_body"})


class _SqlExtractor(ast.NodeVisitor):
    def __init__(self, path: str, lines: list) -> None:
        self.path = path
        self.lines = lines
        self.statements: list = []
        self.diagnostics: list = []
        self._func_stack: list = []
        self._consumed: set = set()  # Constant node ids folded into a BinOp
        self._sql_names: set = set()  # names bound to jobs-DML strings

    # -- helpers -------------------------------------------------------

    def _method(self) -> str:
        for name in reversed(self._func_stack):
            if name not in _TXN_NAMES:
                return name
        return self._func_stack[-1] if self._func_stack else "<module>"

    def _snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def _dynamic(self, node: ast.AST, how: str) -> None:
        self.diagnostics.append(
            Diagnostic(
                rule="RPL406",
                path=self.path,
                line=node.lineno,
                message=(
                    f"jobs-table SQL assembled dynamically ({how}) in "
                    f"{self._method()}() — protocheck cannot verify what it "
                    "executes; use a static statement per shape"
                ),
                snippet=self._snippet(node.lineno),
            )
        )

    @staticmethod
    def _fold(node: ast.AST):
        """Fold a Constant / BinOp(Add) tree of str constants, or None."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            left = _SqlExtractor._fold(node.left)
            right = _SqlExtractor._fold(node.right)
            if left is not None and right is not None:
                return left + right
        return None

    @staticmethod
    def _constant_parts(node: ast.AST) -> list:
        parts = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                parts.append(sub.value)
        return parts

    # -- visitors ------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Add):
            folded = self._fold(node)
            if folded is not None:
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Constant):
                        self._consumed.add(id(sub))
                if _JOBS_DML_RE.match(folded):
                    self.statements.append(
                        ExtractedSql(folded, node.lineno, self._method())
                    )
                return
            # Partially-constant concatenation: if any piece is jobs DML
            # the statement is invisible to the checker.
            if any(
                _JOBS_FRAGMENT_RE.search(part)
                for part in self._constant_parts(node)
            ):
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Constant):
                        self._consumed.add(id(sub))
                self._dynamic(node, "+ concatenation with a non-constant")
                return
        if isinstance(node.op, ast.Mod) and isinstance(node.left, ast.Constant):
            if isinstance(node.left.value, str) and _JOBS_FRAGMENT_RE.search(
                node.left.value
            ):
                self._consumed.add(id(node.left))
                self._dynamic(node, "% formatting")
                return
        self.generic_visit(node)

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        if any(_JOBS_FRAGMENT_RE.search(p) for p in self._constant_parts(node)):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Constant):
                    self._consumed.add(id(sub))
            self._dynamic(node, "f-string")
            return
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        folded = self._fold(node.value)
        if folded is not None and _JOBS_FRAGMENT_RE.search(folded):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._sql_names.add(target.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target_is_sql = (
            isinstance(node.target, ast.Name) and node.target.id in self._sql_names
        )
        value = self._fold(node.value)
        value_is_sql = value is not None and _JOBS_FRAGMENT_RE.search(value)
        if target_is_sql or value_is_sql:
            self._dynamic(node, "augmented assignment (sql += ...)")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "format"
            and isinstance(node.func.value, ast.Constant)
            and isinstance(node.func.value.value, str)
            and _JOBS_FRAGMENT_RE.search(node.func.value.value)
        ):
            self._consumed.add(id(node.func.value))
            self._dynamic(node, ".format() call")
            return
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        if (
            id(node) not in self._consumed
            and isinstance(node.value, str)
            and _JOBS_DML_RE.match(node.value)
        ):
            self.statements.append(
                ExtractedSql(node.value, node.lineno, self._method())
            )


def extract_jobs_dml(source: str, path: str):
    """All jobs-table DML statements plus RPL406 diagnostics."""
    tree = ast.parse(source, filename=path)
    extractor = _SqlExtractor(path, source.splitlines())
    extractor.visit(tree)
    return extractor.statements, extractor.diagnostics


# ---------------------------------------------------------------------------
# Conformance checking
# ---------------------------------------------------------------------------


def _diag(rule: str, stmt: ExtractedSql, path: str, message: str) -> Diagnostic:
    first_line = stmt.sql.strip().splitlines()[0][:80]
    return Diagnostic(
        rule=rule, path=path, line=stmt.line, message=message, snippet=first_line
    )


@dataclass
class _Mismatch:
    rule_code: str
    message: str


def _check_update_against(
    rule, stmt: ExtractedSql, parsed: UpdateStatement, rpl403: bool
) -> list:
    """All the ways this statement defects from one candidate rule."""
    mismatches: list = []
    set_cols = parsed.set_columns
    value_cols = {c for c in set_cols if c != "state"}

    if parsed.where_value("job_id") is None or not parsed.where_value("job_id").is_param:
        mismatches.append(
            _Mismatch(
                "RPL401",
                f"{rule.name} ({stmt.method}) must scope its UPDATE to a "
                "single row with WHERE job_id=?",
            )
        )

    if rule.fenced:
        owner = parsed.where_value("lease_owner")
        if owner is None or not owner.is_param:
            mismatches.append(
                _Mismatch(
                    "RPL402",
                    f"{rule.name} ({stmt.method}) dropped the owner fence: "
                    "WHERE must include lease_owner=? so a stale claimant's "
                    "write loses instead of clobbering the current owner",
                )
            )
        state_pin = parsed.where_value("state")
        if state_pin is None:
            mismatches.append(
                _Mismatch(
                    "RPL404",
                    f"{rule.name} ({stmt.method}) does not pin its source "
                    f"state: WHERE must include state='{rule.where_state}'",
                )
            )
        elif state_pin.kind != "string" or state_pin.text != rule.where_state:
            found = state_pin.text if state_pin.kind == "string" else state_pin.kind
            mismatches.append(
                _Mismatch(
                    "RPL404",
                    f"{rule.name} ({stmt.method}) pins the wrong source "
                    f"state: declared state='{rule.where_state}', statement "
                    f"has state={found!r}",
                )
            )

    missing = set(rule.must_set) - value_cols
    if rpl403:
        missing.discard(CHECKSUM_COLUMN)  # already reported as RPL403
    if missing:
        code = "RPL405" if rule.target == "leased" else "RPL401"
        what = (
            "lease grant is missing required stamps"
            if rule.target == "leased"
            else f"{rule.name} is missing required column writes"
        )
        mismatches.append(
            _Mismatch(
                code,
                f"{what} ({stmt.method}): {', '.join(sorted(missing))}",
            )
        )

    for column in sorted(rule.must_clear & value_cols):
        if not set_cols[column].is_null:
            mismatches.append(
                _Mismatch(
                    "RPL401",
                    f"{rule.name} ({stmt.method}) must clear {column} to "
                    f"NULL, not {set_cols[column].text!r}",
                )
            )

    allowed = set(rule.must_set) | set(rule.may_set) | {CHECKSUM_COLUMN}
    extra = value_cols - allowed
    if extra:
        mismatches.append(
            _Mismatch(
                "RPL401",
                f"{rule.name} ({stmt.method}) writes undeclared columns: "
                f"{', '.join(sorted(extra))}",
            )
        )

    for column, shape in rule.set_exact:
        if column in set_cols:
            got = set_cols[column]
            got_text = got.text.replace(" ", "").lower()
            if got_text != shape:
                code = "RPL405" if rule.target == "leased" else "RPL401"
                mismatches.append(
                    _Mismatch(
                        code,
                        f"{rule.name} ({stmt.method}) must write "
                        f"{column}={shape}, statement has {got.text!r}",
                    )
                )
    return mismatches


def _check_update(stmt: ExtractedSql, parsed: UpdateStatement, path: str):
    """Diagnostics plus the name of the rule this statement matched."""
    diagnostics: list = []
    set_cols = parsed.set_columns

    rpl403 = False
    identity_written = set(set_cols) & IDENTITY_COLUMNS
    if identity_written and CHECKSUM_COLUMN not in set_cols:
        rpl403 = True
        diagnostics.append(
            _diag(
                "RPL403",
                stmt,
                path,
                "identity columns rewritten without recomputing the row "
                f"checksum in the same statement: {', '.join(sorted(identity_written))} "
                "— a later claim would verify stale bytes",
            )
        )

    target = None
    if "state" in set_cols:
        value = set_cols["state"]
        if value.kind != "string":
            diagnostics.append(
                _diag(
                    "RPL401",
                    stmt,
                    path,
                    f"state written from a non-literal ({value.kind}) — the "
                    "transition target must be statically visible",
                )
            )
            return diagnostics, None
        target = value.text
        if target not in JOB_STATES:
            diagnostics.append(
                _diag("RPL401", stmt, path, f"unknown state {target!r} written")
            )
            return diagnostics, None

    candidates = [
        rule
        for rule in TRANSITION_SPEC
        if rule.method == stmt.method and rule.target == target
    ]
    if not candidates:
        kind = (
            f"transition to '{target}'" if target is not None else "column write"
        )
        diagnostics.append(
            _diag(
                "RPL401",
                stmt,
                path,
                f"undeclared {kind} in {stmt.method}() — no TransitionRule "
                "in repro.analysis.protospec declares this edge; rogue "
                "writes bypass the verified protocol",
            )
        )
        return diagnostics, None

    scored = [
        (rule, _check_update_against(rule, stmt, parsed, rpl403))
        for rule in candidates
    ]
    rule, mismatches = min(scored, key=lambda pair: len(pair[1]))
    for mismatch in mismatches:
        diagnostics.append(_diag(mismatch.rule_code, stmt, path, mismatch.message))
    if mismatches:
        return diagnostics, None
    return diagnostics, rule.name


def _check_insert(stmt: ExtractedSql, parsed: InsertStatement, path: str):
    diagnostics: list = []
    if stmt.method != BIRTH.method:
        diagnostics.append(
            _diag(
                "RPL401",
                stmt,
                path,
                f"INSERT INTO jobs outside {BIRTH.method}() — row births are "
                "declared only in the submit path",
            )
        )
        return diagnostics, None

    columns = set(parsed.columns)
    missing = set(BIRTH.required_columns) - columns
    if CHECKSUM_COLUMN in missing and (IDENTITY_COLUMNS & columns):
        missing.discard(CHECKSUM_COLUMN)
        diagnostics.append(
            _diag(
                "RPL403",
                stmt,
                path,
                "job row born without its identity checksum — the claim-side "
                "verification could never pass",
            )
        )
    if missing:
        diagnostics.append(
            _diag(
                "RPL401",
                stmt,
                path,
                f"birth INSERT is missing required columns: "
                f"{', '.join(sorted(missing))}",
            )
        )

    state_value = parsed.column_values.get("state")
    if state_value is not None and state_value.kind == "string":
        if state_value.text not in BIRTH_STATES:
            diagnostics.append(
                _diag(
                    "RPL401",
                    stmt,
                    path,
                    f"row born in undeclared state {state_value.text!r} "
                    f"(allowed: {', '.join(sorted(BIRTH_STATES))})",
                )
            )
    # A parameterized state is the declared shape: Python chooses from
    # BIRTH_STATES ('done' only for submit-time coalescing).

    if diagnostics:
        return diagnostics, None
    return diagnostics, BIRTH.name


def check_source(source: str, path: str = "scheduler.py") -> ProtocolReport:
    """Verify one source file's jobs DML against the declared protocol."""
    statements, diagnostics = extract_jobs_dml(source, path)
    matched: set = set()
    for stmt in statements:
        try:
            parsed = parse_statement(stmt.sql)
        except SqlParseError as exc:
            diagnostics.append(
                _diag(
                    "RPL406",
                    stmt,
                    path,
                    f"jobs-table statement outside the verifiable mini-"
                    f"dialect: {exc}",
                )
            )
            continue
        if parsed.table != "jobs":
            continue
        if isinstance(parsed, UpdateStatement):
            found, rule_name = _check_update(stmt, parsed, path)
        else:
            found, rule_name = _check_insert(stmt, parsed, path)
        diagnostics.extend(found)
        if rule_name is not None:
            matched.add(rule_name)

    declared = {rule.name for rule in TRANSITION_SPEC} | {BIRTH.name}
    for name in sorted(declared - matched):
        rule = next(
            (r for r in TRANSITION_SPEC if r.name == name), BIRTH
        )
        diagnostics.append(
            Diagnostic(
                rule="RPL407",
                path=path,
                line=1,
                message=(
                    f"declared transition '{name}' ({rule.method}) has no "
                    "conforming statement — the implementation dropped a "
                    "protocol edge (or defected from its declared shape)"
                ),
                snippet=f"protospec:{name}",
            )
        )

    diagnostics.sort(key=lambda d: (d.line, d.rule))
    return ProtocolReport(
        path=path,
        statements=tuple(statements),
        diagnostics=diagnostics,
        matched_rules=frozenset(matched),
    )


def verify_scheduler_protocol(path) -> ProtocolReport:
    """Read and verify the scheduler source on disk."""
    target = Path(path)
    return check_source(target.read_text(encoding="utf-8"), str(target))
