"""The declared scheduler protocol: one transition table, machine-checked.

This module is the *specification* side of the scheduler protocol
verifier (``repro.analysis.protocheck``).  It declares, as plain data,
the state machine the durable scan queue (`repro.threshold.scheduler`)
is allowed to implement:

* the job states and which of them are terminal,
* every legal state transition, bound to the method that performs it,
* which transitions must carry the owner fence
  (``WHERE lease_owner = ? AND state = 'leased'``) — the double-claim
  firewall,
* which columns each transition must write, which it must clear to
  NULL, and which writes have an exact required shape (the attempt
  charge and the drain refund),
* the identity columns whose rewrite must recompute the row checksum.

``scheduler.py`` imports :data:`JOB_STATES` from here (so the
implementation and the spec literally cannot disagree about the state
set) and re-exports :data:`TRANSITION_SPEC` as the protocol's source of
truth; ``SCHEDULER.md`` embeds :func:`transition_diagram` and a test
pins the embedding so the docs cannot drift either.

Everything here is stdlib-only: the analysis pass must be importable
before numpy (or anything else) is installed, and it must never import
the code it verifies.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "BIRTH",
    "BIRTH_STATES",
    "BirthRule",
    "CHECKSUM_COLUMN",
    "IDENTITY_COLUMNS",
    "JOB_STATES",
    "LEASE_COLUMNS",
    "TERMINAL_STATES",
    "TRANSITION_SPEC",
    "TransitionRule",
    "transition_diagram",
]

# The job state machine.  Order matters for display only; membership is
# the contract (shared with repro.threshold.scheduler._JOB_STATES).
JOB_STATES = ("pending", "leased", "done", "failed", "corrupt")

# States a job can never leave except through an audited resubmit reset.
TERMINAL_STATES = frozenset({"done", "failed", "corrupt"})

# States a job row may be *born* in: ``pending`` normally, ``done`` when
# submit-time coalescing answered it from the result cache.
BIRTH_STATES = frozenset({"pending", "done"})

# Columns that define *what will execute* under the run key.  Any UPDATE
# rewriting one of these must recompute the identity checksum in the
# same statement, or a later claim would verify stale bytes.
IDENTITY_COLUMNS = frozenset(
    {"run_key", "physics_key", "kind", "payload", "shots", "num_shards"}
)

CHECKSUM_COLUMN = "checksum"

# The lease bookkeeping columns; writes outside a declared transition
# shape are undeclared protocol (RPL401).
LEASE_COLUMNS = frozenset({"lease_owner", "lease_expires_unix", "heartbeat_unix"})


@dataclass(frozen=True)
class TransitionRule:
    """One declared SQL write against the ``jobs`` table.

    ``target=None`` declares a non-transition write (a column update
    that legally leaves ``state`` alone).  ``fenced`` rules must carry
    the full owner fence in their WHERE clause:
    ``lease_owner = ?`` and ``state = '<where_state>'``.  Unfenced
    rules name their ``python_guard`` — the transaction-level reason no
    SQL fence is needed (e.g. the claim transaction selected and
    checksum-verified the row under ``BEGIN IMMEDIATE`` before writing).
    """

    name: str
    method: str  # enclosing ScanQueue method implementing this write
    target: str | None  # state value written, None = no state change
    sources: frozenset  # declared source states (diagram + RPL404)
    fenced: bool = False
    where_state: str | None = None  # state the WHERE must pin (fenced rules)
    python_guard: str | None = None  # why an unfenced rule is still safe
    must_set: frozenset = frozenset()  # columns the SET must include
    may_set: frozenset = frozenset()  # additional columns the SET may include
    must_clear: frozenset = frozenset()  # subset of must_set that must be NULL
    set_exact: tuple = ()  # ((column, normalized expr), ...) exact shapes

    def __post_init__(self) -> None:
        if self.target is not None and self.target not in JOB_STATES:
            raise ValueError(f"rule {self.name}: unknown target {self.target!r}")
        unknown = set(self.sources) - set(JOB_STATES)
        if unknown:
            raise ValueError(f"rule {self.name}: unknown sources {sorted(unknown)}")
        if not self.must_clear <= self.must_set:
            raise ValueError(f"rule {self.name}: must_clear must be ⊆ must_set")
        if self.fenced and self.where_state is None:
            raise ValueError(f"rule {self.name}: fenced rules pin a WHERE state")


@dataclass(frozen=True)
class BirthRule:
    """The single declared ``INSERT INTO jobs`` shape.

    Every identity column plus the checksum must be present — a row
    born without its checksum (or without the columns the checksum
    covers) could never be claim-verified.  The ``state`` value is a
    parameter chosen in Python from :data:`BIRTH_STATES` (``pending``,
    or ``done`` for submit-time cache/pool coalescing).
    """

    name: str = "birth"
    method: str = "submit_scan"
    states: frozenset = BIRTH_STATES
    required_columns: frozenset = frozenset(
        IDENTITY_COLUMNS
        | {
            CHECKSUM_COLUMN,
            "state",
            "priority",
            "max_attempts",
            "submitted_unix",
        }
    )


BIRTH = BirthRule()

_CLAIM_GUARD = (
    "claim transaction selected and checksum-verified the row under "
    "BEGIN IMMEDIATE before writing"
)
_SUBMIT_GUARD = (
    "submit transaction re-read the row's state under BEGIN IMMEDIATE "
    "before writing"
)

# The declared transition table.  protocheck matches every extracted
# ``UPDATE jobs`` statement against the rules bound to its enclosing
# method; a statement matching no rule is an undeclared transition
# (RPL401), a declared rule implemented by no statement is a dropped
# edge (RPL407).
TRANSITION_SPEC: tuple = (
    TransitionRule(
        name="absorb_priority",
        method="submit_scan",
        target=None,
        sources=frozenset({"pending", "leased"}),
        python_guard=_SUBMIT_GUARD,
        must_set=frozenset({"priority"}),
        set_exact=(("priority", "max(priority,?)"),),
    ),
    TransitionRule(
        name="resubmit_reset",
        method="submit_scan",
        target="pending",
        sources=frozenset({"failed", "corrupt"}),
        python_guard=_SUBMIT_GUARD,
        must_set=frozenset(
            {
                "kind",
                "payload",
                "shots",
                "num_shards",
                "physics_key",
                "checksum",
                "priority",
                "attempts",
                "max_attempts",
                "not_before_unix",
                "lease_owner",
                "lease_expires_unix",
                "heartbeat_unix",
                "source",
                "result_shots",
                "result_failures",
                "result_checksum",
                "degraded",
                "error",
                "submitted_unix",
                "finished_unix",
            }
        ),
        must_clear=frozenset(
            {
                "lease_owner",
                "lease_expires_unix",
                "heartbeat_unix",
                "source",
                "result_shots",
                "result_failures",
                "result_checksum",
                "error",
                "finished_unix",
            }
        ),
    ),
    TransitionRule(
        name="quarantine_at_claim",
        method="_claim_once",
        target="corrupt",
        sources=frozenset({"pending", "leased"}),
        python_guard=_CLAIM_GUARD,
        must_set=frozenset(
            {"error", "finished_unix", "lease_owner", "lease_expires_unix"}
        ),
        must_clear=frozenset({"lease_owner", "lease_expires_unix"}),
    ),
    TransitionRule(
        name="exhaust_at_claim",
        method="_claim_once",
        target="failed",
        sources=frozenset({"pending", "leased"}),
        python_guard=_CLAIM_GUARD,
        must_set=frozenset(
            {"error", "finished_unix", "lease_owner", "lease_expires_unix"}
        ),
        must_clear=frozenset({"lease_owner", "lease_expires_unix"}),
    ),
    TransitionRule(
        name="lease_grant",
        method="_claim_once",
        target="leased",
        sources=frozenset({"pending", "leased"}),
        python_guard=_CLAIM_GUARD,
        must_set=frozenset(
            {"lease_owner", "lease_expires_unix", "heartbeat_unix", "attempts"}
        ),
        set_exact=(("attempts", "attempts+1"),),
    ),
    TransitionRule(
        name="heartbeat",
        method="heartbeat",
        target=None,
        sources=frozenset({"leased"}),
        fenced=True,
        where_state="leased",
        must_set=frozenset({"heartbeat_unix", "lease_expires_unix"}),
    ),
    TransitionRule(
        name="complete",
        method="complete",
        target="done",
        sources=frozenset({"leased"}),
        fenced=True,
        where_state="leased",
        must_set=frozenset(
            {
                "result_shots",
                "result_failures",
                "result_checksum",
                "degraded",
                "source",
                "finished_unix",
                "lease_expires_unix",
            }
        ),
        must_clear=frozenset({"lease_expires_unix"}),
    ),
    TransitionRule(
        name="release_retry",
        method="release",
        target="pending",
        sources=frozenset({"leased"}),
        fenced=True,
        where_state="leased",
        must_set=frozenset(
            {
                "not_before_unix",
                "error",
                "lease_owner",
                "lease_expires_unix",
                "heartbeat_unix",
            }
        ),
        must_clear=frozenset(
            {"lease_owner", "lease_expires_unix", "heartbeat_unix"}
        ),
    ),
    TransitionRule(
        name="release_failed",
        method="release",
        target="failed",
        sources=frozenset({"leased"}),
        fenced=True,
        where_state="leased",
        must_set=frozenset(
            {"error", "finished_unix", "lease_owner", "lease_expires_unix"}
        ),
        must_clear=frozenset({"lease_owner", "lease_expires_unix"}),
    ),
    TransitionRule(
        name="requeue_drain",
        method="requeue",
        target="pending",
        sources=frozenset({"leased"}),
        fenced=True,
        where_state="leased",
        must_set=frozenset(
            {
                "not_before_unix",
                "attempts",
                "lease_owner",
                "lease_expires_unix",
                "heartbeat_unix",
            }
        ),
        must_clear=frozenset(
            {"lease_owner", "lease_expires_unix", "heartbeat_unix"}
        ),
        set_exact=(("attempts", "max(attempts-1,0)"),),
    ),
    TransitionRule(
        name="mark_corrupt_read",
        method="mark_corrupt",
        target="corrupt",
        sources=frozenset({"done"}),
        python_guard=(
            "result-read validation failed its checksum; quarantining a "
            "terminal row races nothing"
        ),
        must_set=frozenset(
            {"error", "finished_unix", "lease_owner", "lease_expires_unix"}
        ),
        must_clear=frozenset({"lease_owner", "lease_expires_unix"}),
    ),
)


def transition_diagram() -> str:
    """The declared state machine rendered for SCHEDULER.md.

    Generated from :data:`TRANSITION_SPEC` so the documented diagram is
    the verified one; a test asserts SCHEDULER.md embeds this text
    verbatim.
    """
    lines = [
        "states:   " + " | ".join(JOB_STATES)
        + "   (terminal: " + ", ".join(sorted(TERMINAL_STATES)) + ")",
        "birth:    submit_scan -> " + " | ".join(sorted(BIRTH.states))
        + "   [all identity columns + checksum]",
    ]
    for rule in TRANSITION_SPEC:
        if rule.target is None:
            continue
        fence = "owner-fenced" if rule.fenced else "txn-guarded"
        lines.append(
            f"{' | '.join(sorted(rule.sources)):<18} -> {rule.target:<8}"
            f"  {rule.name} ({rule.method}, {fence})"
        )
    return "\n".join(lines)
