"""A deliberately tiny SQL parser for the protocol checker.

``repro.analysis.protocheck`` needs to answer structural questions about
the scheduler's DML — which columns does this UPDATE set, to a parameter
or to NULL or to a literal, and which conditions fence its WHERE clause —
without importing sqlite3 (no EXPLAIN tricks) and without a third-party
grammar.  This module parses exactly the dialect the scheduler writes:

* ``UPDATE <table> SET col = expr, ... [WHERE cond AND cond ...]``
* ``INSERT INTO <table> (col, ...) VALUES (expr, ...)``

Expressions are classified, not evaluated: ``?`` parameters, ``NULL``,
string/number literals, bare column references, and anything else
(``MAX(priority, ?)``, ``attempts+1``) as an opaque expression carrying
its normalized text so the checker can pin exact shapes.  WHERE clauses
are split on top-level ``AND`` into ``column <op> value`` conditions.

Anything outside that dialect raises :class:`SqlParseError` — the
checker converts that into an RPL406 "can't verify" diagnostic rather
than guessing.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = [
    "Condition",
    "InsertStatement",
    "SqlParseError",
    "UpdateStatement",
    "Value",
    "parse_statement",
]


class SqlParseError(ValueError):
    """The statement falls outside the mini-dialect; nothing was guessed."""


@dataclass(frozen=True)
class Value:
    """A classified right-hand side.

    ``kind`` is one of ``param`` (``?``), ``null``, ``string``,
    ``number``, ``column``, or ``expr``.  ``text`` holds the unquoted
    literal for strings, the digits for numbers, the identifier for
    columns, and the whitespace-free lowercase source for exprs.
    """

    kind: str
    text: str

    @property
    def is_null(self) -> bool:
        return self.kind == "null"

    @property
    def is_param(self) -> bool:
        return self.kind == "param"


@dataclass(frozen=True)
class Condition:
    column: str
    op: str
    value: Value


@dataclass(frozen=True)
class UpdateStatement:
    table: str
    assignments: tuple  # ((column, Value), ...) in statement order
    where: tuple  # (Condition, ...) split on top-level AND

    @property
    def set_columns(self) -> dict:
        return dict(self.assignments)

    def where_value(self, column: str) -> Value | None:
        for cond in self.where:
            if cond.column == column and cond.op == "=":
                return cond.value
        return None


@dataclass(frozen=True)
class InsertStatement:
    table: str
    columns: tuple
    values: tuple  # (Value, ...) positionally matching ``columns``

    @property
    def column_values(self) -> dict:
        return dict(zip(self.columns, self.values))


_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<string>'(?:[^']|'')*')
    | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
    | (?P<number>\d+(?:\.\d+)?)
    | (?P<op><=|>=|!=|<>|=|<|>)
    | (?P<punct>[(),?*+\-/])
    """,
    re.VERBOSE,
)

_KEYWORDS = frozenset(
    {"UPDATE", "SET", "WHERE", "AND", "INSERT", "INTO", "VALUES", "NULL", "OR", "NOT"}
)


def _tokenize(sql: str) -> list:
    tokens = []
    pos = 0
    while pos < len(sql):
        m = _TOKEN_RE.match(sql, pos)
        if m is None:
            raise SqlParseError(f"unrecognized SQL at offset {pos}: {sql[pos:pos + 20]!r}")
        pos = m.end()
        if m.lastgroup == "ws":
            continue
        tokens.append((m.lastgroup, m.group()))
    return tokens


class _Cursor:
    def __init__(self, tokens: list) -> None:
        self.tokens = tokens
        self.i = 0

    def peek(self):
        return self.tokens[self.i] if self.i < len(self.tokens) else (None, None)

    def next(self):
        tok = self.peek()
        if tok[0] is None:
            raise SqlParseError("unexpected end of statement")
        self.i += 1
        return tok

    def at_keyword(self, word: str) -> bool:
        kind, text = self.peek()
        return kind == "name" and text.upper() == word

    def expect_keyword(self, word: str) -> None:
        if not self.at_keyword(word):
            raise SqlParseError(f"expected {word}, found {self.peek()[1]!r}")
        self.next()

    def expect_name(self) -> str:
        kind, text = self.next()
        if kind != "name" or text.upper() in _KEYWORDS:
            raise SqlParseError(f"expected identifier, found {text!r}")
        return text

    def expect_punct(self, char: str) -> None:
        kind, text = self.next()
        if kind != "punct" or text != char:
            raise SqlParseError(f"expected {char!r}, found {text!r}")

    @property
    def exhausted(self) -> bool:
        return self.i >= len(self.tokens)


def _classify(tokens: list) -> Value:
    if not tokens:
        raise SqlParseError("empty expression")
    if len(tokens) == 1:
        kind, text = tokens[0]
        if kind == "punct" and text == "?":
            return Value("param", "?")
        if kind == "name" and text.upper() == "NULL":
            return Value("null", "NULL")
        if kind == "string":
            return Value("string", text[1:-1].replace("''", "'"))
        if kind == "number":
            return Value("number", text)
        if kind == "name":
            return Value("column", text)
        raise SqlParseError(f"unexpected expression token {text!r}")
    normalized = "".join(text for _, text in tokens).lower()
    return Value("expr", normalized)


def _collect_expr(cur: _Cursor, *, stop_keywords: frozenset) -> Value:
    """Collect tokens until a top-level comma, closing paren, or keyword."""
    tokens = []
    depth = 0
    while not cur.exhausted:
        kind, text = cur.peek()
        if depth == 0:
            if kind == "punct" and text in {",", ")"}:
                break
            if kind == "name" and text.upper() in stop_keywords:
                break
        if kind == "punct" and text == "(":
            depth += 1
        elif kind == "punct" and text == ")":
            depth -= 1
        tokens.append(cur.next())
    return _classify(tokens)


def _parse_update(cur: _Cursor) -> UpdateStatement:
    cur.expect_keyword("UPDATE")
    table = cur.expect_name()
    cur.expect_keyword("SET")
    assignments = []
    while True:
        column = cur.expect_name()
        kind, text = cur.next()
        if kind != "op" or text != "=":
            raise SqlParseError(f"expected = after SET column, found {text!r}")
        assignments.append((column, _collect_expr(cur, stop_keywords=frozenset({"WHERE"}))))
        if cur.peek() == ("punct", ","):
            cur.next()
            continue
        break
    where = []
    if cur.at_keyword("WHERE"):
        cur.next()
        while True:
            column = cur.expect_name()
            kind, op = cur.next()
            if kind != "op":
                raise SqlParseError(f"expected comparison after {column}, found {op!r}")
            value = _collect_expr(cur, stop_keywords=frozenset({"AND", "OR"}))
            where.append(Condition(column, op, value))
            if cur.at_keyword("AND"):
                cur.next()
                continue
            if cur.at_keyword("OR"):
                raise SqlParseError("top-level OR in a jobs WHERE clause is unsupported")
            break
    if not cur.exhausted:
        raise SqlParseError(f"trailing tokens after statement: {cur.peek()[1]!r}")
    duplicate = len({c for c, _ in assignments}) != len(assignments)
    if duplicate:
        raise SqlParseError("duplicate column in SET clause")
    return UpdateStatement(table=table, assignments=tuple(assignments), where=tuple(where))


def _parse_insert(cur: _Cursor) -> InsertStatement:
    cur.expect_keyword("INSERT")
    cur.expect_keyword("INTO")
    table = cur.expect_name()
    cur.expect_punct("(")
    columns = [cur.expect_name()]
    while cur.peek() == ("punct", ","):
        cur.next()
        columns.append(cur.expect_name())
    cur.expect_punct(")")
    cur.expect_keyword("VALUES")
    cur.expect_punct("(")
    values = [_collect_expr(cur, stop_keywords=frozenset())]
    while cur.peek() == ("punct", ","):
        cur.next()
        values.append(_collect_expr(cur, stop_keywords=frozenset()))
    cur.expect_punct(")")
    if not cur.exhausted:
        raise SqlParseError(f"trailing tokens after statement: {cur.peek()[1]!r}")
    if len(columns) != len(values):
        raise SqlParseError(
            f"INSERT lists {len(columns)} columns but {len(values)} values"
        )
    if len(set(columns)) != len(columns):
        raise SqlParseError("duplicate column in INSERT list")
    return InsertStatement(table=table, columns=tuple(columns), values=tuple(values))


def parse_statement(sql: str):
    """Parse one statement into an Update/InsertStatement.

    Raises :class:`SqlParseError` for anything outside the mini-dialect.
    """
    cur = _Cursor(_tokenize(sql))
    if cur.at_keyword("UPDATE"):
        return _parse_update(cur)
    if cur.at_keyword("INSERT"):
        return _parse_insert(cur)
    raise SqlParseError(f"not an UPDATE/INSERT statement: {sql[:40]!r}")
