"""Concurrency / resource-hygiene rules (RPL3xx).

The resilient runtime (PR 6/7) survives worker crashes, hangs, and
storage faults precisely because its resources follow strict rules:
pools are spawn-context and always reaped, sqlite handles never cross a
process boundary, swallowed faults always leave a structured warning
behind, and cache keys contain no wall-clock time.  These rules keep the
next PR from quietly eroding any of that:

* RPL301 — a class holding a ``sqlite3.connect(...)`` handle without
  ``__getstate__``/``__reduce__``: connections are process-local; an
  accidental trip through the worker-payload pickle must fail loudly at
  pickle time, not deep inside a worker.
* RPL302 — process pools without an explicit spawn context (and
  fork/forkserver contexts): fork inherits locks, RNG state, and sqlite
  handles mid-flight — the exact states the runtime works to isolate.
* RPL303 — ``shutdown(wait=False)``: abandoned workers leak semaphore
  trackers and ``ResourceWarning`` at interpreter exit unless something
  else reaps them; sites that do reap suppress with a reason.
* RPL304 — ``except Exception/BaseException`` whose body only
  passes/continues/returns: a fault nobody can observe.  Narrow the
  type, re-raise, or ``warnings.warn`` (see the PR 6/7 degradation
  pattern — swallowing is fine, *silent* swallowing is not).
* RPL305 — ``time.time()``/``datetime.now()`` inside key/hash/
  fingerprint/checksum computation: content-addressed cache keys must be
  time-independent or they never hit.
* RPL306 — ``time.monotonic()``/``time.perf_counter()`` inside lease/
  heartbeat/claim/expire logic: monotonic clocks have a per-process
  arbitrary epoch, so a deadline one claimant stamps is meaningless to
  the claimant that must decide whether the lease expired.  Lease
  arithmetic is the one place wall-clock ``time.time()`` is *required*
  (the dual of RPL305).
* RPL307 — a SQL ``UPDATE`` string that sets ``state='done'`` without
  ``lease_owner`` in it: the owner guard on terminal writes is the
  scheduler's double-claim firewall; an unguarded completion lets a
  stalled claimant whose lease was taken over clobber the successor's
  row.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic

__all__ = ["check"]

_BROAD_EXCEPTIONS = {"Exception", "BaseException"}
_KEYISH_NAME = re.compile(r"(key|hash|fingerprint|digest|checksum)", re.IGNORECASE)
_LEASE_NAME = re.compile(r"(lease|heartbeat|claim|expire)", re.IGNORECASE)
_MONOTONIC_CHAINS = {
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
}
_TERMINAL_UPDATE_RE = re.compile(
    r"\bUPDATE\b.*\bSET\b.*\bstate\s*=\s*'done'", re.IGNORECASE | re.DOTALL
)
_OWNER_GUARD_RE = re.compile(r"\blease_owner\b", re.IGNORECASE)
_WALL_CLOCK_CHAINS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}


def _snippet(ctx, node: ast.AST) -> str:
    line = getattr(node, "lineno", 0)
    if 1 <= line <= len(ctx.lines):
        return ctx.lines[line - 1].strip()
    return ""


def _attr_chain(node: ast.AST) -> list[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        return []
    return parts[::-1]


def _has_pickle_hook(cls: ast.ClassDef) -> bool:
    return any(
        isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        and stmt.name in {"__getstate__", "__setstate__", "__reduce__", "__reduce_ex__"}
        for stmt in cls.body
    )


def _is_wall_clock_call(node: ast.Call) -> bool:
    chain = _attr_chain(node.func)
    return len(chain) >= 2 and tuple(chain[-2:]) in _WALL_CLOCK_CHAINS


def _broad_handler(handler: ast.ExceptHandler) -> bool:
    """Bare ``except:``, ``except Exception``, or a tuple containing one."""
    if handler.type is None:
        return True
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for t in types:
        chain = _attr_chain(t)
        if chain and chain[-1] in _BROAD_EXCEPTIONS:
            return True
    return False


def _silently_swallows(handler: ast.ExceptHandler) -> bool:
    """True when nothing in the handler body could surface the fault —
    no raise, no call (warn/log/cleanup), only pass/continue/return."""
    for stmt in handler.body:
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.Raise, ast.Call)):
                return False
    return True


class _Visitor(ast.NodeVisitor):
    def __init__(self, ctx) -> None:
        self.ctx = ctx
        self.diags: list[Diagnostic] = []
        self._func_stack: list[str] = []
        self._class_stack: list[ast.ClassDef] = []

    # -- scope tracking -------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- RPL304 ---------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if _broad_handler(node) and _silently_swallows(node):
            self.diags.append(
                Diagnostic(
                    "RPL304",
                    self.ctx.path,
                    node.lineno,
                    "broad except silently swallows the fault; narrow the "
                    "exception type, re-raise, or emit warnings.warn so the "
                    "failure stays observable",
                    _snippet(self.ctx, node),
                )
            )
        self.generic_visit(node)

    # -- call-shaped rules ---------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        callee = chain[-1] if chain else ""

        # RPL301 — sqlite3.connect inside a class with no pickle hook.
        if chain[-2:] == ["sqlite3", "connect"] and self._class_stack:
            cls = self._class_stack[-1]
            if not _has_pickle_hook(cls):
                self.diags.append(
                    Diagnostic(
                        "RPL301",
                        self.ctx.path,
                        node.lineno,
                        f"class {cls.name} opens a sqlite3 connection but "
                        f"defines no __getstate__/__reduce__; connections "
                        f"are process-local and must refuse to pickle "
                        f"explicitly rather than ship a dead handle",
                        _snippet(self.ctx, node),
                    )
                )

        # RPL302 — non-spawn pools.
        if callee == "ProcessPoolExecutor":
            if not any(kw.arg == "mp_context" for kw in node.keywords):
                self.diags.append(
                    Diagnostic(
                        "RPL302",
                        self.ctx.path,
                        node.lineno,
                        "ProcessPoolExecutor without mp_context= uses the "
                        "platform default start method (fork on Linux); "
                        "pass multiprocessing.get_context('spawn')",
                        _snippet(self.ctx, node),
                    )
                )
        elif callee == "get_context":
            arg = node.args[0] if node.args else None
            if arg is None or (
                isinstance(arg, ast.Constant) and arg.value in ("fork", "forkserver")
            ):
                ctx_name = (
                    repr(arg.value) if isinstance(arg, ast.Constant) else "the default"
                )
                self.diags.append(
                    Diagnostic(
                        "RPL302",
                        self.ctx.path,
                        node.lineno,
                        f"get_context({ctx_name if arg is not None else ''}) "
                        f"is not spawn; forked children inherit locks, RNG "
                        f"state, and sqlite handles mid-flight",
                        _snippet(self.ctx, node),
                    )
                )
        elif chain[-2:] == ["multiprocessing", "Pool"]:
            self.diags.append(
                Diagnostic(
                    "RPL302",
                    self.ctx.path,
                    node.lineno,
                    "multiprocessing.Pool() uses the platform default start "
                    "method; use a spawn-context ProcessPoolExecutor",
                    _snippet(self.ctx, node),
                )
            )

        # RPL303 — shutdown(wait=False).
        if callee == "shutdown":
            for kw in node.keywords:
                if (
                    kw.arg == "wait"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                ):
                    self.diags.append(
                        Diagnostic(
                            "RPL303",
                            self.ctx.path,
                            node.lineno,
                            "shutdown(wait=False) abandons live workers; "
                            "reap them (join/terminate with a budget) or "
                            "suppress with the reason they are reaped "
                            "elsewhere",
                            _snippet(self.ctx, node),
                        )
                    )

        # RPL305 — wall clock inside key/hash computation.
        if _is_wall_clock_call(node):
            enclosing = next(
                (name for name in reversed(self._func_stack) if _KEYISH_NAME.search(name)),
                None,
            )
            if enclosing is not None:
                self.diags.append(
                    Diagnostic(
                        "RPL305",
                        self.ctx.path,
                        node.lineno,
                        f"wall-clock time inside {enclosing}(): content-"
                        f"addressed keys must be time-independent or the "
                        f"cache never hits",
                        _snippet(self.ctx, node),
                    )
                )
        elif (
            callee
            and _KEYISH_NAME.search(callee)
            and not any(_KEYISH_NAME.search(n) for n in self._func_stack)
        ):
            # time.time() passed directly into a key/hash computation —
            # only when the enclosing-function branch above won't already
            # report the same wall-clock call.
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Call) and _is_wall_clock_call(sub):
                        self.diags.append(
                            Diagnostic(
                                "RPL305",
                                self.ctx.path,
                                sub.lineno,
                                f"wall-clock time passed into {callee}(): "
                                f"content-addressed keys must be "
                                f"time-independent or the cache never hits",
                                _snippet(self.ctx, sub),
                            )
                        )
                        break

        # RPL306 — process-local clocks inside lease-protocol code.
        if len(chain) >= 2 and tuple(chain[-2:]) in _MONOTONIC_CHAINS:
            enclosing = next(
                (name for name in reversed(self._func_stack) if _LEASE_NAME.search(name)),
                None,
            )
            if enclosing is not None:
                self.diags.append(
                    Diagnostic(
                        "RPL306",
                        self.ctx.path,
                        node.lineno,
                        f"{'.'.join(chain[-2:])}() inside {enclosing}(): "
                        f"monotonic clocks have a per-process epoch, so "
                        f"deadlines they stamp cannot be compared by the "
                        f"claimant deciding expiry; lease arithmetic must "
                        f"use wall-clock time.time()",
                        _snippet(self.ctx, node),
                    )
                )

        self.generic_visit(node)

    # -- RPL307 ---------------------------------------------------------
    def visit_Constant(self, node: ast.Constant) -> None:
        if (
            isinstance(node.value, str)
            and _TERMINAL_UPDATE_RE.search(node.value)
            and not _OWNER_GUARD_RE.search(node.value)
        ):
            self.diags.append(
                Diagnostic(
                    "RPL307",
                    self.ctx.path,
                    node.lineno,
                    "UPDATE sets state='done' with no lease_owner in the "
                    "statement; terminal writes must be owner-guarded "
                    "(WHERE ... AND lease_owner = ?) or a stale claimant "
                    "can clobber the current owner's result",
                    _snippet(self.ctx, node),
                )
            )


def check(ctx) -> Iterator[Diagnostic]:
    visitor = _Visitor(ctx)
    visitor.visit(ctx.tree)
    yield from visitor.diags
