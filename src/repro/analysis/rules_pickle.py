"""Worker-boundary picklability rules (RPL2xx).

Everything submitted to the spawn-context ``ProcessPoolExecutor`` travels
by pickle, and the result cache's content-addressed run keys hash those
same pickle bytes (``repro.threshold.journal.compute_run_key``), so a
payload that pickles wrong either kills a worker (PR 5's ``Pauli``
``__slots__`` bug) or silently changes a run's cached identity (PR 7's
scratch-buffer leak).  These rules catch both classes at review time:

* RPL201 — ``__slots__`` without explicit pickle support.  Slots alone
  pickle fine, but the pattern in this codebase pairs slots with
  immutability guards or computed state, where the default
  protocol-2 path breaks on restore; an explicit
  ``__getstate__``/``__setstate__``/``__reduce__`` states the contract.
* RPL202 — lambdas / nested functions handed to ``submit``/``map``:
  spawn pickles callables by qualified name; only module-level functions
  survive the boundary.
* RPL203 — scratch-buffer attributes (``_buffers``/``_scratch*``/
  ``_cache*``) accumulated on a class with no ``__getstate__`` to exclude
  them: the scratch travels in every worker payload and poisons the run
  key with whatever the object last executed.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic

__all__ = ["check"]

_PICKLE_HOOKS = {"__getstate__", "__setstate__", "__reduce__", "__reduce_ex__"}
_SCRATCH_ATTR = re.compile(r"^_(buffers?|scratch\w*|caches?)$")
_EXECUTOR_METHODS = {"submit", "map"}


def _snippet(ctx, node: ast.AST) -> str:
    line = getattr(node, "lineno", 0)
    if 1 <= line <= len(ctx.lines):
        return ctx.lines[line - 1].strip()
    return ""


def _class_methods(cls: ast.ClassDef) -> set[str]:
    return {
        stmt.name
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _defines_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def _scratch_assignments(cls: ast.ClassDef) -> list[tuple[str, ast.AST]]:
    """``self.<scratch>`` assignment targets anywhere in the class body."""
    found: list[tuple[str, ast.AST]] = []
    for node in ast.walk(cls):
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and _SCRATCH_ATTR.match(target.attr)
            ):
                found.append((target.attr, node))
    return found


class _SubmitVisitor(ast.NodeVisitor):
    """Tracks nested function names per scope to catch closures handed to
    ``submit``/``map`` by name as well as inline lambdas."""

    def __init__(self, ctx) -> None:
        self.ctx = ctx
        self.diags: list[Diagnostic] = []
        self._nested_stack: list[set[str]] = []

    def _visit_function(self, node) -> None:
        nested = {
            stmt.name
            for stmt in ast.walk(node)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt is not node
        }
        self._nested_stack.append(nested)
        self.generic_visit(node)
        self._nested_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _EXECUTOR_METHODS
        ):
            nested = self._nested_stack[-1] if self._nested_stack else set()
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Lambda):
                    what = "a lambda"
                elif isinstance(arg, ast.Name) and arg.id in nested:
                    what = f"nested function {arg.id!r}"
                else:
                    continue
                self.diags.append(
                    Diagnostic(
                        "RPL202",
                        self.ctx.path,
                        node.lineno,
                        f"{what} passed to .{node.func.attr}() cannot cross "
                        f"the spawn pickle boundary; move it to module level",
                        _snippet(self.ctx, node),
                    )
                )
                break
        self.generic_visit(node)


def check(ctx) -> Iterator[Diagnostic]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = _class_methods(node)
        has_pickle_hook = bool(methods & _PICKLE_HOOKS)
        # RPL201 — __slots__ without explicit pickle support.
        if _defines_slots(node) and not has_pickle_hook:
            yield Diagnostic(
                "RPL201",
                ctx.path,
                node.lineno,
                f"class {node.name} defines __slots__ but no "
                f"__getstate__/__setstate__/__reduce__; worker payloads "
                f"carrying it can break at the pickle boundary",
                _snippet(ctx, node),
            )
        # RPL203 — scratch buffers with no __getstate__ to exclude them.
        if not has_pickle_hook:
            scratch = _scratch_assignments(node)
            if scratch:
                attr, site = scratch[0]
                yield Diagnostic(
                    "RPL203",
                    ctx.path,
                    site.lineno,
                    f"class {node.name} accumulates scratch attribute "
                    f"'{attr}' but has no __getstate__ excluding it — "
                    f"scratch state leaks into worker pickles and "
                    f"content-addressed run keys",
                    _snippet(ctx, site),
                )
    visitor = _SubmitVisitor(ctx)
    visitor.visit(ctx.tree)
    yield from visitor.diags
