"""Packed-program verifier: static checks over compiled instruction streams.

:class:`repro.pauliframe.compiled.CompiledFrameProgram` lowers circuits
into flat tuples interpreted by ``_execute`` with **no per-instruction
checking** — that is where its speed comes from, and it is safe only
because the compiler is supposed to emit well-formed streams.  A compiler
bug (or a future fusion/scheduling change) would otherwise surface as
silent row corruption: a fancy index past the plane width wraps nothing,
an aliased fused batch XORs a row into itself, a mis-sliced noise plane
replays another location's faults.  ``verify_program`` re-derives the
safety argument from the instruction stream itself and is cheap enough
(O(instructions), run once per compile) that every program is verified at
build time.

Checks, each with a distinct typed diagnostic:

* **opcode validity** (:class:`BadOpcode`) — known opcode, correct
  operand arity;
* **operand bounds** (:class:`OperandRangeError`) — qubit indices within
  the frame-plane height, cbit indices within the flip-plane height,
  noise-plane slices within the sampled channel budget;
* **buffer aliasing** (:class:`BufferAliasError`) — no duplicate rows
  within a fused batch and no control/target overlap (a fused
  ``fx[tgt] ^= fx[ctl]`` with ``ctl``/``tgt`` overlap reads rows the same
  statement is writing), and no two noise instructions replaying the same
  sampled plane rows;
* **noise probability ranges** (:class:`NoiseRangeError`) — every channel
  probability in [0, 1] (re-checked here: the verifier trusts nothing,
  including ``NoiseModel.__post_init__`` having run).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BadOpcode",
    "BufferAliasError",
    "NoiseRangeError",
    "OperandRangeError",
    "ProgramVerificationError",
    "verify_program",
]


class ProgramVerificationError(ValueError):
    """Base for all packed-program verification failures.

    ``instruction_index`` is the offending instruction's position in the
    stream (``None`` for stream-global checks such as noise ranges).
    """

    def __init__(self, message: str, instruction_index: int | None = None) -> None:
        if instruction_index is not None:
            message = f"instruction {instruction_index}: {message}"
        super().__init__(message)
        self.instruction_index = instruction_index


class BadOpcode(ProgramVerificationError):
    """Unknown opcode, or an operand tuple of the wrong arity."""


class OperandRangeError(ProgramVerificationError):
    """A qubit/cbit index or noise-plane slice outside its buffer."""


class BufferAliasError(ProgramVerificationError):
    """A fused batch addresses the same buffer row twice (in/out
    aliasing), or two noise instructions replay the same plane rows."""


class NoiseRangeError(ProgramVerificationError):
    """A noise-channel probability outside [0, 1]."""


# Operand arity per opcode (the opcode itself excluded), resolved lazily
# against the compiled module's opcode constants — the single source of
# truth stays in repro.pauliframe.compiled.
def _opcode_table() -> dict[int, tuple[str, int]]:
    from repro.pauliframe import compiled as c

    return {
        c._OP_H: ("H", 1),
        c._OP_S: ("S", 1),
        c._OP_RP: ("RPRIME", 1),
        c._OP_CNOT: ("CNOT", 2),
        c._OP_CZ: ("CZ", 2),
        c._OP_CY: ("CY", 2),
        c._OP_SWAP: ("SWAP", 2),
        c._OP_M: ("M", 2),
        c._OP_MX: ("MX", 2),
        c._OP_R: ("R", 1),
        c._OP_COND: ("COND", 5),
        c._OP_NG1: ("NG1", 3),
        c._OP_NG2: ("NG2", 4),
        c._OP_NM: ("NM", 3),
        c._OP_NP: ("NP", 3),
        c._OP_NSTORE: ("NSTORE", 1),
    }


def _check_index_array(
    idx, limit: int, what: str, buffer: str, i: int
) -> np.ndarray:
    arr = np.asarray(idx)
    if arr.size and (arr.min() < 0 or arr.max() >= limit):
        raise OperandRangeError(
            f"{what} index outside the {buffer} plane "
            f"(got {int(arr.min())}..{int(arr.max())}, valid 0..{limit - 1})",
            i,
        )
    return arr


def _check_no_duplicates(arr: np.ndarray, what: str, name: str, i: int) -> None:
    if arr.size != np.unique(arr).size:
        raise BufferAliasError(
            f"duplicate {what} rows in fused batch {name} — a batched row "
            f"operation would read and write the same row",
            i,
        )


def _check_plane_slice(
    lo: int, size: int, total: int, channel: str, i: int
) -> tuple[int, int]:
    if lo < 0 or size < 0 or lo + size > total:
        raise OperandRangeError(
            f"noise-plane slice [{lo}, {lo + size}) outside the sampled "
            f"'{channel}' budget of {total} location(s)",
            i,
        )
    return (lo, lo + size)


def verify_program(
    instructions: list[tuple],
    num_qubits: int,
    num_cbits: int,
    counts: dict[str, int],
    noise,
) -> None:
    """Verify one compiled instruction stream; raises a typed
    :class:`ProgramVerificationError` subclass on the first violation.

    Parameters mirror what :class:`CompiledFrameProgram` holds: the
    instruction tuples, the frame/flip plane heights, the per-channel
    noise-location ``counts``, and the ``NoiseModel``.
    """
    # Noise probability ranges — checked first and unconditionally: every
    # plane-sampling routine divides and scales by these.
    for name in ("eps_gate1", "eps_gate2", "eps_meas", "eps_prep", "eps_store"):
        p = float(getattr(noise, name))
        if not 0.0 <= p <= 1.0:
            raise NoiseRangeError(f"{name}={p} is not a probability in [0, 1]")

    table = _opcode_table()
    from repro.pauliframe import compiled as c

    # Every [lo, lo+size) slice consumed per channel, for overlap checks.
    consumed: dict[str, list[tuple[int, int]]] = {
        "g1": [], "g2": [], "meas": [], "prep": [], "store": []
    }
    cbit_limit = max(1, num_cbits)  # flips buffer is always >= 1 row

    for i, ins in enumerate(instructions):
        if not ins:
            raise BadOpcode("empty instruction tuple", i)
        op = ins[0]
        if op not in table:
            raise BadOpcode(f"unknown opcode {op!r}", i)
        name, arity = table[op]
        if len(ins) - 1 != arity:
            raise BadOpcode(
                f"{name} expects {arity} operand(s), got {len(ins) - 1}", i
            )

        if op in (c._OP_H, c._OP_S, c._OP_RP, c._OP_R):
            qs = _check_index_array(ins[1], num_qubits, "qubit", "frame", i)
            _check_no_duplicates(qs, "qubit", name, i)
        elif op in (c._OP_CNOT, c._OP_CZ, c._OP_CY, c._OP_SWAP):
            qa = _check_index_array(ins[1], num_qubits, "qubit", "frame", i)
            qb = _check_index_array(ins[2], num_qubits, "qubit", "frame", i)
            if qa.size != qb.size:
                raise BadOpcode(
                    f"{name} batch has {qa.size} controls but {qb.size} "
                    f"targets", i
                )
            _check_no_duplicates(qa, "control", name, i)
            _check_no_duplicates(qb, "target", name, i)
            if np.intersect1d(qa, qb).size:
                raise BufferAliasError(
                    f"{name} batch controls and targets overlap — the fused "
                    f"row XOR would read rows it is writing", i
                )
        elif op in (c._OP_M, c._OP_MX):
            qs = _check_index_array(ins[1], num_qubits, "qubit", "frame", i)
            cs = _check_index_array(ins[2], cbit_limit, "cbit", "flip", i)
            if qs.size != cs.size:
                raise BadOpcode(
                    f"{name} batch has {qs.size} qubits but {cs.size} cbits", i
                )
            _check_no_duplicates(qs, "qubit", name, i)
            _check_no_duplicates(cs, "cbit", name, i)
        elif op == c._OP_COND:
            _, xflag, zflag, qubit, cond, loc = ins
            if not 0 <= int(qubit) < num_qubits:
                raise OperandRangeError(
                    f"COND qubit {qubit} outside the frame plane "
                    f"(valid 0..{num_qubits - 1})", i
                )
            cond_arr = _check_index_array(cond, cbit_limit, "cbit", "flip", i)
            if cond_arr.size == 0:
                raise BadOpcode("COND with an empty condition mask", i)
            if int(loc) >= 0:
                consumed["g1"].append(
                    _check_plane_slice(int(loc), 1, counts.get("g1", 0), "g1", i)
                )
        elif op == c._OP_NG1:
            qs = _check_index_array(ins[1], num_qubits, "qubit", "frame", i)
            _check_no_duplicates(qs, "qubit", name, i)
            lo, size = int(ins[2]), int(ins[3])
            if size != qs.size:
                raise BadOpcode(
                    f"NG1 slice size {size} != batch size {qs.size}", i
                )
            consumed["g1"].append(
                _check_plane_slice(lo, size, counts.get("g1", 0), "g1", i)
            )
        elif op == c._OP_NG2:
            qa = _check_index_array(ins[1], num_qubits, "qubit", "frame", i)
            qb = _check_index_array(ins[2], num_qubits, "qubit", "frame", i)
            _check_no_duplicates(qa, "first-qubit", name, i)
            _check_no_duplicates(qb, "second-qubit", name, i)
            lo, size = int(ins[3]), int(ins[4])
            if size != qa.size or qa.size != qb.size:
                raise BadOpcode(
                    f"NG2 slice size {size} != batch sizes "
                    f"({qa.size}, {qb.size})", i
                )
            consumed["g2"].append(
                _check_plane_slice(lo, size, counts.get("g2", 0), "g2", i)
            )
        elif op == c._OP_NM:
            cs = _check_index_array(ins[1], cbit_limit, "cbit", "flip", i)
            _check_no_duplicates(cs, "cbit", name, i)
            lo, size = int(ins[2]), int(ins[3])
            if size != cs.size:
                raise BadOpcode(
                    f"NM slice size {size} != batch size {cs.size}", i
                )
            consumed["meas"].append(
                _check_plane_slice(lo, size, counts.get("meas", 0), "meas", i)
            )
        elif op == c._OP_NP:
            qs = _check_index_array(ins[1], num_qubits, "qubit", "frame", i)
            _check_no_duplicates(qs, "qubit", name, i)
            lo, size = int(ins[2]), int(ins[3])
            if size != qs.size:
                raise BadOpcode(
                    f"NP slice size {size} != batch size {qs.size}", i
                )
            consumed["prep"].append(
                _check_plane_slice(lo, size, counts.get("prep", 0), "prep", i)
            )
        elif op == c._OP_NSTORE:
            lo = int(ins[1])
            consumed["store"].append(
                _check_plane_slice(
                    lo, num_qubits, counts.get("store", 0), "store", i
                )
            )

    # No two noise instructions may replay the same sampled plane rows —
    # each location's fault must be applied exactly where the compiler
    # assigned it, or two circuit locations share correlated errors.
    for channel, slices in consumed.items():
        slices.sort()
        for (lo1, hi1), (lo2, _) in zip(slices, slices[1:]):
            if lo2 < hi1:
                raise BufferAliasError(
                    f"noise-plane rows [{lo2}, {hi1}) of channel "
                    f"'{channel}' are consumed by two instructions — two "
                    f"circuit locations would replay the same sampled faults"
                )
