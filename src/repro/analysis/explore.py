"""Bounded exhaustive interleaving exploration of the lease protocol.

The dynamic leg of the protocol verifier: where ``protocheck`` proves
each SQL statement has the declared *shape*, this module proves the
declared shapes *compose* safely under every interleaving — not just the
sampled ones the chaos suite executes.

The model is a pure-Python mirror of one queue row plus N claimants
whose atomic steps correspond 1:1 to the scheduler's transactions
(each SQL transaction is atomic under ``BEGIN IMMEDIATE``, so one model
step per transaction is exactly the real granularity):

* ``claim``    — charge the attempt, stamp the lease (stale-lease
                 takeover when a live lease has expired on the clock);
                 an exhausted attempt budget marks the job failed.
* ``shard``    — execute one shard: write it to the shared durable
                 cache (content-addressed journal) and heartbeat the
                 lease if still owned.
* ``complete`` — pool the durable shards and write the terminal row,
                 fenced ``lease_owner=? AND state='leased'`` exactly
                 like the real statement.
* ``crash``    — the claimant dies mid-lease; only the clock can free
                 the row (lease expiry).
* ``drain``    — graceful Ctrl-C/SIGTERM: fenced requeue that refunds
                 the attempt.
* ``tick``     — wall clock advances one lease quantum.

``explore`` enumerates **all** schedules up to a step bound via
breadth-first search over memoized states, so any reported violation
comes with a minimal counterexample trace.  Safety invariants checked
on every state and transition:

* **I1** at most one live lease believer per job,
* **I2** terminal writes only by the fencing owner,
* **I3** attempt counters move only by the declared charges/refunds and
  stay within budget,
* **I4** no lost update: a done job's counts equal the canonical pooled
  counts with every shard counted exactly once (stale-takeover resume
  included),
* **I5** drain never charges an attempt.

The ``fenced_complete`` / ``fenced_requeue`` / ``refund_on_requeue`` /
``resume_from_cache`` knobs turn individual protections *off* to model
known-bad protocols; tests pin those to concrete counterexample traces,
proving the explorer would catch the regression if the real protections
ever rotted.  Stdlib-only, like everything in ``repro.analysis``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace

__all__ = [
    "Counterexample",
    "ExplorationReport",
    "ModelConfig",
    "explore",
]

# Deterministic per-shard counts: shard i contributes (100 shots, i+1
# failures), so any double-count or dropped shard changes the pooled sum.
_SHARD_SHOTS = 100


def _shard_counts(index: int) -> tuple:
    return (_SHARD_SHOTS, index + 1)


def _canonical_counts(shards: int) -> tuple:
    return (
        shards * _SHARD_SHOTS,
        sum(_shard_counts(i)[1] for i in range(shards)),
    )


@dataclass(frozen=True)
class ModelConfig:
    """Exploration bounds plus protocol knobs (False = known-bad model)."""

    claimants: int = 2
    shards: int = 2
    max_attempts: int = 3
    max_steps: int = 16  # schedule depth bound k
    max_ticks: int = 3  # wall-clock advances (each expires a fresh lease)
    max_crashes: int = 1
    max_drains: int = 1
    fenced_complete: bool = True  # False: terminal write skips the owner fence
    fenced_requeue: bool = True  # False: requeue skips the owner fence
    refund_on_requeue: bool = True  # False: drain charges the attempt
    resume_from_cache: bool = True  # False: takeover recomputes every shard
    double_pool: bool = False  # True: complete double-counts its own shards


@dataclass(frozen=True)
class _Job:
    state: str = "pending"
    attempts: int = 0
    owner: int | None = None
    expires: int | None = None
    result: tuple | None = None
    completed_by: int | None = None


@dataclass(frozen=True)
class _Claimant:
    phase: str = "idle"  # idle | running | stopped | crashed
    remaining: tuple = ()
    executed: tuple = ()
    charged: int = 0  # job.attempts right after this claimant's claim


@dataclass(frozen=True)
class _World:
    clock: int = 0
    crashes: int = 0
    drains: int = 0
    job: _Job = field(default_factory=_Job)
    claimants: tuple = ()
    cache: frozenset = frozenset()  # durable shard indices (shared journal)


@dataclass(frozen=True)
class _Step:
    label: str
    world: _World
    violations: tuple = ()


@dataclass(frozen=True)
class Counterexample:
    """A violating schedule, replayed as its minimal step trace."""

    invariant: str
    trace: tuple  # step labels from the initial state to the violation

    def format(self) -> str:
        steps = "\n".join(f"  {i + 1}. {label}" for i, label in enumerate(self.trace))
        return f"violated: {self.invariant}\nschedule ({len(self.trace)} steps):\n{steps}"


@dataclass
class ExplorationReport:
    config: ModelConfig
    states: int = 0
    transitions: int = 0
    truncated: bool = False  # some schedule hit the depth bound
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def _owns(job: _Job, claimant: int) -> bool:
    """The real fence: owner matches and the row is still leased.

    Expiry deliberately does not matter here — the scheduler's terminal
    fence is ``lease_owner=? AND state='leased'``; an expired-but-not-
    taken-over lease still completes, exactly like the real statement.
    """
    return job.state == "leased" and job.owner == claimant


def _steps(world: _World, cfg: ModelConfig) -> list:
    out: list = []
    job = world.job

    if world.clock < cfg.max_ticks:
        out.append(
            _Step(f"tick (clock -> {world.clock + 1})", replace(world, clock=world.clock + 1))
        )

    for i, claimant in enumerate(world.claimants):
        tag = f"c{i}"
        if claimant.phase == "idle":
            expired = (
                job.state == "leased"
                and job.expires is not None
                and job.expires <= world.clock
            )
            if job.state == "pending" or expired:
                takeover = ", stale-lease takeover" if expired else ""
                if job.attempts >= cfg.max_attempts:
                    new_job = replace(
                        job, state="failed", owner=None, expires=None
                    )
                    out.append(
                        _Step(
                            f"{tag}.claim -> attempts exhausted, job failed",
                            replace(world, job=new_job),
                        )
                    )
                else:
                    new_job = replace(
                        job,
                        state="leased",
                        owner=i,
                        expires=world.clock + 1,
                        attempts=job.attempts + 1,
                    )
                    if cfg.resume_from_cache:
                        remaining = tuple(
                            s for s in range(cfg.shards) if s not in world.cache
                        )
                    else:
                        remaining = tuple(range(cfg.shards))
                    new_claimants = _with(
                        world.claimants,
                        i,
                        _Claimant(
                            phase="running",
                            remaining=remaining,
                            executed=(),
                            charged=new_job.attempts,
                        ),
                    )
                    out.append(
                        _Step(
                            f"{tag}.claim (attempt {new_job.attempts}{takeover})",
                            replace(world, job=new_job, claimants=new_claimants),
                        )
                    )
        elif claimant.phase == "running":
            if claimant.remaining:
                shard = claimant.remaining[0]
                new_job = job
                if _owns(job, i):
                    # Heartbeat rides the shard boundary (on_shard_complete).
                    new_job = replace(job, expires=world.clock + 1)
                new_claimants = _with(
                    world.claimants,
                    i,
                    replace(
                        claimant,
                        remaining=claimant.remaining[1:],
                        executed=claimant.executed + (shard,),
                    ),
                )
                out.append(
                    _Step(
                        f"{tag}.shard({shard}) -> durable",
                        replace(
                            world,
                            job=new_job,
                            claimants=new_claimants,
                            cache=world.cache | {shard},
                        ),
                    )
                )
            else:
                owns = _owns(job, i)
                stopped = _with(
                    world.claimants, i, replace(claimant, phase="stopped")
                )
                if cfg.fenced_complete and not owns:
                    out.append(
                        _Step(
                            f"{tag}.complete -> lost the fence (stale), no-op",
                            replace(world, claimants=stopped),
                        )
                    )
                else:
                    violations = []
                    if not owns:
                        violations.append(
                            f"terminal write by {tag} without the lease "
                            f"(owner={job.owner}, state={job.state})"
                        )
                    if job.state == "done":
                        violations.append(
                            f"terminal state overwritten by {tag}"
                        )
                    pooled = _pool(world.cache)
                    if cfg.double_pool:
                        pooled = (
                            pooled[0] + sum(_shard_counts(s)[0] for s in claimant.executed),
                            pooled[1] + sum(_shard_counts(s)[1] for s in claimant.executed),
                        )
                    if pooled != _canonical_counts(cfg.shards):
                        violations.append(
                            f"lost update: pooled counts {pooled} != canonical "
                            f"{_canonical_counts(cfg.shards)}"
                        )
                    new_job = replace(
                        job,
                        state="done",
                        owner=None,
                        expires=None,
                        result=pooled,
                        completed_by=i,
                    )
                    out.append(
                        _Step(
                            f"{tag}.complete -> done",
                            replace(world, job=new_job, claimants=stopped),
                            violations=tuple(violations),
                        )
                    )
            if world.crashes < cfg.max_crashes:
                out.append(
                    _Step(
                        f"{tag}.crash (mid-lease)",
                        replace(
                            world,
                            crashes=world.crashes + 1,
                            claimants=_with(
                                world.claimants, i, replace(claimant, phase="crashed")
                            ),
                        ),
                    )
                )
            if world.drains < cfg.max_drains:
                owns = _owns(job, i)
                stopped = _with(
                    world.claimants, i, replace(claimant, phase="stopped")
                )
                if cfg.fenced_requeue and not owns:
                    out.append(
                        _Step(
                            f"{tag}.drain -> lost the fence (stale), no-op",
                            replace(
                                world, drains=world.drains + 1, claimants=stopped
                            ),
                        )
                    )
                else:
                    violations = []
                    if not owns:
                        violations.append(
                            f"requeue by {tag} without the lease "
                            f"(owner={job.owner}, state={job.state})"
                        )
                    attempts = (
                        job.attempts - 1 if cfg.refund_on_requeue else job.attempts
                    )
                    if owns and attempts != claimant.charged - 1:
                        violations.append(
                            f"drain charged the attempt (attempts would be "
                            f"{attempts}, claimed at {claimant.charged})"
                        )
                    new_job = replace(
                        job,
                        state="pending",
                        owner=None,
                        expires=None,
                        attempts=max(attempts, 0),
                    )
                    out.append(
                        _Step(
                            f"{tag}.drain -> requeued",
                            replace(
                                world,
                                drains=world.drains + 1,
                                job=new_job,
                                claimants=stopped,
                            ),
                            violations=tuple(violations),
                        )
                    )
    return out


def _with(claimants: tuple, index: int, value: _Claimant) -> tuple:
    return claimants[:index] + (value,) + claimants[index + 1 :]


def _pool(cache: frozenset) -> tuple:
    return (
        sum(_shard_counts(s)[0] for s in cache),
        sum(_shard_counts(s)[1] for s in cache),
    )


def _state_violations(world: _World, cfg: ModelConfig) -> list:
    violations = []
    job = world.job
    if not 0 <= job.attempts <= cfg.max_attempts:
        violations.append(
            f"attempt counter out of budget: {job.attempts} not in "
            f"[0, {cfg.max_attempts}]"
        )
    believers = [
        i
        for i, c in enumerate(world.claimants)
        if c.phase == "running"
        and job.state == "leased"
        and job.owner == i
        and job.expires is not None
        and job.expires > world.clock
    ]
    if len(believers) > 1:
        violations.append(f"two live lease believers: {believers}")
    if job.state == "leased" and job.owner is None:
        violations.append("leased row with no owner")
    if job.state == "done":
        if job.result != _canonical_counts(cfg.shards):
            violations.append(
                f"done with wrong pooled counts {job.result} != "
                f"{_canonical_counts(cfg.shards)}"
            )
        if job.completed_by is None:
            violations.append("done with no recorded completer")
    return violations


def explore(config: ModelConfig | None = None) -> ExplorationReport:
    """Enumerate every schedule up to ``config.max_steps``.

    Breadth-first over memoized states: the first violation found is at
    minimal depth, and its trace (reconstructed through first-visit
    parent pointers) is a minimal counterexample schedule.
    """
    cfg = config if config is not None else ModelConfig()
    initial = _World(claimants=tuple(_Claimant() for _ in range(cfg.claimants)))
    report = ExplorationReport(config=cfg)

    parents: dict = {initial: None}  # world -> (parent world, step label)
    queue = deque([(initial, 0)])
    startup = _state_violations(initial, cfg)
    if startup:
        report.violations.append(Counterexample(startup[0], ()))
        return report

    while queue:
        world, depth = queue.popleft()
        if depth >= cfg.max_steps:
            report.truncated = True
            continue
        for step in _steps(world, cfg):
            report.transitions += 1
            violations = list(step.violations) + _state_violations(step.world, cfg)
            if violations:
                trace = [step.label]
                node = world
                while parents[node] is not None:
                    node, label = parents[node]
                    trace.append(label)
                trace.reverse()
                report.states = len(parents)
                report.violations.append(
                    Counterexample(violations[0], tuple(trace))
                )
                return report
            if step.world not in parents:
                parents[step.world] = (world, step.label)
                queue.append((step.world, depth + 1))

    report.states = len(parents)
    return report
