"""Deterministic random-number-generator plumbing.

Every stochastic entry point in the library accepts either an integer seed,
an existing :class:`numpy.random.Generator`, or ``None`` (fresh OS entropy),
and normalizes it through :func:`as_rng`.  This keeps Monte Carlo experiments
reproducible without threading a global seed through the call stack.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng"]


def as_rng(
    seed: int | np.random.Generator | np.random.SeedSequence | None = None,
) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a seeded PCG64 stream, a
        :class:`numpy.random.SeedSequence` (how the sharded driver and grid
        scans hand out independent child streams), or an existing generator
        (returned unchanged so that callers can share one stream across
        sub-experiments).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
