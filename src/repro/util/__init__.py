"""Shared utilities: deterministic RNG handling and statistics helpers."""

from repro.util.rng import as_rng
from repro.util.stats import (
    binomial_confidence,
    fit_power_law,
    logical_error_per_round,
    wilson_interval,
)

__all__ = [
    "as_rng",
    "binomial_confidence",
    "fit_power_law",
    "logical_error_per_round",
    "wilson_interval",
]
