"""Statistics helpers for Monte Carlo experiments.

Threshold experiments estimate small failure probabilities from binomial
samples; these helpers provide confidence intervals (Wilson score, which is
well behaved when the count of failures is 0 or small), power-law fits for
the quadratic level-reduction check, and conversions between per-round and
per-shot logical error rates.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "wilson_interval",
    "binomial_confidence",
    "fit_power_law",
    "logical_error_per_round",
]


def wilson_interval(failures: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Returns ``(low, high)`` bounds on the underlying failure probability.
    Unlike the normal approximation it never leaves [0, 1] and is usable when
    ``failures`` is zero, which is common deep below threshold.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= failures <= trials:
        raise ValueError("failures must lie in [0, trials]")
    p = failures / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    return (max(0.0, center - half), min(1.0, center + half))


def binomial_confidence(failures: int, trials: int, z: float = 1.96) -> tuple[float, float, float]:
    """Point estimate plus Wilson bounds: ``(estimate, low, high)``."""
    low, high = wilson_interval(failures, trials, z)
    return (failures / trials, low, high)


def fit_power_law(x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
    """Least-squares fit of ``y = A * x**k`` in log-log space.

    Returns ``(A, k)``.  Points with non-positive ``x`` or ``y`` are dropped
    (they carry no log-log information); at least two valid points are
    required.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    mask = (x > 0) & (y > 0)
    if mask.sum() < 2:
        raise ValueError("need at least two positive (x, y) points for a power-law fit")
    lx, ly = np.log(x[mask]), np.log(y[mask])
    k, loga = np.polyfit(lx, ly, 1)
    return (float(np.exp(loga)), float(k))


def logical_error_per_round(p_total: float, rounds: int) -> float:
    """Convert a cumulative failure probability over ``rounds`` repetitions
    into a per-round rate, inverting ``p_total = 1 - (1 - p)**rounds``.

    The single conversion helper every Monte Carlo result goes through
    (:mod:`repro.threshold.montecarlo`, :mod:`repro.core.memory`);
    ``p_total = 1.0`` maps to a per-round rate of exactly 1.0 rather than
    raising or being clamped inconsistently at call sites.
    """
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    if not 0.0 <= p_total <= 1.0:
        raise ValueError("p_total must lie in [0, 1]")
    return 1.0 - (1.0 - p_total) ** (1.0 / rounds)
