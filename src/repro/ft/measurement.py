"""Fault-tolerant logical measurement (paper §2 Fig. 4, §3.5).

Destructive measurement is intrinsically fault tolerant: measure all n
qubits, classically error-correct the outcome, and read the logical value —
two independent faults are needed to get it wrong.  This module provides
the circuit builder and the vectorized classical decode used by the Monte
Carlo protocols and by Shor's Toffoli gadget.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.codes.steane import SteaneCode

__all__ = [
    "destructive_logical_measurement",
    "decode_destructive_record",
    "repeated_nondestructive_measurement",
]


def destructive_logical_measurement(
    code: SteaneCode,
    block_offset: int = 0,
    cbit_offset: int = 0,
    num_qubits: int | None = None,
    num_cbits: int | None = None,
    basis: str = "Z",
) -> Circuit:
    """Measure every qubit of the block (§3.5); decode classically after.

    ``basis="X"`` prepends transversal Hadamards, measuring the encoded
    qubit in the X̄ basis (used by the Toffoli gadget's data measurements).
    """
    n = code.n
    total_q = num_qubits if num_qubits is not None else block_offset + n
    total_c = num_cbits if num_cbits is not None else cbit_offset + n
    c = Circuit(total_q, total_c, name=f"destructive-meas-{basis}")
    if basis == "X":
        for q in range(block_offset, block_offset + n):
            c.h(q, tag="measure")
    elif basis != "Z":
        raise ValueError("basis must be 'Z' or 'X'")
    for i in range(n):
        c.measure(block_offset + i, cbit_offset + i, tag="measure")
    return c


def decode_destructive_record(code: SteaneCode, flips: np.ndarray) -> np.ndarray:
    """Classically decode per-shot 7-bit records into logical values.

    Works directly on measurement *flips* because the decode (syndrome +
    parity after correction) is linear, hence reference-independent (the
    reference run's record is a random codeword of logical value 0).
    """
    return code.destructive_measurement_decode(flips)


def repeated_nondestructive_measurement(
    code: SteaneCode, repetitions: int = 2
) -> Circuit:
    """§3.5's alternative: Fig. 4's parity-copy measurement repeated
    ``repetitions`` times (a single bit-flip can fake one parity readout,
    so the measurement "must be repeated ... to ensure accuracy to order
    ε²").  One ancilla qubit per repetition; classical bit r holds round r.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    n = code.n
    c = Circuit(n + repetitions, repetitions, name="nondestructive-meas")
    support = [int(q) for q in np.nonzero(code.min_weight_logical_z().z)[0]]
    for rep in range(repetitions):
        anc = n + rep
        c.reset(anc, tag="measure")
        for q in support:
            c.cnot(q, anc, tag="measure")
        c.measure(anc, rep, tag="measure")
    return c
