"""Shor-method fault-tolerant syndrome extraction (paper §3.2–3.4, Fig. 7).

For each stabilizer generator of weight w, a w-qubit ancilla is prepared in
a verified cat/Shor state (Fig. 8); each ancilla qubit couples to exactly
one data qubit, so single ancilla faults cannot plant multi-qubit errors in
the data.  The syndrome bit is the parity of the w ancilla measurements
(§3.2), and the whole syndrome is measured ``repetitions`` times so that a
single faulty extraction cannot trigger a damaging miscorrection (§3.4).

Generalization to arbitrary stabilizer codes follows §3.6: each generator
is conjugated into Z-type by single-qubit rotations (H for X factors,
H·S† for Y factors), extracted, and rotated back.  For CSS codes the
optimized Fig. 7(c) form is used for X-type generators — the ancilla acts
as the *source* of the XORs, so no basis rotations ever touch the data.

Ancilla preparation runs in an off-line *factory* (consistent with the
maximal-parallelism assumption of §6): :meth:`ancilla_factory` returns the
noisy prep circuit whose accepted output frames are injected into
:meth:`extraction_circuit` via the frame engine's ``initial_fx/fz``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.circuit import Circuit
from repro.codes.stabilizer_code import StabilizerCode
from repro.ft.cat import CatStatePrep
from repro.paulis.pauli import Pauli

__all__ = ["ShorSyndromeExtraction", "AncillaBlock"]


@dataclass(frozen=True)
class AncillaBlock:
    """Placement of one generator's ancilla within the extraction circuit.

    Attributes
    ----------
    generator_index: which stabilizer generator this block serves.
    repetition: which syndrome-measurement round it belongs to.
    qubits: ancilla wires in the extraction circuit.
    cbits: classical bits holding the w measurement outcomes whose parity
        is the syndrome bit.
    mode: ``"target"`` (Shor state, data→ancilla XORs, Z-type extraction)
        or ``"source"`` (cat state, ancilla→data XORs, X-type extraction).
    """

    generator_index: int
    repetition: int
    qubits: tuple[int, ...]
    cbits: tuple[int, ...]
    mode: str


class ShorSyndromeExtraction:
    """Builder for Shor-method extraction circuits over any stabilizer code.

    Parameters
    ----------
    code:
        The stabilizer code protecting the data block (qubits [0, n)).
    repetitions:
        How many times the full syndrome is measured (§3.4; default 2).
    verify_ancilla:
        Include the Fig. 8 cat verification in the factory circuits.
    """

    def __init__(
        self,
        code: StabilizerCode,
        repetitions: int = 2,
        verify_ancilla: bool = True,
    ) -> None:
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        self.code = code
        self.repetitions = repetitions
        self.verify_ancilla = verify_ancilla
        self.blocks: list[AncillaBlock] = []
        self._plan()

    # ------------------------------------------------------------------
    def _plan(self) -> None:
        n = self.code.n
        next_qubit = n
        next_cbit = 0
        for rep in range(self.repetitions):
            for gi, gen in enumerate(self.code.generators):
                w = gen.weight()
                mode = "source" if self._is_pure_x(gen) else "target"
                qubits = tuple(range(next_qubit, next_qubit + w))
                cbits = tuple(range(next_cbit, next_cbit + w))
                self.blocks.append(AncillaBlock(gi, rep, qubits, cbits, mode))
                next_qubit += w
                next_cbit += w
        self.total_qubits = next_qubit
        self.total_cbits = next_cbit

    @staticmethod
    def _is_pure_x(gen: Pauli) -> bool:
        return bool(gen.x.any()) and not bool(gen.z.any())

    # ------------------------------------------------------------------
    def ancilla_factory(self, width: int) -> tuple[Circuit, int]:
        """Factory circuit preparing one verified width-``width`` cat state.

        Returns ``(circuit, accept_cbit)``; the circuit acts on its own
        ``width + 1``-qubit register (cat + verification scratch) with one
        classical bit.  Acceptance = measurement flip 0.  The transversal
        Hadamard that turns the cat into a Shor state is *not* applied here
        — it belongs to the extraction circuit so its noise is attributed
        to the EC round (and "target"/"source" blocks share one factory).
        """
        prep = CatStatePrep(tuple(range(width)), width, 0) if self.verify_ancilla else CatStatePrep(
            tuple(range(width))
        )
        nq = width + (1 if self.verify_ancilla else 0)
        return prep.circuit(nq, 1), 0

    def factory_widths(self) -> list[int]:
        """Distinct cat widths needed (one factory per width)."""
        return sorted({len(b.qubits) for b in self.blocks})

    # ------------------------------------------------------------------
    def extraction_circuit(self) -> Circuit:
        """The data⊗ancilla circuit with prep omitted (factory-injected).

        Ancillas are assumed to arrive as verified cat states on their
        wires; everything here — rotations, XORs, measurements — is noisy.
        """
        c = Circuit(self.total_qubits, self.total_cbits, name=f"shor-ec-{self.code.name}")
        current_rep = 0
        for block in self.blocks:
            if block.repetition != current_rep:
                current_rep = block.repetition
                c.tick()
            gen = self.code.generators[block.generator_index]
            self._extract_one(c, gen, block)
        return c

    def _extract_one(self, c: Circuit, gen: Pauli, block: AncillaBlock) -> None:
        support = [int(q) for q in np.nonzero(gen.x | gen.z)[0]]
        if block.mode == "source":
            # Fig. 7(c): cat as XOR source; no rotations touch the data.
            for anc_q, data_q in zip(block.qubits, support):
                c.cnot(anc_q, data_q, tag="syndrome")
            for anc_q in block.qubits:
                c.h(anc_q, tag="syndrome")
        else:
            # Rotate any X/Y factors into Z (§3.6), extract, rotate back.
            rotated: list[tuple[int, str]] = []
            for q in support:
                if gen.x[q] and gen.z[q]:
                    c.sdg(q, tag="rotate")
                    c.h(q, tag="rotate")
                    rotated.append((q, "y"))
                elif gen.x[q]:
                    c.h(q, tag="rotate")
                    rotated.append((q, "x"))
            # Complete the Shor state (cat + transversal H), then XOR
            # data→ancilla.
            for anc_q in block.qubits:
                c.h(anc_q, tag="syndrome")
            for data_q, anc_q in zip(support, block.qubits):
                c.cnot(data_q, anc_q, tag="syndrome")
            for q, kind in reversed(rotated):
                if kind == "y":
                    c.h(q, tag="rotate")
                    c.s(q, tag="rotate")
                else:
                    c.h(q, tag="rotate")
        for anc_q, cb in zip(block.qubits, block.cbits):
            c.measure(anc_q, cb, tag="syndrome")

    # ------------------------------------------------------------------
    def parse_syndromes(self, meas_flips: np.ndarray) -> np.ndarray:
        """Fold measurement flips into syndrome bits.

        Returns ``(shots, repetitions, n_generators)`` uint8: the parity of
        each ancilla block's measurements (reference parity is 0 for a
        stabilized data block, so flips parity = measured syndrome).
        """
        flips = np.atleast_2d(np.asarray(meas_flips, dtype=np.uint8))
        out = np.zeros(
            (flips.shape[0], self.repetitions, len(self.code.generators)), dtype=np.uint8
        )
        for block in self.blocks:
            parity = flips[:, list(block.cbits)].sum(axis=1) % 2
            out[:, block.repetition, block.generator_index] = parity
        return out

    def initial_ancilla_layout(self) -> list[AncillaBlock]:
        """Blocks in circuit order, for factory-frame injection."""
        return list(self.blocks)
