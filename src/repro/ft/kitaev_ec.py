"""Kitaev-style syndrome extraction with bare ancillas (§3.6, last ¶).

"[Kitaev] invented a family of quantum error-correcting codes such that
many errors within the code block can be corrected, but only four XOR
gates are needed to compute each bit of the syndrome.  In this case, even
if we use just a single ancilla qubit for the computation of each syndrome
bit (rather than an expanded ancilla state like a Shor or Steane state),
only a limited number of errors can feed back from the ancilla into the
data."

The codes are the toric codes of :mod:`repro.topo.toric`: every check has
weight 4, so a single bare ancilla per check is the target (plaquette,
Z-type) or source (vertex, X-type) of exactly four XORs.  A single ancilla
fault can back-propagate into at most three data qubits — bounded by the
check weight, not the block size — which a large enough lattice absorbs.
The audit function proves that bound by exhaustive fault injection.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.noise.models import NoiseModel
from repro.pauliframe.engine import FrameSimulator
from repro.topo.toric import ToricCode

__all__ = ["toric_extraction_circuit", "audit_feedback_bound", "toric_syndromes_from_flips"]


def toric_extraction_circuit(code: ToricCode) -> Circuit:
    """One full syndrome measurement of a toric code with bare ancillas.

    Layout: data edges on [0, n); one ancilla per plaquette check on
    [n, n + d²); one per vertex check after that.  Classical bits follow
    the same order.  Plaquette (Z-type) checks use data→ancilla XORs;
    vertex (X-type) checks use an ancilla prepared in |+> as the XOR
    source, read out in the X basis — four gates per syndrome bit either
    way, the §3.6 selling point.
    """
    n = code.n
    d2 = code.d * code.d
    total_q = n + 2 * d2
    c = Circuit(total_q, 2 * d2, name=f"kitaev-ec-d{code.d}")
    for j, row in enumerate(code.plaquette_checks):
        anc = n + j
        c.reset(anc, tag="anc_prep")
        for q in np.nonzero(row)[0]:
            c.cnot(int(q), anc, tag="syndrome")
        c.measure(anc, j, tag="syndrome")
    for j, row in enumerate(code.vertex_checks):
        anc = n + d2 + j
        c.reset(anc, tag="anc_prep")
        c.h(anc, tag="anc_prep")
        for q in np.nonzero(row)[0]:
            c.cnot(anc, int(q), tag="syndrome")
        c.h(anc, tag="syndrome")
        c.measure(anc, d2 + j, tag="syndrome")
    return c


def toric_syndromes_from_flips(code: ToricCode, meas_flips: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split the classical record into (plaquette, vertex) syndromes."""
    d2 = code.d * code.d
    flips = np.atleast_2d(np.asarray(meas_flips, dtype=np.uint8))
    return flips[:, :d2].copy(), flips[:, d2:].copy()


def audit_feedback_bound(code: ToricCode) -> dict[str, int]:
    """Exhaustive single-fault audit of the extraction circuit.

    Returns the worst-case number of *data* errors (X-type and Z-type
    counted separately) planted by any single fault.  The §3.6 claim is
    that this is bounded by the check weight (4) minus one, independent of
    the lattice size — so the feedback is "comfortably less than the
    maximum number of errors that the code can tolerate" once d is large.
    """
    circuit = toric_extraction_circuit(code)
    specs = []
    for i, op in enumerate(circuit):
        if op.gate == "TICK":
            continue
        for q in op.qubits:
            for kind in ("X", "Y", "Z"):
                specs.append((i, q, kind))
    sim = FrameSimulator(circuit, NoiseModel())
    res = sim.run(len(specs), seed=0, fault_injections=specs)
    n = code.n
    fx = res.fx[:, :n]
    fz = res.fz[:, :n]
    # Residuals that are stabilizers are no error at all: reduce modulo
    # the check row spaces before counting (a full check's worth of
    # feedback is the identity on the code space).
    x_weights = _reduced_weights(fx, code.plaquette_checks, code.vertex_checks)
    z_weights = _reduced_weights(fz, code.vertex_checks, code.plaquette_checks)
    return {
        "fault_cases": len(specs),
        "max_x_feedback": int(x_weights.max()),
        "max_z_feedback": int(z_weights.max()),
        "check_weight": 4,
    }


def _reduced_weights(frames: np.ndarray, detecting, stabilizing) -> np.ndarray:
    """Minimum weight of each frame modulo the stabilizing row space
    (small exhaustive reduction: try XORing single stabilizer rows while
    it decreases the weight — sufficient for the weight ≤ 4 feedback
    patterns this audit encounters)."""
    frames = frames.copy()
    rows = np.asarray(stabilizing, dtype=np.uint8)
    weights = frames.sum(axis=1)
    improved = True
    while improved:
        improved = False
        for row in rows:
            candidate = frames ^ row
            cw = candidate.sum(axis=1)
            better = cw < weights
            if better.any():
                frames[better] = candidate[better]
                weights = frames.sum(axis=1)
                improved = True
    return weights
