"""Steane-method fault-tolerant error correction (paper §3.3, Fig. 9).

One 7-qubit ancilla block measures all three bit-flip checks at once: the
ancilla is prepared in the Steane state |S> = (|0̄>+|1̄>)/√2 (Eq. 17), the
data is XORed into it transversally, and the 7 measurement outcomes are
Hamming-parity-checked classically — "only 14 ancilla bits and 14 XOR
gates" against the Shor method's 24+24 (§3.3).  The phase-flip syndrome is
obtained the same way in the rotated basis, realized per Fig. 7(c) by
reversing the XOR direction from a |0̄> ancilla and measuring in the X
basis.

Ancilla verification (§3.3): a freshly encoded |0̄> may carry *correlated*
bit-flip errors from a single encoder fault; each ancilla is therefore
checked against a second encoded block (transversal XOR, destructive
measurement, classical Hamming decode), twice, with the tie-breaking rule
"if the two verification attempts give conflicting results, it is safe to
do nothing."  Preparation+verification run in an off-line factory; accepted
frames are injected into the extraction circuit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import Circuit
from repro.codes.steane import SteaneCode

__all__ = ["SteaneAncillaPrep", "SteaneSyndromeExtraction", "SteaneBlockLayout"]


class SteaneAncillaPrep:
    """Factory for verified |0̄> ancilla blocks (§3.3).

    Register layout: qubits [0,7) = the ancilla block being prepared;
    [7,14) and [14,21) = the two verification blocks.  Classical bits
    [0,7) and [7,14) hold the two destructive verification measurements.

    The verification decision is *classical post-processing* (see
    :meth:`parse`): each verify block is Hamming-decoded to a logical bit
    v_k; v1 = v2 = 1 means "the checked block is flipped — apply X̄";
    disagreement means a verifier was faulty — do nothing.
    """

    def __init__(self, code: SteaneCode | None = None, verify: bool = True) -> None:
        self.code = code or SteaneCode()
        self.verify = verify
        self.num_qubits = 21 if verify else 7
        self.num_cbits = 14 if verify else 0

    def circuit(self) -> Circuit:
        code = self.code
        c = Circuit(self.num_qubits, self.num_cbits, name="steane-anc-factory")
        enc = code.encoding_circuit()
        for q in range(7):
            c.reset(q, tag="anc_prep")
        c.compose(enc.remapped({i: i for i in range(7)}, num_qubits=self.num_qubits))
        if not self.verify:
            return c
        for rep in range(2):
            base = 7 * (rep + 1)
            for q in range(7):
                c.reset(base + q, tag="verify")
            c.compose(
                enc.remapped({i: base + i for i in range(7)}, num_qubits=self.num_qubits)
            )
            # Bitwise XOR checked-block -> verify-block, then destructive
            # measurement of the verify block.
            for q in range(7):
                c.cnot(q, base + q, tag="verify")
            for q in range(7):
                c.measure(base + q, 7 * rep + q, tag="verify")
        return c

    def parse(self, meas_flips: np.ndarray) -> np.ndarray:
        """Per-shot X̄ fixups from the two verification outcomes.

        Returns ``(shots,)`` uint8 — 1 where both verifications decoded the
        checked block as |1̄>-like and the transversal flip is applied.
        (Destructive decode is reference-invariant, so it acts on flips.)
        """
        flips = np.atleast_2d(np.asarray(meas_flips, dtype=np.uint8))
        v1 = self.code.destructive_measurement_decode(flips[:, 0:7])
        v2 = self.code.destructive_measurement_decode(flips[:, 7:14])
        return (v1 & v2).astype(np.uint8)

    def apply_fixups(self, fx: np.ndarray, flip: np.ndarray) -> np.ndarray:
        """XOR the transversal X̄ into the checked block's frames."""
        out = np.asarray(fx, dtype=np.uint8).copy()
        out[flip.astype(bool), :] ^= 1
        return out

    def parse_packed(self, flips: np.ndarray) -> np.ndarray:
        """:meth:`parse` over bit-packed measurement planes.

        ``flips`` is ``(14, words)`` uint64 (shots along the bit axis);
        returns a ``(words,)`` packed X̄-fixup mask.  The classical Hamming
        decode is pure parity algebra — each syndrome bit is the XOR of a
        check's measurement rows, and correcting the located single flip
        restores codeword parity, so the decoded logical bit is
        ``raw_parity ^ (syndrome != 0)`` — all computable as plane-wise
        XOR/OR without unpacking a single shot.
        """
        h = self.code.hz.astype(bool)

        def decode(block: np.ndarray) -> np.ndarray:
            parity = np.bitwise_xor.reduce(block, axis=0)
            nonzero_syndrome = np.zeros_like(parity)
            for check in h:
                nonzero_syndrome |= np.bitwise_xor.reduce(block[check], axis=0)
            return parity ^ nonzero_syndrome

        return decode(flips[0:7]) & decode(flips[7:14])


@dataclass(frozen=True)
class SteaneBlockLayout:
    """Wire/bit placement for one syndrome half in the extraction circuit."""

    kind: str  # "bitflip" or "phaseflip"
    repetition: int
    anc_qubits: tuple[int, ...]
    cbits: tuple[int, ...]


class SteaneSyndromeExtraction:
    """One Steane EC round on a 7-qubit data block (Fig. 9).

    Data occupies qubits [0,7).  Each repetition uses two fresh ancilla
    blocks: one measuring the bit-flip syndrome (ancilla rotated to |S>
    with in-circuit Hadamards, data→ancilla XORs, Z measurement) and one
    measuring the phase-flip syndrome (|0̄> ancilla as XOR source,
    Hadamard + Z measurement = X-basis readout).  Both syndrome types are
    measured ``repetitions`` times, as the circuit of Fig. 9 shows.
    """

    def __init__(self, code: SteaneCode | None = None, repetitions: int = 2) -> None:
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        self.code = code or SteaneCode()
        self.repetitions = repetitions
        self.layouts: list[SteaneBlockLayout] = []
        next_q, next_c = 7, 0
        for rep in range(repetitions):
            for kind in ("bitflip", "phaseflip"):
                self.layouts.append(
                    SteaneBlockLayout(
                        kind,
                        rep,
                        tuple(range(next_q, next_q + 7)),
                        tuple(range(next_c, next_c + 7)),
                    )
                )
                next_q += 7
                next_c += 7
        self.total_qubits = next_q
        self.total_cbits = next_c

    # ------------------------------------------------------------------
    def extraction_circuit(self) -> Circuit:
        c = Circuit(self.total_qubits, self.total_cbits, name="steane-ec")
        current_rep = 0
        for layout in self.layouts:
            if layout.repetition != current_rep:
                current_rep = layout.repetition
                c.tick()
            if layout.kind == "bitflip":
                # |0̄> -> |S> with transversal R, then data XORed in.
                for a in layout.anc_qubits:
                    c.h(a, tag="syndrome")
                for d, a in zip(range(7), layout.anc_qubits):
                    c.cnot(d, a, tag="syndrome")
                for a, cb in zip(layout.anc_qubits, layout.cbits):
                    c.measure(a, cb, tag="syndrome")
            else:
                # |0̄> as the source block, X-basis readout (Fig. 7c).
                for a, d in zip(layout.anc_qubits, range(7)):
                    c.cnot(a, d, tag="syndrome")
                for a in layout.anc_qubits:
                    c.h(a, tag="syndrome")
                for a, cb in zip(layout.anc_qubits, layout.cbits):
                    c.measure(a, cb, tag="syndrome")
        return c

    # ------------------------------------------------------------------
    def parse_syndromes(self, meas_flips: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Hamming parity checks of the 7-bit records.

        Returns ``(x_syndromes, z_syndromes)``, each of shape
        ``(shots, repetitions, 3)``: the classical H·(measured bits), which
        for the bit-flip blocks locates X errors in the data and for the
        phase-flip blocks locates Z errors.
        """
        flips = np.atleast_2d(np.asarray(meas_flips, dtype=np.uint8))
        shots = flips.shape[0]
        x_syn = np.zeros((shots, self.repetitions, 3), dtype=np.uint8)
        z_syn = np.zeros((shots, self.repetitions, 3), dtype=np.uint8)
        h = self.code.hz  # Eq. (1) Hamming matrix, rows = parity checks
        # One broadcast matmul for every layout at once (0/1 sums are exact
        # in float64); the per-layout loop only scatters the small results.
        cbit_idx = np.array([layout.cbits for layout in self.layouts], dtype=np.intp)
        bits = flips[:, cbit_idx].astype(np.float64)  # (shots, L, 7)
        syn = (np.rint(bits @ h.T.astype(np.float64)).astype(np.int64) & 1).astype(np.uint8)
        for k, layout in enumerate(self.layouts):
            if layout.kind == "bitflip":
                x_syn[:, layout.repetition] = syn[:, k]
            else:
                z_syn[:, layout.repetition] = syn[:, k]
        return x_syn, z_syn

    def parse_syndromes_packed(self, flips: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`parse_syndromes` over bit-packed measurement planes.

        ``flips`` is ``(total_cbits, words)`` uint64.  Returns
        ``(x_syn, z_syn)`` of shape ``(repetitions, 3, words)``: packed
        syndrome bit-planes, each the XOR of the measurement rows in one
        Hamming check's support.
        """
        h = self.code.hz.astype(bool)
        nwords = flips.shape[1]
        x_syn = np.zeros((self.repetitions, 3, nwords), dtype=np.uint64)
        z_syn = np.zeros_like(x_syn)
        for layout in self.layouts:
            cbits = np.asarray(layout.cbits, dtype=np.intp)
            target = x_syn if layout.kind == "bitflip" else z_syn
            for j, check in enumerate(h):
                target[layout.repetition, j] = np.bitwise_xor.reduce(
                    flips[cbits[check]], axis=0
                )
        return x_syn, z_syn

    def ancilla_factory(self) -> SteaneAncillaPrep:
        return SteaneAncillaPrep(self.code)
