"""Transversal logical gates (paper §4.1, Figs. 5 and 11).

For the Steane code, NOT, the Hadamard R, the phase gate P, and XOR are all
implemented bitwise: NOT and R literally, P as bitwise P⁻¹ (the odd
codewords have weight ≡ 3 mod 4), and XOR block-to-block (Fig. 11).  Each
qubit of each block is touched by exactly one gate, so a single fault
produces at most one error per block — the definition of fault tolerance
for gates.
"""

from __future__ import annotations

from repro.circuits.circuit import Circuit
from repro.codes.stabilizer_code import StabilizerCode

__all__ = [
    "transversal_pauli",
    "transversal_hadamard",
    "transversal_phase",
    "transversal_cnot",
]


def _block(offset: int, n: int) -> range:
    return range(offset, offset + n)


def transversal_pauli(
    code: StabilizerCode, letter: str, block_offset: int = 0, num_qubits: int | None = None
) -> Circuit:
    """Bitwise X/Y/Z on one code block — the encoded Pauli (§4.1)."""
    if letter not in ("X", "Y", "Z"):
        raise ValueError("letter must be X, Y, or Z")
    n = code.n
    total = num_qubits if num_qubits is not None else block_offset + n
    c = Circuit(total, name=f"transversal-{letter}")
    for q in _block(block_offset, n):
        c.append(letter, q, tag="logic")
    return c


def transversal_hadamard(
    code: StabilizerCode, block_offset: int = 0, num_qubits: int | None = None
) -> Circuit:
    """Bitwise R implements the encoded R for the Steane code (Eq. 11)."""
    n = code.n
    total = num_qubits if num_qubits is not None else block_offset + n
    c = Circuit(total, name="transversal-H")
    for q in _block(block_offset, n):
        c.h(q, tag="logic")
    return c


def transversal_phase(
    code: StabilizerCode, block_offset: int = 0, num_qubits: int | None = None
) -> Circuit:
    """Encoded P via bitwise P⁻¹ = S† (§4.1: "we actually apply P⁻¹ bitwise
    to implement P", because odd Hamming codewords have weight ≡ 3 mod 4).
    """
    n = code.n
    total = num_qubits if num_qubits is not None else block_offset + n
    c = Circuit(total, name="transversal-P")
    for q in _block(block_offset, n):
        c.sdg(q, tag="logic")
    return c


def transversal_cnot(
    code: StabilizerCode,
    source_offset: int,
    target_offset: int,
    num_qubits: int | None = None,
) -> Circuit:
    """Fig. 11: bitwise XOR from the source block into the target block
    implements the encoded XOR (the even codewords form a subcode whose
    nontrivial coset is the odd codewords)."""
    n = code.n
    total = num_qubits if num_qubits is not None else max(source_offset, target_offset) + n
    c = Circuit(total, name="transversal-CNOT")
    for i in range(n):
        c.cnot(source_offset + i, target_offset + i, tag="logic")
    return c
