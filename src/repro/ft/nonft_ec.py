"""The non-fault-tolerant strawman vs the fault-tolerant fix (Figs. 2, 6).

Fig. 2 computes each bit-flip syndrome bit by XOR-ing four data qubits into
a *single reused* ancilla qubit.  §3.1 explains the failure: a single phase
error on that ancilla propagates backward through up to four XORs, planting
a multi-qubit phase error in the data — a block-level fault at order ε.
Fig. 6's "good" circuit expands the ancilla to four qubits (a Shor state),
each the target of exactly one XOR, removing the shared failure point.

These builders produce the bit-flip-syndrome halves only (the comparison in
experiment E02 concerns the back-action mechanism, which is identical for
the phase half in the rotated basis).
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.codes.css import CSSCode
from repro.ft.cat import shor_state_prep

__all__ = ["bad_syndrome_circuit", "good_syndrome_circuit"]


def bad_syndrome_circuit(code: CSSCode) -> Circuit:
    """Fig. 2: one ancilla qubit per Z-check, reused as the target of every
    XOR in that check's support.  NOT fault tolerant — for demonstration.

    Layout: data on qubits [0, n); one ancilla per check row after that.
    Classical bit j holds syndrome bit j.
    """
    n = code.n
    checks = code.hz
    num_anc = checks.shape[0]
    c = Circuit(n + num_anc, num_anc, name=f"bad-syndrome-{code.name}")
    for j, row in enumerate(checks):
        anc = n + j
        c.reset(anc, tag="anc_prep")
        for q in np.nonzero(row)[0]:
            c.cnot(int(q), anc, tag="syndrome")
        c.measure(anc, j, tag="syndrome")
    return c


def good_syndrome_circuit(code: CSSCode, verify: bool = True) -> Circuit:
    """Fig. 6 "Good!": a fresh Shor state per check; each ancilla qubit is
    the target of exactly one XOR, so ancilla phase errors cannot fan out
    into the data.

    Classical layout: for check j of weight w_j, bits are assigned in
    order — w_j measurement bits whose *parity* is syndrome bit j, then
    (when ``verify``) one verification bit.  Use :func:`parse_good_syndrome`
    to decode.
    """
    n = code.n
    checks = code.hz
    total_anc = max(int(row.sum()) for row in checks) + (1 if verify else 0)
    c = Circuit(n + total_anc, _good_num_cbits(code, verify), name=f"good-syndrome-{code.name}")
    cbit = 0
    for row in checks:
        support = [int(q) for q in np.nonzero(row)[0]]
        w = len(support)
        anc = tuple(range(n, n + w))
        vq = n + w if verify else None
        vb = cbit + w if verify else None
        c.compose(shor_state_prep(anc, vq, vb, c.num_qubits, c.num_cbits))
        for data_q, anc_q in zip(support, anc):
            c.cnot(data_q, anc_q, tag="syndrome")
        for i, anc_q in enumerate(anc):
            c.measure(anc_q, cbit + i, tag="syndrome")
        cbit += w + (1 if verify else 0)
    return c


def _good_num_cbits(code: CSSCode, verify: bool) -> int:
    return int(sum(int(row.sum()) + (1 if verify else 0) for row in code.hz))


def parse_good_syndrome(
    code: CSSCode, meas_flips: np.ndarray, verify: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Decode the classical record of :func:`good_syndrome_circuit`.

    Returns ``(syndrome, verify_fail)``: per-shot syndrome bits (parity of
    each check's Shor-state measurements) and a flag set when any
    verification bit fired.
    """
    flips = np.atleast_2d(np.asarray(meas_flips, dtype=np.uint8))
    shots = flips.shape[0]
    syndrome = np.zeros((shots, code.hz.shape[0]), dtype=np.uint8)
    verify_fail = np.zeros(shots, dtype=np.uint8)
    cbit = 0
    for j, row in enumerate(code.hz):
        w = int(row.sum())
        syndrome[:, j] = flips[:, cbit : cbit + w].sum(axis=1) % 2
        if verify:
            verify_fail |= flips[:, cbit + w]
            cbit += w + 1
        else:
            cbit += w
    return syndrome, verify_fail
