"""Shor's fault-tolerant Toffoli gate (paper §4.1, Figs. 12–13).

The construction has two stages.  Stage 1 prepares three ancilla blocks in
|A> = ½ Σ_{a,b} |a, b, ab> by Hadamarding three |0̄>'s (Eq. 24) and then
*measuring* in the {|A>, |B>} basis (Fig. 12): a control in |+> applies the
conditional phase (−1)^{ab+c} — a CCZ onto (a, b) and a CZ onto c — and is
read out in the X basis; outcome 1 means |B> = NOT₃|A> and is repaired by
NOT₃.  Stage 2 entangles the ancilla with the data via three XORs and a
Hadamard (Eq. 27), measures the data registers away, and applies
measurement-conditioned Clifford fix-ups (the arrows of Fig. 13); the
ancilla registers become the output data.

One fix-up — the m1·m2 term — is conditioned on an AND of two outcomes,
which the parity-only condition field of the circuit IR cannot express;
like the paper's classical co-processor, :meth:`ShorToffoliGadget.run_dense`
evaluates it classically between circuit segments.  The resource-accounting
circuit (:func:`encoded_toffoli_resources`) includes every gate location of
the transversal encoded version with verified 7-bit cat-state controls.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.analysis import resource_summary
from repro.circuits.circuit import Circuit
from repro.codes.steane import SteaneCode
from repro.ft.cat import CatStatePrep

__all__ = ["ShorToffoliGadget", "encoded_toffoli_resources"]


class ShorToffoliGadget:
    """Unencoded Fig. 13 gadget on 7 qubits.

    Register layout: ancillas a, b, c on qubits 0–2 (they become the output
    x, y, z⊕xy), data x, y, z on qubits 3–5, measurement control on qubit
    6.  Classical bits: 0 = {A,B} measurement, 1–3 = data measurements.
    """

    ANC_A, ANC_B, ANC_C = 0, 1, 2
    DATA_X, DATA_Y, DATA_Z = 3, 4, 5
    CONTROL = 6

    # -- stage 1: |A> preparation by measurement -------------------------
    def ancilla_prep_circuit(self) -> Circuit:
        c = Circuit(7, 4, name="toffoli-anc-prep")
        for q in (self.ANC_A, self.ANC_B, self.ANC_C):
            c.h(q, tag="toffoli_prep")
        # Fig. 12: control in |+>, conditional Z_AB = (−1)^{ab+c}, X-basis
        # readout; outcome 1 projects onto |B> which NOT₃ repairs.
        c.h(self.CONTROL, tag="toffoli_prep")
        c.append("CCZ", self.CONTROL, self.ANC_A, self.ANC_B, tag="toffoli_prep")
        c.cz(self.CONTROL, self.ANC_C, tag="toffoli_prep")
        c.h(self.CONTROL, tag="toffoli_prep")
        c.measure(self.CONTROL, 0, tag="toffoli_prep")
        c.x(self.ANC_C, condition=(0,), tag="toffoli_prep")
        return c

    # -- stage 2: couple to data, measure the data away ------------------
    def coupling_circuit(self) -> Circuit:
        c = Circuit(7, 4, name="toffoli-coupling")
        c.cnot(self.ANC_A, self.DATA_X, tag="toffoli")
        c.cnot(self.ANC_B, self.DATA_Y, tag="toffoli")
        c.cnot(self.DATA_Z, self.ANC_C, tag="toffoli")
        c.h(self.DATA_Z, tag="toffoli")
        c.measure(self.DATA_X, 1, tag="toffoli")
        c.measure(self.DATA_Y, 2, tag="toffoli")
        c.measure(self.DATA_Z, 3, tag="toffoli")
        return c

    # -- stage 3: conditioned fix-ups -------------------------------------
    def fixup_circuit(self, m1: int, m2: int, m3: int) -> Circuit:
        """Fix-ups for concrete outcomes (the AND is evaluated here).

        Derivation: before fix-ups the ancilla registers hold
        |x⊕m1, y⊕m2, ab⊕z> with a = x⊕m1, b = y⊕m2 and a residual phase
        (−1)^{m3·z}.  Restoring the first two registers and expanding
        ab = xy ⊕ x·m2 ⊕ y·m1 ⊕ m1·m2 dictates each conditioned gate; the
        phase is repaired by (−1)^z = CZ(a,b)·Z(c) acting on the *fixed*
        registers, so it must come last.
        """
        c = Circuit(7, 4, name="toffoli-fixup")
        if m1:
            c.x(self.ANC_A, tag="toffoli_fix")
        if m2:
            c.x(self.ANC_B, tag="toffoli_fix")
        if m2:
            c.cnot(self.ANC_A, self.ANC_C, tag="toffoli_fix")
        if m1:
            c.cnot(self.ANC_B, self.ANC_C, tag="toffoli_fix")
        if m1 and m2:
            c.x(self.ANC_C, tag="toffoli_fix")
        if m3:
            c.z(self.ANC_C, tag="toffoli_fix")
            c.cz(self.ANC_A, self.ANC_B, tag="toffoli_fix")
        return c

    # ------------------------------------------------------------------
    def run_dense(
        self, amplitudes: np.ndarray, rng: "int | np.random.Generator | None" = None
    ) -> np.ndarray:
        """Execute the gadget exactly on an 8-dimensional data state.

        ``amplitudes``: length-8 complex vector over |x y z>.  Returns the
        normalized length-8 output vector carried by the former ancilla
        registers; for a correct gadget it equals CCX·input (up to global
        phase) for *every* measurement record.
        """
        from repro.statevector import StateVector, run_circuit
        from repro.util.rng import as_rng

        gen = as_rng(rng)
        amps = np.asarray(amplitudes, dtype=complex).ravel()
        if amps.shape[0] != 8:
            raise ValueError("data state must be 3 qubits (8 amplitudes)")
        # Embed: qubits 0-2 (ancilla) and 6 (control) start in |0>; the
        # data value xyz indexes qubits 3-5.
        full = np.zeros((2,) * 7, dtype=complex)
        for idx in range(8):
            x, y, z = (idx >> 2) & 1, (idx >> 1) & 1, idx & 1
            full[0, 0, 0, x, y, z, 0] = amps[idx]
        sv = StateVector.from_amplitudes(full.reshape(-1))

        sv, rec1 = run_circuit(self.ancilla_prep_circuit(), state=sv, rng=gen)
        sv, rec2 = run_circuit(self.coupling_circuit(), state=sv, rng=gen)
        m1, m2, m3 = rec2[1], rec2[2], rec2[3]
        sv, _ = run_circuit(self.fixup_circuit(m1, m2, m3), state=sv, rng=gen)

        final = sv.amplitudes().reshape((2,) * 7)
        out = final[:, :, :, m1, m2, m3, rec1[0]]
        vec = out.reshape(8).copy()
        norm = np.linalg.norm(vec)
        if norm < 1e-9:
            raise AssertionError("measurement slicing inconsistent with record")
        return vec / norm


def encoded_toffoli_resources(
    measurement_repetitions: int = 2, verify_cats: bool = True
) -> dict[str, object]:
    """Gate-location accounting for the encoded (transversal) Fig. 13.

    Builds the full circuit on three 7-qubit ancilla blocks, three 7-qubit
    data blocks, and one verified 7-bit cat state per {A,B}-measurement
    repetition ("the measurement is repeated to ensure accuracy"), then
    returns its resource summary.  The bitwise Toffoli of the measurement
    circuit appears as 7 CCX locations per repetition — the paper's
    footnote j treats their (higher) error rate separately, which
    experiment E14 explores.
    """
    code = SteaneCode()
    n = code.n
    anc = [0, n, 2 * n]            # ancilla block offsets
    data = [3 * n, 4 * n, 5 * n]   # data block offsets
    cat_base = 6 * n
    total_q = cat_base + n + 1     # one cat register + verify scratch, reused
    num_c = measurement_repetitions * (n + 1) + 3 * n + 3
    c = Circuit(total_q, num_c, name="encoded-toffoli")

    # Stage 1: transversal H on the three ancilla blocks (Eq. 24)...
    for off in anc:
        for i in range(n):
            c.h(off + i, tag="toffoli_prep")
    # ...then the {A,B} measurement, repeated: verified cat control, bitwise
    # CCZ/CZ conditioned on the cat bits, Hadamard, destructive parity read.
    cbit = 0
    for _rep in range(measurement_repetitions):
        cat_qubits = tuple(range(cat_base, cat_base + n))
        prep = CatStatePrep(
            cat_qubits, cat_base + n if verify_cats else None, cbit + n if verify_cats else None
        )
        c.compose(prep.circuit(total_q, num_c))
        for i in range(n):
            c.append("CCZ", cat_base + i, anc[0] + i, anc[1] + i, tag="toffoli_prep")
            c.cz(cat_base + i, anc[2] + i, tag="toffoli_prep")
        for i in range(n):
            c.h(cat_base + i, tag="toffoli_prep")
            c.measure(cat_base + i, cbit + i, tag="toffoli_prep")
        cbit += n + (1 if verify_cats else 0)
    # Conditional NOT₃ on the parity of the cat measurement (transversal X).
    for i in range(n):
        c.x(anc[2] + i, condition=tuple(range(n)), tag="toffoli_prep")

    # Stage 2: transversal XORs and destructive data measurements.
    for i in range(n):
        c.cnot(anc[0] + i, data[0] + i, tag="toffoli")
        c.cnot(anc[1] + i, data[1] + i, tag="toffoli")
        c.cnot(data[2] + i, anc[2] + i, tag="toffoli")
    for i in range(n):
        c.h(data[2] + i, tag="toffoli")
    for b, off in enumerate(data):
        for i in range(n):
            c.measure(off + i, cbit + b * n + i, tag="toffoli")

    # Stage 3 fix-ups (counted at their worst case: all three fire).
    for i in range(n):
        c.x(anc[0] + i, tag="toffoli_fix")
        c.x(anc[1] + i, tag="toffoli_fix")
        c.cnot(anc[0] + i, anc[1] + i, tag="toffoli_fix")  # stands for conditioned XORs
        c.x(anc[2] + i, tag="toffoli_fix")
        c.z(anc[2] + i, tag="toffoli_fix")
        c.cz(anc[0] + i, anc[1] + i, tag="toffoli_fix")

    summary = resource_summary(c)
    summary["measurement_repetitions"] = measurement_repetitions
    summary["ccz_locations"] = summary["gate_counts"].get("CCZ", 0)
    return summary
