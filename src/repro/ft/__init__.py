"""Fault-tolerant gadgets (paper §3–§4).

Every construction of the paper's fault-tolerance toolbox, as executable
circuits over the shared IR: cat/Shor-state preparation and verification
(Fig. 8), Shor and Steane syndrome extraction (§3.2–3.3, Figs. 7 and 9),
the *non*-fault-tolerant strawman (Figs. 2/6), syndrome repetition (§3.4),
logical measurement (Fig. 4, §3.5), transversal gates (§4.1, Fig. 11),
Shor's measurement-based Toffoli (Fig. 13), and leakage detection (Fig. 15).
"""

from repro.ft.cat import CatStatePrep, shor_state_prep
from repro.ft.nonft_ec import bad_syndrome_circuit, good_syndrome_circuit
from repro.ft.shor_ec import ShorSyndromeExtraction
from repro.ft.steane_ec import SteaneAncillaPrep, SteaneSyndromeExtraction
from repro.ft.transversal import (
    transversal_cnot,
    transversal_hadamard,
    transversal_pauli,
    transversal_phase,
)
from repro.ft.measurement import destructive_logical_measurement
from repro.ft.toffoli import ShorToffoliGadget, encoded_toffoli_resources
from repro.ft.leakage_detect import leakage_detection_circuit
from repro.ft.exrec import ShorECProtocol, SteaneECProtocol, resolve_syndrome_policy

__all__ = [
    "ShorECProtocol",
    "SteaneECProtocol",
    "resolve_syndrome_policy",
    "CatStatePrep",
    "shor_state_prep",
    "bad_syndrome_circuit",
    "good_syndrome_circuit",
    "ShorSyndromeExtraction",
    "SteaneAncillaPrep",
    "SteaneSyndromeExtraction",
    "transversal_cnot",
    "transversal_hadamard",
    "transversal_pauli",
    "transversal_phase",
    "destructive_logical_measurement",
    "ShorToffoliGadget",
    "encoded_toffoli_resources",
    "leakage_detection_circuit",
]
