"""Executable fault-tolerant EC protocols (the paper's Fig. 9 as a whole).

These classes tie together the ancilla factories, the extraction circuits,
and the classical syndrome-handling policy of §3.4 into a vectorized
"run one EC round on many Monte-Carlo shots" operation — the building block
the §5 threshold analysis calls a *recovery step* and modern literature
calls an exRec.

Syndrome policy (§3.4), vectorized over shots:

* ``"paper"`` — act only when two successive syndrome measurements agree
  and are nontrivial ("there is no way occurring with a probability of
  order ε to obtain the same (nontrivial) faulty syndrome twice in a
  row"); disagreement or trivial first reading means do nothing.
* ``"first"`` — act on the first reading unconditionally (the naive
  protocol whose order-ε failure E04 demonstrates).
* ``"majority"`` — act on the bitwise majority over all repetitions
  (requires an odd repetition count).

Execution backends
------------------
``engine="compiled"`` (default) runs every circuit through
:class:`repro.pauliframe.compiled.CompiledFrameProgram` over bit-packed
frames, reuses pre-allocated packed buffers across rounds (see
:meth:`SteaneECProtocol.run_round_packed`), and batches all ancilla-factory
layouts of a round into a *single* factory execution instead of one
simulator run per layout.  ``engine="legacy"`` keeps the original
per-operation interpreter and per-layout factory runs; the parity suite
checks the two agree.
"""

from __future__ import annotations

import numpy as np

from repro.codes.css import CSSCode, _classical_correction
from repro.codes.steane import SteaneCode
from repro.codes.stabilizer_code import StabilizerCode
from repro.ft.shor_ec import ShorSyndromeExtraction
from repro.ft.steane_ec import SteaneAncillaPrep, SteaneSyndromeExtraction
from repro.noise.models import NoiseModel
from repro.pauliframe.compiled import CompiledFrameProgram
from repro.pauliframe.engine import FrameSimulator
from repro.pauliframe.packing import (
    pack_rows,
    pack_shot_major,
    unpack_rows,
    unpack_shot_major,
    words_for,
)
from repro.util.rng import as_rng

__all__ = ["SteaneECProtocol", "ShorECProtocol", "resolve_syndrome_policy"]


def resolve_syndrome_policy(syndromes: np.ndarray, policy: str) -> tuple[np.ndarray, np.ndarray]:
    """Reduce ``(shots, reps, m)`` syndrome readings to one per shot.

    Returns ``(accepted_syndrome, act_mask)``: the syndrome to decode and a
    per-shot flag for whether any correction is applied at all.
    """
    syn = np.asarray(syndromes, dtype=np.uint8)
    shots, reps, m = syn.shape
    if policy == "first":
        accepted = syn[:, 0, :]
        act = accepted.any(axis=1)
    elif policy == "paper":
        if reps < 2:
            raise ValueError("the paper policy needs >= 2 repetitions")
        first, second = syn[:, 0, :], syn[:, 1, :]
        agree = (first == second).all(axis=1)
        act = agree & first.any(axis=1)
        accepted = first
    elif policy == "majority":
        if reps % 2 == 0:
            raise ValueError("majority policy needs an odd repetition count")
        accepted = ((syn.sum(axis=1) * 2) > reps).astype(np.uint8)
        act = accepted.any(axis=1)
    else:
        raise ValueError(f"unknown syndrome policy {policy!r}")
    return accepted, act


def _check_engine(engine: str) -> None:
    if engine not in ("compiled", "legacy"):
        raise ValueError(f"unknown engine {engine!r}")


def _run_round_via_packed(
    protocol,
    shots: int,
    rng: np.random.Generator,
    data_fx: np.ndarray | None,
    data_fz: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Adapt a protocol's packed round to the unpacked run_round contract.

    Initial frames broadcast to ``(shots, n)`` before packing, matching the
    legacy path's in-place XOR semantics (packing a (1, n) or (n,) frame
    directly would hit only shot 0 of each 64-shot word).
    """
    n = protocol.data_qubits
    nwords = words_for(shots)
    dfx = np.zeros((n, nwords), dtype=np.uint64)
    dfz = np.zeros((n, nwords), dtype=np.uint64)
    if data_fx is not None:
        dfx ^= pack_shot_major(
            np.broadcast_to(np.asarray(data_fx, dtype=np.uint8), (shots, n))
        )
    if data_fz is not None:
        dfz ^= pack_shot_major(
            np.broadcast_to(np.asarray(data_fz, dtype=np.uint8), (shots, n))
        )
    protocol.run_round_packed(shots, rng, dfx, dfz)
    return unpack_shot_major(dfx, shots), unpack_shot_major(dfz, shots)


class SteaneECProtocol:
    """One Steane-method EC round, vectorized over shots.

    Parameters
    ----------
    noise: the circuit-level error model applied everywhere (factory and
        extraction alike).
    repetitions: syndrome measurements per type per round (Fig. 9 uses 2).
    policy: see module docstring.
    verify_ancilla: run the §3.3 two-block verification in the factory.
    engine: ``"compiled"`` (packed, default) or ``"legacy"``.
    """

    def __init__(
        self,
        noise: NoiseModel,
        repetitions: int = 2,
        policy: str = "paper",
        verify_ancilla: bool = True,
        code: SteaneCode | None = None,
        engine: str = "compiled",
    ) -> None:
        _check_engine(engine)
        self.code = code or SteaneCode()
        self.noise = noise
        self.policy = policy
        self.engine = engine
        self.extraction = SteaneSyndromeExtraction(self.code, repetitions)
        self.prep = SteaneAncillaPrep(self.code, verify=verify_ancilla)
        if engine == "compiled":
            self._factory_prog = CompiledFrameProgram(self.prep.circuit(), noise)
            self._extract_prog = CompiledFrameProgram(
                self.extraction.extraction_circuit(), noise
            )
            self._factory_sim = self._factory_prog
            self._extract_sim = self._extract_prog
            self._buffers: dict[int, tuple] = {}
        else:
            self._factory_sim = FrameSimulator(self.prep.circuit(), noise, backend="legacy")
            self._extract_sim = FrameSimulator(
                self.extraction.extraction_circuit(), noise, backend="legacy"
            )

    def __getstate__(self) -> dict:
        # The packed work buffers are scratch — their contents are whatever
        # the last round left behind.  They must not travel in the pickle:
        # the result cache's content-addressed run keys hash pickled
        # protocols, so leaked scratch would make a protocol's identity
        # depend on what it happened to execute last (and bloat the pickle
        # shipped to every worker).  Rebuilt lazily on first use.
        state = dict(self.__dict__)
        if "_buffers" in state:
            state = {**state, "_buffers": {}}
        return state

    @property
    def data_qubits(self) -> int:
        return self.code.n

    # ------------------------------------------------------------------
    def sample_ancilla_blocks(
        self, shots: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Residual frames of one factory-verified |0̄> block per shot."""
        res = self._factory_sim.run(shots, rng)
        flip = self.prep.parse(res.meas_flips) if self.prep.verify else np.zeros(shots, np.uint8)
        fx = self.prep.apply_fixups(res.fx[:, :7], flip)
        return fx, res.fz[:, :7].copy()

    def _round_buffers(self, shots: int) -> tuple:
        """Pre-allocated packed buffers, reused across rounds at one size.

        The factory batch pads each layout's shot block to a whole number
        of 64-bit words so layout slices are word ranges — the batched
        factory output feeds the extraction buffer without ever unpacking.
        """
        buf = self._buffers.get(shots)
        if buf is None:
            ext = self._extract_prog.new_buffers(shots)
            padded = words_for(shots) * 64
            fac = self._factory_prog.new_buffers(padded * len(self.extraction.layouts))
            buf = ext + fac
            self._buffers[shots] = buf
        return buf

    def _corrections_packed(self, syn: np.ndarray) -> np.ndarray | None:
        """Packed twin of :meth:`_corrections` for the Hamming decode.

        ``syn`` is ``(repetitions, 3, words)`` uint64 syndrome planes.
        Returns ``(7, words)`` packed correction planes, or ``None`` when
        the policy needs the generic unpacked path.  A qubit's correction
        plane is ``act & (syndrome == binary(q+1))``, evaluated bitwise.
        Bit lanes beyond the live shot range may carry junk (the padded
        factory batch simulates real noise there); every consumer discards
        them by unpacking with ``count=shots``.
        """
        first = syn[0]
        nontrivial = first[0] | first[1] | first[2]
        if self.policy == "paper":
            if syn.shape[0] < 2:
                raise ValueError("the paper policy needs >= 2 repetitions")
            second = syn[1]
            agree = ~((first[0] ^ second[0]) | (first[1] ^ second[1]) | (first[2] ^ second[2]))
            act = agree & nontrivial
        elif self.policy == "first":
            act = nontrivial
        else:
            return None
        corr = np.zeros((7, syn.shape[2]), dtype=np.uint64)
        for q in range(7):
            position = q + 1  # Eq. (3): syndrome read as binary, 1-indexed
            mask = act
            for j in range(3):
                want = (position >> (2 - j)) & 1
                mask = mask & (first[j] if want else ~first[j])
            corr[q] = mask
        return corr

    def run_round_packed(
        self,
        shots: int,
        rng: int | np.random.Generator | None,
        data_fx: np.ndarray,
        data_fz: np.ndarray,
    ) -> None:
        """One EC round over packed ``(7, words)`` data frames, in place.

        The whole round stays in the packed domain: one word-aligned
        batched factory run produces every ancilla layout, verification
        decode and the syndrome policy are evaluated as plane algebra
        (:meth:`SteaneAncillaPrep.parse_packed`,
        :meth:`_corrections_packed`), and every buffer is allocated once
        per shot count and reused across rounds.  Only the ``"majority"``
        policy drops to the unpacked decode.
        """
        if self.engine != "compiled":
            raise ValueError("run_round_packed requires engine='compiled'")
        rng = as_rng(rng)
        ext_fx, ext_fz, ext_flips, fac_fx, fac_fz, fac_flips = self._round_buffers(shots)
        layouts = self.extraction.layouts
        nwords = words_for(shots)
        padded_total = nwords * 64 * len(layouts)
        fac_fx[:] = 0
        fac_fz[:] = 0
        self._factory_prog.run_packed(padded_total, rng, fac_fx, fac_fz, fac_flips)
        afx = fac_fx[:7]
        afz = fac_fz[:7]
        if self.prep.verify:
            afx = afx ^ self.prep.parse_packed(fac_flips)[None, :]
        ext_fx[:] = 0
        ext_fz[:] = 0
        ext_fx[:7] = data_fx
        ext_fz[:7] = data_fz
        for k, layout in enumerate(layouts):
            cols = slice(k * nwords, (k + 1) * nwords)
            anc = list(layout.anc_qubits)
            ext_fx[anc] = afx[:, cols]
            ext_fz[anc] = afz[:, cols]
        self._extract_prog.run_packed(shots, rng, ext_fx, ext_fz, ext_flips)
        x_syn_p, z_syn_p = self.extraction.parse_syndromes_packed(ext_flips)
        corr_x = self._corrections_packed(x_syn_p)
        if corr_x is not None:
            data_fx[:] = ext_fx[:7] ^ corr_x
            data_fz[:] = ext_fz[:7] ^ self._corrections_packed(z_syn_p)
            return
        x_syn, z_syn = self.extraction.parse_syndromes(unpack_shot_major(ext_flips, shots))
        data_fx[:] = ext_fx[:7] ^ pack_shot_major(self._corrections(x_syn))
        data_fz[:] = ext_fz[:7] ^ pack_shot_major(self._corrections(z_syn))

    def run_round(
        self,
        shots: int,
        seed: int | np.random.Generator | None = None,
        data_fx: np.ndarray | None = None,
        data_fz: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Apply one noisy EC round to the given data frames.

        Returns the post-correction data frames ``(fx, fz)``; residual
        logical damage is judged by the caller (ideal decode).
        """
        rng = as_rng(seed)
        if self.engine == "compiled":
            return _run_round_via_packed(self, shots, rng, data_fx, data_fz)
        total = self.extraction.total_qubits
        init_fx = np.zeros((shots, total), dtype=np.uint8)
        init_fz = np.zeros((shots, total), dtype=np.uint8)
        if data_fx is not None:
            init_fx[:, :7] = data_fx
        if data_fz is not None:
            init_fz[:, :7] = data_fz
        for layout in self.extraction.layouts:
            afx, afz = self.sample_ancilla_blocks(shots, rng)
            init_fx[:, list(layout.anc_qubits)] = afx
            init_fz[:, list(layout.anc_qubits)] = afz
        res = self._extract_sim.run(shots, rng, initial_fx=init_fx, initial_fz=init_fz)
        x_syn, z_syn = self.extraction.parse_syndromes(res.meas_flips)
        fx = res.fx[:, :7].copy()
        fz = res.fz[:, :7].copy()
        fx ^= self._corrections(x_syn)
        fz ^= self._corrections(z_syn)
        return fx, fz

    def _corrections(self, syndromes: np.ndarray) -> np.ndarray:
        accepted, act = resolve_syndrome_policy(syndromes, self.policy)
        corr = self.code.decode_bitflip_syndrome(accepted)
        corr[~act.astype(bool)] = 0
        return corr


class ShorECProtocol:
    """One Shor-method EC round for any stabilizer code.

    Cat-state ancillas come from per-width factories with verification and
    resample-on-reject (off-line retry, §6's parallelism assumption); the
    extraction circuit measures every generator ``repetitions`` times.  In
    the compiled engine all blocks of one width are drawn from a single
    batched factory run per round.
    """

    def __init__(
        self,
        code: StabilizerCode,
        noise: NoiseModel,
        repetitions: int = 2,
        policy: str = "paper",
        verify_ancilla: bool = True,
        engine: str = "compiled",
    ) -> None:
        _check_engine(engine)
        self.code = code
        self.noise = noise
        self.policy = policy
        self.engine = engine
        self.extraction = ShorSyndromeExtraction(code, repetitions, verify_ancilla)
        self.verify_ancilla = verify_ancilla
        # Blocks of equal width share one factory; batched sampling fills
        # them in circuit order from consecutive shot slices.
        self._width_blocks = {
            w: [b for b in self.extraction.blocks if len(b.qubits) == w]
            for w in self.extraction.factory_widths()
        }
        if engine == "compiled":
            self._extract_prog = CompiledFrameProgram(
                self.extraction.extraction_circuit(), noise
            )
            self._factory_progs = {
                w: CompiledFrameProgram(self.extraction.ancilla_factory(w)[0], noise)
                for w in self.extraction.factory_widths()
            }
            self._extract_sim = self._extract_prog
            self._factories = self._factory_progs
            self._buffers: dict[tuple, tuple] = {}
        else:
            self._extract_sim = FrameSimulator(
                self.extraction.extraction_circuit(), noise, backend="legacy"
            )
            self._factories = {
                w: FrameSimulator(self.extraction.ancilla_factory(w)[0], noise, backend="legacy")
                for w in self.extraction.factory_widths()
            }

    def __getstate__(self) -> dict:
        # Scratch buffers never travel in the pickle — see
        # SteaneECProtocol.__getstate__ (run-key identity + worker payload).
        state = dict(self.__dict__)
        if "_buffers" in state:
            state = {**state, "_buffers": {}}
        return state

    @property
    def data_qubits(self) -> int:
        return self.code.n

    # ------------------------------------------------------------------
    def sample_cat_frames(
        self, width: int, shots: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Accepted cat-state frames (resampling rejected preparations)."""
        sim = self._factories[width]
        res = sim.run(shots, rng)
        fx = res.fx[:, :width].copy()
        fz = res.fz[:, :width].copy()
        if self.verify_ancilla:
            rejected = res.meas_flips[:, 0].astype(bool)
            accepted_idx = np.nonzero(~rejected)[0]
            if accepted_idx.size == 0:
                raise RuntimeError(
                    "every cat preparation failed verification; noise too high"
                )
            bad_idx = np.nonzero(rejected)[0]
            if bad_idx.size:
                replacement = rng.choice(accepted_idx, size=bad_idx.size)
                fx[bad_idx] = fx[replacement]
                fz[bad_idx] = fz[replacement]
        return fx, fz

    def _cat_batch_packed(
        self, width: int, shots: int, blocks: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(width, shots * blocks)`` unpacked rows of accepted cats.

        One factory run covers every block of this width; rejected cats are
        resampled from accepted ones *of the same block slice*, matching
        the legacy per-block batches — a replacement drawn across blocks
        could hand two syndrome blocks of one shot identical correlated
        errors.
        """
        total = shots * blocks
        prog = self._factory_progs[width]
        key = (width, total)
        buf = self._buffers.get(key)
        if buf is None:
            buf = prog.new_buffers(total)
            self._buffers[key] = buf
        fx, fz, flips = buf
        fx[:] = 0
        fz[:] = 0
        prog.run_packed(total, rng, fx, fz, flips)
        cfx = unpack_rows(fx[:width], total)
        cfz = unpack_rows(fz[:width], total)
        if self.verify_ancilla:
            rejected = unpack_rows(flips[:1], total)[0].astype(bool)
            for k in range(blocks):
                cols = slice(k * shots, (k + 1) * shots)
                block_rejected = rejected[cols]
                accepted_idx = np.nonzero(~block_rejected)[0]
                if accepted_idx.size == 0:
                    raise RuntimeError(
                        "every cat preparation failed verification; noise too high"
                    )
                bad_idx = np.nonzero(block_rejected)[0]
                if bad_idx.size:
                    replacement = rng.choice(accepted_idx, size=bad_idx.size)
                    cfx[:, cols][:, bad_idx] = cfx[:, cols][:, replacement]
                    cfz[:, cols][:, bad_idx] = cfz[:, cols][:, replacement]
        return cfx, cfz

    def _round_buffers(self, shots: int) -> tuple:
        key = ("ext", shots)
        buf = self._buffers.get(key)
        if buf is None:
            buf = self._extract_prog.new_buffers(shots)
            self._buffers[key] = buf
        return buf

    def run_round_packed(
        self,
        shots: int,
        rng: int | np.random.Generator | None,
        data_fx: np.ndarray,
        data_fz: np.ndarray,
    ) -> None:
        """One EC round over packed ``(n, words)`` data frames, in place."""
        if self.engine != "compiled":
            raise ValueError("run_round_packed requires engine='compiled'")
        rng = as_rng(rng)
        ext_fx, ext_fz, ext_flips = self._round_buffers(shots)
        n = self.code.n
        ext_fx[:] = 0
        ext_fz[:] = 0
        ext_fx[:n] = data_fx
        ext_fz[:n] = data_fz
        for width, blocks in self._width_blocks.items():
            cfx, cfz = self._cat_batch_packed(width, shots, len(blocks), rng)
            for k, block in enumerate(blocks):
                cols = slice(k * shots, (k + 1) * shots)
                wires = list(block.qubits)
                ext_fx[wires] = pack_rows(cfx[:, cols])
                ext_fz[wires] = pack_rows(cfz[:, cols])
        self._extract_prog.run_packed(shots, rng, ext_fx, ext_fz, ext_flips)
        syn = self.extraction.parse_syndromes(unpack_shot_major(ext_flips, shots))
        corr_x, corr_z = self._corrections(syn)
        data_fx[:] = ext_fx[:n] ^ pack_shot_major(corr_x)
        data_fz[:] = ext_fz[:n] ^ pack_shot_major(corr_z)

    def run_round(
        self,
        shots: int,
        seed: int | np.random.Generator | None = None,
        data_fx: np.ndarray | None = None,
        data_fz: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        rng = as_rng(seed)
        n = self.code.n
        if self.engine == "compiled":
            return _run_round_via_packed(self, shots, rng, data_fx, data_fz)
        total = self.extraction.total_qubits
        init_fx = np.zeros((shots, total), dtype=np.uint8)
        init_fz = np.zeros((shots, total), dtype=np.uint8)
        if data_fx is not None:
            init_fx[:, :n] = data_fx
        if data_fz is not None:
            init_fz[:, :n] = data_fz
        for block in self.extraction.blocks:
            w = len(block.qubits)
            cfx, cfz = self.sample_cat_frames(w, shots, rng)
            init_fx[:, list(block.qubits)] = cfx
            init_fz[:, list(block.qubits)] = cfz
        res = self._extract_sim.run(shots, rng, initial_fx=init_fx, initial_fz=init_fz)
        syn = self.extraction.parse_syndromes(res.meas_flips)
        fx = res.fx[:, :n].copy()
        fz = res.fz[:, :n].copy()
        corr_x, corr_z = self._corrections(syn)
        fx ^= corr_x
        fz ^= corr_z
        return fx, fz

    def _corrections(self, syndromes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        accepted, act = resolve_syndrome_policy(syndromes, self.policy)
        if isinstance(self.code, CSSCode):
            # Z-type generators come first in the CSS construction: their
            # bits locate X errors; the X-type bits locate Z errors.
            nz = self.code.hz.shape[0]
            corr_x = _classical_correction(self.code.hz, accepted[:, :nz])
            corr_z = _classical_correction(self.code.hx, accepted[:, nz:])
        else:
            cx_table, cz_table = self.code._frame_table()
            weights = 1 << np.arange(accepted.shape[1])
            keys = accepted.astype(np.int64) @ weights
            corr_x = cx_table[keys]
            corr_z = cz_table[keys]
        mask = ~act.astype(bool)
        corr_x = corr_x.copy()
        corr_z = corr_z.copy()
        corr_x[mask] = 0
        corr_z[mask] = 0
        return corr_x, corr_z
