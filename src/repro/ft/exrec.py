"""Executable fault-tolerant EC protocols (the paper's Fig. 9 as a whole).

These classes tie together the ancilla factories, the extraction circuits,
and the classical syndrome-handling policy of §3.4 into a vectorized
"run one EC round on many Monte-Carlo shots" operation — the building block
the §5 threshold analysis calls a *recovery step* and modern literature
calls an exRec.

Syndrome policy (§3.4), vectorized over shots:

* ``"paper"`` — act only when two successive syndrome measurements agree
  and are nontrivial ("there is no way occurring with a probability of
  order ε to obtain the same (nontrivial) faulty syndrome twice in a
  row"); disagreement or trivial first reading means do nothing.
* ``"first"`` — act on the first reading unconditionally (the naive
  protocol whose order-ε failure E04 demonstrates).
* ``"majority"`` — act on the bitwise majority over all repetitions
  (requires an odd repetition count).
"""

from __future__ import annotations

import numpy as np

from repro.codes.css import CSSCode, _classical_correction
from repro.codes.steane import SteaneCode
from repro.codes.stabilizer_code import StabilizerCode
from repro.ft.shor_ec import ShorSyndromeExtraction
from repro.ft.steane_ec import SteaneAncillaPrep, SteaneSyndromeExtraction
from repro.noise.models import NoiseModel
from repro.pauliframe.engine import FrameSimulator
from repro.util.rng import as_rng

__all__ = ["SteaneECProtocol", "ShorECProtocol", "resolve_syndrome_policy"]


def resolve_syndrome_policy(syndromes: np.ndarray, policy: str) -> tuple[np.ndarray, np.ndarray]:
    """Reduce ``(shots, reps, m)`` syndrome readings to one per shot.

    Returns ``(accepted_syndrome, act_mask)``: the syndrome to decode and a
    per-shot flag for whether any correction is applied at all.
    """
    syn = np.asarray(syndromes, dtype=np.uint8)
    shots, reps, m = syn.shape
    if policy == "first":
        accepted = syn[:, 0, :]
        act = accepted.any(axis=1)
    elif policy == "paper":
        if reps < 2:
            raise ValueError("the paper policy needs >= 2 repetitions")
        first, second = syn[:, 0, :], syn[:, 1, :]
        agree = (first == second).all(axis=1)
        act = agree & first.any(axis=1)
        accepted = first
    elif policy == "majority":
        if reps % 2 == 0:
            raise ValueError("majority policy needs an odd repetition count")
        accepted = ((syn.sum(axis=1) * 2) > reps).astype(np.uint8)
        act = accepted.any(axis=1)
    else:
        raise ValueError(f"unknown syndrome policy {policy!r}")
    return accepted, act


class SteaneECProtocol:
    """One Steane-method EC round, vectorized over shots.

    Parameters
    ----------
    noise: the circuit-level error model applied everywhere (factory and
        extraction alike).
    repetitions: syndrome measurements per type per round (Fig. 9 uses 2).
    policy: see module docstring.
    verify_ancilla: run the §3.3 two-block verification in the factory.
    """

    def __init__(
        self,
        noise: NoiseModel,
        repetitions: int = 2,
        policy: str = "paper",
        verify_ancilla: bool = True,
        code: SteaneCode | None = None,
    ) -> None:
        self.code = code or SteaneCode()
        self.noise = noise
        self.policy = policy
        self.extraction = SteaneSyndromeExtraction(self.code, repetitions)
        self.prep = SteaneAncillaPrep(self.code, verify=verify_ancilla)
        self._factory_sim = FrameSimulator(self.prep.circuit(), noise)
        self._extract_sim = FrameSimulator(self.extraction.extraction_circuit(), noise)

    # ------------------------------------------------------------------
    def sample_ancilla_blocks(
        self, shots: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Residual frames of one factory-verified |0̄> block per shot."""
        res = self._factory_sim.run(shots, rng)
        flip = self.prep.parse(res.meas_flips) if self.prep.verify else np.zeros(shots, np.uint8)
        fx = self.prep.apply_fixups(res.fx[:, :7], flip)
        return fx, res.fz[:, :7].copy()

    def run_round(
        self,
        shots: int,
        seed: int | np.random.Generator | None = None,
        data_fx: np.ndarray | None = None,
        data_fz: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Apply one noisy EC round to the given data frames.

        Returns the post-correction data frames ``(fx, fz)``; residual
        logical damage is judged by the caller (ideal decode).
        """
        rng = as_rng(seed)
        total = self.extraction.total_qubits
        init_fx = np.zeros((shots, total), dtype=np.uint8)
        init_fz = np.zeros((shots, total), dtype=np.uint8)
        if data_fx is not None:
            init_fx[:, :7] = data_fx
        if data_fz is not None:
            init_fz[:, :7] = data_fz
        for layout in self.extraction.layouts:
            afx, afz = self.sample_ancilla_blocks(shots, rng)
            init_fx[:, list(layout.anc_qubits)] = afx
            init_fz[:, list(layout.anc_qubits)] = afz
        res = self._extract_sim.run(shots, rng, initial_fx=init_fx, initial_fz=init_fz)
        x_syn, z_syn = self.extraction.parse_syndromes(res.meas_flips)
        fx = res.fx[:, :7].copy()
        fz = res.fz[:, :7].copy()
        fx ^= self._corrections(x_syn)
        fz ^= self._corrections(z_syn)
        return fx, fz

    def _corrections(self, syndromes: np.ndarray) -> np.ndarray:
        accepted, act = resolve_syndrome_policy(syndromes, self.policy)
        corr = self.code.decode_bitflip_syndrome(accepted)
        corr[~act.astype(bool)] = 0
        return corr


class ShorECProtocol:
    """One Shor-method EC round for any stabilizer code.

    Cat-state ancillas come from per-width factories with verification and
    resample-on-reject (off-line retry, §6's parallelism assumption); the
    extraction circuit measures every generator ``repetitions`` times.
    """

    def __init__(
        self,
        code: StabilizerCode,
        noise: NoiseModel,
        repetitions: int = 2,
        policy: str = "paper",
        verify_ancilla: bool = True,
    ) -> None:
        self.code = code
        self.noise = noise
        self.policy = policy
        self.extraction = ShorSyndromeExtraction(code, repetitions, verify_ancilla)
        self._extract_sim = FrameSimulator(self.extraction.extraction_circuit(), noise)
        self._factories = {
            w: FrameSimulator(self.extraction.ancilla_factory(w)[0], noise)
            for w in self.extraction.factory_widths()
        }
        self.verify_ancilla = verify_ancilla

    # ------------------------------------------------------------------
    def sample_cat_frames(
        self, width: int, shots: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Accepted cat-state frames (resampling rejected preparations)."""
        sim = self._factories[width]
        res = sim.run(shots, rng)
        fx = res.fx[:, :width].copy()
        fz = res.fz[:, :width].copy()
        if self.verify_ancilla:
            rejected = res.meas_flips[:, 0].astype(bool)
            accepted_idx = np.nonzero(~rejected)[0]
            if accepted_idx.size == 0:
                raise RuntimeError(
                    "every cat preparation failed verification; noise too high"
                )
            bad_idx = np.nonzero(rejected)[0]
            if bad_idx.size:
                replacement = rng.choice(accepted_idx, size=bad_idx.size)
                fx[bad_idx] = fx[replacement]
                fz[bad_idx] = fz[replacement]
        return fx, fz

    def run_round(
        self,
        shots: int,
        seed: int | np.random.Generator | None = None,
        data_fx: np.ndarray | None = None,
        data_fz: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        rng = as_rng(seed)
        n = self.code.n
        total = self.extraction.total_qubits
        init_fx = np.zeros((shots, total), dtype=np.uint8)
        init_fz = np.zeros((shots, total), dtype=np.uint8)
        if data_fx is not None:
            init_fx[:, :n] = data_fx
        if data_fz is not None:
            init_fz[:, :n] = data_fz
        for block in self.extraction.blocks:
            w = len(block.qubits)
            cfx, cfz = self.sample_cat_frames(w, shots, rng)
            init_fx[:, list(block.qubits)] = cfx
            init_fz[:, list(block.qubits)] = cfz
        res = self._extract_sim.run(shots, rng, initial_fx=init_fx, initial_fz=init_fz)
        syn = self.extraction.parse_syndromes(res.meas_flips)
        fx = res.fx[:, :n].copy()
        fz = res.fz[:, :n].copy()
        corr_x, corr_z = self._corrections(syn)
        fx ^= corr_x
        fz ^= corr_z
        return fx, fz

    def _corrections(self, syndromes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        accepted, act = resolve_syndrome_policy(syndromes, self.policy)
        if isinstance(self.code, CSSCode):
            # Z-type generators come first in the CSS construction: their
            # bits locate X errors; the X-type bits locate Z errors.
            nz = self.code.hz.shape[0]
            corr_x = _classical_correction(self.code.hz, accepted[:, :nz])
            corr_z = _classical_correction(self.code.hx, accepted[:, nz:])
        else:
            cx_table, cz_table = self.code._frame_table()
            weights = 1 << np.arange(accepted.shape[1])
            keys = accepted.astype(np.int64) @ weights
            corr_x = cx_table[keys]
            corr_z = cz_table[keys]
        mask = ~act.astype(bool)
        corr_x = corr_x.copy()
        corr_z = corr_z.copy()
        corr_x[mask] = 0
        corr_z[mask] = 0
        return corr_x, corr_z
