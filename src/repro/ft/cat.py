"""Cat-state preparation and verification (paper §3.3, Fig. 8).

The Shor-method ancilla for a weight-w stabilizer is the Shor state — the
even-weight superposition (Eq. 16) — obtained by Hadamard-rotating a w-qubit
cat state (|0...0> + |1...1>)/√2.  A single faulty XOR in the cat
preparation chain can leave *two* bit-flip errors in the cat (e.g.
|0011> + |1100>), which become two phase errors in the Shor state and feed
back into the data; Fig. 8 therefore appends a verification step comparing
the first and last cat bits, discarding the state when they differ.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import Circuit

__all__ = ["CatStatePrep", "shor_state_prep"]


@dataclass(frozen=True)
class CatStatePrep:
    """Plan for preparing (and optionally verifying) one cat state.

    Attributes
    ----------
    cat_qubits: register indices holding the cat state, in chain order.
    verify_qubit: scratch qubit for the comparison test, or ``None``.
    verify_cbit: classical bit holding the verification outcome
        (reference value 0; 1 means "discard and retry").
    """

    cat_qubits: tuple[int, ...]
    verify_qubit: int | None = None
    verify_cbit: int | None = None

    def circuit(self, num_qubits: int, num_cbits: int) -> Circuit:
        """Emit the Fig. 8 circuit into a register of the given size."""
        qs = self.cat_qubits
        if len(qs) < 2:
            raise ValueError("a cat state needs at least 2 qubits")
        c = Circuit(num_qubits, num_cbits, name=f"cat{len(qs)}-prep")
        for q in qs:
            c.reset(q, tag="anc_prep")
        c.h(qs[0], tag="anc_prep")
        # XOR chain: an X fault after link i corrupts qubits i+1.. — exactly
        # the correlated pattern the verification below is designed to catch.
        for a, b in zip(qs, qs[1:]):
            c.cnot(a, b, tag="anc_prep")
        if self.verify_qubit is not None:
            if self.verify_cbit is None:
                raise ValueError("verification needs a classical bit")
            c.reset(self.verify_qubit, tag="verify")
            # Compare first and last cat bits: they differ in every
            # single-fault history that leaves two bit flips in the cat.
            c.cnot(qs[0], self.verify_qubit, tag="verify")
            c.cnot(qs[-1], self.verify_qubit, tag="verify")
            c.measure(self.verify_qubit, self.verify_cbit, tag="verify")
        return c


def shor_state_prep(
    cat_qubits: tuple[int, ...],
    verify_qubit: int | None,
    verify_cbit: int | None,
    num_qubits: int,
    num_cbits: int,
) -> Circuit:
    """Cat prep + verification + transversal Hadamard = Shor state (Eq. 16).

    Fig. 7(a): "The Hadamard gate applied to the cat state completes the
    preparation of the Shor state."  The bit-flip errors the verification
    could not catch become *phase* errors in the Shor state, which merely
    corrupt the syndrome bit (recoverable by repetition, §3.4) rather than
    feeding back into the data.
    """
    prep = CatStatePrep(cat_qubits, verify_qubit, verify_cbit)
    c = prep.circuit(num_qubits, num_cbits)
    for q in cat_qubits:
        c.h(q, tag="anc_prep")
    c.name = f"shor{len(cat_qubits)}-state-prep"
    return c
