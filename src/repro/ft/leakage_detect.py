"""Leakage detection (paper §6 last bullet, Fig. 15).

The detector entangles an ancilla with the *presence* of the data qubit in
its two-dimensional space: with the convention that gates act trivially on
a leaked qubit, the circuit below flips the ancilla exactly once when the
data is healthy (whatever its state) and never when it has leaked, so the
measurement reads 1 for "healthy" and 0 for "leaked" — matching Fig. 15's
caption.  A detected qubit is discarded and replaced by a fresh |0>, after
which ordinary syndrome measurement repairs the (now located) error.
"""

from __future__ import annotations

from repro.circuits.circuit import Circuit

__all__ = ["leakage_detection_circuit", "detection_outcome_ideal"]


def leakage_detection_circuit(
    data_qubit: int = 0,
    ancilla_qubit: int = 1,
    cbit: int = 0,
    num_qubits: int = 2,
    num_cbits: int = 1,
) -> Circuit:
    """Fig. 15: |0> ancilla; XOR(data→anc); X(data); XOR(data→anc);
    X(data); measure ancilla.

    Healthy data in state d: the ancilla accumulates d ⊕ (d⊕1) = 1.
    Leaked data: both XORs act trivially, the ancilla stays 0.  The data
    qubit's computational state is returned to its original value by the
    second X.
    """
    c = Circuit(num_qubits, num_cbits, name="leak-detect")
    c.reset(ancilla_qubit, tag="leak")
    c.cnot(data_qubit, ancilla_qubit, tag="leak")
    c.x(data_qubit, tag="leak")
    c.cnot(data_qubit, ancilla_qubit, tag="leak")
    c.x(data_qubit, tag="leak")
    c.measure(ancilla_qubit, cbit, tag="leak")
    return c


def detection_outcome_ideal(leaked: bool) -> int:
    """The noiseless detector response: 0 iff the qubit has leaked."""
    return 0 if leaked else 1
