"""Shor's [[9,1,3]] code (paper ref. 10) — the original quantum code.

A CSS code concatenating the 3-qubit phase-flip code over the 3-qubit
bit-flip code.  Included as the historical baseline and as a second CSS
example with unequal H_z / H_x (the Steane code uses the same classical
code for both).
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.codes.css import CSSCode
from repro.paulis.pauli import pauli_from_string

__all__ = ["ShorNineCode"]

# Z-type checks: pairwise parities within each triple (bit-flip protection).
_HZ = np.array(
    [
        [1, 1, 0, 0, 0, 0, 0, 0, 0],
        [0, 1, 1, 0, 0, 0, 0, 0, 0],
        [0, 0, 0, 1, 1, 0, 0, 0, 0],
        [0, 0, 0, 0, 1, 1, 0, 0, 0],
        [0, 0, 0, 0, 0, 0, 1, 1, 0],
        [0, 0, 0, 0, 0, 0, 0, 1, 1],
    ],
    dtype=np.uint8,
)

# X-type checks: block-wise parity comparisons (phase-flip protection).
_HX = np.array(
    [
        [1, 1, 1, 1, 1, 1, 0, 0, 0],
        [0, 0, 0, 1, 1, 1, 1, 1, 1],
    ],
    dtype=np.uint8,
)


class ShorNineCode(CSSCode):
    """[[9,1,3]] with the roles of X and Z swapped at the logical level.

    Because the outer code protects *phases*, a logical bit flip is
    implemented by Z-type physical support (Z̄-per-block flips
    |000>+|111> to |000>-|111>), and the logical phase flip by X-type
    support.  Hence X̄ = Z⊗9 and Z̄ = X⊗9 below — both reduce to the
    familiar weight-3 representatives modulo the stabilizer.
    """

    def __init__(self) -> None:
        super().__init__(_HZ, _HX, name="Shor[[9,1,3]]")
        self.logical_x = [pauli_from_string("ZZZZZZZZZ")]
        self.logical_z = [pauli_from_string("XXXXXXXXX")]
        self._validate()
        self._frame_table_cache = None

    def encoding_circuit(self) -> Circuit:
        """The textbook encoder: phase-code across triples, bit-code within.

        Input state occupies qubit 0.
        """
        c = Circuit(9, name="shor9-encoder")
        c.cnot(0, 3).cnot(0, 6)
        for block in (0, 3, 6):
            c.h(block)
            c.cnot(block, block + 1).cnot(block, block + 2)
        return c
