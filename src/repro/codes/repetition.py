"""Quantum repetition codes — the bit-flip and phase-flip codes.

These [[n,1,n]]-against-one-error-type codes are the two halves Shor glued
together into [[9,1,3]]; they correct only X *or* only Z errors and so make
the cleanest pedagogical demonstrations (and the fastest property tests) of
the frame machinery.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.codes.stabilizer_code import StabilizerCode
from repro.paulis.pauli import Pauli, pauli_from_string

__all__ = ["BitFlipCode", "PhaseFlipCode"]


def _adjacent_pairs(n: int, letter: str) -> list[Pauli]:
    gens = []
    for i in range(n - 1):
        s = ["I"] * n
        s[i] = letter
        s[i + 1] = letter
        gens.append(pauli_from_string("".join(s)))
    return gens


class BitFlipCode(StabilizerCode):
    """|0> -> |0...0>, |1> -> |1...1>; corrects up to (n-1)//2 X errors.

    Stabilizers are adjacent ZZ parities.  Z̄ = Z on any single qubit
    (weight 1!): the code offers *no* phase protection — the asymmetry the
    Steane code was designed to remove.
    """

    def __init__(self, n: int = 3) -> None:
        if n < 3 or n % 2 == 0:
            raise ValueError("bit-flip code needs odd n >= 3")
        x_all = pauli_from_string("X" * n)
        z_single = Pauli.single(n, 0, "Z")
        super().__init__(_adjacent_pairs(n, "Z"), [x_all], [z_single], name=f"bitflip[[{n},1]]")

    def encoding_circuit(self) -> Circuit:
        c = Circuit(self.n, name=f"bitflip{self.n}-encoder")
        for i in range(1, self.n):
            c.cnot(0, i)
        return c

    def majority_decode_frame(self, fx: np.ndarray) -> np.ndarray:
        """Logical X error iff a majority of qubits carry X errors."""
        arr = np.atleast_2d(np.asarray(fx, dtype=np.int64))
        return (arr.sum(axis=1) * 2 > self.n).astype(np.uint8)


class PhaseFlipCode(StabilizerCode):
    """The Hadamard conjugate of the bit-flip code: corrects Z errors."""

    def __init__(self, n: int = 3) -> None:
        if n < 3 or n % 2 == 0:
            raise ValueError("phase-flip code needs odd n >= 3")
        z_all = pauli_from_string("Z" * n)
        x_single = Pauli.single(n, 0, "X")
        super().__init__(_adjacent_pairs(n, "X"), [x_single], [z_all], name=f"phaseflip[[{n},1]]")

    def encoding_circuit(self) -> Circuit:
        c = Circuit(self.n, name=f"phaseflip{self.n}-encoder")
        for i in range(1, self.n):
            c.cnot(0, i)
        for i in range(self.n):
            c.h(i)
        return c
