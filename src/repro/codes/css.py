"""CSS (Calderbank–Shor–Steane) code construction (§2, refs 28–31).

From a classical code C with C⊥ ⊆ C (dual-containing), build a quantum code
whose Z-type stabilizers are the rows of H (detecting bit flips) and whose
X-type stabilizers are the same rows with X in place of Z (detecting phase
flips — "the Hamming parity check is satisfied in both bases", the defining
property of Steane's code highlighted under Eq. 18).

The general two-code form CSS(C1, C2) with C2⊥ ⊆ C1 is also provided.
"""

from __future__ import annotations

import numpy as np

from repro.classical.linear_code import LinearCode
from repro.codes.stabilizer_code import StabilizerCode
from repro.gf2 import gf2_inverse, gf2_matmul, gf2_rank, gf2_row_reduce
from repro.paulis.pauli import Pauli

__all__ = ["CSSCode"]


def _pauli_from_support(n: int, support: np.ndarray, letter: str) -> Pauli:
    x = np.zeros(n, dtype=np.uint8)
    z = np.zeros(n, dtype=np.uint8)
    supp = np.asarray(support).astype(np.uint8).ravel() & 1
    if letter == "X":
        x = supp
    elif letter == "Z":
        z = supp
    else:
        raise ValueError("letter must be 'X' or 'Z'")
    return Pauli(x, z)


class CSSCode(StabilizerCode):
    """Quantum code from classical parity checks H_z (bit flips) and H_x
    (phase flips), requiring H_x · H_z^T = 0 so the generators commute.

    Parameters
    ----------
    hz:
        Parity-check rows realized as Z-type stabilizers; they detect X
        errors, so X-error syndromes are classical H_z syndromes.
    hx:
        Rows realized as X-type stabilizers, detecting Z errors.
    name:
        Label.
    """

    def __init__(self, hz: np.ndarray, hx: np.ndarray, name: str = "") -> None:
        hz8 = np.asarray(hz).astype(np.uint8) & 1
        hx8 = np.asarray(hx).astype(np.uint8) & 1
        if hz8.shape[1] != hx8.shape[1]:
            raise ValueError("H_z and H_x must have the same number of columns")
        if np.any(gf2_matmul(hx8, hz8.T)):
            raise ValueError("H_x · H_z^T != 0: stabilizers would anticommute")
        n = hz8.shape[1]
        rz, rx = gf2_rank(hz8), gf2_rank(hx8)
        k = n - rz - rx
        if k < 0:
            raise ValueError("checks overdetermine the space (k < 0)")
        # Preserve the caller's row order when the rows are independent
        # (the Eq. (1) Hamming form encodes error positions in row order);
        # only compress genuinely redundant checks.
        self.hz = hz8 if rz == hz8.shape[0] else gf2_row_reduce(hz8)[0][:rz]
        self.hx = hx8 if rx == hx8.shape[0] else gf2_row_reduce(hx8)[0][:rx]
        gens = [_pauli_from_support(n, row, "Z") for row in self.hz]
        gens += [_pauli_from_support(n, row, "X") for row in self.hx]
        lx, lz = self._find_logicals(n, k)
        super().__init__(gens, lx, lz, name=name or f"CSS[[{n},{k}]]")

    # ------------------------------------------------------------------
    def _find_logicals(self, n: int, k: int) -> tuple[list[Pauli], list[Pauli]]:
        """Pick k pairs (X̄_i, Z̄_i) satisfying the §4.2 relations.

        X̄ representatives span ker(H_z) / rowspace(H_x) (commute with all
        Z-checks, nontrivial modulo X-stabilizers); Z̄ representatives span
        ker(H_x) / rowspace(H_z).  The GF(2) pairing matrix M_ij = a_i·b_j
        between the two quotient bases is nondegenerate, so transforming
        the Z side by (M^T)^{-1} yields the exact symplectic normal form
        a_i · z'_j = δ_ij.
        """
        a_basis = _quotient_basis(self.hz, self.hx)
        b_basis = _quotient_basis(self.hx, self.hz)
        if len(a_basis) != k or len(b_basis) != k:
            raise AssertionError("quotient dimensions disagree with k")
        if k == 0:
            return [], []
        a_mat = np.array(a_basis, dtype=np.uint8)
        b_mat = np.array(b_basis, dtype=np.uint8)
        pairing = gf2_matmul(a_mat, b_mat.T)
        coeff = gf2_inverse(pairing).T
        z_mat = gf2_matmul(coeff, b_mat).astype(np.uint8)
        lx = [_pauli_from_support(n, a_mat[i], "X") for i in range(k)]
        lz = [_pauli_from_support(n, z_mat[i], "Z") for i in range(k)]
        return lx, lz

    # ------------------------------------------------------------------
    @classmethod
    def from_dual_containing(cls, code: LinearCode, name: str = "") -> "CSSCode":
        """The one-code construction used by Steane: H_z = H_x = H."""
        if not code.contains_dual():
            raise ValueError(f"{code.name} does not contain its dual")
        return cls(code.h, code.h, name=name or f"CSS({code.name})")

    @classmethod
    def from_two_codes(cls, c1: LinearCode, c2: LinearCode, name: str = "") -> "CSSCode":
        """CSS(C1, C2) with C2⊥ ⊆ C1: Z-checks from C1's H, X-checks from
        C2's generator-as-check."""
        return cls(c1.h, c2.h, name=name)

    def correct_frame(self, fx: np.ndarray, fz: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """CSS correction: X and Z errors are decoded *independently*.

        This realizes §2's guarantee that one bit-flip and one phase-flip
        in the same block (on any qubits) are simultaneously corrected —
        the joint-weight decoder of the generic stabilizer class would
        treat that pair as a weight-2 error and give up.
        """
        fx2 = np.atleast_2d(np.asarray(fx, dtype=np.uint8))
        fz2 = np.atleast_2d(np.asarray(fz, dtype=np.uint8))
        cx = _classical_correction(self.hz, self.x_syndrome_of_frame(fx2))
        cz = _classical_correction(self.hx, self.z_syndrome_of_frame(fz2))
        out_x = fx2 ^ cx
        out_z = fz2 ^ cz
        if np.asarray(fx).ndim == 1:
            return out_x[0], out_z[0]
        return out_x, out_z

    def x_syndrome_of_frame(self, fx: np.ndarray) -> np.ndarray:
        """Classical H_z syndrome of the X-error frame (bit-flip syndrome,
        the quantity Fig. 2's circuit computes)."""
        return gf2_matmul(np.atleast_2d(fx), self.hz.T).astype(np.uint8)

    def z_syndrome_of_frame(self, fz: np.ndarray) -> np.ndarray:
        """Classical H_x syndrome of the Z-error frame (phase-flip
        syndrome, computed in the Hadamard-rotated basis)."""
        return gf2_matmul(np.atleast_2d(fz), self.hx.T).astype(np.uint8)


_CORRECTION_CACHE: dict[bytes, np.ndarray] = {}


def _classical_correction(h: np.ndarray, syndromes: np.ndarray) -> np.ndarray:
    """Vectorized min-weight classical decoding: map each row of
    ``syndromes`` (shape (shots, m)) to a length-n error pattern.

    A dense table indexed by the syndrome-as-integer is built once per
    parity-check matrix (enumerating error patterns in weight order up to
    the classical correction radius) and cached by matrix content.
    """
    key = h.tobytes() + bytes([h.shape[1] % 251])
    table = _CORRECTION_CACHE.get(key)
    if table is None:
        from repro.classical.linear_code import LinearCode

        code = LinearCode(h)
        m, n = h.shape
        try:
            radius = code.correctable_weight()
        except ValueError:
            radius = 1
        patterns = code._build_syndrome_table(max_weight=max(1, radius))
        table = np.zeros((2**m, n), dtype=np.uint8)
        weights = 1 << np.arange(m)
        for syn_key, err in patterns.items():
            idx = int(np.dot(np.array(syn_key, dtype=np.int64), weights))
            table[idx] = err
        _CORRECTION_CACHE[key] = table
    weights = 1 << np.arange(h.shape[0])
    idx = np.atleast_2d(syndromes).astype(np.int64) @ weights
    return table[idx]


def _quotient_basis(h_kernel_of: np.ndarray, h_modulo: np.ndarray) -> list[np.ndarray]:
    """Representatives of ker(h_kernel_of) modulo rowspace(h_modulo).

    Greedily keeps kernel vectors that grow the rank of the stack
    [h_modulo; chosen so far] — a basis of the quotient space.
    """
    from repro.gf2 import gf2_kernel

    chosen: list[np.ndarray] = []
    stack = h_modulo
    base_rank = gf2_rank(stack)
    for v in gf2_kernel(h_kernel_of):
        candidate = np.vstack([stack, v])
        rank = gf2_rank(candidate)
        if rank > base_rank:
            chosen.append(v.copy())
            stack = candidate
            base_rank = rank
    return chosen
