"""General stabilizer codes (paper §3.6).

A code on n qubits with n−k commuting, independent stabilizer generators
fixes a 2^k-dimensional code space.  Errors anticommuting with some
generator flip the corresponding syndrome bit; operators commuting with the
whole stabilizer but outside it act as logical operations (§4.2's X̂_i, Ẑ_i).
"""

from __future__ import annotations

from itertools import combinations, product

import numpy as np

from repro.gf2 import gf2_rank, gf2_solve, in_row_space
from repro.paulis.pauli import Pauli

__all__ = ["StabilizerCode"]


class StabilizerCode:
    """A stabilizer code with explicit logical operators.

    Parameters
    ----------
    generators:
        n−k independent, mutually commuting Pauli operators.
    logical_x, logical_z:
        k operators each, satisfying the §4.2 relations: commute with the
        stabilizer, [X̂_i, X̂_j] = [Ẑ_i, Ẑ_j] = [Ẑ_i, X̂_j≠i] = 0, and
        Ẑ_i anticommutes with X̂_i.
    name:
        Label for reports.
    """

    def __init__(
        self,
        generators: list[Pauli],
        logical_x: list[Pauli],
        logical_z: list[Pauli],
        name: str = "",
    ) -> None:
        if not generators:
            raise ValueError("need at least one stabilizer generator")
        self.generators = list(generators)
        self.logical_x = list(logical_x)
        self.logical_z = list(logical_z)
        self.n = generators[0].n
        self.k = len(logical_x)
        self.name = name or f"[[{self.n},{self.k}]]"
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        gens = self.generators
        if any(g.n != self.n for g in gens + self.logical_x + self.logical_z):
            raise ValueError("all operators must act on the same qubit count")
        if len(self.logical_z) != self.k:
            raise ValueError("logical_x and logical_z must have equal length")
        for a, b in combinations(gens, 2):
            if not a.commutes_with(b):
                raise ValueError(f"stabilizer generators do not commute: {a} vs {b}")
        sym = self._symplectic_matrix(gens)
        if gf2_rank(sym) != len(gens):
            raise ValueError("stabilizer generators are not independent")
        if len(gens) + self.k != self.n:
            raise ValueError(
                f"{len(gens)} generators on {self.n} qubits imply k={self.n - len(gens)},"
                f" but {self.k} logical pairs were given"
            )
        for i, lx in enumerate(self.logical_x):
            for g in gens:
                if not lx.commutes_with(g):
                    raise ValueError(f"logical X_{i} anticommutes with a stabilizer")
        for i, lz in enumerate(self.logical_z):
            for g in gens:
                if not lz.commutes_with(g):
                    raise ValueError(f"logical Z_{i} anticommutes with a stabilizer")
        for i, lx in enumerate(self.logical_x):
            for j, lz in enumerate(self.logical_z):
                expect_commute = i != j
                if lx.commutes_with(lz) != expect_commute:
                    raise ValueError(
                        f"logical pair ({i},{j}) has wrong commutation structure"
                    )

    @staticmethod
    def _symplectic_matrix(paulis: list[Pauli]) -> np.ndarray:
        return np.array([np.concatenate([p.x, p.z]) for p in paulis], dtype=np.uint8)

    # ------------------------------------------------------------------
    @classmethod
    def from_generators(cls, generators: list[Pauli], name: str = "") -> "StabilizerCode":
        """Build a code from generators alone, deriving canonical logical
        pairs by the §4.2 symplectic construction (Gottesman)."""
        from repro.codes.symplectic import find_logical_pairs

        lx, lz = find_logical_pairs(generators)
        return cls(generators, lx, lz, name=name)

    @property
    def num_generators(self) -> int:
        return len(self.generators)

    def syndrome_of(self, error: Pauli) -> np.ndarray:
        """Length n−k bit vector: 1 where the error anticommutes with the
        corresponding generator (this is the complete error syndrome of
        §3.6)."""
        return np.array(
            [0 if g.commutes_with(error) else 1 for g in self.generators], dtype=np.uint8
        )

    def syndrome_of_frame(self, fx: np.ndarray, fz: np.ndarray) -> np.ndarray:
        """Vectorized syndrome for batches of X/Z error frames.

        ``fx``/``fz`` may be ``(n,)`` or ``(shots, n)``; returns matching
        ``(..., n_gens)``.  A generator with symplectic row (gx|gz)
        anticommutes with frame (fx|fz) iff gx·fz + gz·fx is odd.
        """
        gx = np.array([g.x for g in self.generators], dtype=np.int64)
        gz = np.array([g.z for g in self.generators], dtype=np.int64)
        fx64 = np.atleast_2d(np.asarray(fx, dtype=np.int64))
        fz64 = np.atleast_2d(np.asarray(fz, dtype=np.int64))
        syn = (fx64 @ gz.T + fz64 @ gx.T) % 2
        if np.asarray(fx).ndim == 1:
            return syn[0].astype(np.uint8)
        return syn.astype(np.uint8)

    def in_stabilizer_group(self, pauli: Pauli) -> bool:
        """Membership up to phase: is the (x|z) vector in the row space?"""
        sym = self._symplectic_matrix(self.generators)
        return in_row_space(sym, np.concatenate([pauli.x, pauli.z]))

    def is_logical_operator(self, pauli: Pauli) -> bool:
        """Commutes with every generator but is not itself a stabilizer —
        i.e. it acts nontrivially on the code space."""
        if pauli.weight() == 0:
            return False
        if np.any(self.syndrome_of(pauli)):
            return False
        return not self.in_stabilizer_group(pauli)

    def logical_action_of_frame(self, fx: np.ndarray, fz: np.ndarray) -> np.ndarray:
        """Which logical X/Z each residual frame performs.

        For frames that commute with the stabilizer (trivial syndrome),
        returns a ``(shots, 2k)`` uint8 array: column ``2i`` is 1 when the
        frame anticommutes with logical Z_i (i.e. acts as a logical X on
        qubit i) and column ``2i+1`` when it anticommutes with logical X_i
        (acts as a logical Z).  Any nonzero column marks a logical fault.
        """
        fx64 = np.atleast_2d(np.asarray(fx, dtype=np.int64))
        fz64 = np.atleast_2d(np.asarray(fz, dtype=np.int64))
        out = np.zeros((fx64.shape[0], 2 * self.k), dtype=np.uint8)
        for i in range(self.k):
            lz = self.logical_z[i]
            lx = self.logical_x[i]
            out[:, 2 * i] = ((fx64 @ lz.z.astype(np.int64) + fz64 @ lz.x.astype(np.int64)) % 2).astype(np.uint8)
            out[:, 2 * i + 1] = ((fx64 @ lx.z.astype(np.int64) + fz64 @ lx.x.astype(np.int64)) % 2).astype(np.uint8)
        return out

    # ------------------------------------------------------------------
    def distance(self, max_weight: int | None = None) -> int:
        """Exact code distance by brute force (small codes only).

        Searches for the minimum-weight Pauli that commutes with every
        generator yet lies outside the stabilizer group.  ``max_weight``
        caps the search (default: the full block).
        """
        if self.n > 12:
            raise ValueError("brute-force distance only supported for n <= 12")
        limit = max_weight if max_weight is not None else self.n
        for w in range(1, limit + 1):
            for positions in combinations(range(self.n), w):
                for letters in product("XYZ", repeat=w):
                    p = Pauli.identity(self.n)
                    for q, letter in zip(positions, letters):
                        p = p * Pauli.single(self.n, q, letter)
                    if self.is_logical_operator(p):
                        return w
        raise ValueError(f"no logical operator of weight <= {limit} found")

    def decode_syndrome_table(self, max_weight: int = 1) -> dict[tuple[int, ...], Pauli]:
        """Map each syndrome to a minimum-weight correction Pauli."""
        table: dict[tuple[int, ...], Pauli] = {
            tuple(np.zeros(len(self.generators), dtype=np.uint8)): Pauli.identity(self.n)
        }
        for w in range(1, max_weight + 1):
            for positions in combinations(range(self.n), w):
                for letters in product("XYZ", repeat=w):
                    p = Pauli.identity(self.n)
                    for q, letter in zip(positions, letters):
                        p = p * Pauli.single(self.n, q, letter)
                    key = tuple(self.syndrome_of(p))
                    if key not in table:
                        table[key] = p
        return table

    def correct_frame(self, fx: np.ndarray, fz: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Ideal (code-capacity) correction of error frames in place.

        Computes syndromes from the frames, looks up minimum-weight
        corrections, and XORs them in; returns the corrected ``(fx, fz)``.
        Residual logical action can then be read with
        :meth:`logical_action_of_frame`.
        """
        table = self._frame_table()
        syn = self.syndrome_of_frame(fx, fz)
        syn2 = np.atleast_2d(syn)
        weights = 1 << np.arange(syn2.shape[1])
        keys = syn2.astype(np.int64) @ weights
        cx, cz = table
        fx2 = np.atleast_2d(np.asarray(fx, dtype=np.uint8)) ^ cx[keys]
        fz2 = np.atleast_2d(np.asarray(fz, dtype=np.uint8)) ^ cz[keys]
        if np.asarray(fx).ndim == 1:
            return fx2[0], fz2[0]
        return fx2, fz2

    def _frame_table(self) -> tuple[np.ndarray, np.ndarray]:
        """Dense syndrome->correction arrays for vectorized decoding."""
        cached = getattr(self, "_frame_table_cache", None)
        if cached is not None:
            return cached
        m = len(self.generators)
        table = self.decode_syndrome_table(max_weight=self._decoder_weight())
        cx = np.zeros((2**m, self.n), dtype=np.uint8)
        cz = np.zeros((2**m, self.n), dtype=np.uint8)
        weights = 1 << np.arange(m)
        for key, pauli in table.items():
            idx = int(np.dot(np.array(key, dtype=np.int64), weights))
            cx[idx] = pauli.x
            cz[idx] = pauli.z
        self._frame_table_cache = (cx, cz)
        return self._frame_table_cache

    def _decoder_weight(self) -> int:
        """Maximum error weight enumerated for the decoding table."""
        try:
            d = self.distance()
        except ValueError:
            d = 3
        return max(1, (d - 1) // 2)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StabilizerCode({self.name}, n={self.n}, k={self.k})"
