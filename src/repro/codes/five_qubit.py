"""The [[5,1,3]] five-qubit code (paper §4.2, refs 36–37).

The smallest code that corrects an arbitrary single-qubit error.  The paper
notes Gottesman exhibited universal fault-tolerant gates for it but that the
"gate implementation is quite complex" compared with Steane's code — we
include it as the comparison point and for cross-code tests of the generic
stabilizer machinery (it is *not* CSS, exercising the non-CSS paths).
"""

from __future__ import annotations

from repro.codes.stabilizer_code import StabilizerCode
from repro.paulis.pauli import pauli_from_string

__all__ = ["FiveQubitCode"]

_GENERATORS = ["XZZXI", "IXZZX", "XIXZZ", "ZXIXZ"]


class FiveQubitCode(StabilizerCode):
    """The cyclic [[5,1,3]] code with transversal-Pauli logicals."""

    def __init__(self) -> None:
        gens = [pauli_from_string(s) for s in _GENERATORS]
        super().__init__(
            gens,
            [pauli_from_string("XXXXX")],
            [pauli_from_string("ZZZZZ")],
            name="FiveQubit[[5,1,3]]",
        )

    @staticmethod
    def stabilizer_strings() -> list[str]:
        return list(_GENERATORS)
