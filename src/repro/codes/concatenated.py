"""Concatenated Steane codes (paper §5, Fig. 14).

Level-L concatenation encodes each of the 7 qubits of a level-(L−1) block
in its own level-1 block: block size 7^L, failure probability obeying the
flow equation p_{L+1} ≈ A·p_L² (Eq. 33).  This module provides the explicit
recursive encoder circuit (testable on the tableau simulator for L ≤ 2),
the hierarchical decoder used by frame-level memory experiments, and block
bookkeeping shared by the threshold benches.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.codes.steane import SteaneCode

__all__ = ["ConcatenatedSteane"]


class ConcatenatedSteane:
    """A level-L concatenated Steane code on 7^L physical qubits."""

    def __init__(self, levels: int) -> None:
        if levels < 1:
            raise ValueError("levels must be >= 1")
        self.levels = levels
        self.base = SteaneCode()
        self.n = 7**levels

    # ------------------------------------------------------------------
    def encoding_circuit(self) -> Circuit:
        """Recursive encoder: level-ℓ encoder, then encode each physical
        qubit of level ℓ with the level-(ℓ−1) encoder, down to ℓ = 1.

        The unknown input state occupies :attr:`input_qubit`.
        """
        circuit = Circuit(self.n, name=f"steane-L{self.levels}-encoder")
        base_enc = self.base.encoding_circuit()

        def encode_block(offset: int, level: int) -> None:
            stride = 7 ** (level - 1)
            # The level-ℓ encoder must deposit virtual qubit j onto the
            # wire that the level-(ℓ−1) sub-encoder of block j reads as
            # its input.
            inner = self._inner_input(level - 1)
            mapping = {j: offset + j * stride + inner for j in range(7)}
            circuit.compose(base_enc.remapped(mapping, num_qubits=self.n))
            if level > 1:
                for j in range(7):
                    encode_block(offset + j * stride, level - 1)

        encode_block(0, self.levels)
        return circuit

    def _inner_input(self, level: int) -> int:
        """Input-wire offset of a level-``level`` encoded block."""
        return sum(self.base.input_qubit * 7 ** (m - 1) for m in range(1, level + 1))

    @property
    def input_qubit(self) -> int:
        """Wire carrying the unknown state into :meth:`encoding_circuit`."""
        return self._inner_input(self.levels)

    # ------------------------------------------------------------------
    def decode_frame_hierarchical(
        self, fx: np.ndarray, fz: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Ideal hierarchical decoding of physical error frames.

        At each level, every 7-qubit sub-block is independently corrected
        with the Steane lookup decoder and replaced by the *logical* error
        it carries afterwards; the resulting length-(n/7) frames feed the
        next level (divide and conquer, exactly the "recover from errors
        more efficiently, by dividing and conquering" of §5).

        Returns ``(logical_x_error, logical_z_error)`` — ``(shots,)`` uint8
        arrays marking shots whose residual error acts as logical X̄ / Z̄.
        """
        fx_cur = np.atleast_2d(np.asarray(fx, dtype=np.uint8)).copy()
        fz_cur = np.atleast_2d(np.asarray(fz, dtype=np.uint8)).copy()
        shots = fx_cur.shape[0]
        for _ in range(self.levels):
            blocks = fx_cur.shape[1] // 7
            next_fx = np.zeros((shots, blocks), dtype=np.uint8)
            next_fz = np.zeros((shots, blocks), dtype=np.uint8)
            for b in range(blocks):
                sl = slice(7 * b, 7 * (b + 1))
                bx, bz = self.base.correct_frame(fx_cur[:, sl], fz_cur[:, sl])
                action = self.base.logical_action_of_frame(bx, bz)
                next_fx[:, b] = action[:, 0]
                next_fz[:, b] = action[:, 1]
            fx_cur, fz_cur = next_fx, next_fz
        return fx_cur[:, 0], fz_cur[:, 0]

    def block_size(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConcatenatedSteane(levels={self.levels}, n={self.n})"
