"""Code families with growing error-correcting power (paper §5).

Two families appear in the threshold discussion:

* the "codes considered by Shor" whose block size grows like t² while
  correcting t errors (used in the Eq. 30–32 scaling analysis); we model
  the family analytically via :func:`shor_family_parameters` and provide
  the concrete quantum Hamming family [[2^r−1, 2^r−1−2r, 3]] as the
  many-qubits-per-block example the end of §5 refers to ("codes that make
  more efficient use of storage space by encoding many qubits in a single
  block");
* Steane's block-55 code correcting 5 errors used in the §6 factoring
  comparison (ref. 48), represented by its parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.classical.linear_code import LinearCode
from repro.codes.css import CSSCode

__all__ = [
    "QuantumHammingCode",
    "hamming_parity_check",
    "shor_family_parameters",
    "CodeFamilyPoint",
    "STEANE_BLOCK55",
]


def hamming_parity_check(r: int) -> np.ndarray:
    """Parity check of the [2^r−1, 2^r−1−r, 3] Hamming code: the columns
    are all nonzero r-bit vectors, in increasing binary order."""
    if r < 2:
        raise ValueError("need r >= 2")
    n = 2**r - 1
    cols = np.arange(1, n + 1, dtype=np.int64)
    h = ((cols[np.newaxis, :] >> np.arange(r - 1, -1, -1)[:, np.newaxis]) & 1).astype(np.uint8)
    return h


class QuantumHammingCode(CSSCode):
    """The [[2^r−1, 2^r−1−2r, 3]] CSS family from dual-containing Hamming
    codes (r >= 3); r = 3 reduces to a [[7,1,3]] equivalent of the Steane
    code, larger r pack many logical qubits into one distance-3 block."""

    def __init__(self, r: int) -> None:
        if r < 3:
            raise ValueError("dual-containing Hamming codes need r >= 3")
        h = hamming_parity_check(r)
        code = LinearCode(h, name=f"Hamming[{2**r - 1},{2**r - 1 - r},3]")
        if not code.contains_dual():
            raise AssertionError("Hamming codes with r >= 3 must contain their duals")
        super().__init__(h, h, name=f"QHamming[[{2**r - 1},{2**r - 1 - 2 * r},3]]")
        self.r = r


@dataclass(frozen=True)
class CodeFamilyPoint:
    """One member of an analytic code family.

    Attributes
    ----------
    t: number of correctable errors.
    block_size: physical qubits per logical qubit.
    syndrome_steps: computational steps for syndrome measurement, the
        t^b of Eq. (30).
    """

    t: int
    block_size: int
    syndrome_steps: float


def shor_family_parameters(t: int, b: float = 4.0, block_exponent: float = 2.0) -> CodeFamilyPoint:
    """Parameters of the t-error-correcting member of Shor's family.

    The paper states the syndrome-measurement complexity grows like t^b
    with b = 4 for Shor's original procedure ("somewhat smaller values of b
    can be achieved"), and block size like t² "for the codes that Shor
    considered".
    """
    if t < 1:
        raise ValueError("t must be >= 1")
    return CodeFamilyPoint(
        t=t,
        block_size=int(np.ceil(t**block_exponent)),
        syndrome_steps=float(t**b),
    )


# Steane (ref. 48): block size 55 correcting 5 errors, used at gate error
# 1e-5 to factor the 432-bit number with ~4e5 qubits.
STEANE_BLOCK55 = CodeFamilyPoint(t=5, block_size=55, syndrome_steps=float(5**4))
