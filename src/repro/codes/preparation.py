"""Preparation of code states by measurement (paper §3.5).

"In fact, the encoding circuit is not actually needed.  Whatever the
initial state of the block, (fault-tolerant) error correction will project
it onto the space spanned by {|0̄>, |1̄>}, and (verified) measurement will
project out either |0̄> or |1̄>.  If the result |1̄> is obtained, then the
(bitwise) NOT operator can be applied to flip the block."

This module mechanizes that recipe for *any* stabilizer code: measure each
generator, apply a Pauli fix-up when the outcome is −1 (the fix-up is a
solution of a GF(2) symplectic system: anticommute with the offending
generator, commute with everything already fixed), then measure the
logical Ẑ's and fix with X̂'s.  The result is a verified logical
computational-basis state on the tableau simulator, with no encoder
circuit at all — which is how codes lacking a convenient encoder (e.g.
[[5,1,3]]) get their states in this library.
"""

from __future__ import annotations

import numpy as np

from repro.codes.stabilizer_code import StabilizerCode
from repro.gf2 import gf2_solve
from repro.paulis.pauli import Pauli
from repro.stabilizer.tableau import StabilizerSimulator
from repro.util.rng import as_rng

__all__ = ["prepare_logical_state", "fixup_pauli"]


def fixup_pauli(targets: list[Pauli], which: int) -> Pauli:
    """A Pauli anticommuting with ``targets[which]`` and commuting with
    every other target — the repair operator after a −1 measurement.

    Solves the linear system ⟨q, t_j⟩ = δ_{j,which} over GF(2), where
    ⟨·,·⟩ is the symplectic product.
    """
    if not targets:
        raise ValueError("need at least one target")
    n = targets[0].n
    # Row j of the system: (z_j | x_j) · (qx | qz)^T = rhs_j.
    mat = np.array(
        [np.concatenate([t.z, t.x]) for t in targets], dtype=np.uint8
    )
    rhs = np.zeros(len(targets), dtype=np.uint8)
    rhs[which] = 1
    sol = gf2_solve(mat, rhs)
    if sol is None:
        raise ValueError("no fix-up exists; targets are not independent")
    y_count = int(np.sum(sol[:n] & sol[n:]))
    return Pauli(sol[:n], sol[n:], y_count % 4)


def prepare_logical_state(
    code: StabilizerCode,
    logical_values: list[int] | None = None,
    rng: "int | np.random.Generator | None" = None,
) -> StabilizerSimulator:
    """Project |0...0> onto the code space and pin the logical values.

    Parameters
    ----------
    code: any stabilizer code with canonical logicals.
    logical_values: desired Ẑ_i eigenvalue bits (default all 0, i.e.
        the logical |0...0̄>).

    Returns the tableau simulator holding the prepared state; every
    generator has expectation +1 and every Ẑ_i equals the requested value.
    """
    values = logical_values if logical_values is not None else [0] * code.k
    if len(values) != code.k:
        raise ValueError(f"need {code.k} logical values")
    gen = as_rng(rng)
    sim = StabilizerSimulator(code.n)
    # The full target list: generators first, then the logical Z's — each
    # measurement's fix-up must not disturb anything already pinned.
    targets = list(code.generators) + list(code.logical_z)
    for idx in range(len(targets)):
        observable = targets[idx]
        want = 0 if idx < len(code.generators) else int(values[idx - len(code.generators)])
        outcome = sim.measure_pauli(observable, gen)
        if outcome != want:
            repair = fixup_pauli(targets[: idx + 1], idx)
            _apply_pauli(sim, repair)
    return sim


def _apply_pauli(sim: StabilizerSimulator, pauli: Pauli) -> None:
    for q in range(pauli.n):
        if pauli.x[q] and pauli.z[q]:
            sim.y_gate(q)
        elif pauli.x[q]:
            sim.x_gate(q)
        elif pauli.z[q]:
            sim.z_gate(q)
