"""Quantum error-correcting codes (paper §2, §3.6, §5).

`StabilizerCode` is the general formalism of §3.6; `CSSCode` specializes to
codes built from classical codes; `SteaneCode` is the worked example the
whole paper is organized around, with the Shor [[9,1,3]], Laflamme et al.
[[5,1,3]], quantum repetition, and quantum Hamming families alongside.
Concatenation (§5) is provided both as an analytic construction and as
explicit recursive encoders.
"""

from repro.codes.stabilizer_code import StabilizerCode
from repro.codes.css import CSSCode
from repro.codes.symplectic import find_logical_pairs
from repro.codes.preparation import prepare_logical_state
from repro.codes.steane import SteaneCode
from repro.codes.five_qubit import FiveQubitCode
from repro.codes.shor9 import ShorNineCode
from repro.codes.repetition import BitFlipCode, PhaseFlipCode
from repro.codes.families import QuantumHammingCode, shor_family_parameters
from repro.codes.concatenated import ConcatenatedSteane

__all__ = [
    "StabilizerCode",
    "CSSCode",
    "find_logical_pairs",
    "prepare_logical_state",
    "SteaneCode",
    "FiveQubitCode",
    "ShorNineCode",
    "BitFlipCode",
    "PhaseFlipCode",
    "QuantumHammingCode",
    "shor_family_parameters",
    "ConcatenatedSteane",
]
