"""Steane's 7-qubit code (paper §2, Eqs. 6–7, 15, 18; Figs. 3–4).

Qubit labeling follows Eq. (1)/(18): stabilizer M1 = IIIZZZZ etc., so that
the bit-flip syndrome, read as a binary number, is the 1-indexed position of
a single flipped qubit.  The encoding circuit of Fig. 3 is built in the
Eq. (15) labeling (where it is natural) and re-labeled by the column
permutation the paper mentions ("obtained ... by permuting the columns").
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.classical.hamming import H_EQ1, H_EQ15, HammingCode
from repro.codes.css import CSSCode
from repro.paulis.pauli import Pauli, pauli_from_string

__all__ = ["SteaneCode", "EQ15_TO_EQ1_PERMUTATION"]


def _column_value(h: np.ndarray, col: int) -> int:
    """Read column ``col`` of a 3-row parity check as a binary number."""
    return int(h[0, col]) * 4 + int(h[1, col]) * 2 + int(h[2, col])


def _eq15_to_eq1() -> dict[int, int]:
    """Column permutation π with H_EQ15 column j ≙ H_EQ1 column π(j).

    Matching columns by their syndrome value maps Eq. (15)-labeled
    codewords onto Eq. (1)-labeled codewords exactly.
    """
    values_eq1 = {_column_value(H_EQ1, j): j for j in range(7)}
    return {j: values_eq1[_column_value(H_EQ15, j)] for j in range(7)}


EQ15_TO_EQ1_PERMUTATION = _eq15_to_eq1()


class SteaneCode(CSSCode):
    """The [[7,1,3]] Steane code.

    Logical operators are the transversal X̄ = X⊗7 and Z̄ = Z⊗7 (bitwise NOT
    implements the encoded NOT, §4.1); minimum-weight (weight-3)
    representatives are available via :meth:`min_weight_logical_x`.
    """

    def __init__(self) -> None:
        super().__init__(H_EQ1, H_EQ1, name="Steane[[7,1,3]]")
        # Replace the generic CSS logicals with the canonical transversal ones.
        lx = pauli_from_string("XXXXXXX")
        lz = pauli_from_string("ZZZZZZZ")
        self.logical_x = [lx]
        self.logical_z = [lz]
        self._validate()
        self.hamming = HammingCode("eq1")
        self._frame_table_cache = None

    # ------------------------------------------------------------------
    @staticmethod
    def stabilizer_strings() -> list[str]:
        """Eq. (18) literally."""
        return [
            "IIIZZZZ",
            "IZZIIZZ",
            "ZIZIZIZ",
            "IIIXXXX",
            "IXXIIXX",
            "XIXIXIX",
        ]

    def eq18_generators(self) -> list[Pauli]:
        return [pauli_from_string(s) for s in self.stabilizer_strings()]

    def min_weight_logical_x(self) -> Pauli:
        """A weight-3 logical NOT ("just 3 NOT's", §4.1 footnote f)."""
        return pauli_from_string("IIXIXXI")  # support 0010110, odd codeword

    def min_weight_logical_z(self) -> Pauli:
        return pauli_from_string("IIZIZZI")

    # -- circuits ----------------------------------------------------------
    def encoding_circuit(self) -> Circuit:
        """Fig. 3's encoder, re-labeled into the Eq. (1) convention.

        In the Eq. (15) labeling: the unknown qubit sits on wire 4; two
        XORs spread it to wires 5 and 6 making a·|0000000> + b·|0000111>;
        Hadamards on wires 0–2 and nine XORs then add the even subcode
        (spanned by the rows of Eq. 15), switching on "the parity bits
        dictated by H".
        """
        local = Circuit(7, name="steane-encoder-eq15")
        local.cnot(4, 5).cnot(4, 6)
        for row in range(3):
            local.h(row)
        for row in range(3):
            for col in range(3, 7):
                if H_EQ15[row, col]:
                    local.cnot(row, col)
        circuit = local.remapped(EQ15_TO_EQ1_PERMUTATION)
        circuit.name = "steane-encoder"
        return circuit

    @property
    def input_qubit(self) -> int:
        """The wire of :meth:`encoding_circuit` carrying the unknown state."""
        return EQ15_TO_EQ1_PERMUTATION[4]

    def decoding_circuit(self) -> Circuit:
        """Inverse of the encoder (all gates self-inverse; reverse order)."""
        enc = self.encoding_circuit()
        out = Circuit(7, name="steane-decoder")
        for op in reversed(enc.operations):
            out.append(op.gate, *op.qubits)
        return out

    def destructive_measurement_decode(self, bits: np.ndarray) -> np.ndarray:
        """§3.5 destructive logical measurement, vectorized over shots.

        Measure all 7 qubits, classically Hamming-correct the outcome, and
        report the parity — robust to any single measurement error.
        ``bits`` is ``(shots, 7)``; returns ``(shots,)`` logical values.
        """
        arr = np.atleast_2d(np.asarray(bits, dtype=np.uint8))
        syn = self.x_syndrome_of_frame(arr)  # H·bits: same parity-check matrix
        weights = np.array([4, 2, 1], dtype=np.int64)
        positions = syn.astype(np.int64) @ weights  # 1-indexed flip position, 0 = clean
        corrected_parity = arr.sum(axis=1) % 2
        flip = positions > 0
        corrected_parity[flip] ^= 1
        return corrected_parity.astype(np.uint8)

    def nondestructive_parity_circuit(self) -> Circuit:
        """Fig. 4's nondestructive logical measurement (Eq. 15 labeling
        re-mapped): copy the block parity onto one ancilla and measure.

        In the Eq. (15) form the first three bits determine the codeword,
        and the parity of bits 0,1,2 ... — the figure XORs three data bits
        into the ancilla.  With our Eq. (1) labeling the parity of the
        logical qubit equals the parity of any odd-weight logical-X support;
        we use the weight-3 representative's support.
        """
        circuit = Circuit(8, 1, name="steane-nondestructive-meas")
        support = np.nonzero(self.min_weight_logical_z().z)[0]
        for q in support:
            circuit.cnot(int(q), 7)
        circuit.measure(7, 0)
        return circuit

    # -- frame-level decoding ------------------------------------------------
    def decode_bitflip_syndrome(self, syndrome: np.ndarray) -> np.ndarray:
        """Map 3-bit Hamming syndromes to 7-bit correction masks.

        ``syndrome`` is ``(shots, 3)``; returns ``(shots, 7)`` X-correction
        frames.  Syndrome read as binary = 1-indexed qubit position (Eq. 3).
        """
        syn = np.atleast_2d(np.asarray(syndrome, dtype=np.int64))
        weights = np.array([4, 2, 1], dtype=np.int64)
        positions = syn @ weights
        corrections = np.zeros((syn.shape[0], 7), dtype=np.uint8)
        hit = positions > 0
        corrections[np.nonzero(hit)[0], positions[hit] - 1] = 1
        return corrections
