"""Generic logical-operator construction for any stabilizer code (§4.2).

Gottesman's observation, mechanized: the error operators commuting with an
(n−k)-generator stabilizer form a group with n+k independent generators;
beyond the stabilizer itself there remain 2k independent operators that
act on the code space — and they can always be arranged into k pairs
(X̂_i, Ẑ_i) obeying Eq. (29)'s commutation relations.  The construction is
pure GF(2) symplectic linear algebra:

1. the centralizer is the kernel of the generators' symplectic form;
2. quotient representatives modulo the stabilizer span the logical classes;
3. symplectic Gram–Schmidt pairs them into canonical conjugate pairs.
"""

from __future__ import annotations

import numpy as np

from repro.gf2 import gf2_kernel, gf2_rank
from repro.paulis.pauli import Pauli

__all__ = ["find_logical_pairs", "symplectic_matrix", "centralizer_basis"]


def symplectic_matrix(paulis: list[Pauli]) -> np.ndarray:
    """Stack (x|z) rows for a list of Paulis."""
    return np.array([np.concatenate([p.x, p.z]) for p in paulis], dtype=np.uint8)


def _symplectic_product_rows(a: np.ndarray, b: np.ndarray) -> int:
    n = a.shape[0] // 2
    return int((a[:n] @ b[n:] + a[n:] @ b[:n]) % 2)


def centralizer_basis(generators: list[Pauli]) -> np.ndarray:
    """Basis of all (x|z) vectors commuting with every generator.

    Commutation with (gx|gz) means orthogonality to the swapped vector
    (gz|gx), so the centralizer is the kernel of the swapped generator
    matrix; its dimension is 2n − (n−k) = n + k.
    """
    gmat = symplectic_matrix(generators)
    n = gmat.shape[1] // 2
    swapped = np.concatenate([gmat[:, n:], gmat[:, :n]], axis=1)
    return gf2_kernel(swapped)


def find_logical_pairs(generators: list[Pauli]) -> tuple[list[Pauli], list[Pauli]]:
    """k canonical logical pairs for an arbitrary stabilizer group.

    Returns ``(logical_x, logical_z)`` with [X̂_i, X̂_j] = [Ẑ_i, Ẑ_j] =
    [X̂_i, Ẑ_j≠i] = 0 and X̂_i anticommuting with Ẑ_i (Eq. 29), every
    operator commuting with the full stabilizer.
    """
    if not generators:
        raise ValueError("need at least one generator")
    n = generators[0].n
    gmat = symplectic_matrix(generators)
    m = gf2_rank(gmat)
    k = n - m
    if k == 0:
        return [], []
    # Quotient representatives: centralizer vectors independent modulo the
    # stabilizer row space.
    reps: list[np.ndarray] = []
    stack = gmat.copy()
    rank = gf2_rank(stack)
    for v in centralizer_basis(generators):
        trial = np.vstack([stack, v])
        r = gf2_rank(trial)
        if r > rank:
            reps.append(v.copy())
            stack, rank = trial, r
        if len(reps) == 2 * k:
            break
    if len(reps) != 2 * k:
        raise AssertionError("centralizer quotient has wrong dimension")

    # Symplectic Gram–Schmidt over the representatives.
    pool = list(reps)
    xs: list[np.ndarray] = []
    zs: list[np.ndarray] = []
    while pool:
        a = pool.pop(0)
        partner_idx = None
        for i, b in enumerate(pool):
            if _symplectic_product_rows(a, b) == 1:
                partner_idx = i
                break
        if partner_idx is None:
            raise AssertionError("quotient form is degenerate; invalid stabilizer input")
        b = pool.pop(partner_idx)
        # Normalize the remaining vectors against the new pair.
        cleaned = []
        for u in pool:
            u2 = u.copy()
            if _symplectic_product_rows(u2, b):
                u2 ^= a
            if _symplectic_product_rows(u2, a):
                u2 ^= b
            cleaned.append(u2)
        pool = cleaned
        xs.append(a)
        zs.append(b)

    def _hermitian(v: np.ndarray) -> Pauli:
        # Phase i^{|x∧z|} makes each Y site a true Y, so the operator is
        # Hermitian (required for expectation-value queries).
        y_count = int(np.sum(v[:n] & v[n:]))
        return Pauli(v[:n], v[n:], y_count % 4)

    lx = [_hermitian(v) for v in xs]
    lz = [_hermitian(v) for v in zs]
    return lx, lz
