"""Factoring resource estimates (paper §6).

The worked example: factoring a 130-digit (432-bit) number with Shor's
algorithm needs about 5·432 = 2160 logical qubits and 38·432³ ≈ 3·10⁹
Toffoli gates (ref. 47), hence per-Toffoli error below ~10⁻⁹ and storage
error per gate time below ~10⁻¹².  With the concatenated 7-qubit code the
paper's flow analysis concludes: physical rates ε_store ≈ ε_gate ≈ 10⁻⁶,
L = 3 levels (block 343), and ~10⁶ physical qubits in total; Steane's
block-55 alternative (ref. 48) reaches the same goal with ~4·10⁵ qubits at
gate error 10⁻⁵.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log

from repro.threshold.flow import (
    CONCATENATION_COEFFICIENT,
    logical_rate_closed_form,
)

__all__ = ["FactoringProblem", "FactoringPlan", "plan_factoring", "FACTORING_432_BIT"]


@dataclass(frozen=True)
class FactoringProblem:
    """Target computation parameters.

    Attributes
    ----------
    bits: size of the number to factor.
    qubits_per_bit: logical qubits per input bit (5, from ref. 47).
    toffoli_coefficient: Toffoli count = coefficient · bits³ (38, ref. 47).
    """

    bits: int
    qubits_per_bit: int = 5
    toffoli_coefficient: float = 38.0

    @property
    def logical_qubits(self) -> int:
        return self.qubits_per_bit * self.bits

    @property
    def toffoli_gates(self) -> float:
        return self.toffoli_coefficient * self.bits**3

    def target_gate_error(self, budget: float = 1.0) -> float:
        """Per-(logical-)Toffoli error so the whole run fails w.p. ≲ budget."""
        return budget / self.toffoli_gates


@dataclass(frozen=True)
class FactoringPlan:
    """A concrete machine plan for a factoring problem."""

    problem: FactoringProblem
    physical_error: float
    levels: int
    block_size: int
    achieved_logical_error: float
    data_qubits: int
    total_qubits: float
    ancilla_overhead: float

    def meets_target(self) -> bool:
        return self.achieved_logical_error <= self.problem.target_gate_error()


FACTORING_432_BIT = FactoringProblem(bits=432)


def plan_factoring(
    problem: FactoringProblem = FACTORING_432_BIT,
    physical_error: float = 1e-6,
    threshold: float = 1.0 / CONCATENATION_COEFFICIENT,
    ancilla_overhead: float = 2.0,
    target_error: float | None = None,
) -> FactoringPlan:
    """Choose the concatenation level meeting the problem's error target.

    ``target_error`` defaults to the per-Toffoli budget; pass the paper's
    storage budget (10⁻¹² per gate time) to reproduce its stricter plan.
    ``ancilla_overhead`` multiplies the data-qubit count to cover the
    ancilla blocks used for (parallelized) error correction and Toffoli
    gates — the paper's "total number of qubits ... of order 10⁶" for
    343-qubit blocks on 2160 logical qubits implies an overhead factor of
    roughly 10⁶ / (2160·343) ≈ 1.35; we default to a rounder 2×.
    """
    if not 0 < physical_error < threshold:
        raise ValueError("physical error must lie below the threshold")
    target = target_error if target_error is not None else problem.target_gate_error()
    levels = 0
    while logical_rate_closed_form(physical_error, levels, threshold) > target:
        levels += 1
        if levels > 32:
            raise RuntimeError("target unreachable")
    achieved = logical_rate_closed_form(physical_error, levels, threshold)
    block = 7**levels
    data = problem.logical_qubits * block
    return FactoringPlan(
        problem=problem,
        physical_error=physical_error,
        levels=levels,
        block_size=block,
        achieved_logical_error=achieved,
        data_qubits=data,
        total_qubits=data * ancilla_overhead,
        ancilla_overhead=ancilla_overhead,
    )


def classical_factoring_months(bits: int, reference_bits: int = 432, reference_months: float = 3.0) -> float:
    """Crude sub-exponential classical-factoring scaling (NFS exponent) —
    context for the §6 comparison "a few months to factor a 130 digit
    number" with the best classical algorithm of the day."""
    def nfs_exponent(b: int) -> float:
        n_ln = b * log(2.0)
        return (64.0 / 9.0) ** (1.0 / 3.0) * n_ln ** (1.0 / 3.0) * log(n_ln) ** (2.0 / 3.0)

    return reference_months * pow(2.718281828, nfs_exponent(bits) - nfs_exponent(reference_bits))


def block55_alternative(problem: FactoringProblem = FACTORING_432_BIT) -> dict[str, float]:
    """Steane's ref. 48 data point: block size 55 correcting t = 5 errors
    at gate error 10⁻⁵ needs ~4·10⁵ qubits for the same factoring task.
    Returned as a structured record for the E09 comparison table."""
    return {
        "block_size": 55.0,
        "corrects": 5.0,
        "gate_error": 1e-5,
        "total_qubits": 4e5,
        "logical_qubits": float(problem.logical_qubits),
        "qubits_per_logical": 4e5 / problem.logical_qubits,
    }
