"""Content-addressed Monte Carlo result cache (the user-facing API).

The ROADMAP's threshold-as-a-service north star: never recompute a
``(protocol, code, noise, shots, seed, num_shards)`` point twice.  The
storage substrate is :mod:`repro.threshold.journal` (sqlite/WAL, per-row
checksums, quarantine); this module is the read side:

* **run-key lookup** — :meth:`ResultCache.lookup` classifies a run key as
  a full hit (every shard recorded and verified — the sharded driver
  returns these pooled counts without creating a worker pool), a partial
  hit (resume re-executes only the remainder), or a miss;
* **cross-run pooling** — :meth:`ResultCache.pooled_counts` merges every
  *completed* run that shares a physics fingerprint
  (:func:`~repro.threshold.journal.compute_physics_key`: seed, shots, and
  shard plan excluded) into one higher-shot ``(shots, failures)`` answer,
  and :meth:`ResultCache.pooled_result` wraps it in a
  :class:`~repro.threshold.montecarlo.MemoryResult` with Wilson bounds
  recomputed on the pooled counts.  Pooling independent seeds is
  statistically legitimate by construction: every shard stream is an
  independent ``SeedSequence`` child, so the union of two runs is simply
  one larger experiment;
* **maintenance** — :meth:`ResultCache.stats` and :meth:`ResultCache.gc`
  back the ``scripts_run_full.py cache stats|gc`` subcommands.

Every read is verified (checksums + shard-plan validation); corrupt rows
are quarantined with a :class:`~repro.threshold.journal.CacheCorrupt`
warning and simply excluded, so a cache can get *smaller* under
corruption but never *wrong*.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.threshold.journal import (
    CheckpointJournal,
    compute_physics_key,
)

__all__ = ["CacheLookup", "ResultCache"]


@dataclass(frozen=True)
class CacheLookup:
    """Outcome of a run-key lookup.

    ``status`` is ``"full"`` (every planned shard recorded and verified),
    ``"partial"`` (some), or ``"miss"`` (none); ``counts`` maps shard
    index to its recorded ``(shots, failures)``; ``shots``/``failures``
    are the pooled totals over the recorded shards.
    """

    status: str
    counts: dict[int, tuple[int, int]]
    shots: int
    failures: int


class ResultCache:
    """Verified read/maintenance API over a checkpoint journal file.

    Usable as a context manager; the underlying journal connection is the
    same sqlite/WAL store the sharded driver writes through, so a cache
    handle can watch a live scan fill in.
    """

    def __init__(self, path: str | Path, io_chaos=None) -> None:
        self._journal = CheckpointJournal(path, io_chaos=io_chaos)

    @property
    def path(self) -> Path:
        return self._journal.path

    @property
    def journal(self) -> CheckpointJournal:
        return self._journal

    # -- lookup --------------------------------------------------------
    def lookup(self, run_key: str, shard_sizes: list[int]) -> CacheLookup:
        """Classify ``run_key`` against its shard plan (validated read)."""
        counts = self._journal.completed_shards(
            run_key, expected_sizes=list(shard_sizes)
        )
        if not counts:
            status = "miss"
        elif len(counts) == len(shard_sizes):
            status = "full"
        else:
            status = "partial"
        return CacheLookup(
            status=status,
            counts=counts,
            shots=sum(s for s, _ in counts.values()),
            failures=sum(f for _, f in counts.values()),
        )

    # -- cross-run pooling ---------------------------------------------
    def pooled_counts(self, kind: str, args: tuple) -> tuple[int, int]:
        """Pooled ``(shots, failures)`` over every completed run of this
        physics — seeds and shot budgets differ, the physics does not.

        ``kind``/``args`` are exactly what the sharded driver hashes:
        ``("memory", (protocol, code, rounds))`` or
        ``("capacity", (code, eps, rounds))``.
        """
        shots, failures, _ = self._journal.pooled_physics_counts(
            compute_physics_key(kind, args)
        )
        return shots, failures

    def pooled_runs(self, kind: str, args: tuple) -> list[str]:
        """Run keys of the completed runs that :meth:`pooled_counts` merged."""
        return self._journal.pooled_physics_counts(
            compute_physics_key(kind, args)
        )[2]

    def pooled_result(self, kind: str, args: tuple, rounds: int):
        """Cross-run pooled :class:`~repro.threshold.montecarlo.MemoryResult`
        with Wilson bounds recomputed on the merged counts, or ``None``
        when no completed run of this physics is cached."""
        from repro.threshold.montecarlo import MemoryResult
        from repro.util.stats import binomial_confidence, logical_error_per_round

        shots, failures = self.pooled_counts(kind, args)
        if shots == 0:
            return None
        est, low, high = binomial_confidence(failures, shots)
        return MemoryResult(
            rounds, shots, failures, est, low, high,
            logical_error_per_round(est, rounds),
        )

    # -- maintenance ---------------------------------------------------
    def stats(self) -> dict:
        return self._journal.stats()

    def gc(
        self,
        grace_seconds: float = 3600.0,
        protected_keys: "set[str] | frozenset[str] | tuple | list" = (),
    ) -> dict:
        """Compact the store — safely alongside live runs.

        Incomplete runs are only dropped when provably abandoned: rows
        younger than ``grace_seconds`` mark a run as in flight, and
        ``protected_keys`` (e.g. a scan queue's
        :meth:`~repro.threshold.scheduler.ScanQueue.active_run_keys`)
        are never collected regardless of age — see
        :meth:`~repro.threshold.journal.CheckpointJournal.gc`.
        """
        return self._journal.gc(
            grace_seconds=grace_seconds, protected_keys=protected_keys
        )

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self._journal.close()

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
