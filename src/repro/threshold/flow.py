"""Concatenation flow equations (paper §5, Eqs. 33 and 36).

A level-(L+1) Steane block fails when at least two of its seven level-L
sub-blocks fail:

    p_{L+1} ≈ C(7,2) · p_L² = 21 · p_L²            (Eq. 33)

so the fixed point p* = 1/21 separates convergence from divergence — the
accuracy threshold.  Below it, L levels give the doubly exponential
suppression

    ε(L) ≈ ε₀ · (ε/ε₀)^(2^L)                        (Eq. 36)

at block size 7^L.  The coupled map :func:`toffoli_flow` extends this to a
separate Toffoli error parameter (footnote j: a Toffoli error rate of order
10⁻³ is acceptable when the one- and two-qubit gates are sufficiently
better).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

__all__ = [
    "CONCATENATION_COEFFICIENT",
    "flow_map",
    "iterate_flow",
    "threshold_from_coefficient",
    "logical_rate_closed_form",
    "levels_needed",
    "ToffoliFlowParams",
    "toffoli_flow",
]

# C(7,2): the number of sub-block pairs whose joint failure breaks a
# level-(L+1) Steane block.
CONCATENATION_COEFFICIENT: float = float(comb(7, 2))


def flow_map(p: float, coefficient: float = CONCATENATION_COEFFICIENT) -> float:
    """One concatenation step: p -> A·p² (clipped to 1)."""
    if p < 0:
        raise ValueError("p must be non-negative")
    return min(1.0, coefficient * p * p)


def iterate_flow(
    p0: float, levels: int, coefficient: float = CONCATENATION_COEFFICIENT
) -> list[float]:
    """Error probabilities [p_0, p_1, ..., p_levels] under the flow map."""
    out = [float(p0)]
    for _ in range(levels):
        out.append(flow_map(out[-1], coefficient))
    return out


def threshold_from_coefficient(coefficient: float = CONCATENATION_COEFFICIENT) -> float:
    """The nontrivial fixed point p* = 1/A of p' = A·p²."""
    if coefficient <= 0:
        raise ValueError("coefficient must be positive")
    return 1.0 / coefficient


def logical_rate_closed_form(
    eps: float, levels: int, eps0: float = 1.0 / CONCATENATION_COEFFICIENT
) -> float:
    """Eq. (36): ε(L) = ε₀ (ε/ε₀)^(2^L)."""
    if eps < 0 or eps0 <= 0:
        raise ValueError("rates must be non-negative (eps0 positive)")
    return float(eps0 * (eps / eps0) ** (2**levels))


def levels_needed(
    eps: float, target: float, eps0: float = 1.0 / CONCATENATION_COEFFICIENT
) -> int:
    """Minimal concatenation level with ε(L) <= target (ε below threshold)."""
    if not 0 < eps < eps0:
        raise ValueError("eps must lie strictly below the threshold")
    if target <= 0:
        raise ValueError("target must be positive")
    level = 0
    while logical_rate_closed_form(eps, level, eps0) > target:
        level += 1
        if level > 64:
            raise RuntimeError("unreachable target (>64 levels)")
    return level


@dataclass(frozen=True)
class ToffoliFlowParams:
    """Coefficients of the coupled Clifford/Toffoli flow.

    The paper does not publish its full Toffoli flow system (the analysis
    is cited as unpublished); these defaults are calibrated from our own
    circuit counting of the encoded Toffoli gadget
    (:func:`repro.ft.toffoli.encoded_toffoli_resources`): the gadget fails
    when two level-L faults coincide among its N_t Toffoli-type and N_c
    Clifford-type locations per block-qubit, giving

        t_{L+1} = pair_coeff · (t_L + clifford_ratio · p_L)².
    """

    pair_coeff: float = CONCATENATION_COEFFICIENT
    clifford_ratio: float = 4.0


def toffoli_flow(
    p0: float,
    t0: float,
    levels: int,
    params: ToffoliFlowParams | None = None,
    ec_coefficient: float = CONCATENATION_COEFFICIENT,
) -> list[tuple[float, float]]:
    """Iterate the coupled (Clifford, Toffoli) error flow.

    Returns [(p_0, t_0), ..., (p_L, t_L)].  The Clifford error follows
    Eq. (33) unchanged; the Toffoli error is rebuilt at each level from
    the measured gadget (it is *not* simply squared, because the gadget
    consumes Clifford operations too).
    """
    pars = params or ToffoliFlowParams()
    out = [(float(p0), float(t0))]
    for _ in range(levels):
        p, t = out[-1]
        p_next = min(1.0, ec_coefficient * p * p)
        t_next = min(1.0, pars.pair_coeff * (t + pars.clifford_ratio * p) ** 2)
        out.append((p_next, t_next))
    return out


def tolerated_toffoli_rate(
    p0: float,
    params: ToffoliFlowParams | None = None,
    levels: int = 12,
    target: float = 1e-12,
) -> float:
    """Largest t₀ (bisection) whose coupled flow still converges.

    Reproduces footnote j's claim: with good Clifford gates, Toffoli error
    rates of order 10⁻³ remain tolerable.
    """
    pars = params or ToffoliFlowParams()

    def converges(t0: float) -> bool:
        p, t = p0, t0
        for _ in range(levels):
            p, t = (
                min(1.0, CONCATENATION_COEFFICIENT * p * p),
                min(1.0, pars.pair_coeff * (t + pars.clifford_ratio * p) ** 2),
            )
        return t < target and p < target

    lo, hi = 0.0, 1.0
    if not converges(lo):
        return 0.0
    for _ in range(60):
        mid = (lo + hi) / 2
        if converges(mid):
            lo = mid
        else:
            hi = mid
    return lo
