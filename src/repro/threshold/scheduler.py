"""Durable lease-based scan queue: the scheduler half of threshold-as-a-service.

PR 7 delivered the result-cache half (never *recompute* a point); every
scan was still a blocking in-process call, so serving concurrent users —
or amortizing the 10⁻⁵–10⁻⁶ shot volumes Gottesman-style threshold claims
need across requests — had no scheduler to lean on.  This module is that
scheduler: a sqlite/WAL-backed durable job queue sharing the journal's
storage discipline (``PRAGMA user_version`` schema versioning with
migrate-or-refuse, ``PRAGMA integrity_check`` on open, per-row checksums,
bounded lock retry), plus lease-based claiming so work survives dead
claimant hosts.

The moving parts
----------------
* :meth:`ScanQueue.submit_scan` — enqueue a scan and get a
  :class:`JobHandle`.  Submissions are **content-addressed**: the job row
  is keyed by the same run key the result cache uses, so an identical
  in-flight submission dedups onto the existing row, a run the
  :class:`~repro.threshold.cache.ResultCache` can already answer (full
  run-key hit, or cross-run pooling over the physics fingerprint)
  completes *at submit time* without a worker pool ever being created,
  and admission control bounds queue depth (:class:`QueueSaturated`).
* :meth:`ScanQueue.claim` — **lease-based claiming**: a claimant takes the
  best eligible job (priority desc, then FIFO) under a short-lived lease
  it must keep heartbeating.  A SIGKILLed claimant simply stops
  heartbeating; after ``lease_seconds`` the job becomes claimable again
  and another claimant takes it over.  Completed shards were journaled as
  they finished, so the takeover resumes, re-executing only the
  remainder — bit-for-bit what a clean run produces, shards being pure
  functions of their specs.
* :meth:`ScanQueue.complete` / :meth:`ScanQueue.release` /
  :meth:`ScanQueue.requeue` — every terminal write is **owner-guarded**
  (``WHERE lease_owner = ?``): a stale claimant that lost its lease to a
  takeover cannot clobber the new owner's result (its completion is
  rejected and recorded as an event).  Failures retry with exponential
  backoff up to the job's attempt budget, then land in ``failed`` with the
  last error attached (:class:`JobFailed` from the handle side;
  :class:`JobDegraded` warns when a job finished via degraded execution) —
  the job-level mirror of the shard-level
  ``ShardTimeout``/``ShardRetryExhausted``/``RunDegraded`` taxonomy.
* :func:`serve` — the claimant loop behind
  ``scripts_run_full.py serve --queue PATH --workers N``.  Heartbeats ride
  the runtime's ``on_shard_complete`` callback (plus a background pump for
  long single shards), and SIGTERM/KeyboardInterrupt triggers a **graceful
  drain**: the in-flight job's finished shards are already durable in the
  cache, the job is requeued (attempt not charged), and the loop exits —
  completed work is never lost, never double-counted.

Every job row carries an identity checksum (fixed at submit, verified at
claim — a tampered row is marked ``corrupt`` with a :class:`QueueCorrupt`
warning and never executed) and every finished row a result checksum
(verified when the handle reads it).  Scheduler-level fault injection
lives in :class:`repro.threshold.chaos.SchedulerChaosPlan` (claimant
kill, heartbeat stall, mid-job interrupt); queue storage faults reuse
``IOChaosPlan``/``ChaosConnection`` on the queue's own connection.

See ``SCHEDULER.md`` for the schema, the lease protocol state machine,
and drain semantics.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sqlite3
import threading
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.threshold.journal import (
    JournalSchemaError,
    compute_physics_key,
    compute_run_key,
)

__all__ = [
    "ClaimedJob",
    "JobDegraded",
    "JobFailed",
    "JobHandle",
    "JobResult",
    "QueueCorrupt",
    "QueueSaturated",
    "ScanQueue",
    "ServeReport",
    "job_checksum",
    "job_result_checksum",
    "scan_via_queue",
    "serve",
]

# PRAGMA user_version stamped into every queue file this code writes.
# Distinct from the journal's version line (journals and queues are
# different files with different layouts; pointing one API at the other's
# file is refused, never guessed at).
_QUEUE_SCHEMA_VERSION = 1

# Tables this layout owns — used to refuse a version-0 file that already
# belongs to something else (e.g. a PR 6 journal).
_QUEUE_TABLES = {"jobs", "events"}

# Default lease duration.  Heartbeats extend it continuously while a
# claimant is alive; a dead claimant's job becomes claimable this long
# after its last heartbeat.
DEFAULT_LEASE_SECONDS = 60.0

# Admission-control default: pending + leased jobs beyond this raise
# QueueSaturated at submit (cache-answerable submissions are exempt — they
# never occupy the queue).
DEFAULT_MAX_DEPTH = 1024

# Job-level retry budget (total attempts = 1 + retries), mirroring the
# shard-level ResilienceOptions.max_retries default.
DEFAULT_JOB_RETRIES = 2

# Exponential backoff for released (failed) jobs: backoff * 2**(attempt-1),
# capped so a crash-looping job cannot push its retry into next week.
_RETRY_BACKOFF = 0.5
_RETRY_BACKOFF_CAP = 60.0

# Bounded retry budget for transient queue lock contention before the
# operation propagates the error (the serve loop absorbs and retries;
# submitters see the failure).
_QUEUE_LOCK_RETRIES = 4
_LOCK_RETRY_SLEEP = 0.05

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id             INTEGER PRIMARY KEY AUTOINCREMENT,
    run_key            TEXT NOT NULL UNIQUE,
    physics_key        TEXT NOT NULL,
    kind               TEXT NOT NULL,
    payload            BLOB NOT NULL,
    shots              INTEGER NOT NULL,
    num_shards         INTEGER NOT NULL,
    priority           INTEGER NOT NULL DEFAULT 0,
    state              TEXT NOT NULL DEFAULT 'pending',
    attempts           INTEGER NOT NULL DEFAULT 0,
    max_attempts       INTEGER NOT NULL,
    not_before_unix    REAL NOT NULL DEFAULT 0,
    lease_owner        TEXT,
    lease_expires_unix REAL,
    heartbeat_unix     REAL,
    checksum           TEXT NOT NULL,
    source             TEXT,
    result_shots       INTEGER,
    result_failures    INTEGER,
    result_checksum    TEXT,
    degraded           INTEGER NOT NULL DEFAULT 0,
    error              TEXT,
    submitted_unix     REAL NOT NULL,
    finished_unix      REAL
);
CREATE INDEX IF NOT EXISTS idx_jobs_claim ON jobs (state, priority, job_id);
CREATE TABLE IF NOT EXISTS events (
    event_id INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id   INTEGER NOT NULL,
    event    TEXT NOT NULL,
    owner    TEXT,
    detail   TEXT,
    at_unix  REAL NOT NULL
);
"""

# The state machine is declared once, in repro.analysis.protospec, and
# imported here so the implementation and the protocol verifier
# (`python -m repro.analysis --verify-protocol`, ANALYSIS.md) can never
# disagree about the state set.  TRANSITION_SPEC is re-exported as this
# module's declared protocol; every UPDATE/INSERT against `jobs` below
# is statically checked against it (protocheck), and its composition
# under arbitrary claimant interleavings is exhaustively explored
# (repro.analysis.explore).  SCHEDULER.md embeds the generated diagram.
from repro.analysis.protospec import (  # noqa: E402
    JOB_STATES as _JOB_STATES,
    TRANSITION_SPEC,
)

_JOB_KINDS = ("memory", "capacity")


# ----------------------------------------------------------------------
# Taxonomy (job-level mirror of ShardTimeout/ShardRetryExhausted/RunDegraded).
# ----------------------------------------------------------------------
class QueueSaturated(RuntimeError):
    """Admission control refused a submission: pending + leased jobs are
    at the queue's depth bound.  Back off and resubmit — accepting the job
    would only move the wait from the submitter into the queue file."""

    def __init__(self, depth: int, max_depth: int) -> None:
        super().__init__(
            f"queue depth {depth} is at its admission bound {max_depth}; "
            f"retry after some jobs finish"
        )
        self.depth = depth
        self.max_depth = max_depth


class JobFailed(RuntimeError):
    """A job exhausted its attempt budget (or its row failed validation)
    and will not be retried; carries the last underlying error text."""

    def __init__(self, job_id: int, run_key: str, state: str, error: str | None) -> None:
        super().__init__(
            f"job {job_id} (run {run_key[:12]}…) ended in state {state!r}: "
            f"{error or 'no error recorded'}"
        )
        self.job_id = job_id
        self.run_key = run_key
        self.state = state
        self.error = error


class JobDegraded(UserWarning):
    """The job finished with correct pooled counts but not as planned —
    shards fell back to in-process execution or the result cache degraded
    mid-run (the job-level echo of ``RunDegraded``/``JournalDegraded``)."""


class QueueCorrupt(UserWarning):
    """A queue row failed validation (identity or result checksum
    mismatch).  The row is marked ``corrupt`` and never executed or
    returned; resubmitting the same scan starts a fresh row."""


# ----------------------------------------------------------------------
# Row checksums.  Identity is fixed at submit and verified at claim;
# results are fixed at completion and verified at read.
# ----------------------------------------------------------------------
def job_checksum(
    run_key: str, kind: str, shots: int, num_shards: int, payload: bytes
) -> str:
    """Identity checksum binding a job row to exactly what will execute.

    Covers the run key, kind, shot budget, shard plan, and the pickled
    ``(args, seed)`` payload — a flipped bit in any of them (bit rot, an
    external edit) fails verification at claim time and the row is marked
    corrupt instead of executing the wrong physics under the right key.
    """
    h = hashlib.sha256()
    h.update(f"{run_key}|{kind}|{int(shots)}|{int(num_shards)}|".encode())
    h.update(payload)
    return h.hexdigest()[:16]


def job_result_checksum(run_key: str, shots: int, failures: int) -> str:
    """Result checksum binding finished counts to the job's identity."""
    payload = f"result|{run_key}|{int(shots)}|{int(failures)}"
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# Claim-side / handle-side views.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClaimedJob:
    """One leased job as handed to a claimant: everything needed to
    rebuild the exact shard specs (``sharded._build_specs`` is pure, so
    any claimant — including a lease-takeover successor — derives
    identical shards and identical pooled counts)."""

    job_id: int
    run_key: str
    physics_key: str
    kind: str
    args: tuple
    seed: object
    shots: int
    num_shards: int
    priority: int
    attempt: int
    max_attempts: int
    owner: str


@dataclass(frozen=True)
class JobResult:
    """Terminal result of a job: pooled ``(shots, failures)`` plus where
    they came from (``computed`` / ``cache`` / ``pooled``) and whether the
    run degraded on the way."""

    job_id: int
    run_key: str
    shots: int
    failures: int
    source: str
    degraded: bool


@dataclass(frozen=True)
class JobHandle:
    """Submitter's ticket for one scan.

    ``coalesced`` is True when the submission never entered the queue as
    work: it deduped onto an existing row, or the result cache answered it
    outright (``source`` = ``"cache"`` for a full run-key hit,
    ``"pooled"`` for a cross-run physics merge).
    """

    job_id: int
    run_key: str
    coalesced: bool
    source: str | None
    _queue: "ScanQueue" = field(repr=False, compare=False)

    def status(self) -> str:
        """Current job state (one of pending/leased/done/failed/corrupt)."""
        return str(self._queue.job_row(self.job_id)["state"])

    def result(self, timeout: float | None = None, poll_interval: float = 0.1) -> JobResult:
        """Block until the job reaches a terminal state; verified read.

        Raises :class:`JobFailed` on ``failed``/``corrupt`` (or a result
        row failing its checksum), warns :class:`JobDegraded` when the job
        finished degraded, and :class:`TimeoutError` past ``timeout``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            row = self._queue.job_row(self.job_id)
            state = str(row["state"])
            if state == "done":
                return self._verified_result(row)
            if state in ("failed", "corrupt"):
                raise JobFailed(self.job_id, self.run_key, state, row["error"])
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {self.job_id} still {state!r} after {timeout}s"
                )
            time.sleep(poll_interval)

    def _verified_result(self, row: dict) -> JobResult:
        shots, failures = int(row["result_shots"]), int(row["result_failures"])
        if row["result_checksum"] != job_result_checksum(self.run_key, shots, failures):
            warnings.warn(
                f"job {self.job_id} result failed checksum verification; "
                f"marking the row corrupt — resubmit to recompute",
                QueueCorrupt,
                stacklevel=3,
            )
            self._queue.mark_corrupt(self.job_id, "result checksum mismatch")
            raise JobFailed(
                self.job_id, self.run_key, "corrupt", "result checksum mismatch"
            )
        if int(row["degraded"]):
            warnings.warn(
                f"job {self.job_id} finished degraded (in-process fallback or "
                f"uncheckpointed execution on the way); pooled counts are "
                f"unaffected",
                JobDegraded,
                stacklevel=3,
            )
        return JobResult(
            job_id=self.job_id,
            run_key=self.run_key,
            shots=shots,
            failures=failures,
            source=str(row["source"]),
            degraded=bool(int(row["degraded"])),
        )


# ----------------------------------------------------------------------
# The queue.
# ----------------------------------------------------------------------
class ScanQueue:
    """Sqlite/WAL durable job queue with lease-based claiming.

    One queue file, any number of submitter and claimant processes; WAL
    plus ``BEGIN IMMEDIATE`` transactions serialize every state change,
    and a bounded lock retry absorbs short contention bursts.  All clock
    comparisons use wall time (``time.time()``): lease deadlines must be
    comparable *across processes and hosts*, which process-local monotonic
    clocks are not.  The ``now=`` parameter on the lease methods exists so
    tests can drive lease expiry deterministically without sleeping.

    ``cache_path`` points at the result cache consulted for request
    coalescing at submit; ``io_chaos`` wraps the queue connection in the
    fault-injecting proxy from :mod:`repro.threshold.chaos` (tests only).
    """

    def __init__(
        self,
        path: str | Path,
        cache_path: str | Path | None = None,
        *,
        max_depth: int = DEFAULT_MAX_DEPTH,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        io_chaos=None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be positive")
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        self.path = Path(path)
        self.cache_path = Path(cache_path) if cache_path is not None else None
        self.max_depth = int(max_depth)
        self.lease_seconds = float(lease_seconds)
        self._closed = False
        self._cache_handle = None
        # Autocommit mode: the queue manages transactions explicitly with
        # BEGIN IMMEDIATE (multi-statement claim/submit must be atomic
        # across processes; the stdlib's implicit transaction management
        # would defer the write lock to the first DML statement).
        conn = sqlite3.connect(str(self.path), timeout=30.0, isolation_level=None)
        if io_chaos is not None:
            from repro.threshold.chaos import ChaosConnection

            conn = ChaosConnection(conn, io_chaos)
        self._conn = conn
        try:
            status = self._conn.execute("PRAGMA integrity_check").fetchone()[0]
            if status != "ok":
                raise sqlite3.DatabaseError(
                    f"integrity_check failed for {self.path}: {status}"
                )
            self._ensure_schema()
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        except BaseException:
            self._closed = True
            try:
                conn.close()
            except (sqlite3.Error, OSError):
                pass  # the original open/schema error is the observable fault
            raise

    def __getstate__(self) -> None:
        """Queues hold a process-local sqlite connection: refuse at pickle
        time (claimants open the queue *path* themselves)."""
        raise TypeError(
            "ScanQueue holds a process-local sqlite connection and cannot be "
            "pickled; pass the queue *path* and open it in the receiving "
            "process instead"
        )

    # -- schema --------------------------------------------------------
    def _ensure_schema(self) -> None:
        """Create or refuse — the queue has one layout version so far."""
        version = int(self._conn.execute("PRAGMA user_version").fetchone()[0])
        if version == 0:
            tables = {
                r[0]
                for r in self._conn.execute(
                    "SELECT name FROM sqlite_master WHERE type='table' "
                    "AND name NOT LIKE 'sqlite_%'"
                )
            }
            if tables and not tables <= _QUEUE_TABLES:
                raise JournalSchemaError(
                    f"{self.path} has user_version=0 but already holds "
                    f"tables {sorted(tables - _QUEUE_TABLES)} — it is not a "
                    f"scan queue; refusing to overwrite it"
                )
        elif version != _QUEUE_SCHEMA_VERSION:
            raise JournalSchemaError(
                f"{self.path} carries queue user_version={version}; this code "
                f"writes version {_QUEUE_SCHEMA_VERSION} and refuses to guess "
                f"at an unknown layout"
            )
        self._conn.executescript(_SCHEMA)
        self._conn.execute(f"PRAGMA user_version = {_QUEUE_SCHEMA_VERSION}")

    # -- transaction plumbing ------------------------------------------
    def _rollback(self) -> None:
        try:
            self._conn.execute("ROLLBACK")
        except sqlite3.Error:
            pass  # no transaction active / connection already broken

    def _locked(self, fn):
        """One ``BEGIN IMMEDIATE`` transaction with bounded lock retry.

        Lock contention within the retry budget re-runs the whole
        transaction (it never committed, so re-running is exact); anything
        past the budget — and every non-lock error — propagates.  The
        serve loop catches and retries; submitters see the fault.
        """
        for attempt in range(1, 2 + _QUEUE_LOCK_RETRIES):
            try:
                self._conn.execute("BEGIN IMMEDIATE")
            except sqlite3.OperationalError as exc:
                if _is_lock_error(exc) and attempt <= _QUEUE_LOCK_RETRIES:
                    time.sleep(_LOCK_RETRY_SLEEP * attempt)
                    continue
                raise
            try:
                result = fn()
                self._conn.execute("COMMIT")
                return result
            except sqlite3.OperationalError as exc:
                self._rollback()
                if _is_lock_error(exc) and attempt <= _QUEUE_LOCK_RETRIES:
                    time.sleep(_LOCK_RETRY_SLEEP * attempt)
                    continue
                raise
            except BaseException:
                self._rollback()
                raise
        raise sqlite3.OperationalError(  # pragma: no cover - loop always acts
            "queue lock retry budget exhausted"
        )

    def _event(self, job_id: int, event: str, owner: str | None, detail: str | None, now: float) -> None:
        self._conn.execute(
            "INSERT INTO events (job_id, event, owner, detail, at_unix) "
            "VALUES (?, ?, ?, ?, ?)",
            (int(job_id), event, owner, detail, now),
        )

    def _cache(self):
        """Lazily opened ResultCache for submit-time coalescing (or None)."""
        if self.cache_path is None:
            return None
        if self._cache_handle is None:
            from repro.threshold.cache import ResultCache

            self._cache_handle = ResultCache(self.cache_path)
        return self._cache_handle

    # -- submit --------------------------------------------------------
    def submit_scan(
        self,
        kind: str,
        args: tuple,
        shots: int,
        seed: int | np.random.SeedSequence | None = None,
        priority: int = 0,
        *,
        num_shards: int | None = None,
        max_retries: int = DEFAULT_JOB_RETRIES,
    ) -> JobHandle:
        """Enqueue a scan; returns immediately with a :class:`JobHandle`.

        Content-addressed coalescing, in order:

        1. a row already exists under this run key → dedup onto it (live
           rows additionally absorb the higher priority; ``failed`` /
           ``corrupt`` rows are reset and retried fresh);
        2. the result cache fully answers the run key → the job is born
           ``done`` with ``source="cache"`` — no pool, no queue slot;
        3. cross-run pooling over the physics fingerprint already has at
           least ``shots`` shots → born ``done`` with ``source="pooled"``;
        4. otherwise the job enters the queue as ``pending`` — subject to
           admission control (:class:`QueueSaturated`).

        ``seed=None`` draws fresh entropy *here* so the job's identity is
        fixed at submit (the run key just never matches a previous run's).
        """
        if kind not in _JOB_KINDS:
            raise ValueError(f"unknown scan kind {kind!r}; valid: {_JOB_KINDS}")
        if shots < 1:
            raise ValueError("shots must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        from repro.threshold.sharded import _seed_fingerprint, shard_sizes

        sizes = shard_sizes(shots, num_shards)
        if seed is None:
            seed = np.random.SeedSequence()
        elif not isinstance(seed, (int, np.integer, np.random.SeedSequence)):
            raise TypeError(
                "submit_scan derives per-shard streams from SeedSequence.spawn; "
                "pass an int seed, a SeedSequence, or None — not a Generator"
            )
        run_key = compute_run_key(kind, args, shots, _seed_fingerprint(seed), len(sizes))
        physics_key = compute_physics_key(kind, args)
        payload = pickle.dumps((args, seed), protocol=4)
        checksum = job_checksum(run_key, kind, shots, len(sizes), payload)
        max_attempts = 1 + int(max_retries)

        def _txn() -> JobHandle:
            now = time.time()
            row = self._conn.execute(
                "SELECT job_id, state, source FROM jobs WHERE run_key = ?",
                (run_key,),
            ).fetchone()
            if row is not None:
                job_id, state, source = int(row[0]), str(row[1]), row[2]
                if state in ("pending", "leased", "done"):
                    if state != "done":
                        # Live dedup absorbs the higher priority so a later
                        # urgent submitter is not stuck behind the original's.
                        self._conn.execute(
                            "UPDATE jobs SET priority = MAX(priority, ?) "
                            "WHERE job_id = ?",
                            (int(priority), job_id),
                        )
                    self._event(job_id, "deduplicated", None, f"state={state}", now)
                    return JobHandle(
                        job_id=job_id,
                        run_key=run_key,
                        coalesced=True,
                        source=source if state == "done" else None,
                        _queue=self,
                    )
                # failed/corrupt: resubmitting is an explicit fresh start.
                # Every identity column is restored from the submission —
                # a corrupt row may have had any of them tampered, and the
                # run key pins what they must be.
                self._conn.execute(
                    "UPDATE jobs SET state='pending', kind=?, payload=?, "
                    "shots=?, num_shards=?, physics_key=?, checksum=?, "
                    "priority=?, attempts=0, max_attempts=?, not_before_unix=0, "
                    "lease_owner=NULL, lease_expires_unix=NULL, "
                    "heartbeat_unix=NULL, source=NULL, result_shots=NULL, "
                    "result_failures=NULL, result_checksum=NULL, degraded=0, "
                    "error=NULL, submitted_unix=?, finished_unix=NULL "
                    "WHERE job_id = ?",
                    (
                        kind,
                        payload,
                        int(shots),
                        len(sizes),
                        physics_key,
                        checksum,
                        int(priority),
                        max_attempts,
                        now,
                        job_id,
                    ),
                )
                self._event(job_id, "resubmitted", None, f"was {state}", now)
                return JobHandle(
                    job_id=job_id, run_key=run_key, coalesced=False, source=None,
                    _queue=self,
                )

            # Coalesce against the result cache before occupying a slot.
            source = None
            res_shots = res_failures = None
            cache = self._cache()
            if cache is not None:
                look = cache.lookup(run_key, sizes)
                if look.status == "full":
                    source, res_shots, res_failures = "cache", look.shots, look.failures
                else:
                    p_shots, p_failures = cache.pooled_counts(kind, args)
                    if p_shots >= shots:
                        source, res_shots, res_failures = "pooled", p_shots, p_failures
            if source is None:
                depth = int(
                    self._conn.execute(
                        "SELECT COUNT(*) FROM jobs WHERE state IN ('pending', 'leased')"
                    ).fetchone()[0]
                )
                if depth >= self.max_depth:
                    raise QueueSaturated(depth, self.max_depth)
            cur = self._conn.execute(
                "INSERT INTO jobs (run_key, physics_key, kind, payload, shots, "
                "num_shards, priority, state, max_attempts, checksum, source, "
                "result_shots, result_failures, result_checksum, degraded, "
                "submitted_unix, finished_unix) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 0, ?, ?)",
                (
                    run_key,
                    physics_key,
                    kind,
                    payload,
                    int(shots),
                    len(sizes),
                    int(priority),
                    "done" if source is not None else "pending",
                    max_attempts,
                    checksum,
                    source,
                    res_shots,
                    res_failures,
                    job_result_checksum(run_key, res_shots, res_failures)
                    if source is not None
                    else None,
                    now,
                    now if source is not None else None,
                ),
            )
            job_id = int(cur.lastrowid)
            self._event(
                job_id,
                "submitted",
                None,
                f"coalesced:{source}" if source is not None else None,
                now,
            )
            return JobHandle(
                job_id=job_id,
                run_key=run_key,
                coalesced=source is not None,
                source=source,
                _queue=self,
            )

        return self._locked(_txn)

    # -- claim / lease protocol ----------------------------------------
    def claim(self, owner: str, now: float | None = None) -> ClaimedJob | None:
        """Lease the best eligible job, or return None when there is none.

        Eligible: ``pending`` past its backoff gate, or ``leased`` with an
        **expired lease** (the previous claimant stopped heartbeating —
        takeover is recorded as an event).  Ordering is priority desc then
        FIFO.  Rows failing their identity checksum are marked ``corrupt``
        (with a :class:`QueueCorrupt` warning) and skipped; rows whose
        attempt budget is already exhausted are marked ``failed`` and
        skipped — the claimant just moves on to the next candidate.
        """
        wall = time.time() if now is None else float(now)
        while True:
            outcome, value = self._locked(lambda: self._claim_once(owner, wall))
            if outcome == "claimed":
                return value
            if outcome == "empty":
                return None
            # outcome == "skip": a row was marked failed/corrupt; emit the
            # warning outside the transaction and look again.
            if value is not None:
                warnings.warn(value, QueueCorrupt, stacklevel=2)

    def _claim_once(self, owner: str, now: float):
        row = self._conn.execute(
            "SELECT job_id, run_key, physics_key, kind, payload, shots, "
            "num_shards, priority, attempts, max_attempts, checksum, state, "
            "lease_owner, error "
            "FROM jobs "
            "WHERE (state = 'pending' AND not_before_unix <= ?) "
            "   OR (state = 'leased' AND lease_expires_unix < ?) "
            "ORDER BY priority DESC, job_id ASC LIMIT 1",
            (now, now),
        ).fetchone()
        if row is None:
            return "empty", None
        (
            job_id, run_key, physics_key, kind, payload, shots, num_shards,
            priority, attempts, max_attempts, checksum, state, prev_owner, error,
        ) = row
        job_id, attempts, max_attempts = int(job_id), int(attempts), int(max_attempts)
        if checksum != job_checksum(run_key, kind, shots, num_shards, payload):
            self._conn.execute(
                "UPDATE jobs SET state='corrupt', error=?, finished_unix=?, "
                "lease_owner=NULL, lease_expires_unix=NULL WHERE job_id=?",
                ("identity checksum mismatch", now, job_id),
            )
            self._event(job_id, "corrupt", owner, "identity checksum mismatch", now)
            return "skip", (
                f"queue row for job {job_id} failed identity checksum "
                f"verification; marked corrupt and skipped — resubmit to "
                f"recompute"
            )
        if attempts >= max_attempts:
            # A dead claimant consumed the final attempt; the takeover
            # discovers exhaustion rather than burning another lease.
            self._conn.execute(
                "UPDATE jobs SET state='failed', error=?, finished_unix=?, "
                "lease_owner=NULL, lease_expires_unix=NULL WHERE job_id=?",
                (
                    f"attempt budget exhausted ({attempts}/{max_attempts}); "
                    f"last error: {error or 'claimant died mid-lease'}",
                    now,
                    job_id,
                ),
            )
            self._event(job_id, "failed", owner, "attempts exhausted at claim", now)
            return "skip", None
        if state == "leased":
            self._event(
                job_id, "lease_takeover", owner, f"expired lease of {prev_owner}", now
            )
        try:
            args, seed = pickle.loads(payload)
        except Exception as exc:
            # Checksum-valid but unloadable (e.g. the submitter pickled a
            # class this claimant cannot import): never executable here.
            self._conn.execute(
                "UPDATE jobs SET state='corrupt', error=?, finished_unix=?, "
                "lease_owner=NULL, lease_expires_unix=NULL WHERE job_id=?",
                (f"payload unpicklable: {exc!r}", now, job_id),
            )
            self._event(job_id, "corrupt", owner, f"payload unpicklable: {exc!r}", now)
            return "skip", (
                f"queue row for job {job_id} holds an unloadable payload "
                f"({exc!r}); marked corrupt and skipped"
            )
        self._conn.execute(
            "UPDATE jobs SET state='leased', lease_owner=?, "
            "lease_expires_unix=?, heartbeat_unix=?, attempts=attempts+1 "
            "WHERE job_id=?",
            (owner, now + self.lease_seconds, now, job_id),
        )
        self._event(job_id, "claimed", owner, f"attempt {attempts + 1}", now)
        return "claimed", ClaimedJob(
            job_id=job_id,
            run_key=str(run_key),
            physics_key=str(physics_key),
            kind=str(kind),
            args=args,
            seed=seed,
            shots=int(shots),
            num_shards=int(num_shards),
            priority=int(priority),
            attempt=attempts + 1,
            max_attempts=max_attempts,
            owner=owner,
        )

    def heartbeat(self, job_id: int, owner: str, now: float | None = None) -> bool:
        """Extend the lease; False means the lease is no longer ours (a
        takeover happened) and the claimant should abandon the job — its
        eventual ``complete`` would be rejected anyway."""
        wall = time.time() if now is None else float(now)

        def _txn() -> bool:
            cur = self._conn.execute(
                "UPDATE jobs SET heartbeat_unix=?, lease_expires_unix=? "
                "WHERE job_id=? AND lease_owner=? AND state='leased'",
                (wall, wall + self.lease_seconds, int(job_id), owner),
            )
            return cur.rowcount == 1

        return self._locked(_txn)

    def complete(
        self,
        job_id: int,
        owner: str,
        shots: int,
        failures: int,
        *,
        degraded: bool = False,
        source: str = "computed",
        now: float | None = None,
    ) -> bool:
        """Owner-guarded terminal write; False = stale completion rejected.

        The guard (``lease_owner = ?``) is the double-claim firewall: when
        a stalled claimant's lease was taken over, its late completion
        must not clobber the successor's — the counts are identical
        (shards are pure), but attempt accounting and event history belong
        to the owner that actually finished.
        """
        wall = time.time() if now is None else float(now)

        def _txn() -> bool:
            cur = self._conn.execute(
                "UPDATE jobs SET state='done', result_shots=?, "
                "result_failures=?, result_checksum=?, degraded=?, source=?, "
                "finished_unix=?, lease_expires_unix=NULL "
                "WHERE job_id=? AND lease_owner=? AND state='leased'",
                (
                    int(shots),
                    int(failures),
                    job_result_checksum(self._run_key_of(job_id), shots, failures),
                    int(bool(degraded)),
                    source,
                    wall,
                    int(job_id),
                    owner,
                ),
            )
            if cur.rowcount == 1:
                self._event(job_id, "completed", owner, f"source={source}", wall)
                return True
            self._event(
                job_id,
                "stale_complete_rejected",
                owner,
                "lease no longer held at completion",
                wall,
            )
            return False

        return self._locked(_txn)

    def release(
        self, job_id: int, owner: str, error: str, now: float | None = None
    ) -> str:
        """Give a failed attempt back to the queue (owner-guarded).

        Returns ``"retry"`` (requeued behind an exponential-backoff gate),
        ``"failed"`` (attempt budget exhausted — terminal), or ``"stale"``
        (the lease was taken over; nothing to release).
        """
        wall = time.time() if now is None else float(now)

        def _txn() -> str:
            row = self._conn.execute(
                "SELECT attempts, max_attempts FROM jobs "
                "WHERE job_id=? AND lease_owner=? AND state='leased'",
                (int(job_id), owner),
            ).fetchone()
            if row is None:
                self._event(job_id, "stale_release_ignored", owner, error, wall)
                return "stale"
            attempts, max_attempts = int(row[0]), int(row[1])
            if attempts >= max_attempts:
                # The same-transaction SELECT above already proved we hold
                # the lease, but the write re-states the owner fence anyway:
                # protocheck (RPL402/RPL404) requires every release-side
                # terminal write to be fenced on its own, not by context.
                self._conn.execute(
                    "UPDATE jobs SET state='failed', error=?, finished_unix=?, "
                    "lease_owner=NULL, lease_expires_unix=NULL "
                    "WHERE job_id=? AND lease_owner=? AND state='leased'",
                    (
                        f"attempt budget exhausted ({attempts}/{max_attempts}); "
                        f"last error: {error}",
                        wall,
                        int(job_id),
                        owner,
                    ),
                )
                self._event(job_id, "failed", owner, error, wall)
                return "failed"
            delay = min(
                _RETRY_BACKOFF * (2 ** max(attempts - 1, 0)), _RETRY_BACKOFF_CAP
            )
            self._conn.execute(
                "UPDATE jobs SET state='pending', lease_owner=NULL, "
                "lease_expires_unix=NULL, heartbeat_unix=NULL, "
                "not_before_unix=?, error=? "
                "WHERE job_id=? AND lease_owner=? AND state='leased'",
                (wall + delay, error, int(job_id), owner),
            )
            self._event(job_id, "released", owner, f"retry in {delay:.2f}s: {error}", wall)
            return "retry"

        return self._locked(_txn)

    def requeue(self, job_id: int, owner: str, now: float | None = None) -> bool:
        """Drain path: hand a *healthy* leased job back without charging
        the attempt (draining is the host's fault, not the job's).  Every
        shard finished before the drain is already durable in the result
        cache, so the next claimant resumes the remainder."""
        wall = time.time() if now is None else float(now)

        def _txn() -> bool:
            cur = self._conn.execute(
                "UPDATE jobs SET state='pending', lease_owner=NULL, "
                "lease_expires_unix=NULL, heartbeat_unix=NULL, "
                "attempts=MAX(attempts - 1, 0), not_before_unix=? "
                "WHERE job_id=? AND lease_owner=? AND state='leased'",
                (wall, int(job_id), owner),
            )
            if cur.rowcount == 1:
                self._event(job_id, "requeued", owner, "graceful drain", wall)
                return True
            return False

        return self._locked(_txn)

    def mark_corrupt(self, job_id: int, reason: str) -> None:
        """Mark a row corrupt (terminal); used when a *read* fails
        validation (result checksum) rather than a claim."""

        def _txn() -> None:
            now = time.time()
            self._conn.execute(
                "UPDATE jobs SET state='corrupt', error=?, finished_unix=?, "
                "lease_owner=NULL, lease_expires_unix=NULL WHERE job_id=?",
                (reason, now, int(job_id)),
            )
            self._event(job_id, "corrupt", None, reason, now)

        self._locked(_txn)

    # -- introspection -------------------------------------------------
    def _run_key_of(self, job_id: int) -> str:
        row = self._conn.execute(
            "SELECT run_key FROM jobs WHERE job_id=?", (int(job_id),)
        ).fetchone()
        if row is None:
            raise KeyError(f"no job {job_id} in {self.path}")
        return str(row[0])

    def job_row(self, job_id: int) -> dict:
        """One job row as a plain dict (read-only introspection)."""
        cur = self._conn.execute("SELECT * FROM jobs WHERE job_id=?", (int(job_id),))
        row = cur.fetchone()
        if row is None:
            raise KeyError(f"no job {job_id} in {self.path}")
        return dict(zip([d[0] for d in cur.description], row))

    def jobs(self, state: str | None = None) -> list[dict]:
        """All job rows (optionally filtered by state), FIFO order."""
        if state is not None and state not in _JOB_STATES:
            raise ValueError(f"unknown state {state!r}; valid: {_JOB_STATES}")
        # One static statement per shape (RPL308): built SQL would be
        # invisible to the protocol checker.
        if state is None:
            cur = self._conn.execute("SELECT * FROM jobs ORDER BY job_id")
        else:
            cur = self._conn.execute(
                "SELECT * FROM jobs WHERE state=? ORDER BY job_id", (state,)
            )
        names = [d[0] for d in cur.description]
        return [dict(zip(names, row)) for row in cur.fetchall()]

    def events(self, job_id: int | None = None) -> list[tuple]:
        """Audit trail: ``(job_id, event, owner, detail, at_unix)`` in order."""
        if job_id is None:
            rows = self._conn.execute(
                "SELECT job_id, event, owner, detail, at_unix FROM events "
                "ORDER BY event_id"
            )
        else:
            rows = self._conn.execute(
                "SELECT job_id, event, owner, detail, at_unix FROM events "
                "WHERE job_id=? ORDER BY event_id",
                (int(job_id),),
            )
        return [tuple(r) for r in rows]

    def active_run_keys(self) -> set[str]:
        """Run keys of jobs that are pending or leased — the set a result
        cache ``gc`` must not collect mid-flight (see
        :meth:`repro.threshold.cache.ResultCache.gc`)."""
        return {
            str(r[0])
            for r in self._conn.execute(
                "SELECT run_key FROM jobs WHERE state IN ('pending', 'leased')"
            )
        }

    def stats(self) -> dict:
        """Queue health summary (the ``queue stats`` CLI subcommand)."""
        counts = dict.fromkeys(_JOB_STATES, 0)
        for state, n in self._conn.execute(
            "SELECT state, COUNT(*) FROM jobs GROUP BY state"
        ):
            counts[str(state)] = int(n)
        return {
            "path": str(self.path),
            "schema_version": _QUEUE_SCHEMA_VERSION,
            "depth": counts["pending"] + counts["leased"],
            "max_depth": self.max_depth,
            "lease_seconds": self.lease_seconds,
            **counts,
            "events": int(
                self._conn.execute("SELECT COUNT(*) FROM events").fetchone()[0]
            ),
            "bytes": self.path.stat().st_size if self.path.exists() else 0,
        }

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Idempotent close; checkpoints and truncates the WAL first."""
        if self._closed:
            return
        self._closed = True
        if self._cache_handle is not None:
            self._cache_handle.close()
            self._cache_handle = None
        try:
            self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        except sqlite3.Error:
            pass  # best effort — close must never raise over WAL hygiene
        try:
            self._conn.close()
        except sqlite3.Error:
            pass

    def __enter__(self) -> "ScanQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _is_lock_error(exc: sqlite3.OperationalError) -> bool:
    text = str(exc).lower()
    return "locked" in text or "busy" in text


# ----------------------------------------------------------------------
# The claimant loop.
# ----------------------------------------------------------------------
@dataclass
class ServeReport:
    """What one :func:`serve` call did, for logs and tests."""

    owner: str
    claimed: int = 0
    completed: int = 0
    stale_completions: int = 0
    released: int = 0
    failed: int = 0
    requeued: int = 0
    drained: bool = False


class _HeartbeatPump(threading.Thread):
    """Background lease keep-alive for shards longer than the lease.

    The primary heartbeat rides ``on_shard_complete`` (zero extra
    connections, fires at every shard boundary); this pump covers the
    pathological case of a *single* shard outliving the lease.  It opens
    its own queue connection (sqlite handles are thread-local by default)
    and stops itself the moment a heartbeat reports the lease lost.
    """

    def __init__(
        self, queue_path: Path, job_id: int, owner: str, lease_seconds: float
    ) -> None:
        super().__init__(name=f"lease-pump-{job_id}", daemon=True)
        self._queue_path = queue_path
        self._job_id = job_id
        self._owner = owner
        self._lease_seconds = lease_seconds
        # Not named _stop: threading.Thread has a private _stop() method
        # this would shadow, breaking join().
        self._halt = threading.Event()
        self.lease_lost = False

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)

    def run(self) -> None:
        period = max(self._lease_seconds / 4.0, 0.05)
        try:
            queue = ScanQueue(self._queue_path, lease_seconds=self._lease_seconds)
        except (sqlite3.Error, OSError, JournalSchemaError) as exc:
            warnings.warn(
                f"lease heartbeat pump could not open the queue ({exc!r}); "
                f"relying on shard-boundary heartbeats only",
                JobDegraded,
                stacklevel=1,
            )
            return
        try:
            while not self._halt.wait(period):
                try:
                    alive = queue.heartbeat(self._job_id, self._owner)
                except (sqlite3.Error, OSError) as exc:
                    warnings.warn(
                        f"lease heartbeat failed transiently ({exc!r}); "
                        f"retrying next period",
                        JobDegraded,
                        stacklevel=1,
                    )
                    continue
                if not alive:
                    self.lease_lost = True
                    return
        finally:
            queue.close()


def _default_owner() -> str:
    return f"pid-{os.getpid()}"


def serve(
    queue_path: str | Path,
    cache_path: str | Path | None = None,
    *,
    workers: int = 1,
    owner: str | None = None,
    max_jobs: int | None = None,
    poll_interval: float = 0.2,
    drain_on_empty: bool = True,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    shard_timeout: float | None = None,
    max_retries: int | None = None,
    chaos=None,
    io_chaos=None,
    install_signal_handlers: bool = False,
) -> ServeReport:
    """Claimant loop: claim → execute (resumable, checkpointed) → complete.

    Runs until the queue is empty (``drain_on_empty``), ``max_jobs`` jobs
    have been claimed, or a drain is requested (SIGTERM when
    ``install_signal_handlers``, or KeyboardInterrupt).  Draining finishes
    the shard in flight, requeues the rest of the job without charging the
    attempt, and exits — completed shards are already durable in the
    result cache, so the next claimant resumes exactly where this one
    stopped.

    Executed jobs checkpoint into ``cache_path`` (also the coalescing
    cache for any queue handle sharing it), so lease takeovers resume
    instead of recomputing.  ``chaos`` is a
    :class:`~repro.threshold.chaos.SchedulerChaosPlan` injecting
    claimant-level faults by claim ordinal; ``io_chaos`` injects storage
    faults into this claimant's *queue* connection (tests only).
    """
    import signal

    from repro.threshold.runtime import DrainRequested

    if workers < 1:
        raise ValueError("workers must be positive")
    claimant = owner or _default_owner()
    report = ServeReport(owner=claimant)
    drain_flag = threading.Event()

    previous_handler = None
    handlers_installed = False
    if install_signal_handlers and threading.current_thread() is threading.main_thread():

        def _on_sigterm(signum, frame):  # pragma: no cover - signal path
            drain_flag.set()

        previous_handler = signal.signal(signal.SIGTERM, _on_sigterm)
        handlers_installed = True

    queue = ScanQueue(
        queue_path, cache_path=cache_path, lease_seconds=lease_seconds, io_chaos=io_chaos
    )
    claim_ordinal = 0
    try:
        while not drain_flag.is_set():
            if max_jobs is not None and report.claimed >= max_jobs:
                break
            try:
                job = queue.claim(claimant)
            except (sqlite3.Error, OSError) as exc:
                warnings.warn(
                    f"queue claim failed transiently ({exc!r}); backing off "
                    f"and retrying — the queue file is durable, no work is "
                    f"lost",
                    JobDegraded,
                    stacklevel=2,
                )
                time.sleep(poll_interval)
                continue
            if job is None:
                if drain_on_empty:
                    break
                time.sleep(poll_interval)
                continue
            report.claimed += 1
            claim_ordinal += 1
            fault = chaos.fault_for(claim_ordinal) if chaos is not None else None
            if fault == "kill_claimant":
                # SIGKILL-equivalent: no cleanup, no requeue, the lease
                # simply stops being heartbeaten and expires.
                os._exit(13)
            stall_heartbeats = fault == "heartbeat_stall"
            try:
                _execute_job(
                    queue,
                    job,
                    report,
                    workers=workers,
                    cache_path=cache_path,
                    shard_timeout=shard_timeout,
                    max_retries=max_retries,
                    lease_seconds=lease_seconds,
                    queue_path=Path(queue_path),
                    drain_flag=drain_flag,
                    stall_heartbeats=stall_heartbeats,
                    interrupt_mid_job=fault == "interrupt_mid_job",
                )
            except (DrainRequested, KeyboardInterrupt, SystemExit):
                if queue.requeue(job.job_id, claimant):
                    report.requeued += 1
                report.drained = True
                break
            except Exception as exc:
                outcome = queue.release(job.job_id, claimant, error=repr(exc))
                if outcome == "failed":
                    report.failed += 1
                elif outcome == "retry":
                    report.released += 1
    finally:
        queue.close()
        if handlers_installed:
            signal.signal(signal.SIGTERM, previous_handler)
    report.drained = report.drained or drain_flag.is_set()
    return report


def _execute_job(
    queue: ScanQueue,
    job: ClaimedJob,
    report: ServeReport,
    *,
    workers: int,
    cache_path: str | Path | None,
    shard_timeout: float | None,
    max_retries: int | None,
    lease_seconds: float,
    queue_path: Path,
    drain_flag: threading.Event,
    stall_heartbeats: bool,
    interrupt_mid_job: bool,
) -> None:
    """Execute one claimed job through the resilient runtime and complete
    it (owner-guarded).  Raises ``DrainRequested`` out to the serve loop
    when a drain lands mid-job."""
    from repro.threshold.runtime import (
        DrainRequested,
        JournalDegraded,
        ResilienceOptions,
        RunDegraded,
        execute_shards,
    )
    from repro.threshold.sharded import _build_specs

    specs, _ = _build_specs(job.kind, job.args, job.shots, job.seed, job.num_shards)
    shards_done = [0]

    def _on_shard(idx: int, shots: int, failures: int) -> None:
        shards_done[0] += 1
        if not stall_heartbeats:
            queue.heartbeat(job.job_id, job.owner)
        if interrupt_mid_job and shards_done[0] == 1:
            raise DrainRequested("chaos: operator interrupt after first shard")
        if drain_flag.is_set():
            raise DrainRequested("drain requested; stopping at shard boundary")

    defaults = ResilienceOptions()
    opts = ResilienceOptions(
        max_retries=defaults.max_retries if max_retries is None else max_retries,
        shard_timeout=shard_timeout,
        checkpoint=cache_path,
        resume=True,
        on_shard_complete=_on_shard,
    )
    pump = None
    if not stall_heartbeats:
        pump = _HeartbeatPump(queue_path, job.job_id, job.owner, lease_seconds)
        pump.start()
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            counts = execute_shards(
                specs,
                workers,
                options=opts,
                run_key=job.run_key,
                physics_key=job.physics_key,
            )
    finally:
        if pump is not None:
            pump.stop()
    degraded = False
    for w in caught:
        # Re-emit so degradations stay observable at the serve level, and
        # fold them into the job's degraded flag.
        warnings.warn_explicit(w.message, w.category, w.filename, w.lineno)
        if issubclass(w.category, (RunDegraded, JournalDegraded)):
            degraded = True
    pooled_shots = sum(s for s, _ in counts)
    pooled_failures = sum(f for _, f in counts)
    if queue.complete(
        job.job_id,
        job.owner,
        pooled_shots,
        pooled_failures,
        degraded=degraded,
        source="computed",
    ):
        report.completed += 1
    else:
        report.stale_completions += 1
        warnings.warn(
            f"job {job.job_id}: lease was taken over before completion; this "
            f"claimant's (bit-for-bit identical) result was rejected in favor "
            f"of the current owner's",
            JobDegraded,
            stacklevel=2,
        )


def scan_via_queue(
    queue_path: str | Path,
    requests: list,
    *,
    cache_path: str | Path | None = None,
    workers: int = 1,
    priority: int = 0,
    shard_timeout: float | None = None,
    max_retries: int | None = None,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
) -> list[JobResult]:
    """Submit a batch of scans and drain them with one inline claimant.

    The experiment runners' queue mode: every ``(kind, args, shots,
    seed)`` request is submitted up front — submit-time coalescing
    against ``cache_path`` completes already-answered points without a
    pool — then a single in-process :func:`serve` drains the queue, and
    the verified results come back in request order.

    A ``KeyboardInterrupt`` during the drain stops at the next shard
    boundary, requeues the unfinished remainder (completed shards stay
    durable in the cache), and is re-raised here so the interrupt keeps
    its meaning for the caller; rerunning resumes instead of restarting.
    ``max_retries`` bounds *shard* retries inside a job (job-level
    attempts keep :data:`DEFAULT_JOB_RETRIES`).
    """
    queue = ScanQueue(queue_path, cache_path=cache_path, lease_seconds=lease_seconds)
    try:
        handles = [
            queue.submit_scan(kind, args, shots, seed, priority=priority)
            for kind, args, shots, seed in requests
        ]
        report = serve(
            queue_path,
            cache_path,
            workers=workers,
            drain_on_empty=True,
            lease_seconds=lease_seconds,
            shard_timeout=shard_timeout,
            max_retries=max_retries,
        )
        if report.drained:
            raise KeyboardInterrupt(
                "scan drain interrupted; unfinished jobs were requeued — "
                "rerun to resume from the completed shards"
            )
        return [handle.result(timeout=60.0) for handle in handles]
    finally:
        queue.close()
