"""Monte Carlo threshold experiments (paper §5).

Direct stochastic simulation of the EC protocols with the Pauli-frame
engine: repeated-round memory experiments, the quadratic level-1 fit
p_round = A·ε² that instantiates Eq. (33)'s coefficient, and the
pseudo-threshold crossing where encoding stops helping.

Every entry point takes a ``workers`` count: ``workers=1`` is the exact
single-process path, ``workers>1`` shards shots across spawned processes
via :mod:`repro.threshold.sharded` (pooled counts are invariant under the
worker count).  Grid scans derive one independent child stream per grid
point from ``np.random.SeedSequence(seed).spawn`` — the same plumbing the
sharded driver uses per shard — so scans with nearby integer seeds never
share streams.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.codes.stabilizer_code import StabilizerCode
from repro.pauliframe.packing import unpack_shot_major, words_for
from repro.util.rng import as_rng
from repro.util.stats import binomial_confidence, fit_power_law, logical_error_per_round

__all__ = [
    "MemoryResult",
    "PseudoThresholdNotBracketed",
    "PseudoThresholdWarning",
    "code_capacity_memory",
    "crossing_from_curve",
    "memory_experiment",
    "fit_level1_coefficient",
    "pseudo_threshold",
]


@dataclass
class MemoryResult:
    """Outcome of a repeated-EC memory experiment.

    Attributes
    ----------
    rounds: EC rounds simulated.
    shots: Monte Carlo samples.
    failures: shots whose final ideal decode shows any logical action.
    failure_rate / low / high: estimate with Wilson 95% bounds.
    per_round_rate: 1 − (1 − p)^(1/rounds) conversion.
    """

    rounds: int
    shots: int
    failures: int
    failure_rate: float
    low: float
    high: float
    per_round_rate: float


class PseudoThresholdWarning(UserWarning):
    """A pseudo-threshold grid never bracketed the crossing."""


class PseudoThresholdNotBracketed(RuntimeError):
    """Raised (in ``on_unbracketed="raise"`` mode) when no grid pair
    brackets the p(ε) = ε crossing; carries the measured ``curve``."""

    def __init__(self, message: str, curve: list[tuple[float, float]]) -> None:
        super().__init__(message)
        self.curve = curve


def _wants_sharded(resilience: dict) -> bool:
    """Checkpoint journaling and chaos injection (worker-level or I/O-level)
    only exist on the sharded driver, so any of those knobs routes a
    ``workers=1`` call through it (other resilience knobs are no-ops
    without sharding — a serial unsharded run has nothing to retry)."""
    return (
        resilience.get("checkpoint") is not None
        or resilience.get("chaos") is not None
        or resilience.get("io_chaos") is not None
    )


def _finalize(code: StabilizerCode, fx: np.ndarray, fz: np.ndarray, rounds: int) -> MemoryResult:
    cfx, cfz = code.correct_frame(fx, fz)
    action = code.logical_action_of_frame(cfx, cfz)
    failures = int(action.any(axis=1).sum())
    shots = fx.shape[0]
    est, low, high = binomial_confidence(failures, shots)
    return MemoryResult(
        rounds, shots, failures, est, low, high, logical_error_per_round(est, rounds)
    )


def code_capacity_memory(
    code: StabilizerCode,
    eps: float,
    rounds: int,
    shots: int,
    seed: int | np.random.Generator | np.random.SeedSequence | None = None,
    workers: int = 1,
    num_shards: int | None = None,
    **resilience,
) -> MemoryResult:
    """§2's setting: storage depolarizing noise + *flawless* recovery.

    Each round every qubit depolarizes with probability ε, then an ideal
    decoder corrects; failure = accumulated logical action.  Reproduces the
    F = 1 − O(ε²) claim (Eq. 14) against the unencoded 1 − ε baseline.

    ``**resilience`` (``max_retries``, ``shard_timeout``, ``checkpoint``,
    ``resume``, ...) is forwarded to the sharded driver; passing
    ``checkpoint`` or ``chaos`` routes through it even at ``workers=1``
    (in-process sharded execution — journaling needs a shard plan).
    """
    if workers != 1 or num_shards is not None or _wants_sharded(resilience):
        from repro.threshold.sharded import sharded_code_capacity_memory

        return sharded_code_capacity_memory(
            code, eps, rounds, shots, seed, workers=workers,
            num_shards=num_shards, **resilience,
        )
    rng = as_rng(seed)
    n = code.n
    fx = np.zeros((shots, n), dtype=np.uint8)
    fz = np.zeros((shots, n), dtype=np.uint8)
    logical_fx = np.zeros(shots, dtype=np.uint8)
    logical_fz = np.zeros(shots, dtype=np.uint8)
    for _ in range(rounds):
        hit = rng.random((shots, n)) < eps
        kind = rng.integers(0, 3, size=(shots, n))
        fx ^= (hit & (kind != 2)).astype(np.uint8)
        fz ^= (hit & (kind != 0)).astype(np.uint8)
        fx, fz = code.correct_frame(fx, fz)
        action = code.logical_action_of_frame(fx, fz)
        # Ideal recovery returns the state to the code space; any logical
        # component is absorbed into the running logical frame.
        logical_fx ^= action[:, 0]
        logical_fz ^= action[:, 1]
        fx[:] = 0
        fz[:] = 0
    failures = int((logical_fx | logical_fz).sum())
    est, low, high = binomial_confidence(failures, shots)
    return MemoryResult(
        rounds, shots, failures, est, low, high, logical_error_per_round(est, rounds)
    )


def memory_experiment(
    protocol,
    code: StabilizerCode,
    rounds: int,
    shots: int,
    seed: int | np.random.Generator | np.random.SeedSequence | None = None,
    workers: int = 1,
    num_shards: int | None = None,
    **resilience,
) -> MemoryResult:
    """Circuit-level memory: ``rounds`` noisy EC rounds, then ideal decode.

    ``protocol`` is a :class:`repro.ft.SteaneECProtocol`-like object with
    ``run_round(shots, seed, data_fx, data_fz)``.  Protocols exposing the
    packed entry (``run_round_packed`` on a compiled engine) keep the data
    frames bit-packed for the whole round loop — one pair of ``(n, words)``
    uint64 buffers allocated up front and carried across rounds, no
    per-round pack/unpack of the data block.

    ``workers>1`` (or an explicit ``num_shards``) shards the shots across
    processes; see :func:`repro.threshold.sharded.sharded_memory_experiment`.
    ``**resilience`` (``max_retries``, ``shard_timeout``, ``checkpoint``,
    ``resume``, ...) is forwarded to the sharded driver; ``checkpoint`` or
    ``chaos`` routes through it even at ``workers=1``.
    """
    if workers != 1 or num_shards is not None or _wants_sharded(resilience):
        from repro.threshold.sharded import sharded_memory_experiment

        return sharded_memory_experiment(
            protocol, code, rounds, shots, seed, workers=workers,
            num_shards=num_shards, **resilience,
        )
    rng = as_rng(seed)
    if getattr(protocol, "engine", None) == "compiled" and hasattr(
        protocol, "run_round_packed"
    ):
        n = getattr(protocol, "data_qubits", code.n)
        nwords = words_for(shots)
        dfx = np.zeros((n, nwords), dtype=np.uint64)
        dfz = np.zeros((n, nwords), dtype=np.uint64)
        for _ in range(rounds):
            protocol.run_round_packed(shots, rng, dfx, dfz)
        fx = unpack_shot_major(dfx, shots)
        fz = unpack_shot_major(dfz, shots)
        return _finalize(code, fx, fz, rounds)
    fx = fz = None
    for _ in range(rounds):
        fx, fz = protocol.run_round(shots, rng, data_fx=fx, data_fz=fz)
    return _finalize(code, fx, fz, rounds)


def _grid_seeds(seed: int | None, n: int) -> list[np.random.SeedSequence]:
    """One independent child stream per grid point (never ``seed + i``)."""
    from repro.threshold.sharded import spawn_shard_seeds

    return spawn_shard_seeds(seed, n)


def fit_level1_coefficient(
    protocol_factory: Callable[[float], object],
    code: StabilizerCode,
    eps_grid: np.ndarray,
    shots: int = 20_000,
    seed: int = 0,
    workers: int = 1,
    num_shards: int | None = None,
    **resilience,
) -> tuple[float, float]:
    """Fit p_round = A·ε^k on a grid of physical rates.

    Returns ``(A, k)``; fault tolerance demands k ≈ 2 (Eq. 33's quadratic
    suppression), and 1/A is the level-1 pseudo-threshold estimate.

    ``**resilience`` is forwarded per grid point; with ``checkpoint=`` set,
    each point journals under its own content-addressed run key (the
    protocol embeds ε), so a killed scan resumes mid-grid.
    """
    eps_grid = np.asarray(eps_grid, dtype=float)
    rates = []
    for eps, point_seed in zip(eps_grid, _grid_seeds(seed, len(eps_grid))):
        protocol = protocol_factory(float(eps))
        result = memory_experiment(
            protocol, code, rounds=1, shots=shots, seed=point_seed,
            workers=workers, num_shards=num_shards, **resilience,
        )
        rates.append(max(result.failure_rate, 1e-12))
    return fit_power_law(eps_grid, np.asarray(rates))


def crossing_from_curve(curve: list[tuple[float, float]]) -> float:
    """Crossing of p(ε) = ε from a measured ``[(ε, p), ...]`` curve.

    An exact crossing *at* a grid point (p == ε) is returned as that grid
    point; otherwise the first sign change of p(ε) − ε is log-linearly
    interpolated.  Returns NaN when no grid pair brackets a crossing —
    callers decide whether that warns or raises.
    """
    residuals = [p - e for e, p in curve]
    prev_nonzero = None
    for i, f1 in enumerate(residuals):
        if f1 == 0.0:
            # Exact crossing at a grid point — the old `f1 < 0 <= f2` scan
            # skipped this pair and the next one could no longer bracket.
            # It only counts as a crossing on a genuine below→above
            # transition: a lucky Monte Carlo touch inside an all-above
            # curve is not a pseudo-threshold.
            nxt = next((g for g in residuals[i + 1 :] if g != 0.0), None)
            if (prev_nonzero is not None and prev_nonzero < 0.0) or (
                prev_nonzero is None and nxt is not None and nxt > 0.0
            ):
                return float(curve[i][0])
            continue
        if i > 0 and residuals[i - 1] < 0.0 < f1:
            # Log-linear interpolation of the sign change of p(ε) − ε.
            (e1, _), (e2, _) = curve[i - 1], curve[i]
            t = residuals[i - 1] / (residuals[i - 1] - f1)
            return float(np.exp(np.log(e1) + t * (np.log(e2) - np.log(e1))))
        prev_nonzero = f1
    return float("nan")


def pseudo_threshold(
    protocol_factory: Callable[[float], object],
    code: StabilizerCode,
    eps_grid: np.ndarray,
    shots: int = 20_000,
    seed: int = 0,
    workers: int = 1,
    on_unbracketed: str = "warn",
    num_shards: int | None = None,
    **resilience,
) -> tuple[float, list[tuple[float, float]]]:
    """Crossing point where the encoded per-round failure equals ε.

    Below the crossing, one level of encoding *helps* (p_L1 < ε); above it
    coding "will make things worse instead of better" (§5).  Returns the
    log-interpolated crossing and the (ε, p_L1) curve.  When no grid pair
    brackets a crossing, ``on_unbracketed="warn"`` (default) emits a
    :class:`PseudoThresholdWarning` and returns NaN with the curve;
    ``"raise"`` raises :class:`PseudoThresholdNotBracketed` with the curve
    attached.

    ``**resilience`` is forwarded per grid point; with ``checkpoint=`` set,
    a killed scan resumes mid-grid (each point has its own run key).
    """
    if on_unbracketed not in ("warn", "raise"):
        raise ValueError("on_unbracketed must be 'warn' or 'raise'")
    eps_grid = np.asarray(sorted(eps_grid), dtype=float)
    curve: list[tuple[float, float]] = []
    for eps, point_seed in zip(eps_grid, _grid_seeds(seed, len(eps_grid))):
        protocol = protocol_factory(float(eps))
        result = memory_experiment(
            protocol, code, rounds=1, shots=shots, seed=point_seed,
            workers=workers, num_shards=num_shards, **resilience,
        )
        curve.append((float(eps), max(result.failure_rate, 1e-12)))
    crossing = crossing_from_curve(curve)
    if np.isnan(crossing):
        message = (
            "pseudo-threshold grid never brackets the p(eps) = eps crossing; "
            f"widen the grid or raise the shot count; curve = {curve}"
        )
        if on_unbracketed == "raise":
            raise PseudoThresholdNotBracketed(message, curve)
        warnings.warn(message, PseudoThresholdWarning, stacklevel=2)
    return crossing, curve
