"""Monte Carlo threshold experiments (paper §5).

Direct stochastic simulation of the EC protocols with the Pauli-frame
engine: repeated-round memory experiments, the quadratic level-1 fit
p_round = A·ε² that instantiates Eq. (33)'s coefficient, and the
pseudo-threshold crossing where encoding stops helping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.codes.stabilizer_code import StabilizerCode
from repro.pauliframe.packing import unpack_shot_major, words_for
from repro.util.rng import as_rng
from repro.util.stats import binomial_confidence, fit_power_law

__all__ = [
    "MemoryResult",
    "code_capacity_memory",
    "memory_experiment",
    "fit_level1_coefficient",
    "pseudo_threshold",
]


@dataclass
class MemoryResult:
    """Outcome of a repeated-EC memory experiment.

    Attributes
    ----------
    rounds: EC rounds simulated.
    shots: Monte Carlo samples.
    failures: shots whose final ideal decode shows any logical action.
    failure_rate / low / high: estimate with Wilson 95% bounds.
    per_round_rate: 1 − (1 − p)^(1/rounds) conversion.
    """

    rounds: int
    shots: int
    failures: int
    failure_rate: float
    low: float
    high: float
    per_round_rate: float


def _finalize(code: StabilizerCode, fx: np.ndarray, fz: np.ndarray, rounds: int) -> MemoryResult:
    cfx, cfz = code.correct_frame(fx, fz)
    action = code.logical_action_of_frame(cfx, cfz)
    failures = int(action.any(axis=1).sum())
    shots = fx.shape[0]
    est, low, high = binomial_confidence(failures, shots)
    per_round = 1.0 - (1.0 - min(est, 1.0 - 1e-15)) ** (1.0 / rounds)
    return MemoryResult(rounds, shots, failures, est, low, high, per_round)


def code_capacity_memory(
    code: StabilizerCode,
    eps: float,
    rounds: int,
    shots: int,
    seed: int | np.random.Generator | None = None,
) -> MemoryResult:
    """§2's setting: storage depolarizing noise + *flawless* recovery.

    Each round every qubit depolarizes with probability ε, then an ideal
    decoder corrects; failure = accumulated logical action.  Reproduces the
    F = 1 − O(ε²) claim (Eq. 14) against the unencoded 1 − ε baseline.
    """
    rng = as_rng(seed)
    n = code.n
    fx = np.zeros((shots, n), dtype=np.uint8)
    fz = np.zeros((shots, n), dtype=np.uint8)
    logical_fx = np.zeros(shots, dtype=np.uint8)
    logical_fz = np.zeros(shots, dtype=np.uint8)
    for _ in range(rounds):
        hit = rng.random((shots, n)) < eps
        kind = rng.integers(0, 3, size=(shots, n))
        fx ^= (hit & (kind != 2)).astype(np.uint8)
        fz ^= (hit & (kind != 0)).astype(np.uint8)
        fx, fz = code.correct_frame(fx, fz)
        action = code.logical_action_of_frame(fx, fz)
        # Ideal recovery returns the state to the code space; any logical
        # component is absorbed into the running logical frame.
        logical_fx ^= action[:, 0]
        logical_fz ^= action[:, 1]
        fx[:] = 0
        fz[:] = 0
    failures = int((logical_fx | logical_fz).sum())
    est, low, high = binomial_confidence(failures, shots)
    per_round = 1.0 - (1.0 - min(est, 1.0 - 1e-15)) ** (1.0 / rounds)
    return MemoryResult(rounds, shots, failures, est, low, high, per_round)


def memory_experiment(
    protocol,
    code: StabilizerCode,
    rounds: int,
    shots: int,
    seed: int | np.random.Generator | None = None,
) -> MemoryResult:
    """Circuit-level memory: ``rounds`` noisy EC rounds, then ideal decode.

    ``protocol`` is a :class:`repro.ft.SteaneECProtocol`-like object with
    ``run_round(shots, seed, data_fx, data_fz)``.  Protocols exposing the
    packed entry (``run_round_packed`` on a compiled engine) keep the data
    frames bit-packed for the whole round loop — one pair of ``(n, words)``
    uint64 buffers allocated up front and carried across rounds, no
    per-round pack/unpack of the data block.
    """
    rng = as_rng(seed)
    if getattr(protocol, "engine", None) == "compiled" and hasattr(
        protocol, "run_round_packed"
    ):
        n = getattr(protocol, "data_qubits", code.n)
        nwords = words_for(shots)
        dfx = np.zeros((n, nwords), dtype=np.uint64)
        dfz = np.zeros((n, nwords), dtype=np.uint64)
        for _ in range(rounds):
            protocol.run_round_packed(shots, rng, dfx, dfz)
        fx = unpack_shot_major(dfx, shots)
        fz = unpack_shot_major(dfz, shots)
        return _finalize(code, fx, fz, rounds)
    fx = fz = None
    for _ in range(rounds):
        fx, fz = protocol.run_round(shots, rng, data_fx=fx, data_fz=fz)
    return _finalize(code, fx, fz, rounds)


def fit_level1_coefficient(
    protocol_factory: Callable[[float], object],
    code: StabilizerCode,
    eps_grid: np.ndarray,
    shots: int = 20_000,
    seed: int = 0,
) -> tuple[float, float]:
    """Fit p_round = A·ε^k on a grid of physical rates.

    Returns ``(A, k)``; fault tolerance demands k ≈ 2 (Eq. 33's quadratic
    suppression), and 1/A is the level-1 pseudo-threshold estimate.
    """
    rates = []
    for i, eps in enumerate(np.asarray(eps_grid, dtype=float)):
        protocol = protocol_factory(float(eps))
        result = memory_experiment(protocol, code, rounds=1, shots=shots, seed=seed + i)
        rates.append(max(result.failure_rate, 1e-12))
    return fit_power_law(np.asarray(eps_grid, dtype=float), np.asarray(rates))


def pseudo_threshold(
    protocol_factory: Callable[[float], object],
    code: StabilizerCode,
    eps_grid: np.ndarray,
    shots: int = 20_000,
    seed: int = 0,
) -> tuple[float, list[tuple[float, float]]]:
    """Crossing point where the encoded per-round failure equals ε.

    Below the crossing, one level of encoding *helps* (p_L1 < ε); above it
    coding "will make things worse instead of better" (§5).  Returns the
    log-interpolated crossing and the (ε, p_L1) curve.
    """
    eps_grid = np.asarray(sorted(eps_grid), dtype=float)
    curve: list[tuple[float, float]] = []
    for i, eps in enumerate(eps_grid):
        protocol = protocol_factory(float(eps))
        result = memory_experiment(protocol, code, rounds=1, shots=shots, seed=seed + i)
        curve.append((float(eps), max(result.failure_rate, 1e-12)))
    crossing = float("nan")
    for (e1, p1), (e2, p2) in zip(curve, curve[1:]):
        f1, f2 = p1 - e1, p2 - e2
        if f1 < 0 <= f2:
            # Log-linear interpolation of the sign change of p(ε) − ε.
            t = f1 / (f1 - f2)
            crossing = float(np.exp(np.log(e1) + t * (np.log(e2) - np.log(e1))))
            break
    return crossing, curve
