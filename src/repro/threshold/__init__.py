"""Accuracy-threshold theory and estimation (paper §5–§6).

Four complementary routes to the same physics:

* :mod:`repro.threshold.flow` — the concatenation flow equations
  (Eq. 33/36), thresholds, and the coupled Clifford+Toffoli flow;
* :mod:`repro.threshold.scaling` — the non-concatenated code-family
  scaling of Eqs. 30–32;
* :mod:`repro.threshold.counting` — exhaustive single-fault-path counting
  over the actual Fig. 9 circuits, reproducing the ε₀ ≈ 6·10⁻⁴ estimate's
  methodology;
* :mod:`repro.threshold.montecarlo` — direct Monte Carlo of the EC
  protocols with the Pauli-frame engine (pseudo-threshold crossings,
  quadratic level-1 fits);
* :mod:`repro.threshold.resources` — the §6 factoring resource estimates.
"""

from repro.threshold.flow import (
    CONCATENATION_COEFFICIENT,
    flow_map,
    iterate_flow,
    levels_needed,
    logical_rate_closed_form,
    threshold_from_coefficient,
    toffoli_flow,
)
from repro.threshold.scaling import (
    block_error_probability,
    minimum_block_error,
    optimal_t,
    required_accuracy,
    block_size_required,
)
from repro.threshold.counting import count_fault_paths, threshold_from_counting
from repro.threshold.montecarlo import (
    PseudoThresholdNotBracketed,
    PseudoThresholdWarning,
    code_capacity_memory,
    crossing_from_curve,
    fit_level1_coefficient,
    memory_experiment,
    pseudo_threshold,
)
from repro.threshold.sharded import (
    sharded_code_capacity_memory,
    sharded_memory_experiment,
    shard_sizes,
    spawn_shard_seeds,
)
from repro.threshold.runtime import (
    DrainRequested,
    ResilienceOptions,
    RunDegraded,
    ShardRetryExhausted,
    ShardTimeout,
)
from repro.threshold.chaos import (
    ChaosError,
    ChaosPlan,
    IOChaosPlan,
    SchedulerChaosPlan,
)
from repro.threshold.scheduler import (
    JobDegraded,
    JobFailed,
    JobHandle,
    JobResult,
    QueueCorrupt,
    QueueSaturated,
    ScanQueue,
    ServeReport,
    scan_via_queue,
    serve,
)
from repro.threshold.journal import (
    CacheCorrupt,
    CheckpointJournal,
    JournalDegraded,
    JournalMismatch,
    JournalSchemaError,
    compute_physics_key,
    compute_run_key,
    row_checksum,
)
from repro.threshold.cache import CacheLookup, ResultCache
from repro.threshold.resources import (
    FactoringProblem,
    FactoringPlan,
    plan_factoring,
    FACTORING_432_BIT,
)

__all__ = [
    "CONCATENATION_COEFFICIENT",
    "flow_map",
    "iterate_flow",
    "levels_needed",
    "logical_rate_closed_form",
    "threshold_from_coefficient",
    "toffoli_flow",
    "block_error_probability",
    "minimum_block_error",
    "optimal_t",
    "required_accuracy",
    "block_size_required",
    "count_fault_paths",
    "threshold_from_counting",
    "PseudoThresholdNotBracketed",
    "PseudoThresholdWarning",
    "code_capacity_memory",
    "crossing_from_curve",
    "fit_level1_coefficient",
    "memory_experiment",
    "pseudo_threshold",
    "sharded_code_capacity_memory",
    "sharded_memory_experiment",
    "shard_sizes",
    "spawn_shard_seeds",
    "DrainRequested",
    "ResilienceOptions",
    "RunDegraded",
    "ShardRetryExhausted",
    "ShardTimeout",
    "ChaosError",
    "ChaosPlan",
    "IOChaosPlan",
    "SchedulerChaosPlan",
    "JobDegraded",
    "JobFailed",
    "JobHandle",
    "JobResult",
    "QueueCorrupt",
    "QueueSaturated",
    "ScanQueue",
    "ServeReport",
    "scan_via_queue",
    "serve",
    "CacheCorrupt",
    "CacheLookup",
    "CheckpointJournal",
    "JournalDegraded",
    "JournalMismatch",
    "JournalSchemaError",
    "ResultCache",
    "compute_physics_key",
    "compute_run_key",
    "row_checksum",
    "FactoringProblem",
    "FactoringPlan",
    "plan_factoring",
    "FACTORING_432_BIT",
]
