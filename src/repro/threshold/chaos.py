"""Deterministic fault injection for the resilient shard runtime.

The chaos harness exists so that the retry/timeout/checkpoint machinery in
:mod:`repro.threshold.runtime` is *proven* under fault load instead of
merely written: tests hand a :class:`ChaosPlan` to any sharded entry point
and the worker wrapper injects the planned fault for the planned shard
index on the planned attempts — nothing is random, so every chaos test is
exactly reproducible.

Fault kinds
-----------
``"crash"``
    The worker process calls ``os._exit`` mid-shard, which breaks the
    whole ``ProcessPoolExecutor`` (``BrokenProcessPool``) — the hardest
    fault the runtime must survive.
``"hang"``
    The worker sleeps for ``hang_seconds`` before running the shard,
    tripping the per-shard timeout and hung-worker replacement path.
``"exception"``
    The worker raises :class:`ChaosError` instead of running the shard —
    the plain retry path.
``"unpicklable"``
    The shard runs *successfully* but its return value refuses to pickle,
    so the result is lost on the way back — the runtime must re-run the
    shard (bit-for-bit identical, shards are pure functions of their spec).

Faults are injected for attempts ``1..times`` and vanish afterwards, so a
plan with ``times <= max_retries`` converges through retries while
``times > max_retries`` exercises retry exhaustion and in-process
degradation.

In-process (``workers=1``) execution maps every fault kind to
:class:`ChaosError`: a real crash or hang would take down the driver
process itself, but the retry bookkeeping being tested is identical.

I/O fault kinds
---------------
The persistence path (checkpoint journal / result cache) has its own
fault plane: :class:`IOChaosPlan` + :class:`ChaosConnection` wrap the
journal's sqlite connection and inject faults on planned *write ordinals*
(the 1-based count of DML statements — INSERT/UPDATE/DELETE/REPLACE —
executed through the connection; reads and PRAGMAs are never counted).

``"io_error_on_write"``
    The write raises ``sqlite3.OperationalError("disk I/O error")`` — a
    dying disk or yanked volume; the run must degrade to uncheckpointed
    execution (``JournalDegraded``), never die.
``"disk_full"``
    ``sqlite3.OperationalError("database or disk is full")`` — same
    contract as above, the classic overnight-scan killer.
``"lock_contention"``
    ``sqlite3.OperationalError("database is locked")`` — transient
    contention from a concurrent driver; the runtime's bounded retry
    should absorb a short burst and degrade only past the budget.
    Retries re-execute the statement and advance the write counter, so a
    burst is modelled as *consecutive* planned ordinals.
``"corrupt_row"``
    The nastiest: the write *succeeds* but the stored ``failures`` value
    is silently tampered while its checksum stays stale — bit rot /
    torn-write simulation.  Nothing fails now; the next run's checksum
    verification must quarantine the row (``CacheCorrupt``) and recompute
    the shard.  Only meaningful on ``shard_results`` inserts; planned on
    any other statement it is a no-op.

Scheduler fault kinds
---------------------
The scan queue (:mod:`repro.threshold.scheduler`) adds a third fault
plane: :class:`SchedulerChaosPlan` keys faults by **claim ordinal** (the
1-based count of successful claims one ``serve`` loop makes), so every
scheduler chaos test is exactly reproducible too.

``"kill_claimant"``
    The claimant process ``os._exit``\\ s immediately after claiming —
    SIGKILL-equivalent, no cleanup, no requeue.  The job's lease simply
    stops being heartbeaten; after expiry another claimant takes it over
    and resumes from the journaled shards, bit-for-bit.
``"heartbeat_stall"``
    The claimant executes the job but never heartbeats (shard-boundary
    callbacks and the background pump both suppressed) — a paused VM or a
    livelocked host.  With a short lease another claimant takes the job
    over mid-run; the stalled claimant's late completion is rejected by
    the owner guard.
``"interrupt_mid_job"``
    ``DrainRequested`` is raised from the shard-completion callback after
    the first shard — the operator-Ctrl-C-mid-job path.  The job must be
    requeued without charging the attempt, with the finished shard
    durable.

Queue *storage* faults (lock-contention bursts, row tamper) are not a new
plane: lock bursts reuse :class:`IOChaosPlan`/:class:`ChaosConnection` on
the queue's own connection (``ScanQueue(io_chaos=...)``), and row tamper
is direct SQL against the queue file — the identity checksum fixed at
submit catches it at claim time regardless of how the bits were flipped.
"""

from __future__ import annotations

import sqlite3

__all__ = [
    "ChaosConnection",
    "ChaosError",
    "ChaosPlan",
    "IOChaosPlan",
    "IO_FAULTS",
    "SCHEDULER_FAULTS",
    "SchedulerChaosPlan",
    "VALID_FAULTS",
]

VALID_FAULTS = frozenset({"crash", "hang", "exception", "unpicklable"})

IO_FAULTS = frozenset(
    {"io_error_on_write", "disk_full", "corrupt_row", "lock_contention"}
)

SCHEDULER_FAULTS = frozenset(
    {"kill_claimant", "heartbeat_stall", "interrupt_mid_job"}
)


class ChaosError(RuntimeError):
    """Deterministically injected shard failure (never raised outside tests)."""


class ChaosPlan:
    """Picklable per-shard-index fault plan.

    Parameters
    ----------
    faults:
        Mapping of shard index → fault kind (one of :data:`VALID_FAULTS`).
    times:
        Inject on attempts ``1..times`` of the afflicted shard; later
        attempts run clean.  ``times`` larger than the runtime's
        ``max_retries`` forces exhaustion/degradation.
    hang_seconds:
        Sleep length for ``"hang"`` faults — pick it far above the
        runtime's ``shard_timeout`` so a hang never resolves by luck.
    """

    def __init__(
        self,
        faults: dict[int, str],
        times: int = 1,
        hang_seconds: float = 3600.0,
    ) -> None:
        bad = {kind for kind in faults.values() if kind not in VALID_FAULTS}
        if bad:
            raise ValueError(f"unknown fault kinds {sorted(bad)}; valid: {sorted(VALID_FAULTS)}")
        if times < 1:
            raise ValueError("times must be >= 1 (inject on at least the first attempt)")
        self.faults = {int(i): kind for i, kind in faults.items()}
        self.times = int(times)
        self.hang_seconds = float(hang_seconds)

    @classmethod
    def every(
        cls,
        stride: int,
        fault: str,
        num_shards: int,
        times: int = 1,
        hang_seconds: float = 3600.0,
    ) -> "ChaosPlan":
        """Fault every ``stride``-th shard: indices ``0, stride, 2*stride, ...``.

        ``ChaosPlan.every(4, "crash", 16)`` afflicts 25% of a 16-shard run —
        the fault density the acceptance criteria demand.
        """
        if stride < 1:
            raise ValueError("stride must be positive")
        return cls(
            {i: fault for i in range(0, num_shards, stride)},
            times=times,
            hang_seconds=hang_seconds,
        )

    def fault_for(self, shard_index: int, attempt: int) -> str | None:
        """Fault to inject for this ``(shard_index, attempt)``, or ``None``."""
        if attempt <= self.times:
            return self.faults.get(shard_index)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChaosPlan({self.faults!r}, times={self.times}, "
            f"hang_seconds={self.hang_seconds})"
        )


class IOChaosPlan:
    """Deterministic I/O fault plan for the journal/cache sqlite connection.

    Parameters
    ----------
    faults:
        Mapping of write ordinal (1-based, counted over DML statements the
        wrapped connection executes) → fault kind (one of
        :data:`IO_FAULTS`).  The counter is stateful and driver-side only:
        the plan is never shipped to workers, so a run's write sequence —
        run registration, then one insert per finished shard — is exactly
        reproducible and ordinals address it directly.
    """

    def __init__(self, faults: dict[int, str]) -> None:
        bad = {kind for kind in faults.values() if kind not in IO_FAULTS}
        if bad:
            raise ValueError(
                f"unknown I/O fault kinds {sorted(bad)}; valid: {sorted(IO_FAULTS)}"
            )
        if any(int(ordinal) < 1 for ordinal in faults):
            raise ValueError("write ordinals are 1-based")
        self.faults = {int(ordinal): kind for ordinal, kind in faults.items()}
        self.writes_seen = 0

    def next_write_fault(self) -> str | None:
        """Advance the write counter; fault planned for this write, if any."""
        self.writes_seen += 1
        return self.faults.get(self.writes_seen)

    def reset(self) -> None:
        """Rewind the counter (reuse one plan across independent tests)."""
        self.writes_seen = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IOChaosPlan({self.faults!r}, writes_seen={self.writes_seen})"


class SchedulerChaosPlan:
    """Deterministic claimant-level fault plan for the scan queue.

    Parameters
    ----------
    faults:
        Mapping of claim ordinal (1-based, counted over *successful*
        claims one ``serve`` loop makes) → fault kind (one of
        :data:`SCHEDULER_FAULTS`).  The ordinal addresses the claimant's
        own claim sequence, so a plan means the same thing regardless of
        how many claimants share the queue.
    """

    def __init__(self, faults: dict[int, str]) -> None:
        bad = {kind for kind in faults.values() if kind not in SCHEDULER_FAULTS}
        if bad:
            raise ValueError(
                f"unknown scheduler fault kinds {sorted(bad)}; "
                f"valid: {sorted(SCHEDULER_FAULTS)}"
            )
        if any(int(ordinal) < 1 for ordinal in faults):
            raise ValueError("claim ordinals are 1-based")
        self.faults = {int(ordinal): kind for ordinal, kind in faults.items()}

    def fault_for(self, claim_ordinal: int) -> str | None:
        """Fault planned for this claim, or ``None``."""
        return self.faults.get(int(claim_ordinal))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SchedulerChaosPlan({self.faults!r})"


_WRITE_PREFIXES = ("INSERT", "UPDATE", "DELETE", "REPLACE")


def _tamper_shard_params(sql: str, parameters: tuple) -> tuple:
    """Flip the ``failures`` value of a shard-result insert while leaving
    its (now stale) checksum in place — the persisted row is silently
    wrong, exactly like bit rot, and only checksum verification on the
    next read can catch it."""
    if "shard_results" not in sql or len(parameters) < 6:
        return parameters
    tampered = list(parameters)
    tampered[3] = int(tampered[3]) ^ 1
    return tuple(tampered)


class ChaosConnection:
    """Fault-wrapping sqlite connection proxy (I/O chaos injection).

    Delegates everything to the real connection, but consults the
    :class:`IOChaosPlan` before executing each DML statement.  Injected
    errors are real ``sqlite3.OperationalError``s, so the journal's
    callers exercise exactly the handling a real disk fault would hit.
    """

    def __init__(self, conn: sqlite3.Connection, plan: IOChaosPlan) -> None:
        self._conn = conn
        self._plan = plan

    def execute(self, sql: str, parameters: tuple = ()):  # noqa: ANN201
        if sql.lstrip().upper().startswith(_WRITE_PREFIXES):
            fault = self._plan.next_write_fault()
            if fault == "io_error_on_write":
                raise sqlite3.OperationalError("chaos: disk I/O error")
            if fault == "disk_full":
                raise sqlite3.OperationalError("chaos: database or disk is full")
            if fault == "lock_contention":
                raise sqlite3.OperationalError("chaos: database is locked")
            if fault == "corrupt_row":
                parameters = _tamper_shard_params(sql, parameters)
        return self._conn.execute(sql, parameters)

    def executescript(self, script: str):  # noqa: ANN201
        return self._conn.executescript(script)

    def commit(self) -> None:
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def __getattr__(self, name: str):
        return getattr(self._conn, name)


class _UnpicklableResult:
    """Return-value poison: pickling it (to send the worker's result back
    over the result queue) raises, so the driver sees a failed shard even
    though the shard itself ran to completion."""

    def __init__(self, value: object) -> None:
        self.value = value

    def __reduce__(self):
        raise TypeError("chaos: deliberately unpicklable shard result")
