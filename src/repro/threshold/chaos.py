"""Deterministic fault injection for the resilient shard runtime.

The chaos harness exists so that the retry/timeout/checkpoint machinery in
:mod:`repro.threshold.runtime` is *proven* under fault load instead of
merely written: tests hand a :class:`ChaosPlan` to any sharded entry point
and the worker wrapper injects the planned fault for the planned shard
index on the planned attempts — nothing is random, so every chaos test is
exactly reproducible.

Fault kinds
-----------
``"crash"``
    The worker process calls ``os._exit`` mid-shard, which breaks the
    whole ``ProcessPoolExecutor`` (``BrokenProcessPool``) — the hardest
    fault the runtime must survive.
``"hang"``
    The worker sleeps for ``hang_seconds`` before running the shard,
    tripping the per-shard timeout and hung-worker replacement path.
``"exception"``
    The worker raises :class:`ChaosError` instead of running the shard —
    the plain retry path.
``"unpicklable"``
    The shard runs *successfully* but its return value refuses to pickle,
    so the result is lost on the way back — the runtime must re-run the
    shard (bit-for-bit identical, shards are pure functions of their spec).

Faults are injected for attempts ``1..times`` and vanish afterwards, so a
plan with ``times <= max_retries`` converges through retries while
``times > max_retries`` exercises retry exhaustion and in-process
degradation.

In-process (``workers=1``) execution maps every fault kind to
:class:`ChaosError`: a real crash or hang would take down the driver
process itself, but the retry bookkeeping being tested is identical.
"""

from __future__ import annotations

__all__ = ["ChaosError", "ChaosPlan", "VALID_FAULTS"]

VALID_FAULTS = frozenset({"crash", "hang", "exception", "unpicklable"})


class ChaosError(RuntimeError):
    """Deterministically injected shard failure (never raised outside tests)."""


class ChaosPlan:
    """Picklable per-shard-index fault plan.

    Parameters
    ----------
    faults:
        Mapping of shard index → fault kind (one of :data:`VALID_FAULTS`).
    times:
        Inject on attempts ``1..times`` of the afflicted shard; later
        attempts run clean.  ``times`` larger than the runtime's
        ``max_retries`` forces exhaustion/degradation.
    hang_seconds:
        Sleep length for ``"hang"`` faults — pick it far above the
        runtime's ``shard_timeout`` so a hang never resolves by luck.
    """

    def __init__(
        self,
        faults: dict[int, str],
        times: int = 1,
        hang_seconds: float = 3600.0,
    ) -> None:
        bad = {kind for kind in faults.values() if kind not in VALID_FAULTS}
        if bad:
            raise ValueError(f"unknown fault kinds {sorted(bad)}; valid: {sorted(VALID_FAULTS)}")
        if times < 1:
            raise ValueError("times must be >= 1 (inject on at least the first attempt)")
        self.faults = {int(i): kind for i, kind in faults.items()}
        self.times = int(times)
        self.hang_seconds = float(hang_seconds)

    @classmethod
    def every(
        cls,
        stride: int,
        fault: str,
        num_shards: int,
        times: int = 1,
        hang_seconds: float = 3600.0,
    ) -> "ChaosPlan":
        """Fault every ``stride``-th shard: indices ``0, stride, 2*stride, ...``.

        ``ChaosPlan.every(4, "crash", 16)`` afflicts 25% of a 16-shard run —
        the fault density the acceptance criteria demand.
        """
        if stride < 1:
            raise ValueError("stride must be positive")
        return cls(
            {i: fault for i in range(0, num_shards, stride)},
            times=times,
            hang_seconds=hang_seconds,
        )

    def fault_for(self, shard_index: int, attempt: int) -> str | None:
        """Fault to inject for this ``(shard_index, attempt)``, or ``None``."""
        if attempt <= self.times:
            return self.faults.get(shard_index)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChaosPlan({self.faults!r}, times={self.times}, "
            f"hang_seconds={self.hang_seconds})"
        )


class _UnpicklableResult:
    """Return-value poison: pickling it (to send the worker's result back
    over the result queue) raises, so the driver sees a failed shard even
    though the shard itself ran to completion."""

    def __init__(self, value: object) -> None:
        self.value = value

    def __reduce__(self):
        raise TypeError("chaos: deliberately unpicklable shard result")
