"""Multiprocess shot-sharded Monte Carlo driver (perf follow-on to PR 4).

Resolving failure rates near 10⁻⁴–10⁻⁵ needs orders of magnitude more
shots than one core delivers even with the compiled packed engine, so the
driver here shards any ``memory_experiment``-shaped workload across worker
processes and merges the per-shard failure counts into one pooled
:class:`~repro.threshold.montecarlo.MemoryResult` (Wilson bounds recomputed
on the pooled counts).

Determinism contract
--------------------
* The **shard plan** is a function of ``shots`` and ``num_shards`` only —
  never of ``workers`` — and every shard draws from an independent child
  stream of ``np.random.SeedSequence(seed)`` via ``spawn``.  A fixed
  ``(seed, shots, num_shards)`` therefore yields identical pooled counts
  for *any* worker count, including ``workers=1`` run in-process.
* ``workers=1`` with the default ``num_shards=None`` takes the unsharded
  single-process path and reproduces :func:`memory_experiment` /
  :func:`code_capacity_memory` bit-for-bit (same seed → same failures).

Workers are spawned (``multiprocessing`` spawn context, the portable and
thread-safe choice); spawn's preparation data carries the parent's
``sys.path``, so each worker re-imports ``repro`` wherever the parent
found it.  Payloads travel by pickle, so protocols must be picklable (the
compiled programs, codes, and noise models all are).
"""

from __future__ import annotations

import atexit
import multiprocessing
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.util.stats import binomial_confidence, logical_error_per_round

__all__ = [
    "DEFAULT_NUM_SHARDS",
    "shard_sizes",
    "spawn_shard_seeds",
    "sharded_memory_experiment",
    "sharded_code_capacity_memory",
]

# Fixed default so the shard plan — and hence the pooled result — does not
# depend on how many workers happen to execute it.  16 keeps shards large
# enough for the packed engine while feeding up to 16 cores; runs with more
# workers than shards warn and should pass num_shards explicitly.
DEFAULT_NUM_SHARDS = 16

# Shard streams spawned from a caller-supplied SeedSequence live under this
# reserved spawn-key branch, far above any realistic n_children_spawned, so
# they can neither mutate the caller's sequence nor collide with children
# the caller spawns from it.
_SHARD_SPAWN_DOMAIN = 2**32 - 1


def shard_sizes(shots: int, num_shards: int | None = None) -> list[int]:
    """Deterministic shard plan: ``shots`` split into near-equal shards.

    Depends only on ``(shots, num_shards)`` so that results are invariant
    under the worker count.  The first ``shots % n`` shards are one shot
    larger; no shard is empty.
    """
    if shots < 1:
        raise ValueError("shots must be positive")
    n = DEFAULT_NUM_SHARDS if num_shards is None else num_shards
    if n < 1:
        raise ValueError("num_shards must be positive")
    n = min(n, shots)
    base, rem = divmod(shots, n)
    return [base + 1 if i < rem else base for i in range(n)]


def spawn_shard_seeds(
    seed: int | np.random.SeedSequence | None, n: int
) -> list[np.random.SeedSequence]:
    """``n`` independent child streams of ``SeedSequence(seed)``.

    This is the one place shard (and grid-point) streams come from: spawned
    children never collide across roots, unlike the old ``seed + i``
    arithmetic where run ``s`` point ``i`` reused run ``s+1`` point ``i−1``.
    A caller-supplied ``SeedSequence`` is never mutated, and the children
    live under a reserved spawn-key branch — repeated calls with the same
    sequence yield the same children, and none of them collide with
    children the caller spawns from that sequence directly.
    """
    if isinstance(seed, np.random.SeedSequence):
        root = np.random.SeedSequence(
            seed.entropy,
            spawn_key=tuple(seed.spawn_key) + (_SHARD_SPAWN_DOMAIN,),
            pool_size=seed.pool_size,
        )
        return root.spawn(n)
    if seed is not None and not isinstance(seed, (int, np.integer)):
        raise TypeError(
            "sharded runs derive per-shard streams from SeedSequence.spawn; "
            "pass an int seed, a SeedSequence, or None — not a Generator"
        )
    return np.random.SeedSequence(seed).spawn(n)


# ----------------------------------------------------------------------
# Worker side.  Module-level functions only (spawn pickles them by name;
# spawn's preparation data carries the parent's sys.path, so the child can
# re-import repro wherever the parent found it).
# ----------------------------------------------------------------------
def _run_shard(spec: tuple) -> tuple[int, int]:
    """Run one shard; returns ``(shots, failures)`` for pooling."""
    kind, args, shard_shots, seed_seq = spec
    from repro.threshold.montecarlo import code_capacity_memory, memory_experiment

    if kind == "memory":
        protocol, code, rounds = args
        res = memory_experiment(protocol, code, rounds, shard_shots, seed=seed_seq)
    elif kind == "capacity":
        code, eps, rounds = args
        res = code_capacity_memory(code, eps, rounds, shard_shots, seed=seed_seq)
    else:  # pragma: no cover - specs are built in this module
        raise ValueError(f"unknown shard kind {kind!r}")
    return res.shots, res.failures


# ----------------------------------------------------------------------
# Driver side.
# ----------------------------------------------------------------------
def _build_specs(
    kind: str,
    args: tuple,
    shots: int,
    seed: int | np.random.SeedSequence | None,
    num_shards: int | None,
) -> list[tuple]:
    sizes = shard_sizes(shots, num_shards)
    seeds = spawn_shard_seeds(seed, len(sizes))
    return [(kind, args, size, ss) for size, ss in zip(sizes, seeds)]


# Spawned pools cost ~0.6 s to start, so they are cached per worker count
# and reused across calls — a grid scan pays the startup once, not once per
# grid point.  Workers are stateless between shards (each shard re-derives
# everything from its spec), so reuse cannot leak state between runs.
_pool_cache: dict[int, ProcessPoolExecutor] = {}


def _shutdown_pools() -> None:
    for pool in _pool_cache.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _pool_cache.clear()


atexit.register(_shutdown_pools)


def _get_pool(workers: int) -> ProcessPoolExecutor:
    pool = _pool_cache.get(workers)
    if pool is None:
        ctx = multiprocessing.get_context("spawn")
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=ctx)
        _pool_cache[workers] = pool
    return pool


def _execute(specs: list[tuple], workers: int) -> list[tuple[int, int]]:
    if workers == 1:
        return [_run_shard(spec) for spec in specs]
    if workers > len(specs):
        warnings.warn(
            f"only {len(specs)} shards for {workers} workers — parallelism is "
            f"capped at the shard count; pass num_shards >= workers",
            stacklevel=3,
        )
        workers = len(specs)
    pool = _get_pool(workers)
    try:
        return list(pool.map(_run_shard, specs))
    except BrokenProcessPool:
        # A dead worker poisons the whole executor; evict it so the next
        # call starts from a fresh pool instead of failing forever.
        _pool_cache.pop(workers, None)
        pool.shutdown(wait=False, cancel_futures=True)
        raise


def _pooled_result(counts: list[tuple[int, int]], rounds: int):
    from repro.threshold.montecarlo import MemoryResult

    shots = sum(s for s, _ in counts)
    failures = sum(f for _, f in counts)
    est, low, high = binomial_confidence(failures, shots)
    return MemoryResult(
        rounds, shots, failures, est, low, high, logical_error_per_round(est, rounds)
    )


def sharded_memory_experiment(
    protocol,
    code,
    rounds: int,
    shots: int,
    seed: int | np.random.SeedSequence | None = None,
    workers: int = 1,
    num_shards: int | None = None,
):
    """Shot-sharded :func:`~repro.threshold.montecarlo.memory_experiment`.

    ``workers=1`` with ``num_shards=None`` is the unsharded single-process
    path (bit-for-bit identical to ``memory_experiment``); any explicit
    ``num_shards`` activates the sharded plan, executed in-process when
    ``workers=1`` and across spawned processes otherwise — with identical
    pooled counts either way.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    if workers == 1 and num_shards is None:
        from repro.threshold.montecarlo import memory_experiment

        return memory_experiment(protocol, code, rounds, shots, seed)
    specs = _build_specs("memory", (protocol, code, rounds), shots, seed, num_shards)
    return _pooled_result(_execute(specs, workers), rounds)


def sharded_code_capacity_memory(
    code,
    eps: float,
    rounds: int,
    shots: int,
    seed: int | np.random.SeedSequence | None = None,
    workers: int = 1,
    num_shards: int | None = None,
):
    """Shot-sharded :func:`~repro.threshold.montecarlo.code_capacity_memory`."""
    if workers < 1:
        raise ValueError("workers must be positive")
    if workers == 1 and num_shards is None:
        from repro.threshold.montecarlo import code_capacity_memory

        return code_capacity_memory(code, eps, rounds, shots, seed)
    specs = _build_specs("capacity", (code, eps, rounds), shots, seed, num_shards)
    return _pooled_result(_execute(specs, workers), rounds)
