"""Multiprocess shot-sharded Monte Carlo driver (perf follow-on to PR 4).

Resolving failure rates near 10⁻⁴–10⁻⁵ needs orders of magnitude more
shots than one core delivers even with the compiled packed engine, so the
driver here shards any ``memory_experiment``-shaped workload across worker
processes and merges the per-shard failure counts into one pooled
:class:`~repro.threshold.montecarlo.MemoryResult` (Wilson bounds recomputed
on the pooled counts).

Determinism contract
--------------------
* The **shard plan** is a function of ``shots`` and ``num_shards`` only —
  never of ``workers`` — and every shard draws from an independent child
  stream of ``np.random.SeedSequence(seed)`` via ``spawn``.  A fixed
  ``(seed, shots, num_shards)`` therefore yields identical pooled counts
  for *any* worker count, including ``workers=1`` run in-process.
* ``workers=1`` with the default ``num_shards=None`` takes the unsharded
  single-process path and reproduces :func:`memory_experiment` /
  :func:`code_capacity_memory` bit-for-bit (same seed → same failures).
* Because each shard is a **pure function of its spec**, the resilient
  runtime's retries, degradations, and journal resumes are bit-for-bit
  identical to a clean run — faults can cost time, never correctness.

Execution is supervised by :mod:`repro.threshold.runtime` (per-shard
timeouts, bounded retry with backoff, pool replacement on
``BrokenProcessPool``, in-process degradation) and optionally cached
by :mod:`repro.threshold.journal` under a content-addressed run key: the
store is consulted *before* computing, so a repeated identical run
replays its pooled counts without spawning a pool, a killed scan resumes
from disk re-executing only unfinished shards, and corrupted rows are
quarantined and recomputed rather than replayed (see
:mod:`repro.threshold.cache` for the cross-run pooling API).  The
resilience knobs (``max_retries``, ``shard_timeout``, ``checkpoint``,
``resume``, ...) are keyword arguments on both entry points here and are
threaded through every Monte Carlo caller.

Workers are spawned (``multiprocessing`` spawn context, the portable and
thread-safe choice); spawn's preparation data carries the parent's
``sys.path``, so each worker re-imports ``repro`` wherever the parent
found it.  Payloads travel by pickle, so protocols must be picklable (the
compiled programs, codes, and noise models all are).
"""

from __future__ import annotations

import warnings
from pathlib import Path

import numpy as np

from repro.threshold.chaos import ChaosPlan, IOChaosPlan
from repro.threshold.journal import compute_physics_key, compute_run_key
from repro.threshold.runtime import ResilienceOptions, execute_shards
from repro.util.stats import binomial_confidence, logical_error_per_round

__all__ = [
    "DEFAULT_NUM_SHARDS",
    "shard_sizes",
    "spawn_shard_seeds",
    "sharded_memory_experiment",
    "sharded_code_capacity_memory",
]

# Fixed default so the shard plan — and hence the pooled result — does not
# depend on how many workers happen to execute it.  16 keeps shards large
# enough for the packed engine while feeding up to 16 cores; runs with more
# workers than shards warn and should pass num_shards explicitly.
DEFAULT_NUM_SHARDS = 16

# Shard streams spawned from a caller-supplied SeedSequence live under this
# reserved spawn-key branch, far above any realistic n_children_spawned, so
# they can neither mutate the caller's sequence nor collide with children
# the caller spawns from it.
_SHARD_SPAWN_DOMAIN = 2**32 - 1


def shard_sizes(shots: int, num_shards: int | None = None) -> list[int]:
    """Deterministic shard plan: ``shots`` split into near-equal shards.

    Depends only on ``(shots, num_shards)`` so that results are invariant
    under the worker count.  The first ``shots % n`` shards are one shot
    larger; no shard is empty.
    """
    if shots < 1:
        raise ValueError("shots must be positive")
    n = DEFAULT_NUM_SHARDS if num_shards is None else num_shards
    if n < 1:
        raise ValueError("num_shards must be positive")
    n = min(n, shots)
    base, rem = divmod(shots, n)
    return [base + 1 if i < rem else base for i in range(n)]


def spawn_shard_seeds(
    seed: int | np.random.SeedSequence | None, n: int
) -> list[np.random.SeedSequence]:
    """``n`` independent child streams of ``SeedSequence(seed)``.

    This is the one place shard (and grid-point) streams come from: spawned
    children never collide across roots, unlike the old ``seed + i``
    arithmetic where run ``s`` point ``i`` reused run ``s+1`` point ``i−1``.
    A caller-supplied ``SeedSequence`` is never mutated, and the children
    live under a reserved spawn-key branch — repeated calls with the same
    sequence yield the same children, and none of them collide with
    children the caller spawns from that sequence directly.
    """
    if isinstance(seed, np.random.SeedSequence):
        root = np.random.SeedSequence(
            seed.entropy,
            spawn_key=tuple(seed.spawn_key) + (_SHARD_SPAWN_DOMAIN,),
            pool_size=seed.pool_size,
        )
        return root.spawn(n)
    if seed is not None and not isinstance(seed, (int, np.integer)):
        raise TypeError(
            "sharded runs derive per-shard streams from SeedSequence.spawn; "
            "pass an int seed, a SeedSequence, or None — not a Generator"
        )
    return np.random.SeedSequence(seed).spawn(n)


def _seed_fingerprint(seed: int | np.random.SeedSequence) -> tuple:
    """Normalized seed identity for the content-addressed run key.

    The two ``spawn_shard_seeds`` branches derive *different* shard
    streams (an int spawns children directly; a ``SeedSequence`` spawns
    them under the reserved domain branch), so an int seed and the
    equivalent ``SeedSequence`` deliberately fingerprint differently.  A
    spawned/derived sequence carries its entropy *and* spawn key, so
    sibling grid points never share a run key.
    """
    if isinstance(seed, np.random.SeedSequence):
        return (
            "seedseq",
            seed.entropy,
            tuple(seed.spawn_key),
            seed.pool_size,
        )
    return ("int", int(seed))


# ----------------------------------------------------------------------
# Worker side.  Module-level functions only (spawn pickles them by name;
# spawn's preparation data carries the parent's sys.path, so the child can
# re-import repro wherever the parent found it).
# ----------------------------------------------------------------------
def _run_shard(spec: tuple) -> tuple[int, int]:
    """Run one shard; returns ``(shots, failures)`` for pooling."""
    kind, args, shard_shots, seed_seq = spec
    from repro.threshold.montecarlo import code_capacity_memory, memory_experiment

    if kind == "memory":
        protocol, code, rounds = args
        res = memory_experiment(protocol, code, rounds, shard_shots, seed=seed_seq)
    elif kind == "capacity":
        code, eps, rounds = args
        res = code_capacity_memory(code, eps, rounds, shard_shots, seed=seed_seq)
    else:  # pragma: no cover - specs are built in this module
        raise ValueError(f"unknown shard kind {kind!r}")
    return res.shots, res.failures


# ----------------------------------------------------------------------
# Driver side.
# ----------------------------------------------------------------------
def _build_specs(
    kind: str,
    args: tuple,
    shots: int,
    seed: int | np.random.SeedSequence | None,
    num_shards: int | None,
) -> tuple[list[tuple], tuple]:
    """Shard specs plus the seed fingerprint for run-key computation.

    ``seed=None`` is materialized into a fresh-entropy ``SeedSequence``
    here so even an OS-seeded run has a *knowable* identity — its run key
    simply never matches a previous run's (an irreproducible run is,
    correctly, never resumed).
    """
    sizes = shard_sizes(shots, num_shards)
    if seed is None:
        seed = np.random.SeedSequence()
    seeds = spawn_shard_seeds(seed, len(sizes))
    specs = [(kind, args, size, ss) for size, ss in zip(sizes, seeds)]
    return specs, _seed_fingerprint(seed)


def _execute(
    specs: list[tuple],
    workers: int,
    options: ResilienceOptions | None = None,
    run_key: str | None = None,
    physics_key: str | None = None,
) -> list[tuple[int, int]]:
    if workers > len(specs):
        warnings.warn(
            f"only {len(specs)} shards for {workers} workers — parallelism is "
            f"capped at the shard count; pass num_shards >= workers",
            stacklevel=3,
        )
        workers = len(specs)
    return execute_shards(
        specs, workers, options=options, run_key=run_key, physics_key=physics_key
    )


def _pooled_result(counts: list[tuple[int, int]], rounds: int):
    from repro.threshold.montecarlo import MemoryResult

    shots = sum(s for s, _ in counts)
    failures = sum(f for _, f in counts)
    est, low, high = binomial_confidence(failures, shots)
    return MemoryResult(
        rounds, shots, failures, est, low, high, logical_error_per_round(est, rounds)
    )


def _resilience_options(
    max_retries: int | None,
    shard_timeout: float | None,
    backoff: float | None,
    checkpoint: str | Path | None,
    resume: bool,
    chaos: ChaosPlan | None,
    degrade: bool,
    io_chaos: IOChaosPlan | None = None,
) -> ResilienceOptions:
    defaults = ResilienceOptions()
    return ResilienceOptions(
        max_retries=defaults.max_retries if max_retries is None else max_retries,
        shard_timeout=shard_timeout,
        backoff=defaults.backoff if backoff is None else backoff,
        checkpoint=checkpoint,
        resume=resume,
        chaos=chaos,
        degrade=degrade,
        io_chaos=io_chaos,
    )


def _run_sharded(
    kind: str,
    args: tuple,
    rounds: int,
    shots: int,
    seed,
    workers: int,
    num_shards: int | None,
    options: ResilienceOptions,
):
    specs, fingerprint = _build_specs(kind, args, shots, seed, num_shards)
    run_key = physics_key = None
    if options.checkpoint is not None:
        run_key = compute_run_key(kind, args, shots, fingerprint, len(specs))
        physics_key = compute_physics_key(kind, args)
    return _pooled_result(
        _execute(specs, workers, options, run_key, physics_key), rounds
    )


def sharded_memory_experiment(
    protocol,
    code,
    rounds: int,
    shots: int,
    seed: int | np.random.SeedSequence | None = None,
    workers: int = 1,
    num_shards: int | None = None,
    *,
    max_retries: int | None = None,
    shard_timeout: float | None = None,
    backoff: float | None = None,
    checkpoint: str | Path | None = None,
    resume: bool = True,
    chaos: ChaosPlan | None = None,
    degrade: bool = True,
    io_chaos: IOChaosPlan | None = None,
):
    """Shot-sharded :func:`~repro.threshold.montecarlo.memory_experiment`.

    ``workers=1`` with ``num_shards=None`` (and no checkpoint/chaos) is the
    unsharded single-process path (bit-for-bit identical to
    ``memory_experiment``); any explicit ``num_shards`` activates the
    sharded plan, executed in-process when ``workers=1`` and across
    spawned processes otherwise — with identical pooled counts either way.

    Resilience knobs (see :class:`repro.threshold.runtime.ResilienceOptions`):
    ``max_retries``/``shard_timeout``/``backoff`` bound and pace shard
    retries, ``chaos``/``io_chaos`` inject deterministic worker/storage
    faults (tests), and ``degrade=False`` raises ``ShardRetryExhausted``
    instead of falling back to in-process execution.

    ``checkpoint=`` names the sqlite **result cache**: the store is
    consulted by content-addressed run key *before* computing — a repeated
    identical run replays its pooled counts from disk without creating a
    worker pool, a partial run resumes re-executing only unfinished
    shards, and every finished shard commits immediately (crash-safe).
    Rows failing checksum/plan validation are quarantined
    (``CacheCorrupt``) and recomputed; storage faults degrade the run to
    uncheckpointed execution (``JournalDegraded``) instead of killing it.
    ``resume=False`` clears this run's rows first.  Completed runs over
    the same physics pool across seeds via
    :meth:`repro.threshold.cache.ResultCache.pooled_counts`.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    if (
        workers == 1
        and num_shards is None
        and checkpoint is None
        and chaos is None
        and io_chaos is None
    ):
        from repro.threshold.montecarlo import memory_experiment

        return memory_experiment(protocol, code, rounds, shots, seed)
    options = _resilience_options(
        max_retries, shard_timeout, backoff, checkpoint, resume, chaos, degrade,
        io_chaos,
    )
    return _run_sharded(
        "memory", (protocol, code, rounds), rounds, shots, seed, workers,
        num_shards, options,
    )


def sharded_code_capacity_memory(
    code,
    eps: float,
    rounds: int,
    shots: int,
    seed: int | np.random.SeedSequence | None = None,
    workers: int = 1,
    num_shards: int | None = None,
    *,
    max_retries: int | None = None,
    shard_timeout: float | None = None,
    backoff: float | None = None,
    checkpoint: str | Path | None = None,
    resume: bool = True,
    chaos: ChaosPlan | None = None,
    degrade: bool = True,
    io_chaos: IOChaosPlan | None = None,
):
    """Shot-sharded :func:`~repro.threshold.montecarlo.code_capacity_memory`.

    Same contract, resilience knobs, and result-cache semantics as
    :func:`sharded_memory_experiment`.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    if (
        workers == 1
        and num_shards is None
        and checkpoint is None
        and chaos is None
        and io_chaos is None
    ):
        from repro.threshold.montecarlo import code_capacity_memory

        return code_capacity_memory(code, eps, rounds, shots, seed)
    options = _resilience_options(
        max_retries, shard_timeout, backoff, checkpoint, resume, chaos, degrade,
        io_chaos,
    )
    return _run_sharded(
        "capacity", (code, eps, rounds), rounds, shots, seed, workers,
        num_shards, options,
    )
