"""Code-family scaling without concatenation (paper §5, Eqs. 30–32, 37).

For a family correcting t errors whose syndrome measurement takes ~t^b
steps, errors accumulate during recovery and

    Block Error Probability ~ (t^b ε)^(t+1)         (Eq. 30)

Optimizing over t (t* ≈ e⁻¹ ε^(−1/b)) gives

    Minimum Block Error ~ exp(−e⁻¹ b ε^(−1/b))      (Eq. 31)

so completing T error-correction cycles demands gate accuracy

    ε ~ (log T)^(−b)                                 (Eq. 32)

— polylogarithmic, far better than the ε ~ 1/T of no coding, but still not
arbitrary-length computation; that requires concatenation (Eq. 36/37).
"""

from __future__ import annotations

import math

__all__ = [
    "block_error_probability",
    "optimal_t",
    "minimum_block_error",
    "required_accuracy",
    "block_size_required",
]


def block_error_probability(t: int, eps: float, b: float = 4.0) -> float:
    """Eq. (30): probability that t+1 errors accumulate before the
    t^b-step syndrome measurement completes: (t^b · ε)^(t+1)."""
    if t < 1:
        raise ValueError("t must be >= 1")
    if eps < 0:
        raise ValueError("eps must be non-negative")
    return min(1.0, float((t**b * eps) ** (t + 1)))


def optimal_t(eps: float, b: float = 4.0) -> float:
    """The error-minimizing t ≈ e⁻¹ ε^(−1/b) (continuous approximation)."""
    if not 0 < eps < 1:
        raise ValueError("eps must lie in (0, 1)")
    return float(math.exp(-1.0) * eps ** (-1.0 / b))


def minimum_block_error(eps: float, b: float = 4.0) -> float:
    """Eq. (31): exp(−e⁻¹ · b · ε^(−1/b))."""
    if not 0 < eps < 1:
        raise ValueError("eps must lie in (0, 1)")
    return float(math.exp(-math.exp(-1.0) * b * eps ** (-1.0 / b)))


def required_accuracy(T: float, b: float = 4.0) -> float:
    """Eq. (32): gate accuracy ε ~ (log T)^(−b) needed to survive T cycles.

    Derived by setting T · minimum_block_error(ε) ~ 1.
    """
    if T <= 1:
        raise ValueError("T must exceed 1")
    # Invert exp(-e^{-1} b eps^{-1/b}) = 1/T exactly, then present the
    # paper's leading behaviour.
    return float((math.exp(1.0) * math.log(T) / b) ** (-b))


def block_size_required(
    eps: float,
    eps0: float,
    T: float,
    inner_block: int = 7,
    inner_t: int = 1,
) -> float:
    """Eq. (37): concatenated block size needed for a T-gate computation,

        [ log(ε₀ T) / log(ε₀/ε) ] ^ (log n / log(t+1))

    with exponent log₂7 ≈ 2.8 for the Steane code (n = 7, t = 1); the
    paper notes the exponent approaches 2 for Shor's family and could
    approach 1 for "good" codes.
    """
    if not 0 < eps < eps0:
        raise ValueError("eps must lie strictly below the threshold eps0")
    if T <= 1:
        raise ValueError("T must exceed 1")
    exponent = math.log(inner_block) / math.log(inner_t + 1)
    ratio = math.log(eps0 * T) / math.log(eps0 / eps)
    return float(max(1.0, ratio) ** exponent)
